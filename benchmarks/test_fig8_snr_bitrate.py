"""Fig. 8 — SNR vs backscatter bitrate.

Paper: with the node fixed within a metre of projector and hydrophone,
the received SNR falls as the backscatter bitrate rises (wider bandwidth
for the same reflected power), and "significantly drops for bitrates
higher than 3 kbps" because the recto-piezo's efficiency collapses away
from resonance — making 3 kbps the maximum practical rate.
"""

import numpy as np

from repro.acoustics import POOL_A, Position
from repro.core import BackscatterLink, Projector
from repro.core.experiment import ExperimentTable
from repro.net.messages import Command, Query
from repro.node.node import PABNode
from repro.piezo import Transducer

from conftest import run_once

BITRATES = [100.0, 200.0, 400.0, 600.0, 800.0, 1_000.0, 2_000.0, 2_800.0, 3_000.0, 5_000.0]

#: Per-trial node placements, all within ~1 m of projector and hydrophone
#: (paper Sec. 6.1b), with small moves between trials.
TRIAL_POSITIONS = (
    Position(1.3, 1.5, 0.6),
    Position(1.25, 1.4, 0.6),
    Position(1.35, 1.55, 0.65),
)


def make_link(bitrate: float, trial: int) -> BackscatterLink:
    transducer = Transducer.from_cylinder_design()
    f = transducer.resonance_hz
    projector = Projector(transducer=transducer, drive_voltage_v=50.0, carrier_hz=f)
    node = PABNode(address=7, channel_frequencies_hz=(f,), bitrate=bitrate)
    return BackscatterLink(
        POOL_A,
        projector,
        Position(0.5, 1.5, 0.6),
        node,
        TRIAL_POSITIONS[trial % len(TRIAL_POSITIONS)],
        Position(1.0, 0.9, 0.6),
    )


def run_sweep():
    table = ExperimentTable(
        title="Fig. 8: SNR vs backscatter bitrate",
        columns=("bitrate_bps", "snr_db_mean", "snr_db_std", "trials"),
    )
    query = Query(destination=7, command=Command.PING)
    for bitrate in BITRATES:
        snrs = []
        for trial in range(3):
            link = make_link(bitrate, trial)
            snr = link.measure_uplink_snr(query)
            if np.isfinite(snr):
                snrs.append(snr)
        table.add_row(
            float(bitrate),
            float(np.mean(snrs)) if snrs else float("nan"),
            float(np.std(snrs)) if snrs else float("nan"),
            len(snrs),
        )
    return table


def test_fig8_snr_vs_bitrate(benchmark, report):
    table = run_once(benchmark, run_sweep)
    rates = table.column("bitrate_bps")
    snrs = table.column("snr_db_mean")

    by_rate = dict(zip(rates, snrs))
    # Shape claims:
    # 1. Low bitrates enjoy much higher SNR than high bitrates.
    assert by_rate[100.0] > by_rate[3_000.0] + 6.0
    # 2. The broad trend is downward (compare low/mid/high thirds).
    assert np.mean(snrs[:3]) > np.mean(snrs[3:7]) > np.mean(snrs[7:])
    # 3. Past 3 kbps the SNR collapses toward the undecodable region
    #    (paper: "very high bit error rates" beyond 3 kbps).
    assert by_rate[5_000.0] < by_rate[2_000.0]
    assert by_rate[5_000.0] < 5.0

    report(table, "fig8_snr_bitrate.csv")
