"""Fig. 11 — Node power consumption vs backscatter bitrate.

Paper: idle (waiting to decode a downlink) consumes 124 uW; backscatter
at any tested bitrate consumes ~500 uW, dominated by the MCU's ~230 uA
active draw plus the LDO's ~25 uA at the 2.1 V measurement supply, with
only a gentle upward trend in bitrate.
"""

import pytest

from repro.constants import MEASURED_IDLE_POWER_W
from repro.core.experiment import ExperimentTable
from repro.node import NodePowerModel, PowerState

from conftest import run_once

BITRATES = [100.0, 200.0, 400.0, 500.0, 1_000.0, 1_500.0, 2_000.0, 2_500.0, 3_000.0]


def run_sweep():
    model = NodePowerModel()
    sweep = model.fig11_sweep(BITRATES)
    table = ExperimentTable(
        title="Fig. 11: power consumption vs backscatter bitrate",
        columns=("mode", "power_uw"),
    )
    table.add_row("idle", sweep["idle"] * 1e6)
    for rate in BITRATES:
        table.add_row(f"{rate:.0f} bps", sweep[rate] * 1e6)
    return table, sweep, model


def test_fig11_power_consumption(benchmark, report):
    table, sweep, model = run_once(benchmark, run_sweep)

    # Shape claims:
    # 1. Idle power matches the paper's 124 uW measurement.
    assert sweep["idle"] == pytest.approx(MEASURED_IDLE_POWER_W, rel=0.01)
    # 2. Backscatter power is ~500 uW at every tested bitrate.
    for rate in BITRATES:
        assert 400e-6 < sweep[rate] < 650e-6
    # 3. The bitrate trend is gently upward (switch gate charge).
    assert sweep[3_000.0] > sweep[100.0]
    assert (sweep[3_000.0] - sweep[100.0]) / sweep[100.0] < 0.2
    # 4. Backscatter costs ~4x idle — the step the paper's figure shows.
    assert 2.0 < sweep[1_000.0] / sweep["idle"] < 8.0
    # 5. Sanity against the datasheet decomposition (Sec. 6.4): the total
    #    current is within ~10% of MCU active + LDO quiescent.
    i_total = model.current_a(PowerState.BACKSCATTER, bitrate=1_000.0)
    assert i_total == pytest.approx(
        model.mcu_active_a + model.ldo_quiescent_a, rel=0.25
    )

    report(table, "fig11_power.csv")
