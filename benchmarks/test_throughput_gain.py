"""Network throughput: sequential polling vs concurrent FDMA.

Sec. 1 / 6.3: the recto-piezo design "enables doubling the network
throughput through concurrent transmissions and collision decoding."
This bench measures both MACs end to end at the waveform level:

* TDMA baseline — each node polled in its own slot;
* concurrent FDMA — one multi-tone round carrying both replies,
  separated by the collision decoder.

The throughput accounting uses the same airtime model for both schemes,
and the concurrent gain is discounted by the measured decode success
ratio, so collision-decoding losses count against the claim.
"""

import numpy as np

from repro.acoustics import POOL_A, Position
from repro.core import PABNetwork
from repro.core.experiment import ExperimentTable
from repro.dsp.packets import CONCURRENT_PREAMBLES, PacketFormat
from repro.net.messages import Command, Query
from repro.net.tdma import compare_throughput, slot_timing
from repro.node.node import PABNode
from repro.piezo import Transducer

from conftest import run_once

#: Placements where both nodes have workable channels.
ROUNDS = (
    (Position(1.7, 1.9, 0.7), Position(2.1, 1.1, 0.7)),
    (Position(1.5, 2.0, 0.6), Position(1.8, 1.2, 0.6)),
    (Position(2.0, 2.1, 0.6), Position(1.4, 1.1, 0.6)),
)


def run_rounds():
    outcomes = []
    for pos1, pos2 in ROUNDS:
        net = PABNetwork(
            POOL_A,
            Position(0.5, 1.5, 0.6),
            Position(1.0, 0.8, 0.6),
            projector_transducer_factory=Transducer.from_cylinder_design,
            drive_voltage_v=200.0,
        )
        for i, (freq, pos) in enumerate([(15_000.0, pos1), (18_000.0, pos2)]):
            node = PABNode(address=i + 1, channel_frequencies_hz=(freq,))
            node.firmware.config.uplink_format = PacketFormat(
                preamble=CONCURRENT_PREAMBLES[i]
            )
            net.add_node(node, pos)
        result = net.run_concurrent_round(
            [
                Query(destination=1, command=Command.PING),
                Query(destination=2, command=Command.PING),
            ]
        )
        outcomes.extend(o.success for o in result.outcomes)
    return outcomes


def test_throughput_gain(benchmark, report):
    outcomes = run_once(benchmark, run_rounds)
    success_ratio = float(np.mean(outcomes))

    comparison = compare_throughput(
        2, payload_bytes=1, bitrate=1_000.0, fdma_success_ratio=success_ratio
    )
    slot = slot_timing(1, 1_000.0)

    # Shape claims:
    # 1. The collision decoder recovers a substantial fraction of the
    #    concurrent replies at these placements.
    assert success_ratio >= 0.5
    # 2. Net of decoding losses, concurrency still beats sequential
    #    polling (the paper: ~2x with both replies decodable).
    assert comparison.speedup > 1.0
    # 3. With perfect decoding, the gain is exactly the channel count.
    ideal = compare_throughput(2, payload_bytes=1, bitrate=1_000.0)
    assert ideal.speedup == 2.0

    table = ExperimentTable(
        title="Network throughput: TDMA polling vs concurrent FDMA",
        columns=("quantity", "value"),
    )
    table.add_row("slot airtime (s)", slot.total_s)
    table.add_row("concurrent decode ratio", success_ratio)
    table.add_row("TDMA goodput (bps)", comparison.tdma_bps)
    table.add_row("FDMA goodput (bps)", comparison.fdma_bps)
    table.add_row("measured speedup", comparison.speedup)
    table.add_row("ideal speedup", ideal.speedup)
    report(table, "throughput_gain.csv")
