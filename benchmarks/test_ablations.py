"""Ablations of the paper's design choices.

Each test removes one design element the paper argues for and shows the
system degrades in the predicted direction:

1. matched vs unmatched harvesting (Sec. 3.2),
2. air-backed vs fully-potted transducer (Sec. 4.1),
3. FM0 + ML decoding vs naive OOK slicing (Sec. 3.2),
4. zero-forcing collision decoding vs plain per-channel filtering
   (Sec. 3.3.2).
"""

import numpy as np
import pytest

from repro.circuits import EnergyHarvester, MultiStageRectifier
from repro.core.experiment import ExperimentTable
from repro.dsp.fm0 import fm0_encode, fm0_ml_decode
from repro.dsp.metrics import bit_error_rate, sinr_db
from repro.dsp.mimo import mimo_equalize
from repro.piezo import Transducer

from conftest import run_once


# ---------------------------------------------------------------------------
# 1. Matched vs unmatched harvesting
# ---------------------------------------------------------------------------

def run_matching_ablation():
    transducer = Transducer.from_cylinder_design()
    f0 = transducer.resonance_hz
    matched = EnergyHarvester(transducer, design_frequency_hz=f0)
    pressure = matched.calibrate_pressure_for_peak(4.0)

    # "Unmatched": wire the rectifier straight to the piezo.  The power
    # delivered is the available power times the power-wave mismatch
    # between the rectifier's input resistance and the piezo source.
    from repro.circuits.elements import mismatch_power_fraction

    rectifier = MultiStageRectifier()
    z_s = transducer.impedance(f0)
    raw_fraction = mismatch_power_fraction(
        complex(rectifier.input_resistance_ohm), z_s
    )
    p_matched = matched.operating_point(pressure, f0).delivered_power_w
    p_unmatched = transducer.available_power_w(pressure, f0) * raw_fraction
    return p_matched, p_unmatched


def test_ablation_matching(benchmark, report):
    p_matched, p_unmatched = run_once(benchmark, run_matching_ablation)
    # Sec. 3.2: the matching network maximises power transfer; removing
    # it costs several-fold harvested power at the operating point.
    assert p_matched > 2.5 * p_unmatched
    table = ExperimentTable(
        title="Ablation: impedance matching (harvested power)",
        columns=("design", "delivered_power_uw"),
    )
    table.add_row("matched (recto-piezo)", float(p_matched * 1e6))
    table.add_row("unmatched", float(p_unmatched * 1e6))
    report(table, "ablation_matching.csv")


# ---------------------------------------------------------------------------
# 2. Air-backed vs fully-potted transducer
# ---------------------------------------------------------------------------

def run_backing_ablation():
    air_backed = Transducer.from_cylinder_design()
    # Fully potted: polyurethane fills the bore, loading the radial mode.
    # The paper observed poorer sensitivity and harvesting; modelled as
    # extra damping (lower Q), lost coupling, and a receive-sensitivity
    # derating (the loaded wall moves less per pascal).
    potted = Transducer.from_cylinder_design(ocv_db=-184.0)

    results = {}
    for name, transducer in (("air-backed", air_backed), ("fully potted", potted)):
        harvester = EnergyHarvester(
            transducer, design_frequency_hz=transducer.resonance_hz
        )
        op = harvester.operating_point(400.0, transducer.resonance_hz)
        results[name] = (op.rectified_voltage_v, op.dc_power_w)
    return results


def test_ablation_backing(benchmark, report):
    results = run_once(benchmark, run_backing_ablation)
    # Sec. 4.1: "these designs had poorer sensitivity and energy
    # harvesting efficiency than air-backed transducers."
    assert results["air-backed"][0] > results["fully potted"][0]
    assert results["air-backed"][1] > 1.5 * results["fully potted"][1]
    table = ExperimentTable(
        title="Ablation: transducer backing (at 400 Pa incident)",
        columns=("design", "rectified_v", "dc_power_uw"),
    )
    for name, (volts, power) in results.items():
        table.add_row(name, float(volts), float(power * 1e6))
    report(table, "ablation_backing.csv")


# ---------------------------------------------------------------------------
# 3. FM0 + ML decoding vs naive OOK slicing
# ---------------------------------------------------------------------------

def run_linecode_ablation(snr_db_value=1.0, n_bits=40_000, seed=3):
    rng = np.random.default_rng(seed)
    sigma = 1.0 / np.sqrt(10.0 ** (snr_db_value / 10.0))
    bits = rng.integers(0, 2, n_bits)
    chips = fm0_encode(bits) * 2.0 - 1.0
    noisy = chips + rng.normal(0, sigma, len(chips))

    # The paper's ML decoder exploits FM0's memory (the boundary
    # inversion couples adjacent bits); the ablation replaces it with
    # independent hard chip decisions.
    from repro.dsp.fm0 import fm0_decode_chips

    ml_ber = bit_error_rate(fm0_ml_decode(noisy), bits)
    hard_ber = bit_error_rate(
        fm0_decode_chips((noisy > 0).astype(float)), bits
    )
    return ml_ber, hard_ber


def test_ablation_linecode(benchmark, report):
    ml_ber, hard_ber = run_once(benchmark, run_linecode_ablation)
    # The sequence (Viterbi) decoder clearly beats per-chip slicing.
    assert ml_ber < 0.7 * hard_ber
    table = ExperimentTable(
        title="Ablation: FM0 decoder at 1 dB chip SNR",
        columns=("scheme", "ber"),
    )
    table.add_row("ML / Viterbi (paper)", float(ml_ber))
    table.add_row("hard chip decisions", float(hard_ber))
    report(table, "ablation_linecode.csv")


# ---------------------------------------------------------------------------
# 4. Collision decoding vs plain per-channel filtering
# ---------------------------------------------------------------------------

def run_collision_ablation(seed=5, n=600, train=80):
    """Synthetic two-node collision with a realistic coupling matrix."""
    rng = np.random.default_rng(seed)
    # Pseudorandom training prefixes (as real preambles are) followed by
    # random payload chips.
    x = rng.choice([-1.0, 1.0], size=(2, n))
    # Strong cross-coupling: backscatter is frequency-agnostic, so the
    # interferer arrives at a comparable level (Sec. 3.3.2).
    h = np.array([[1.0, 0.8], [0.7, 0.9]])
    y = h @ x + rng.normal(0, 0.08, (2, n))

    # "Filtering only": take each channel's stream as-is.
    sinr_filtered = [sinr_db(y[k], x[k]) for k in range(2)]
    # Collision decoding.
    separated = mimo_equalize(y, x[:, :train], taps=5)
    sinr_decoded = [sinr_db(separated[k], x[k]) for k in range(2)]
    return sinr_filtered, sinr_decoded


def test_ablation_collision_decoding(benchmark, report):
    sinr_filtered, sinr_decoded = run_once(benchmark, run_collision_ablation)
    # Sec. 6.3: before projection the SINR is too low to decode; the
    # paper's receiver lifts it above the threshold.
    for before, after in zip(sinr_filtered, sinr_decoded):
        assert before < 3.0
        assert after > before + 5.0
        assert after > 3.0
    table = ExperimentTable(
        title="Ablation: collision handling",
        columns=("node", "filter_only_sinr_db", "zf_decode_sinr_db"),
    )
    for k in range(2):
        table.add_row(k + 1, float(sinr_filtered[k]), float(sinr_decoded[k]))
    report(table, "ablation_collision.csv")
