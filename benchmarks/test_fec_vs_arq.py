"""FEC vs ARQ: repairing errors forward vs retransmitting.

The paper's link recovers from corruption by retransmission (Sec. 5.1b).
At backscatter rates a retransmission costs a full slot, so this
extension experiment asks when forward error correction (Hamming(7,4) +
interleaving, `repro.dsp.coding`) pays for its fixed 7/4 airtime
overhead.

Chip-level Monte Carlo across channel BERs: expected airtime (in units
of one uncoded frame) to deliver a CRC-clean 16-byte payload.
"""

import numpy as np

from repro.core.experiment import ExperimentTable
from repro.dsp.coding import coded_length, protect, recover

from conftest import run_once

PAYLOAD_BITS = 128
CHANNEL_BERS = (1e-4, 1e-3, 3e-3, 0.01, 0.03)
TRIALS = 300


def deliver_uncoded(rng, ber, max_attempts=20):
    """Attempts until an error-free frame (ARQ on CRC failure)."""
    for attempt in range(1, max_attempts + 1):
        errors = rng.random(PAYLOAD_BITS) < ber
        if not np.any(errors):
            return attempt
    return max_attempts


def deliver_coded(rng, ber, max_attempts=20):
    """Attempts until the FEC-decoded frame is error-free."""
    data = rng.integers(0, 2, PAYLOAD_BITS).astype(np.int8)
    channel_bits = coded_length(PAYLOAD_BITS)
    for attempt in range(1, max_attempts + 1):
        tx = protect(data)
        flips = (rng.random(channel_bits) < ber).astype(np.int8)
        decoded, _ = recover(tx ^ flips, data_bits=PAYLOAD_BITS)
        if np.array_equal(decoded, data):
            return attempt
    return max_attempts


def run_comparison():
    rng = np.random.default_rng(0)
    overhead = coded_length(PAYLOAD_BITS) / PAYLOAD_BITS
    table = ExperimentTable(
        title="FEC vs ARQ: expected airtime per delivered frame",
        columns=("channel_ber", "arq_airtime", "fec_airtime", "fec_wins"),
    )
    rows = []
    for ber in CHANNEL_BERS:
        arq = np.mean([deliver_uncoded(rng, ber) for _ in range(TRIALS)])
        fec = overhead * np.mean(
            [deliver_coded(rng, ber) for _ in range(TRIALS)]
        )
        rows.append((ber, float(arq), float(fec)))
        table.add_row(float(ber), float(arq), float(fec), fec < arq)
    return table, rows, overhead


def test_fec_vs_arq(benchmark, report):
    table, rows, overhead = run_once(benchmark, run_comparison)

    by_ber = {ber: (arq, fec) for ber, arq, fec in rows}
    # Shape claims:
    # 1. At very low BER, plain ARQ wins (FEC pays its overhead for
    #    nothing).
    arq, fec = by_ber[1e-4]
    assert arq < fec
    # 2. At moderate BER, FEC wins: single-bit errors are repaired
    #    without a retransmission round trip.
    arq, fec = by_ber[0.01]
    assert fec < arq
    # 3. The crossover is monotone: once FEC wins it keeps winning as the
    #    channel worsens, until both schemes saturate.
    advantages = [arq - fec for _ber, arq, fec in rows]
    first_win = next(i for i, a in enumerate(advantages) if a > 0)
    assert all(a > 0 for a in advantages[first_win:])

    report(table, "fec_vs_arq.csv")
