"""Fig. 2 — Received and demodulated backscatter signal.

Paper: the projector starts transmitting at t ~ 2.2 s (the demodulated
envelope jumps to a constant level), and at t ~ 2.8 s the node starts
backscattering, after which the envelope alternates between two levels at
the 100 ms switching period.  The backscatter modulation is much weaker
than the carrier step (longer path + lossy reflection).
"""

import numpy as np

from repro.acoustics import POOL_A, Position
from repro.core import BackscatterLink, Projector
from repro.core.experiment import ExperimentTable
from repro.node.node import PABNode
from repro.piezo import Transducer

from conftest import run_once


def run_demo():
    transducer = Transducer.from_cylinder_design()
    f = transducer.resonance_hz
    projector = Projector(transducer=transducer, drive_voltage_v=50.0, carrier_hz=f)
    node = PABNode(address=7, channel_frequencies_hz=(f,))
    link = BackscatterLink(
        POOL_A,
        projector,
        Position(0.5, 1.5, 0.6),
        node,
        Position(1.5, 1.5, 0.6),
        Position(1.0, 0.8, 0.6),
    )
    node.force_power(True)
    # Paper timing: carrier on at 2.2 s, backscatter from 2.8 s, 100 ms
    # switching (5 Hz reflective rate -> 10 Hz level alternation).
    demo = link.switching_demo(
        silence_s=2.2, carrier_only_s=0.6, switching_s=1.2, switch_rate_hz=5.0
    )
    return demo, link


def test_fig2_demodulated_signal(benchmark, report):
    demo, link = run_once(benchmark, run_demo)
    env = demo["envelope_pa"]
    fs = link.sample_rate

    t_on = demo["carrier_on_s"]
    t_bs = demo["backscatter_on_s"]
    silence = env[: int((t_on - 0.05) * fs)]
    carrier = env[int((t_on + 0.1) * fs) : int((t_bs - 0.05) * fs)]
    switching = env[int((t_bs + 0.1) * fs) :]

    # Shape claims from the figure:
    # 1. The envelope jumps to a constant level when the projector starts.
    assert np.mean(carrier) > 10.0 * (np.std(silence) + 1e-12)
    assert np.std(carrier) < 0.1 * np.mean(carrier)
    # 2. Backscatter adds a *two-level* alternation.
    assert np.std(switching) > 2.0 * np.std(carrier)
    # 3. The modulation is weaker than the carrier step (lossy, longer path).
    high = np.percentile(switching, 90)
    low = np.percentile(switching, 10)
    assert (high - low) < np.mean(carrier)

    table = ExperimentTable(
        title="Fig. 2: demodulated envelope segments",
        columns=("segment", "mean_pa", "std_pa"),
    )
    table.add_row("silence", float(np.mean(silence)), float(np.std(silence)))
    table.add_row("carrier only", float(np.mean(carrier)), float(np.std(carrier)))
    table.add_row("backscattering", float(np.mean(switching)), float(np.std(switching)))
    table.add_row("mod high level", high, 0.0)
    table.add_row("mod low level", low, 0.0)
    report(table, "fig2_demodulated_signal.csv")
