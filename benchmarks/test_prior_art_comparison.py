"""Prior art: PAB vs battery-free *active* acoustic beacons.

Sec. 2: "all existing systems communicate by generating their own
acoustic carriers, which requires multiple orders of magnitude more
energy than backscatter ... their average throughput is limited to few
to tens of bits per second.  PAB ... boosts the network throughput by
two to three orders of magnitude."

The comparison model: both node classes harvest the same acoustic power
budget.  The beacon node must bank energy until it can afford to
*generate* a carrier (watts-scale transmit power, as the paper notes
even low-power acoustic transmitters need), so its duty cycle — and
hence average bitrate — collapses.  The PAB node only pays the
switch-toggling cost, so it communicates continuously at the link rate.
"""

import numpy as np

from repro.circuits import EnergyHarvester
from repro.core.experiment import ExperimentTable
from repro.node import NodePowerModel, PowerState
from repro.piezo import Transducer

from conftest import run_once

#: Electrical transmit power of a miniature active acoustic transmitter
#: [W].  The paper's Sec. 3.2: "Even low-power acoustic transmitters
#: typically require few hundred Watts"; fish-tag class beacons (their
#: ref [40]) manage ~100 mW-1 W bursts.  We take a charitable 0.5 W.
ACTIVE_TX_POWER_W = 0.5

#: Instantaneous bitrate of the active beacon while transmitting [bit/s].
ACTIVE_TX_BITRATE = 1_000.0


def run_comparison():
    transducer = Transducer.from_cylinder_design()
    harvester = EnergyHarvester(transducer)
    f0 = harvester.design_frequency_hz
    model = NodePowerModel()

    rows = []
    for pressure in (400.0, 700.0, 1_200.0):
        harvest_w = harvester.operating_point(pressure, f0).dc_power_w

        # Active beacon: harvest continuously, burst when the bank allows.
        # Average bitrate = bitrate * duty = bitrate * P_harvest / P_tx.
        duty = min(harvest_w / ACTIVE_TX_POWER_W, 1.0)
        beacon_bps = ACTIVE_TX_BITRATE * duty

        # PAB: backscatter costs ~540 uW; if the harvest covers it the
        # node runs at the link rate continuously, else it duty-cycles.
        pab_cost_w = model.power_w(PowerState.BACKSCATTER, bitrate=1_000.0)
        pab_duty = min(harvest_w / pab_cost_w, 1.0)
        pab_bps = 1_000.0 * pab_duty

        rows.append((pressure, harvest_w, beacon_bps, pab_bps))
    return rows


def test_prior_art_comparison(benchmark, report):
    rows = run_once(benchmark, run_comparison)

    table = ExperimentTable(
        title="PAB vs active battery-free beacons (equal harvest budget)",
        columns=("incident_pa", "harvest_uw", "beacon_bps", "pab_bps", "gain_x"),
    )
    for pressure, harvest_w, beacon_bps, pab_bps in rows:
        gain = pab_bps / beacon_bps if beacon_bps > 0 else float("inf")
        table.add_row(
            pressure, harvest_w * 1e6, beacon_bps, pab_bps, gain
        )
        # Sec. 2's claims:
        # 1. Beacons are limited to "few to tens of bits per second".
        assert beacon_bps < 50.0
        # 2. PAB's gain is "two to three orders of magnitude".
        assert 1e2 <= gain <= 5e3

    report(table, "prior_art_comparison.csv")
