"""Shared helpers for the figure-reproduction benchmarks.

Each benchmark regenerates one of the paper's evaluation figures/tables,
prints the same rows the paper plots, and writes a CSV under
``benchmarks/results/`` for inspection.  Timings come from
pytest-benchmark; the asserted *shape* properties (who wins, thresholds,
crossovers) are the reproduction claims.
"""

from __future__ import annotations

import os
import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_makereport(item, call):
    """Persist probe taps / post-mortems on failure (CI artifacts).

    Mirrors the hook in ``tests/conftest.py``: with ``PAB_ARTIFACT_DIR``
    set, a failing benchmark's captured signal state is written there
    for upload instead of vanishing with the job.
    """
    outcome = yield
    report = outcome.get_result()
    directory = os.environ.get("PAB_ARTIFACT_DIR")
    if not directory or report.when != "call" or not report.failed:
        return
    from repro.obs.probe import dump_failure_artifacts

    dump_failure_artifacts(directory, item.nodeid)


@pytest.fixture()
def report(capsys):
    """Print an ExperimentTable and persist it as CSV."""

    def _report(table, filename: str) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        (RESULTS_DIR / filename).write_text(table.to_csv())
        with capsys.disabled():
            print(table.to_text())

    return _report


def run_once(benchmark, fn, *args, **kwargs):
    """Run an expensive experiment exactly once under the benchmark timer."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
