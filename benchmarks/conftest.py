"""Shared helpers for the figure-reproduction benchmarks.

Each benchmark regenerates one of the paper's evaluation figures/tables,
prints the same rows the paper plots, and writes a CSV under
``benchmarks/results/`` for inspection.  Timings come from
pytest-benchmark; the asserted *shape* properties (who wins, thresholds,
crossovers) are the reproduction claims.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture()
def report(capsys):
    """Print an ExperimentTable and persist it as CSV."""

    def _report(table, filename: str) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        (RESULTS_DIR / filename).write_text(table.to_csv())
        with capsys.disabled():
            print(table.to_text())

    return _report


def run_once(benchmark, fn, *args, **kwargs):
    """Run an expensive experiment exactly once under the benchmark timer."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
