"""Headline claims (abstract / Sec. 1): 3 kbps links, 10 m power-up range,
and battery-free operation with orders-of-magnitude energy savings.
"""

import numpy as np
import pytest

from repro.acoustics import POOL_A, POOL_B, Position
from repro.core import BackscatterLink, Projector
from repro.core.experiment import ExperimentTable
from repro.net.messages import Command, Query
from repro.node import NodePowerModel, PowerState, PowerUpSimulator
from repro.node.node import PABNode
from repro.piezo import Transducer

from conftest import run_once


def run_headline():
    transducer = Transducer.from_cylinder_design()
    f = transducer.resonance_hz
    results = {}

    # 1. A 2.8-3 kbps link decodes packets at short range (abstract:
    #    "single-link throughputs up to 3 kbps").
    projector = Projector(transducer=transducer, drive_voltage_v=50.0, carrier_hz=f)
    node = PABNode(address=7, channel_frequencies_hz=(f,), bitrate=2_800.0)
    link = BackscatterLink(
        POOL_A, projector, Position(0.5, 1.5, 0.6),
        node, Position(1.3, 1.5, 0.6), Position(1.0, 0.9, 0.6),
    )
    results["link_3kbps"] = link.run_query(
        Query(destination=7, command=Command.PING)
    )

    # 2. 10 m power-up in the corridor pool at high drive (abstract:
    #    "power-up ranges up to 10 m").
    projector_350 = Projector(
        transducer=Transducer.from_cylinder_design(),
        drive_voltage_v=350.0,
        carrier_hz=f,
    )
    node10 = PABNode(address=2, channel_frequencies_hz=(f,))
    from repro.acoustics.channel import AcousticChannel

    channel = AcousticChannel(
        POOL_B,
        Position(0.2, 0.6, 0.5),
        Position(9.7, 0.6, 0.5),
        sample_rate=96_000.0,
        frequency_hz=f,
    )
    p_node = projector_350.source_pressure_pa * channel.incoherent_gain()
    sim = PowerUpSimulator(node10.active_mode.harvester)
    results["powerup_9_5m"] = sim.cold_start(p_node, f)

    # 3. Backscatter vs active transmission energy: the paper argues
    #    backscatter cuts transmit energy by orders of magnitude ("even
    #    low-power acoustic transmitters typically require few hundred
    #    Watts" -> here ~500 uW).
    model = NodePowerModel()
    results["tx_power_w"] = model.power_w(PowerState.BACKSCATTER, bitrate=1_000.0)
    results["active_modem_w"] = 100.0  # conservative active-acoustic figure

    return results


def test_headline_claims(benchmark, report):
    results = run_once(benchmark, run_headline)

    link = results["link_3kbps"]
    assert link.success, f"3 kbps link failed: {link.demod and link.demod.error}"
    assert link.ber == 0.0

    powerup = results["powerup_9_5m"]
    assert powerup.powered_up
    assert powerup.time_to_power_up_s < 60.0

    ratio = results["active_modem_w"] / results["tx_power_w"]
    assert ratio > 1e4  # >4 orders of magnitude

    table = ExperimentTable(
        title="Headline claims",
        columns=("claim", "value"),
    )
    table.add_row("2.8 kbps link decodes (BER)", float(link.ber))
    table.add_row("2.8 kbps link SNR (dB)", float(link.snr_db))
    table.add_row("9.5 m power-up at 350 V", float(powerup.time_to_power_up_s))
    table.add_row("backscatter power (uW)", results["tx_power_w"] * 1e6)
    table.add_row("vs active modem (x lower)", float(ratio))
    report(table, "headline_claims.csv")
