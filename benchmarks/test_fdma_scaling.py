"""FDMA scaling beyond two nodes (paper Sec. 8, "Transducer Tunability").

"In principle, the gain from FDMA scales as the number of nodes with
different resonance frequencies increases.  However, the tunability of a
PAB sensor will be limited by the efficiency and bandwidth of the
piezoelectric transducer design."

This bench runs a *three*-channel concurrent round (12/15/18 kHz on the
same cylinder) and measures both sides of that sentence: the aggregate
throughput gain, and the per-channel harvesting efficiency penalty for
channels pushed away from the geometric resonance.
"""

import numpy as np

from repro.acoustics import POOL_A, Position
from repro.circuits import EnergyHarvester
from repro.core import PABNetwork
from repro.core.experiment import ExperimentTable
from repro.dsp.packets import CONCURRENT_PREAMBLES, PacketFormat
from repro.net.messages import Command, Query
from repro.net.tdma import compare_throughput
from repro.node.node import PABNode
from repro.piezo import Transducer

from conftest import run_once

CHANNELS = (12_000.0, 15_000.0, 18_000.0)
POSITIONS = (
    Position(1.7, 1.9, 0.7),
    Position(2.1, 1.1, 0.7),
    Position(1.4, 1.5, 0.6),
)


def run_three_node_round():
    net = PABNetwork(
        POOL_A,
        Position(0.5, 1.5, 0.6),
        Position(1.0, 0.8, 0.6),
        projector_transducer_factory=Transducer.from_cylinder_design,
        drive_voltage_v=250.0,
    )
    for i, (freq, pos) in enumerate(zip(CHANNELS, POSITIONS)):
        node = PABNode(address=i + 1, channel_frequencies_hz=(freq,))
        node.firmware.config.uplink_format = PacketFormat(
            preamble=CONCURRENT_PREAMBLES[i]
        )
        net.add_node(node, pos)
    result = net.run_concurrent_round(
        [Query(destination=i + 1, command=Command.PING) for i in range(3)]
    )

    # Per-channel harvesting efficiency: the bandwidth tax on off-resonance
    # channels, relative to the geometric resonance.
    transducer = Transducer.from_cylinder_design()
    efficiency = {}
    h_centre = EnergyHarvester(
        transducer, design_frequency_hz=transducer.resonance_hz
    )
    pressure = h_centre.calibrate_pressure_for_peak(4.0)
    v_centre = h_centre.rectified_voltage(pressure, transducer.resonance_hz)
    for freq in CHANNELS:
        harvester = EnergyHarvester(transducer, design_frequency_hz=freq)
        efficiency[freq] = harvester.rectified_voltage(pressure, freq) / v_centre
    return result, efficiency


def test_fdma_scaling(benchmark, report):
    result, efficiency = run_once(benchmark, run_three_node_round)

    # Shape claims:
    # 1. All three recto-piezos power up and reply concurrently.
    assert all(o.response is not None for o in result.outcomes)
    # 2. Collision decoding separates a 3x3 collision: large projection
    #    gain on every stream, most streams decodable.
    gains = [
        o.sinr_after_db - o.sinr_before_db
        for o in result.outcomes
        if np.isfinite(o.sinr_before_db)
    ]
    assert len(gains) == 3
    assert all(g > 5.0 for g in gains)
    decoded = sum(o.success for o in result.outcomes)
    assert decoded >= 2
    # 3. The FDMA gain scales with the channel count (net of losses).
    comparison = compare_throughput(
        3, payload_bytes=1, bitrate=1_000.0, fdma_success_ratio=decoded / 3.0
    )
    assert comparison.speedup > 1.5
    # 4. The bandwidth tax is real: channels away from the geometric
    #    resonance harvest strictly less (Sec. 8's stated limit).
    assert efficiency[15_000.0] > efficiency[18_000.0]
    assert efficiency[15_000.0] > efficiency[12_000.0]

    table = ExperimentTable(
        title="FDMA scaling: three concurrent recto-piezo channels",
        columns=("channel_hz", "harvest_efficiency", "sinr_before_db",
                 "sinr_after_db", "decoded"),
    )
    for freq, outcome in zip(CHANNELS, result.outcomes):
        table.add_row(
            freq,
            float(efficiency[freq]),
            float(outcome.sinr_before_db),
            float(outcome.sinr_after_db),
            outcome.success,
        )
    report(table, "fdma_scaling.csv")
