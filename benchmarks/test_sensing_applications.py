"""Sec. 6.5 — Sensing applications: pH, temperature, pressure.

Paper: the node samples a pH probe through the ADC (verifying the
correct pH of 7), and an MS5837 digital sensor over I2C (verifying room
temperature and ~1 bar), embedding readings into backscatter packets.
Here the whole chain runs over the acoustic link: query -> harvest ->
sense -> backscatter -> decode.
"""

import pytest

from repro.acoustics import POOL_A, Position
from repro.core import BackscatterLink, Projector
from repro.core.experiment import ExperimentTable
from repro.net.messages import Command, Query, Response
from repro.node.node import Environment, PABNode
from repro.piezo import Transducer
from repro.sensing.pressure import ATMOSPHERE_MBAR, WaterColumn

from conftest import run_once

TRUE_PH = 7.0
TRUE_TEMP_C = 21.0
TRUE_DEPTH_M = 0.6


def run_sensing_round():
    transducer = Transducer.from_cylinder_design()
    f = transducer.resonance_hz
    environment = Environment(
        water=WaterColumn(depth_m=TRUE_DEPTH_M, temperature_c=TRUE_TEMP_C),
        true_ph=TRUE_PH,
    )
    readings = {}
    for command in (
        Command.READ_PH,
        Command.READ_PRESSURE_TEMP,
        Command.READ_TEMPERATURE,
    ):
        projector = Projector(
            transducer=transducer, drive_voltage_v=50.0, carrier_hz=f
        )
        node = PABNode(
            address=7, channel_frequencies_hz=(f,), environment=environment
        )
        link = BackscatterLink(
            POOL_A,
            projector,
            Position(0.5, 1.5, 0.6),
            node,
            Position(1.5, 1.5, 0.6),
            Position(1.0, 0.8, 0.6),
        )
        result = link.run_query(Query(destination=7, command=command))
        if result.success:
            readings[command] = Response.from_packet(
                result.demod.packet
            ).reading()
        else:
            readings[command] = None
    return readings


def test_sensing_applications(benchmark, report):
    readings = run_once(benchmark, run_sensing_round)

    # All three sensing queries complete over the air interface.
    assert all(r is not None for r in readings.values())

    # Paper verification point 1: "the MCU computes the correct pH (of 7)".
    ph = readings[Command.READ_PH].values[0]
    assert ph == pytest.approx(TRUE_PH, abs=0.15)

    # Paper verification point 2: correct room temperature and ~1 bar.
    pressure, temp_digital = readings[Command.READ_PRESSURE_TEMP].values
    expected_pressure = ATMOSPHERE_MBAR + 98.1 * TRUE_DEPTH_M
    assert pressure == pytest.approx(expected_pressure, rel=0.01)
    assert temp_digital == pytest.approx(TRUE_TEMP_C, abs=0.3)

    # Analog thermistor channel agrees with the digital sensor.
    temp_analog = readings[Command.READ_TEMPERATURE].values[0]
    assert temp_analog == pytest.approx(TRUE_TEMP_C, abs=1.0)

    table = ExperimentTable(
        title="Sec. 6.5: sensing over the acoustic interface",
        columns=("quantity", "true", "measured"),
    )
    table.add_row("pH", TRUE_PH, float(ph))
    table.add_row("pressure_mbar", float(expected_pressure), float(pressure))
    table.add_row("temperature_C (I2C)", TRUE_TEMP_C, float(temp_digital))
    table.add_row("temperature_C (ADC)", TRUE_TEMP_C, float(temp_analog))
    report(table, "sensing_applications.csv")
