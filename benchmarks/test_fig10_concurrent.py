"""Fig. 10 — Concurrent backscatter transmissions: SINR before/after projection.

Paper: with two recto-piezo nodes (15 and 18 kHz) replying concurrently,
the SINR before projection is low (< 3 dB across all locations — the
frequency-agnostic collision), while zero-forcing projection on the
orthogonal of the interferer's channel lifts the SINR above the
decodable threshold, with location-dependent values.
"""

import numpy as np

from repro.acoustics import POOL_A, Position
from repro.core import PABNetwork
from repro.core.experiment import ExperimentTable
from repro.dsp.packets import CONCURRENT_PREAMBLES, PacketFormat
from repro.net.messages import Command, Query
from repro.node.node import PABNode
from repro.piezo import Transducer

from conftest import run_once

#: Eight (node1, node2) placements, mirroring the paper's eight locations.
LOCATIONS = (
    (Position(1.5, 2.0, 0.6), Position(1.8, 1.2, 0.6)),
    (Position(1.2, 1.8, 0.6), Position(2.0, 1.5, 0.6)),
    (Position(1.8, 2.2, 0.6), Position(1.5, 1.0, 0.6)),
    (Position(2.2, 1.8, 0.6), Position(1.3, 1.3, 0.6)),
    (Position(1.4, 1.6, 0.5), Position(2.1, 1.1, 0.7)),
    (Position(1.7, 1.9, 0.7), Position(1.6, 1.3, 0.5)),
    (Position(2.0, 2.1, 0.6), Position(1.4, 1.1, 0.6)),
    (Position(1.3, 2.2, 0.6), Position(1.9, 1.4, 0.6)),
)


def run_locations():
    table = ExperimentTable(
        title="Fig. 10: SINR before/after projection (concurrent nodes)",
        columns=("location", "node", "sinr_before_db", "sinr_after_db", "decoded"),
    )
    gains = []
    for loc, (pos1, pos2) in enumerate(LOCATIONS, start=1):
        net = PABNetwork(
            POOL_A,
            Position(0.5, 1.5, 0.6),
            Position(1.0, 0.8, 0.6),
            projector_transducer_factory=Transducer.from_cylinder_design,
            drive_voltage_v=200.0,
        )
        for i, (freq, pos) in enumerate(
            [(15_000.0, pos1), (18_000.0, pos2)]
        ):
            node = PABNode(address=i + 1, channel_frequencies_hz=(freq,))
            node.firmware.config.uplink_format = PacketFormat(
                preamble=CONCURRENT_PREAMBLES[i]
            )
            net.add_node(node, pos)
        result = net.run_concurrent_round(
            [
                Query(destination=1, command=Command.PING),
                Query(destination=2, command=Command.PING),
            ]
        )
        for outcome in result.outcomes:
            table.add_row(
                loc,
                outcome.address,
                float(outcome.sinr_before_db),
                float(outcome.sinr_after_db),
                outcome.success,
            )
            if np.isfinite(outcome.sinr_before_db):
                gains.append(outcome.sinr_after_db - outcome.sinr_before_db)
    return table, gains


def test_fig10_concurrent_transmissions(benchmark, report):
    table, gains = run_once(benchmark, run_locations)
    before = [b for b in table.column("sinr_before_db") if np.isfinite(b)]
    after = [a for a in table.column("sinr_after_db") if np.isfinite(a)]

    # Shape claims:
    # 1. Both nodes produced measurable streams at every location.
    assert len(before) == 2 * len(LOCATIONS)
    # 2. Before projection, the collision keeps SINR low (< 3 dB).
    assert all(b < 3.0 for b in before)
    # 3. Projection boosts SINR significantly at every measurement.
    assert all(g > 3.0 for g in gains)
    assert np.mean(gains) > 8.0
    # 4. After projection, most streams are decodable (> 3 dB).
    assert np.mean([a > 3.0 for a in after]) >= 0.5
    # 5. SINR varies across locations (channel-dependent, as the paper
    #    remarks).
    assert np.std(after) > 1.0

    report(table, "fig10_concurrent.csv")
