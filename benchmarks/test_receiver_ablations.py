"""Receiver-algorithm ablations: what each DSP addition buys.

The paper sketches its decoder at block level; surviving a reverberant
tank required standard receiver machinery documented in DESIGN.md's
"Receiver algorithm inventory".  This bench switches each block off and
measures the damage on controlled scenarios, so the inventory's claims
are enforced, not just narrated:

1. chip equaliser on an ISI channel,
2. multi-candidate detection vs first-peak-only in echoes,
3. phase tracking vs fixed axis under relative Doppler,
4. Viterbi vs hard chip decisions at low SNR.
"""

import numpy as np

from repro.core.experiment import ExperimentTable
from repro.dsp import BackscatterDemodulator, Packet, fm0_encode
from repro.dsp.fm0 import fm0_decode_chips, fm0_expected_chips, fm0_ml_decode
from repro.dsp.metrics import bit_error_rate, snr_db
from repro.dsp.waveforms import upconvert_chips

from conftest import run_once

FS = 96_000.0
CARRIER = 15_000.0
BITRATE = 1_000.0


def synth(packet, *, echo_delay_chips=0.0, echo_gain=0.0, rotation_hz=0.0,
          noise=0.01, seed=0):
    """Carrier + backscatter with optional echo and relative rotation."""
    chips = fm0_encode(packet.to_bits()).astype(float)
    m = upconvert_chips(chips, 2 * BITRATE, FS)
    pad = np.zeros(int(0.01 * FS))
    m = np.concatenate([pad, m, pad])
    t = np.arange(len(m)) / FS
    carrier = np.sin(2 * np.pi * CARRIER * t)
    backscatter = 0.12 * m * np.sin(
        2 * np.pi * (CARRIER + rotation_hz) * t + 0.5
    )
    if echo_gain:
        delay = int(echo_delay_chips * FS / (2 * BITRATE))
        echo = np.concatenate([np.zeros(delay), backscatter[:-delay]])
        backscatter = backscatter + echo_gain * echo
    rng = np.random.default_rng(seed)
    return carrier + backscatter + rng.normal(0, noise, len(m))


def run_ablations():
    packet = Packet(address=7, payload=b"receiver study")
    results = {}

    # 1. Chip equaliser on a two-tap ISI channel (chip domain).
    rng = np.random.default_rng(0)
    chips = rng.choice([-1.0, 1.0], 600)
    received = chips + 0.6 * np.concatenate([[0.0], chips[:-1]])
    received = received + rng.normal(0, 0.1, len(received))
    eq = BackscatterDemodulator.equalize_chips(received, chips[:80])
    results["equalizer"] = (
        snr_db(received, chips), snr_db(eq, chips)
    )

    # 2. Multi-candidate detection in a strong-echo scenario.
    recording = synth(packet, echo_delay_chips=3.0, echo_gain=0.9, seed=1)
    dem = BackscatterDemodulator(CARRIER, BITRATE, FS)
    multi = dem.demodulate(recording, max_candidates=5).success
    single = dem.demodulate(recording, max_candidates=1).success
    results["candidates"] = (single, multi)

    # 3. Phase tracking under relative Doppler.
    rotating = synth(packet, rotation_hz=4.0, seed=2)
    baseband, _ = dem.to_baseband(rotating)
    template = upconvert_chips(
        fm0_expected_chips(packet.to_bits()), 2 * BITRATE, FS
    )

    def best_corr(sig):
        c = np.correlate(sig, template / np.linalg.norm(template), "valid")
        e = np.convolve(sig**2, np.ones(len(template)), "valid")
        return float(np.max(np.abs(c) / np.sqrt(np.maximum(e, 1e-30))))

    results["phase_tracking"] = (
        best_corr(dem.extract_modulation(baseband, track_phase=False)),
        best_corr(dem.extract_modulation(baseband, track_phase=True)),
    )

    # 4. Viterbi vs hard chip decisions at 1 dB chip SNR.
    rng = np.random.default_rng(3)
    bits = rng.integers(0, 2, 30_000)
    sigma = 1.0 / np.sqrt(10.0 ** (1.0 / 10.0))
    noisy = fm0_encode(bits) * 2.0 - 1.0 + rng.normal(0, sigma, 60_000)
    results["viterbi"] = (
        bit_error_rate(fm0_decode_chips((noisy > 0).astype(float)), bits),
        bit_error_rate(fm0_ml_decode(noisy), bits),
    )
    return results


def test_receiver_ablations(benchmark, report):
    results = run_once(benchmark, run_ablations)

    before_eq, after_eq = results["equalizer"]
    assert after_eq > before_eq + 5.0

    single, multi = results["candidates"]
    assert multi  # the full receiver decodes the echoed frame

    fixed, tracked = results["phase_tracking"]
    assert tracked > fixed + 0.2

    hard_ber, ml_ber = results["viterbi"]
    assert ml_ber < 0.7 * hard_ber

    table = ExperimentTable(
        title="Receiver ablations: each DSP block's contribution",
        columns=("block", "ablated", "enabled"),
    )
    table.add_row("chip equaliser (SNR dB)", before_eq, after_eq)
    table.add_row("multi-candidate detect (decoded)",
                  float(single), float(multi))
    table.add_row("phase tracking (corr peak)", fixed, tracked)
    table.add_row("Viterbi decoding (BER)", hard_ber, ml_ber)
    report(table, "receiver_ablations.csv")
