"""Fig. 7 — BER vs SNR of the backscatter decoder.

Paper: BER decreases with SNR; the decoder works from a minimum SNR of
~2 dB (typical for biphase/FM0), and BER reaches the 1e-5 floor above
~11 dB (the floor reflects the paper's <1e5-bit packets).
"""

import numpy as np

from repro.core.experiment import ber_snr_sweep

from conftest import run_once

SNR_GRID = [-2.0, 0.0, 2.0, 4.0, 6.0, 8.0, 10.0, 11.0, 12.0, 14.0, 16.0, 18.0]


def test_fig7_ber_snr(benchmark, report):
    table = run_once(
        benchmark, ber_snr_sweep, SNR_GRID, bits_per_point=120_000
    )
    snrs = table.column("snr_db")
    bers = table.column("ber")

    # Shape claims:
    # 1. BER is monotone non-increasing in SNR.
    assert all(b1 >= b2 for b1, b2 in zip(bers, bers[1:]))
    # 2. Decoding is hopeless well below the ~2 dB threshold...
    assert bers[snrs.index(-2.0)] > 0.05
    # 3. ...usable from ~2 dB (the paper's minimum decodable SNR)...
    assert bers[snrs.index(2.0)] < 0.1
    # 4. ...and at the 1e-5 floor by ~11-14 dB.
    assert bers[snrs.index(14.0)] <= 1.1e-5

    report(table, "fig7_ber_snr.csv")
