"""Fig. 3 — Recto-piezo: rectified voltage vs downlink frequency.

Paper: a node matched at 15 kHz peaks near 4 V around its resonance and
falls below the 2.5 V power-up threshold outside ~13.6-16.4 kHz; a second
recto-piezo matched at 18 kHz clears the threshold around 18 kHz over a
~1.5 kHz band.  The two responses are complementary, enabling FDMA.
"""

import numpy as np

from repro.circuits import EnergyHarvester
from repro.constants import PEAK_RECTIFIED_V, POWER_UP_THRESHOLD_V
from repro.core.experiment import ExperimentTable
from repro.piezo import Transducer

from conftest import run_once


def run_sweep():
    transducer = Transducer.from_cylinder_design()
    h15 = EnergyHarvester(transducer, design_frequency_hz=15_000.0)
    h18 = EnergyHarvester(transducer, design_frequency_hz=18_000.0)
    pressure = h15.calibrate_pressure_for_peak(PEAK_RECTIFIED_V)
    freqs = np.linspace(11_000.0, 21_000.0, 101)
    return {
        "freqs": freqs,
        "pressure": pressure,
        "v15": h15.rectified_voltage_curve(freqs, pressure),
        "v18": h18.rectified_voltage_curve(freqs, pressure),
        "band15": h15.usable_band(pressure, POWER_UP_THRESHOLD_V),
        "band18": h18.usable_band(pressure, POWER_UP_THRESHOLD_V),
    }


def test_fig3_rectopiezo(benchmark, report):
    data = run_once(benchmark, run_sweep)
    freqs, v15, v18 = data["freqs"], data["v15"], data["v18"]

    # Shape claims:
    # 1. The 15 kHz recto-piezo peaks near 15 kHz at ~4 V.
    peak15 = freqs[np.argmax(v15)]
    assert abs(peak15 - 15_000.0) < 700.0
    assert 3.5 < v15.max() < 5.5
    # 2. Matching at 18 kHz moves the peak to ~18 kHz.
    peak18 = freqs[np.argmax(v18)]
    assert abs(peak18 - 18_000.0) < 700.0
    # 3. A usable band exists around each channel, and neither channel's
    #    band swallows the other channel's centre (complementary
    #    responses).
    band15, band18 = data["band15"], data["band18"]
    assert band15 is not None and band18 is not None
    assert band15[0] < 15_000.0 < band15[1] < 18_000.0
    assert 15_000.0 < band18[0] < 18_000.0 < band18[1]
    # 4. Band around 15 kHz is of order 1.5-3 kHz (paper: 13.6-16.4 kHz).
    width15 = band15[1] - band15[0]
    assert 800.0 < width15 < 4_000.0
    # 5. Each channel dominates at its own frequency.
    i15 = np.argmin(np.abs(freqs - 15_000.0))
    i18 = np.argmin(np.abs(freqs - 18_000.0))
    assert v15[i15] > v18[i15]
    assert v18[i18] > v15[i18]

    table = ExperimentTable(
        title="Fig. 3: rectified voltage vs downlink frequency",
        columns=("frequency_hz", "v_rect_15k_match", "v_rect_18k_match"),
    )
    for f, a, b in zip(freqs[::5], v15[::5], v18[::5]):
        table.add_row(float(f), float(a), float(b))
    table.add_row(0.0, float(band15[0]), float(band15[1]))  # band markers
    table.add_row(1.0, float(band18[0]), float(band18[1]))
    report(table, "fig3_rectopiezo.csv")
