"""Fig. 9 — Maximum power-up distance vs transmit voltage.

Paper: in both pools the power-up range grows with the projector drive
voltage; the same drive reaches farther in the elongated Pool B, whose
corridor geometry focuses the projector's energy; ranges clamp at each
pool's extent (5 m reported for Pool A, 10 m for Pool B).
"""

import math

from repro.acoustics import POOL_A, POOL_B, Position
from repro.core import Projector
from repro.core.experiment import powerup_range_sweep
from repro.node.node import PABNode
from repro.piezo import Transducer

from conftest import run_once

VOLTAGES = [25.0, 50.0, 100.0, 150.0, 200.0, 250.0, 300.0, 350.0]


def diagonal_axis(tank, margin=0.2):
    """Endpoints along the tank's horizontal diagonal (Pool A's longest run)."""
    span = math.hypot(tank.length - 2 * margin, tank.width - 2 * margin)
    ux = (tank.length - 2 * margin) / span
    uy = (tank.width - 2 * margin) / span

    def axis(dist):
        if dist > span:
            raise ValueError("outside the tank")
        return (
            Position(margin, margin, tank.depth / 2),
            Position(margin + dist * ux, margin + dist * uy, tank.depth / 2),
        )

    return axis


def long_axis(tank, margin=0.2):
    """Endpoints along the tank's length (Pool B's corridor)."""

    def axis(dist):
        if margin + dist > tank.length - margin:
            raise ValueError("outside the tank")
        return (
            Position(margin, tank.width / 2, tank.depth / 2),
            Position(margin + dist, tank.width / 2, tank.depth / 2),
        )

    return axis


def run_sweeps():
    f = Transducer.from_cylinder_design().resonance_hz

    def node_factory():
        return PABNode(address=1, channel_frequencies_hz=(f,))

    def projector_factory(voltage):
        return Projector(
            transducer=Transducer.from_cylinder_design(),
            drive_voltage_v=voltage,
            carrier_hz=f,
        )

    table_a = powerup_range_sweep(
        POOL_A, VOLTAGES,
        node_factory=node_factory,
        projector_factory=projector_factory,
        axis_positions=diagonal_axis(POOL_A),
    )
    table_b = powerup_range_sweep(
        POOL_B, VOLTAGES,
        node_factory=node_factory,
        projector_factory=projector_factory,
        axis_positions=long_axis(POOL_B),
    )
    return table_a, table_b


def test_fig9_powerup_range(benchmark, report):
    table_a, table_b = run_once(benchmark, run_sweeps)
    dist_a = dict(zip(table_a.column("voltage_v"), table_a.column("max_distance_m")))
    dist_b = dict(zip(table_b.column("voltage_v"), table_b.column("max_distance_m")))

    # Shape claims:
    # 1. Range grows (weakly monotonically) with drive voltage in both pools.
    for dist in (dist_a, dist_b):
        values = [dist[v] for v in VOLTAGES]
        assert all(a <= b + 1e-9 for a, b in zip(values, values[1:]))
        assert values[-1] > values[0]
    # 2. Pool B out-ranges Pool A at the same mid-range drive.
    assert dist_b[100.0] > dist_a[100.0]
    # 3. High drive reaches the far end of Pool B (paper: up to 10 m) and
    #    Pool A saturates at its geometric extent (paper: 5 m).
    assert dist_b[350.0] > 8.0
    assert dist_a[350.0] > 3.5

    report(table_a, "fig9_powerup_pool_a.csv")
    report(table_b, "fig9_powerup_pool_b.csv")
