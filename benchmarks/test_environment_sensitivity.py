"""Deployment environments: how the link budget shifts beyond the tank.

Paper Sec. 8 ("Operation Environment"): "we would like to test and
deploy the technology in more complex environments such as rivers,
lakes, and oceans ... the mechanically fabricated transducers need to be
optimized for the corresponding environmental conditions."

This bench evaluates the narrowband uplink budget of the same hardware
across the library's deployment presets, quantifying the two effects the
presets model: ambient noise (quiet lake vs windy coastal ocean) and
absorption (fresh vs salt water).
"""

import numpy as np

from repro.acoustics import Position
from repro.acoustics.environments import ENVIRONMENTS
from repro.core import BackscatterLink, Projector
from repro.core.experiment import ExperimentTable
from repro.node.node import PABNode
from repro.piezo import Transducer

from conftest import run_once

DISTANCE_M = 5.0


def run_environments():
    transducer = Transducer.from_cylinder_design()
    f = transducer.resonance_hz
    budgets = {}
    for key, factory in ENVIRONMENTS.items():
        env = factory()
        geometry = env.geometry()
        # Open-water presets: place the link mid-volume; the tank preset
        # uses its own geometry.
        if env.tank is not None:
            p_pos = Position(0.3, geometry.width / 2, geometry.depth / 2)
            n_pos = Position(
                min(0.3 + DISTANCE_M, geometry.length - 0.3),
                geometry.width / 2,
                geometry.depth / 2,
            )
            h_pos = Position(1.0, geometry.width / 3, geometry.depth / 2)
        else:
            base = geometry.length / 2
            p_pos = Position(base, base, 50.0)
            n_pos = Position(base + DISTANCE_M, base, 50.0)
            h_pos = Position(base + 1.0, base + 1.0, 50.0)
        projector = Projector(
            transducer=transducer, drive_voltage_v=150.0, carrier_hz=f
        )
        node = PABNode(address=1, channel_frequencies_hz=(f,))
        link = BackscatterLink(
            geometry, projector, p_pos, node, n_pos, h_pos, noise=env.noise
        )
        budgets[key] = (env, link.budget())
    return budgets


def test_environment_sensitivity(benchmark, report):
    budgets = run_once(benchmark, run_environments)

    # Shape claims:
    # 1. Same hardware, same distance: the quiet lake gives the best
    #    predicted SNR; the noisy river the worst of the fresh sites.
    assert (
        budgets["lake"][1].predicted_snr_db
        > budgets["river"][1].predicted_snr_db
    )
    # 2. Salt water absorbs far more than fresh at 15 kHz.
    assert budgets["ocean"][0].absorption_db_per_km(15_000.0) > (
        5.0 * budgets["lake"][0].absorption_db_per_km(15_000.0)
    )
    # 3. The enclosed tank beats open water at equal distance (boundary
    #    gain), consistent with the paper testing there first.
    assert (
        budgets["tank"][1].incident_pressure_pa
        > budgets["lake"][1].incident_pressure_pa
    )

    table = ExperimentTable(
        title="Environment sensitivity of the link budget (5 m link)",
        columns=(
            "environment",
            "sound_speed_mps",
            "absorption_db_km",
            "noise_rms_pa",
            "predicted_snr_db",
        ),
    )
    for key, (env, budget) in budgets.items():
        table.add_row(
            env.name,
            env.sound_speed_mps,
            env.absorption_db_per_km(15_000.0),
            budget.noise_rms_pa,
            budget.predicted_snr_db,
        )
    report(table, "environment_sensitivity.csv")
