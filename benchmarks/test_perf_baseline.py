"""Perf baseline: per-stage timings of the PAB stack, seeding BENCH_obs.json.

This is the measurement substrate's own benchmark — the first entry in
the repo's performance trajectory.  It records:

1. **Canonical link transaction** — wall-clock of one full
   ``BackscatterLink.transact()`` with tracing disabled (the production
   hot path) and with tracing enabled, plus the per-stage breakdown
   from the enabled trace.
2. **No-op overhead** — the measured cost of a disabled-tracer span
   check, scaled by the spans-per-transaction count, asserted to be
   <5% of a transaction (the overhead policy in
   ``docs/OBSERVABILITY.md``; in practice it is orders of magnitude
   below the bound).
3. **A 10-node polling round** through the full
   :class:`~repro.net.reader.ReaderController` stack with metrics and
   event-log binding live.

Results append to ``BENCH_obs.json`` at the repo root so future perf
PRs can show their before/after honestly, and a CSV lands in
``benchmarks/results/`` alongside the figure reproductions.

Smoke mode (``OBS_SMOKE=1``, used by CI) cuts repetitions and swaps the
waveform links in the polling round for fast deterministic stubs.
"""

from __future__ import annotations

import json
import os
import pathlib
import statistics
from time import perf_counter

from conftest import run_once

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
BENCH_PATH = REPO_ROOT / "BENCH_obs.json"
SMOKE = os.environ.get("OBS_SMOKE") == "1"


def _canonical_link(tracer=None, metrics=None):
    from repro.acoustics import POOL_A, Position
    from repro.core import BackscatterLink, Projector
    from repro.node.node import PABNode
    from repro.piezo import Transducer

    transducer = Transducer.from_cylinder_design()
    f = transducer.resonance_hz
    projector = Projector(
        transducer=transducer, drive_voltage_v=50.0, carrier_hz=f
    )
    node = PABNode(address=7, channel_frequencies_hz=(f,), bitrate=1_000.0)
    return BackscatterLink(
        POOL_A, projector, Position(0.5, 1.5, 0.6),
        node, Position(1.5, 1.5, 0.6), Position(1.0, 0.8, 0.6),
        tracer=tracer, metrics=metrics,
    )


def _time_transactions(reps: int, tracer=None, metrics=None) -> list:
    from repro.net.messages import Command, Query

    times = []
    for _ in range(reps):
        link = _canonical_link(tracer=tracer, metrics=metrics)
        query = Query(destination=7, command=Command.PING)
        t0 = perf_counter()
        result = link.transact(query)
        times.append(perf_counter() - t0)
        assert result.success, "canonical transaction must decode"
    return times


def _noop_span_cost_s() -> float:
    """Per-call cost of a span on a disabled tracer (the hot-path tax)."""
    from repro.obs import Tracer

    tracer = Tracer(enabled=False)
    n = 20_000 if SMOKE else 200_000
    t0 = perf_counter()
    for _ in range(n):
        with tracer.span("noop", x=1):
            pass
    return (perf_counter() - t0) / n


def _polling_round(n_nodes: int):
    """One metered polling round; returns (seconds, reader, mode)."""
    from repro.net.messages import Command
    from repro.net.reader import ReaderController
    from repro.obs import MetricsRegistry

    if SMOKE:
        # Deterministic stub transports: the round still exercises the
        # MAC/health/metrics plumbing without waveform cost.
        class _StubResult:
            success = False
            demod = None

        def make_transact(addr):
            def transact(query):
                return _StubResult()
            return transact

        transports = {addr: make_transact(addr) for addr in range(1, n_nodes + 1)}
        mode = "stub"
    else:
        links = {
            addr: _canonical_link() for addr in range(1, n_nodes + 1)
        }
        for link in links.values():
            link.node.force_power(True)
        transports = {addr: link.transact for addr, link in links.items()}
        mode = "waveform"

    metrics = MetricsRegistry()
    reader = ReaderController(transports, max_retries=0, metrics=metrics)
    t0 = perf_counter()
    reader.poll_round(Command.PING)
    return perf_counter() - t0, reader, metrics, mode


def _append_bench(record: dict) -> None:
    history = []
    if BENCH_PATH.exists():
        try:
            history = json.loads(BENCH_PATH.read_text())
        except (ValueError, OSError):
            history = []
    if not isinstance(history, list):
        history = [history]
    history.append(record)
    BENCH_PATH.write_text(json.dumps(history, indent=2, sort_keys=True) + "\n")


def test_perf_baseline(benchmark, report):
    from repro.core.experiment import ExperimentTable
    from repro.core.link import BackscatterLink
    from repro.obs import MetricsRegistry, Tracer, use_tracer

    reps = 1 if SMOKE else 3

    # 1. Hot path: tracing disabled (the global tracer defaults to a
    # disabled one, so this is what every pre-existing caller pays).
    times_off = run_once(benchmark, _time_transactions, reps)
    mean_off = statistics.mean(times_off)

    # 2. Traced + metered run for the per-stage breakdown.
    tracer = Tracer()
    metrics = MetricsRegistry()
    with use_tracer(tracer):
        times_on = _time_transactions(reps, tracer=tracer, metrics=metrics)
    mean_on = statistics.mean(times_on)
    stages = tracer.stage_totals()
    for stage in BackscatterLink.STAGES:
        assert stage in stages, f"trace missing stage {stage}"

    # 3. Disabled-mode overhead: spans-per-transaction * no-op cost,
    # relative to the transaction itself.  The <5% acceptance bound is
    # generous by orders of magnitude; assert it anyway so a future
    # regression (e.g. work on the disabled path) fails loudly.
    spans_per_transaction = len(tracer.spans) / reps
    noop_cost = _noop_span_cost_s()
    disabled_overhead = spans_per_transaction * noop_cost / mean_off
    assert disabled_overhead < 0.05, (
        f"disabled tracing costs {disabled_overhead:.2%} of a transaction"
    )

    # 4. The 10-node polling round through the reader stack.
    round_s, reader, round_metrics, round_mode = _polling_round(10)
    assert round_metrics.value("pab_reader_rounds_total") == 1.0

    per_stage = {
        name: {
            "count": entry["count"] / reps,
            "total_s": entry["total_s"] / reps,
        }
        for name, entry in stages.items()
    }
    _append_bench({
        "benchmark": "obs_perf_baseline",
        "smoke": SMOKE,
        "reps": reps,
        "transact_disabled_s": mean_off,
        "transact_enabled_s": mean_on,
        "tracing_overhead_fraction": (mean_on - mean_off) / mean_off,
        "noop_span_cost_s": noop_cost,
        "spans_per_transaction": spans_per_transaction,
        "disabled_overhead_fraction": disabled_overhead,
        "per_stage_s": per_stage,
        "polling_round": {
            "nodes": 10,
            "mode": round_mode,
            "seconds": round_s,
            "attempts": round_metrics.value("pab_mac_attempts_total"),
        },
    })

    table = ExperimentTable(
        title="Perf baseline: per-stage timings (one transaction)",
        columns=("stage", "count", "total_s", "fraction"),
    )
    for name, entry in per_stage.items():
        table.add_row(
            name, entry["count"], entry["total_s"], entry["total_s"] / mean_on
        )
    table.add_row("transact_disabled", 1, mean_off, mean_off / mean_on)
    table.add_row(f"polling_round_10x_{round_mode}", 1, round_s, float("nan"))
    report(table, "perf_baseline.csv")
