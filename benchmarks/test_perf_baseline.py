"""Perf baseline: per-stage timings of the PAB stack, seeding BENCH_obs.json.

This is the measurement substrate's own benchmark — the first entry in
the repo's performance trajectory.  It records:

1. **Canonical link transaction** — wall-clock of one full
   ``BackscatterLink.transact()`` with tracing disabled (the production
   hot path) and with tracing enabled, plus the per-stage breakdown
   from the enabled trace.
2. **No-op overhead** — the measured cost of a disabled-tracer span
   check *plus* a disabled-probe ``wants()`` check *plus* a
   disabled-ledger firmware hook *plus* a disabled-telemetry-bus
   publish *plus* a disabled-profiler site check *plus* a disabled
   anomaly-analytics round gate, scaled by the per-transaction
   instrumentation-site counts, asserted to be <5% of a transaction
   (the overhead policy in ``docs/OBSERVABILITY.md``; in practice it
   is orders of magnitude below the bound).
3. **A 10-node polling round** through the full
   :class:`~repro.net.reader.ReaderController` stack with metrics and
   event-log binding live.

Results append to ``BENCH_obs.json`` at the repo root so future perf
PRs can show their before/after honestly, and a CSV lands in
``benchmarks/results/`` alongside the figure reproductions.  Before
appending, the run is compared against the last committed record with
the same smoke mode: any stage slower by >25% draws a *warning* (not a
failure — CI machines are noisy), and every run appends a row per
stage to ``benchmarks/results/perf_trend.csv`` so the trajectory is
greppable.

Smoke mode (``OBS_SMOKE=1``, used by CI) cuts repetitions and swaps the
waveform links in the polling round for fast deterministic stubs.
"""

from __future__ import annotations

import csv
import json
import os
import pathlib
import statistics
import warnings
from time import perf_counter

from conftest import RESULTS_DIR, run_once

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
BENCH_PATH = REPO_ROOT / "BENCH_obs.json"
TREND_PATH = RESULTS_DIR / "perf_trend.csv"
SMOKE = os.environ.get("OBS_SMOKE") == "1"

#: Per-stage slowdown vs the committed baseline that draws a warning.
REGRESSION_WARN_FRACTION = 0.25


def _canonical_link(tracer=None, metrics=None):
    from repro.acoustics import POOL_A, Position
    from repro.core import BackscatterLink, Projector
    from repro.node.node import PABNode
    from repro.piezo import Transducer

    transducer = Transducer.from_cylinder_design()
    f = transducer.resonance_hz
    projector = Projector(
        transducer=transducer, drive_voltage_v=50.0, carrier_hz=f
    )
    node = PABNode(address=7, channel_frequencies_hz=(f,), bitrate=1_000.0)
    return BackscatterLink(
        POOL_A, projector, Position(0.5, 1.5, 0.6),
        node, Position(1.5, 1.5, 0.6), Position(1.0, 0.8, 0.6),
        tracer=tracer, metrics=metrics,
    )


def _time_transactions(reps: int, tracer=None, metrics=None) -> list:
    from repro.net.messages import Command, Query

    times = []
    for _ in range(reps):
        link = _canonical_link(tracer=tracer, metrics=metrics)
        query = Query(destination=7, command=Command.PING)
        t0 = perf_counter()
        result = link.transact(query)
        times.append(perf_counter() - t0)
        assert result.success, "canonical transaction must decode"
    return times


def _noop_span_cost_s() -> float:
    """Per-call cost of a span on a disabled tracer (the hot-path tax)."""
    from repro.obs import Tracer

    tracer = Tracer(enabled=False)
    n = 20_000 if SMOKE else 200_000
    t0 = perf_counter()
    for _ in range(n):
        with tracer.span("noop", x=1):
            pass
    return (perf_counter() - t0) / n


def _polling_round(n_nodes: int):
    """One metered polling round; returns (seconds, reader, mode)."""
    from repro.net.messages import Command
    from repro.net.reader import ReaderController
    from repro.obs import MetricsRegistry

    if SMOKE:
        # Deterministic stub transports: the round still exercises the
        # MAC/health/metrics plumbing without waveform cost.
        class _StubResult:
            success = False
            demod = None

        def make_transact(addr):
            def transact(query):
                return _StubResult()
            return transact

        transports = {addr: make_transact(addr) for addr in range(1, n_nodes + 1)}
        mode = "stub"
    else:
        links = {
            addr: _canonical_link() for addr in range(1, n_nodes + 1)
        }
        for link in links.values():
            link.node.force_power(True)
        transports = {addr: link.transact for addr, link in links.items()}
        mode = "waveform"

    metrics = MetricsRegistry()
    reader = ReaderController(transports, max_retries=0, metrics=metrics)
    t0 = perf_counter()
    reader.poll_round(Command.PING)
    return perf_counter() - t0, reader, metrics, mode


def _noop_probe_cost_s() -> float:
    """Per-call cost of a disabled-probe ``wants()`` check."""
    from repro.obs import ProbeRegistry

    probes = ProbeRegistry(enabled=False)
    n = 20_000 if SMOKE else 200_000
    t0 = perf_counter()
    for _ in range(n):
        probes.wants("link.node")
    return (perf_counter() - t0) / n


#: Disabled-ledger check sites a transaction hits: firmware boot,
#: downlink-decode exit, query->RESPONDING, response_sent.
LEDGER_SITES_PER_TRANSACTION = 4

#: Disabled-bus sites a transaction hits: the event-log record check
#: and the tracer span-close check.  (The reader's per-round publish
#: block is guarded by one more ``bus.enabled`` check per round, which
#: this count dominates at >=1 transaction per round.)
BUS_SITES_PER_TRANSACTION = 2


def _noop_bus_cost_s() -> float:
    """Per-call cost of publishing to the disabled telemetry bus.

    The global bus ships disabled; ``publish()`` short-circuits on one
    attribute check.  Measuring the full call (not just the check) is
    the conservative bound on what producers pay per site.
    """
    from repro.obs import get_bus

    bus = get_bus()
    assert not bus.enabled, "perf baseline requires the default disabled bus"
    n = 20_000 if SMOKE else 200_000
    t0 = perf_counter()
    for _ in range(n):
        bus.publish("event", t=0.0, node=1, source="bench", data=None)
    return (perf_counter() - t0) / n


#: Disabled-profiler check sites a transaction can hit: one
#: ``get_profiler().enabled`` lookup per cache-miss compute (up to the
#: eight named caches), dominating the one-per-round checks in the
#: reader's round hook and the fleet engine.
PROFILER_SITES_PER_TRANSACTION = 8

#: Anomaly-analytics check sites per transaction: the reader's
#: ``analytics is None``/``analytics.enabled`` gate runs once per round,
#: so one per transaction is the conservative (>=1 transaction/round)
#: bound.
ANALYTICS_SITES_PER_TRANSACTION = 1


def _noop_profiler_cost_s() -> float:
    """Per-call cost of the disabled-profiler check at a producer site.

    The global profiler ships disabled; every site does a
    ``get_profiler()`` lookup plus one attribute check before bailing.
    """
    from repro.obs import get_profiler

    assert not get_profiler().enabled, (
        "perf baseline requires the default disabled profiler"
    )
    n = 20_000 if SMOKE else 200_000
    t0 = perf_counter()
    for _ in range(n):
        if get_profiler().enabled:
            raise AssertionError("unreachable")
    return (perf_counter() - t0) / n


def _noop_analytics_cost_s() -> float:
    """Per-call cost of the reader's disabled-analytics round gate.

    Campaigns without an :class:`~repro.obs.analytics.AnomalyMonitor`
    pay one ``is None`` check per round; campaigns with a disabled
    monitor pay one extra attribute check.  Measure the latter — the
    more expensive of the two short-circuits.
    """
    from repro.obs import AnomalyMonitor

    analytics = AnomalyMonitor(enabled=False)
    n = 20_000 if SMOKE else 200_000
    t0 = perf_counter()
    for _ in range(n):
        if analytics is not None and analytics.enabled:
            raise AssertionError("unreachable")
    return (perf_counter() - t0) / n


def _noop_ledger_cost_s() -> float:
    """Per-call cost of the no-ledger firmware hook (an ``is None``)."""
    from repro.net.addresses import NodeAddress
    from repro.node.firmware import FirmwareConfig, NodeFirmware

    firmware = NodeFirmware(FirmwareConfig(address=NodeAddress(1)))
    n = 20_000 if SMOKE else 200_000
    t0 = perf_counter()
    for _ in range(n):
        firmware._sync_ledger()
    return (perf_counter() - t0) / n


def _load_history() -> list:
    if not BENCH_PATH.exists():
        return []
    try:
        history = json.loads(BENCH_PATH.read_text())
    except (ValueError, OSError):
        return []
    return history if isinstance(history, list) else [history]


def _append_bench(record: dict) -> None:
    history = _load_history()
    history.append(record)
    BENCH_PATH.write_text(json.dumps(history, indent=2, sort_keys=True) + "\n")


def _baseline_record(history: list, smoke: bool):
    """The most recent committed record with the same smoke mode."""
    for record in reversed(history):
        if record.get("benchmark") == "obs_perf_baseline" and (
            bool(record.get("smoke")) == smoke
        ):
            return record
    return None


def _warn_regressions(baseline, per_stage: dict) -> list:
    """Warn (never fail) on >25% per-stage slowdowns vs the baseline.

    Timing on shared CI machines is noisy, so a regression here is a
    prompt to look at the trend history, not a red build.
    """
    flagged = []
    if baseline is None:
        return flagged
    base_stages = baseline.get("per_stage_s", {})
    for name, entry in per_stage.items():
        base = base_stages.get(name, {}).get("total_s")
        if not base or base <= 0:
            continue
        slowdown = entry["total_s"] / base - 1.0
        if slowdown > REGRESSION_WARN_FRACTION:
            flagged.append((name, slowdown))
            warnings.warn(
                f"perf regression: stage {name} is {slowdown:.0%} slower "
                f"than the committed baseline ({entry['total_s']:.4g}s vs "
                f"{base:.4g}s); see {TREND_PATH.name}",
                stacklevel=2,
            )
    return flagged


def _append_trend(run_index: int, smoke: bool, per_stage: dict,
                  mean_off: float, mean_on: float) -> None:
    """One row per stage into the cumulative trend CSV."""
    RESULTS_DIR.mkdir(exist_ok=True)
    new_file = not TREND_PATH.exists()
    with TREND_PATH.open("a", newline="") as fh:
        writer = csv.writer(fh)
        if new_file:
            writer.writerow(
                ("run", "smoke", "stage", "count", "total_s",
                 "transact_disabled_s", "transact_enabled_s")
            )
        for name in sorted(per_stage):
            entry = per_stage[name]
            writer.writerow(
                (run_index, int(smoke), name, entry["count"],
                 f"{entry['total_s']:.6g}", f"{mean_off:.6g}",
                 f"{mean_on:.6g}")
            )


def test_perf_baseline(benchmark, report):
    from repro.core.experiment import ExperimentTable
    from repro.core.link import BackscatterLink
    from repro.obs import (
        MetricsRegistry, ProbeRegistry, Tracer, use_probes, use_tracer,
    )

    reps = 1 if SMOKE else 3

    # The committed history, read *before* this run appends to it: the
    # regression check compares against what the repo shipped with.
    baseline = _baseline_record(_load_history(), SMOKE)

    # 1. Hot path: tracing disabled (the global tracer defaults to a
    # disabled one, so this is what every pre-existing caller pays).
    times_off = run_once(benchmark, _time_transactions, reps)
    mean_off = statistics.mean(times_off)

    # 2. Traced + metered + probed run for the per-stage breakdown
    # (probes on to count the taps a fully instrumented exchange captures).
    tracer = Tracer()
    metrics = MetricsRegistry()
    probes = ProbeRegistry()
    with use_tracer(tracer), use_probes(probes):
        times_on = _time_transactions(reps, tracer=tracer, metrics=metrics)
    mean_on = statistics.mean(times_on)
    stages = tracer.stage_totals()
    for stage in BackscatterLink.STAGES:
        assert stage in stages, f"trace missing stage {stage}"
    taps_per_transaction = len(probes.taps) / reps
    assert taps_per_transaction >= len(BackscatterLink.STAGES), (
        "a probed transaction must tap every link stage"
    )

    # 3. Disabled-mode overhead: instrumentation sites * no-op cost,
    # relative to the transaction itself.  Spans and probe captures both
    # count — the <5% acceptance bound covers the whole observability
    # surface when it is switched off.  Generous by orders of magnitude;
    # assert it anyway so a future regression (e.g. work on the disabled
    # path) fails loudly.
    spans_per_transaction = len(tracer.spans) / reps
    noop_cost = _noop_span_cost_s()
    noop_probe_cost = _noop_probe_cost_s()
    noop_ledger_cost = _noop_ledger_cost_s()
    noop_bus_cost = _noop_bus_cost_s()
    noop_profiler_cost = _noop_profiler_cost_s()
    noop_analytics_cost = _noop_analytics_cost_s()
    disabled_overhead = (
        spans_per_transaction * noop_cost
        + taps_per_transaction * noop_probe_cost
        + LEDGER_SITES_PER_TRANSACTION * noop_ledger_cost
        + BUS_SITES_PER_TRANSACTION * noop_bus_cost
        + PROFILER_SITES_PER_TRANSACTION * noop_profiler_cost
        + ANALYTICS_SITES_PER_TRANSACTION * noop_analytics_cost
    ) / mean_off
    assert disabled_overhead < 0.05, (
        f"disabled observability costs {disabled_overhead:.2%} of a transaction"
    )

    # 4. The 10-node polling round through the reader stack.
    round_s, reader, round_metrics, round_mode = _polling_round(10)
    assert round_metrics.value("pab_reader_rounds_total") == 1.0

    per_stage = {
        name: {
            "count": entry["count"] / reps,
            "total_s": entry["total_s"] / reps,
        }
        for name, entry in stages.items()
    }

    # Regression check against the committed baseline (warn, don't fail)
    # and the cumulative per-stage trend history.
    regressions = _warn_regressions(baseline, per_stage)
    run_index = len(_load_history())
    _append_trend(run_index, SMOKE, per_stage, mean_off, mean_on)

    _append_bench({
        "benchmark": "obs_perf_baseline",
        "smoke": SMOKE,
        "reps": reps,
        "transact_disabled_s": mean_off,
        "transact_enabled_s": mean_on,
        "tracing_overhead_fraction": (mean_on - mean_off) / mean_off,
        "noop_span_cost_s": noop_cost,
        "noop_probe_cost_s": noop_probe_cost,
        "noop_ledger_cost_s": noop_ledger_cost,
        "noop_bus_cost_s": noop_bus_cost,
        "noop_profiler_cost_s": noop_profiler_cost,
        "noop_analytics_cost_s": noop_analytics_cost,
        "ledger_sites_per_transaction": LEDGER_SITES_PER_TRANSACTION,
        "bus_sites_per_transaction": BUS_SITES_PER_TRANSACTION,
        "profiler_sites_per_transaction": PROFILER_SITES_PER_TRANSACTION,
        "analytics_sites_per_transaction": ANALYTICS_SITES_PER_TRANSACTION,
        "spans_per_transaction": spans_per_transaction,
        "taps_per_transaction": taps_per_transaction,
        "disabled_overhead_fraction": disabled_overhead,
        "regressions_vs_baseline": [
            {"stage": name, "slowdown_fraction": slowdown}
            for name, slowdown in regressions
        ],
        "per_stage_s": per_stage,
        "polling_round": {
            "nodes": 10,
            "mode": round_mode,
            "seconds": round_s,
            "attempts": round_metrics.value("pab_mac_attempts_total"),
        },
    })

    table = ExperimentTable(
        title="Perf baseline: per-stage timings (one transaction)",
        columns=("stage", "count", "total_s", "fraction"),
    )
    for name, entry in per_stage.items():
        table.add_row(
            name, entry["count"], entry["total_s"], entry["total_s"] / mean_on
        )
    table.add_row("transact_disabled", 1, mean_off, mean_off / mean_on)
    table.add_row(f"polling_round_10x_{round_mode}", 1, round_s, float("nan"))
    report(table, "perf_baseline.csv")
