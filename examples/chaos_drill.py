#!/usr/bin/env python
"""Chaos drill: a polling campaign through brownouts, noise, and crashes.

A deployed reader (Sec. 5-6) cannot assume its nodes stay reachable: the
supercap browns out mid-exchange, a noise burst drowns the uplink, the
transport itself hiccups.  This drill wraps three simulated nodes in the
seeded fault injectors from :mod:`repro.faults` and runs a full
:class:`~repro.net.reader.ReaderController` campaign over them:

* node 1 suffers two reader-side transport exceptions (contained by the
  MAC as failed attempts);
* node 2 hits a six-transaction noise burst — the reader degrades it and
  steps its bitrate one rung down the Fig. 8 ladder via SET_BITRATE;
* node 3 browns out and goes dark — the reader quarantines it (no more
  wasted airtime), re-probes on an exponential backoff, and welcomes it
  back once the supercap has recharged.

The structured event log at the end shows the full
HEALTHY -> DEGRADED -> QUARANTINED -> PROBING -> HEALTHY cycle, plus
per-node availability and MTTR.  Same seed, same bytes: rerun it and the
log is identical.

Run:  python examples/chaos_drill.py
"""

from repro.faults import (
    BrownoutInjector,
    EventLog,
    NoiseBurstInjector,
    TransportExceptionInjector,
)
from repro.net import (
    BITRATE_TABLE,
    Command,
    HealthPolicy,
    ReaderController,
    Response,
    RetryPolicy,
)

SEED = 2019  # SIGCOMM


class FakeLinkResult:
    """Minimal LinkResult-shaped success carrying a decodable packet."""

    def __init__(self, packet):
        self.success = True

        class Demod:
            pass

        self.demod = Demod()
        self.demod.packet = packet
        self.demod.success = True


class SimulatedNode:
    """A well-behaved node: answers every query (the faults come from
    the injectors wrapped around it)."""

    def __init__(self, address, temperature_c):
        self.address = address
        self.temperature_c = temperature_c

    def __call__(self, query):
        if query.command is Command.READ_TEMPERATURE:
            raw = int((self.temperature_c + 100.0) * 100.0)
            data = bytes([(raw >> 8) & 0xFF, raw & 0xFF])
            response = Response(
                source=self.address, command=query.command, data=data
            )
        else:
            response = Response(source=self.address, command=query.command)
        return FakeLinkResult(response.to_packet())


def main() -> None:
    log = EventLog()
    transports = {
        1: TransportExceptionInjector(
            SimulatedNode(1, 18.0), at=(5, 9), node=1, log=log, seed=SEED
        ),
        2: NoiseBurstInjector(
            SimulatedNode(2, 19.5), start=3, duration=6, node=2, log=log, seed=SEED
        ),
        3: BrownoutInjector(
            SimulatedNode(3, 21.0), at=1, dark_for=16, node=3, log=log, seed=SEED
        ),
    }
    reader = ReaderController(
        transports,
        retry_policy=RetryPolicy(
            max_retries=1, base_backoff_s=0.1, jitter=0.25, seed=SEED
        ),
        health_policy=HealthPolicy(
            degrade_after=2, quarantine_after=4, recover_after=2,
            probe_backoff_rounds=2,
        ),
        log=log,
    )
    for addr in sorted(transports):
        reader.set_bitrate(addr, 2_000.0)
    print(f"Configured 3 nodes at {2_000.0:g} bit/s; starting 12 rounds\n")

    report = reader.run_campaign(Command.READ_TEMPERATURE, rounds=12)

    print(f"{'node':>4} | {'health':>11} | {'rate':>6} | {'deliv.':>6} | "
          f"{'avail.':>6} | {'MTTR':>5}")
    print("-" * 56)
    for addr, row in report["nodes"].items():
        rate = f"{row['bitrate']:g}" if row["bitrate"] else "-"
        print(
            f"{addr:>4} | {row['health']:>11} | {rate:>6} | "
            f"{row['delivery_ratio']:>6.2f} | {row['availability']:>6.2f} | "
            f"{row['mttr_rounds']:>5.1f}"
        )
    net = report["network"]
    print(
        f"\nNetwork: {net['attempts']} attempts, {net['retries']} retries, "
        f"{net['exceptions']} contained exceptions, "
        f"delivery {net['delivery_ratio']:.2f}"
    )

    print("\nNode 3's resilience cycle (from the event log):")
    for event in log.filter(node=3, kind="state"):
        detail = dict(event.detail)
        print(f"  round {event.t:>4.0f}: {detail['from']:>11} -> {detail['to']}")
    bitrate_events = log.filter(node=2, kind="bitrate")
    for event in bitrate_events:
        detail = dict(event.detail)
        print(
            f"\nNode 2 bitrate downgrade at round {event.t:.0f}: "
            f"-> {detail['to']} bit/s (acked={detail['acked']})"
        )
    assert reader.nodes[2].bitrate == BITRATE_TABLE[6] / 2  # 2000 -> 1000


if __name__ == "__main__":
    main()
