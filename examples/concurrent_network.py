#!/usr/bin/env python
"""Concurrent FDMA access: two recto-piezo nodes replying simultaneously.

Reproduces the paper's Sec. 6.3 scenario: one node's matching network is
tuned to 15 kHz and another's to 18 kHz; a multi-tone downlink powers
both at once; both backscatter their replies simultaneously.  Because
backscatter is frequency-agnostic, the replies collide on *both*
channels — the hydrophone separates them with the MIMO zero-forcing
decoder, doubling the network throughput.

Run:  python examples/concurrent_network.py
"""

from repro.acoustics import POOL_A, Position
from repro.core import PABNetwork
from repro.dsp.packets import CONCURRENT_PREAMBLES, PacketFormat
from repro.net.messages import Command, Query, Response
from repro.node.node import Environment, PABNode
from repro.piezo import Transducer
from repro.sensing.pressure import WaterColumn


def main() -> None:
    network = PABNetwork(
        POOL_A,
        projector_position=Position(0.5, 1.5, 0.6),
        hydrophone_position=Position(1.0, 0.8, 0.6),
        projector_transducer_factory=Transducer.from_cylinder_design,
        drive_voltage_v=200.0,
    )

    # Two nodes on different recto-piezo channels, with orthogonal
    # preambles so the collision decoder can tell their training apart.
    placements = [
        (15_000.0, Position(1.7, 1.9, 0.7), 20.0),
        (18_000.0, Position(2.1, 1.1, 0.7), 16.0),
    ]
    for i, (channel, position, temp) in enumerate(placements):
        node = PABNode(
            address=i + 1,
            channel_frequencies_hz=(channel,),
            environment=Environment(water=WaterColumn(depth_m=0.7, temperature_c=temp)),
        )
        node.firmware.config.uplink_format = PacketFormat(
            preamble=CONCURRENT_PREAMBLES[i]
        )
        network.add_node(node, position)
        print(f"node 0x{i + 1:02x} on {channel / 1000:.0f} kHz at {position.as_tuple()}")

    print("\nRunning one concurrent round (both nodes reply at once)...")
    result = network.run_concurrent_round(
        [
            Query(destination=1, command=Command.READ_PRESSURE_TEMP),
            Query(destination=2, command=Command.READ_PRESSURE_TEMP),
        ]
    )
    print(f"collision channel condition number: {result.condition_number:.1f}\n")
    for outcome in result.outcomes:
        print(f"node 0x{outcome.address:02x}:")
        print(f"  SINR before projection: {outcome.sinr_before_db:6.1f} dB")
        print(f"  SINR after projection:  {outcome.sinr_after_db:6.1f} dB")
        if outcome.success:
            reading = Response.from_packet(outcome.packet).reading()
            print(f"  decoded reading:        {reading}")
        else:
            print("  packet not recovered at this location")
    decoded = sum(o.success for o in result.outcomes)
    print(
        f"\n{decoded} of {len(result.outcomes)} concurrent replies decoded "
        f"in one round (throughput x{decoded} vs sequential polling)."
    )


if __name__ == "__main__":
    main()
