#!/usr/bin/env python
"""Battery-free energy budget: cold start, power-up range, duty cycling.

Walks through the node's energy life cycle the way the paper's Sec. 6.2
and 6.4 do:

* how the rectified voltage depends on the downlink frequency (the
  recto-piezo curve of Fig. 3),
* how long the 1000 uF supercapacitor takes to cold-start at different
  ranges,
* how far a node can be powered at different projector drive voltages,
* and what each operating state costs (Fig. 11).

Run:  python examples/power_budget.py
"""

import numpy as np

from repro.acoustics import POOL_B, Position
from repro.acoustics.channel import AcousticChannel
from repro.circuits import EnergyHarvester
from repro.constants import PEAK_RECTIFIED_V, POWER_UP_THRESHOLD_V
from repro.core import Projector
from repro.node import NodePowerModel, PowerState, PowerUpSimulator
from repro.piezo import Transducer


def main() -> None:
    transducer = Transducer.from_cylinder_design()
    f = transducer.resonance_hz
    harvester = EnergyHarvester(transducer, design_frequency_hz=f)

    # --- The recto-piezo harvesting curve -----------------------------------
    pressure = harvester.calibrate_pressure_for_peak(PEAK_RECTIFIED_V)
    print(f"Incident pressure for the {PEAK_RECTIFIED_V} V peak: {pressure:.0f} Pa")
    band = harvester.usable_band(pressure, POWER_UP_THRESHOLD_V)
    print(
        f"Usable harvesting band at that level: "
        f"{band[0] / 1000:.1f}-{band[1] / 1000:.1f} kHz "
        f"(threshold {POWER_UP_THRESHOLD_V} V)\n"
    )

    # --- Cold start vs distance in the corridor pool ------------------------
    projector = Projector(
        transducer=Transducer.from_cylinder_design(),
        drive_voltage_v=150.0,
        carrier_hz=f,
    )
    print(f"Cold-start times at {projector.drive_voltage_v:.0f} V drive (Pool B):")
    for distance in (1.0, 3.0, 5.0, 7.0, 9.0):
        channel = AcousticChannel(
            POOL_B,
            Position(0.2, 0.6, 0.5),
            Position(0.2 + distance, 0.6, 0.5),
            sample_rate=96_000.0,
            frequency_hz=f,
        )
        p_node = projector.source_pressure_pa * channel.incoherent_gain()
        sim = PowerUpSimulator(
            EnergyHarvester(Transducer.from_cylinder_design(), design_frequency_hz=f)
        )
        result = sim.cold_start(p_node, f)
        if result.powered_up:
            print(
                f"  {distance:4.1f} m: {p_node:6.0f} Pa incident -> "
                f"powered up in {result.time_to_power_up_s:5.2f} s "
                f"(idle sustainable: {result.sustainable_idle})"
            )
        else:
            print(f"  {distance:4.1f} m: {p_node:6.0f} Pa incident -> cannot power up")

    # --- Operating cost (Fig. 11) --------------------------------------------
    model = NodePowerModel()
    print("\nPower consumption by state (at the 2.1 V measurement supply):")
    print(f"  idle (awaiting query):   {model.power_w(PowerState.IDLE) * 1e6:7.1f} uW")
    print(f"  decoding downlink:       {model.power_w(PowerState.DECODING) * 1e6:7.1f} uW")
    for rate in (100.0, 1_000.0, 3_000.0):
        p = model.power_w(PowerState.BACKSCATTER, bitrate=rate)
        print(f"  backscatter @ {rate:5.0f} bps: {p * 1e6:7.1f} uW")
    print(f"  sensing (peripheral on): {model.power_w(PowerState.SENSING) * 1e6:7.1f} uW")

    print(
        f"\nEnergy per bit at 1 kbps: "
        f"{model.energy_per_bit_j(1_000.0) * 1e9:.0f} nJ/bit "
        f"(an active acoustic modem spends ~mJ per bit)"
    )


if __name__ == "__main__":
    main()
