#!/usr/bin/env python
"""Long-term monitoring: is a polling schedule energetically sustainable?

The paper's motivating application is sensing "over extended periods of
time" (Sec. 1).  Over a long session the node's supercapacitor is a
dynamic reservoir: it drains during each poll and recharges from the
carrier between polls.  This example simulates an hour-scale schedule at
three field strengths and shows the three regimes:

* strong field  — every poll delivered, reservoir barely moves,
* marginal field — the supercap duty-cycles the node through polls that
  continuous harvesting alone could not sustain,
* weak field    — the node never cold-starts.

Run:  python examples/long_term_monitoring.py
"""

from repro.circuits import EnergyHarvester
from repro.core import MonitoringSession
from repro.piezo import Transducer


def main() -> None:
    transducer = Transducer.from_cylinder_design()
    harvester = EnergyHarvester(transducer)

    print(
        f"{'field':>10} | {'cold start':>10} | {'delivered':>9} | "
        f"{'brownouts':>9} | {'cap range (V)':>14}"
    )
    print("-" * 66)
    for label, pressure in (
        ("strong", 900.0),
        ("marginal", 420.0),
        ("weak", 100.0),
    ):
        session = MonitoringSession(
            EnergyHarvester(Transducer.from_cylinder_design()),
            pressure,
            poll_interval_s=10.0,
            bitrate=1_000.0,
            payload_bytes=4,
        )
        report = session.run(120.0)
        if report.energy_trace:
            volts = [v for _t, v in report.energy_trace]
            cap_range = f"{min(volts):.2f}-{max(volts):.2f}"
        else:
            cap_range = "-"
        cold = (
            f"{report.cold_start_s:.1f} s"
            if report.cold_start_s != float("inf")
            else "never"
        )
        print(
            f"{label:>10} | {cold:>10} | {report.readings_delivered:>9} | "
            f"{report.brownouts:>9} | {cap_range:>14}"
        )

    print()
    print("Reservoir trace for the marginal field (sampled every ~5 s):")
    session = MonitoringSession(
        EnergyHarvester(Transducer.from_cylinder_design()),
        420.0,
        poll_interval_s=10.0,
    )
    report = session.run(60.0)
    for t, v in report.energy_trace[::20]:
        bar = "#" * int(v * 12)
        print(f"  t={t:5.1f} s  {v:4.2f} V  {bar}")


if __name__ == "__main__":
    main()
