#!/usr/bin/env python
"""Deployment planning: coverage maps, channel assignment, node discovery.

A field deployment asks three questions this example answers with the
library's planning tools:

1. *Where can battery-free nodes live?*  — a power-up coverage map of
   the tank at the chosen drive level.
2. *Which channel does each node get, and will it work there?* — the
   :class:`DeploymentPlan` channel assignment with per-node feasibility.
3. *How does the reader find nodes it doesn't know about?* — the
   RFID-style slotted-ALOHA inventory, with and without the paper's
   collision decoder.

Run:  python examples/deployment_planning.py
"""

import numpy as np

from repro.acoustics import POOL_B, Position
from repro.core import DeploymentPlan, Projector, powerup_coverage
from repro.net import ChannelPlan, InventoryReader
from repro.piezo import Transducer


def ascii_map(coverage) -> str:
    """Render a coverage map as rows of #/. characters."""
    rows = []
    for i in range(len(coverage.y_coords) - 1, -1, -1):
        row = "".join(
            "#" if coverage.values[i, j] > 0 else "."
            for j in range(len(coverage.x_coords))
        )
        rows.append(row)
    return "\n".join(rows)


def main() -> None:
    transducer = Transducer.from_cylinder_design()
    f = transducer.resonance_hz

    # --- 1. Coverage map ------------------------------------------------------
    for drive in (50.0, 200.0):
        projector = Projector(
            transducer=transducer, drive_voltage_v=drive, carrier_hz=f
        )
        coverage = powerup_coverage(POOL_B, projector, resolution_m=0.5)
        print(
            f"Power-up coverage of Pool B at {drive:.0f} V drive "
            f"({coverage.coverage_fraction:.0%} of the tank):"
        )
        print(ascii_map(coverage))
        print()

    # --- 2. Channel assignment ------------------------------------------------
    projector = Projector(
        transducer=transducer, drive_voltage_v=200.0, carrier_hz=f
    )
    plan = DeploymentPlan(
        tank=POOL_B, projector=projector, channel_plan=ChannelPlan()
    )
    placements = {
        0x01: Position(2.0, 0.6, 0.5),
        0x02: Position(5.0, 0.6, 0.5),
    }
    print("Channel plan:")
    for report in plan.plan(placements):
        print(
            f"  node 0x{report['address']:02x} -> "
            f"{report['channel_hz'] / 1000:.0f} kHz, "
            f"{report['incident_pa']:.0f} Pa incident, "
            f"{'OK' if report['can_power_up'] else 'CANNOT POWER UP'}"
        )

    # --- 3. Node discovery ------------------------------------------------------
    population = list(range(1, 25))
    print(f"\nInventorying {len(population)} unknown nodes:")
    for limit, label in ((1, "no collision decoding"), (2, "PAB 2-way decoding")):
        reader = InventoryReader(
            initial_frame_size=8, collision_decode_limit=limit
        )
        discovered, stats = reader.run(population)
        print(
            f"  {label}: {len(discovered)}/{len(population)} found in "
            f"{stats.rounds} rounds / {stats.slots} slots "
            f"(efficiency {stats.efficiency:.2f}/slot)"
        )


if __name__ == "__main__":
    main()
