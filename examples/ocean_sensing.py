#!/usr/bin/env python
"""Ocean-condition monitoring: poll pH, temperature, and pressure.

The paper's motivating application (Sec. 1, 6.5): battery-free sensors
reporting ocean conditions over long periods.  This example deploys a
node with the full sensing payload — the Nernstian pH probe behind its
analog front end, and the MS5837 pressure/temperature sensor on the I2C
bus — and polls all three quantities over the acoustic interface using
the retransmitting MAC.

Run:  python examples/ocean_sensing.py
"""

from repro.acoustics import POOL_A, Position
from repro.core import BackscatterLink, Projector
from repro.net import PollingMac
from repro.net.messages import Command, Query, Response
from repro.node.node import Environment, PABNode
from repro.piezo import Transducer
from repro.sensing.pressure import WaterColumn


def main() -> None:
    # Ground truth the sensors will observe: slightly acidic, cool water
    # at 0.8 m depth.
    environment = Environment(
        water=WaterColumn(depth_m=0.8, temperature_c=16.5),
        true_ph=6.6,
    )
    print("True environment:")
    print(f"  pH          {environment.true_ph}")
    print(f"  temperature {environment.water.temperature_c} C")
    print(f"  pressure    {environment.water.absolute_pressure_mbar:.1f} mbar")
    print()

    transducer = Transducer.from_cylinder_design()
    f = transducer.resonance_hz
    projector = Projector(transducer=transducer, drive_voltage_v=50.0, carrier_hz=f)
    node = PABNode(
        address=0x11, channel_frequencies_hz=(f,), environment=environment
    )
    link = BackscatterLink(
        POOL_A,
        projector,
        Position(0.5, 1.5, 0.6),
        node,
        Position(1.5, 1.5, 0.7),
        Position(1.0, 0.8, 0.6),
    )

    # The reader-side MAC retries CRC failures automatically (Sec. 5.1b).
    mac = PollingMac(transact=link.run_query, max_retries=2)

    schedule = [
        Query(destination=0x11, command=Command.READ_PH),
        Query(destination=0x11, command=Command.READ_PRESSURE_TEMP),
        Query(destination=0x11, command=Command.READ_TEMPERATURE),
    ]
    print("Polling the node...")
    for query, result in zip(schedule, mac.run_schedule(schedule)):
        if not result.success:
            print(f"  {query.command.name}: FAILED")
            continue
        reading = Response.from_packet(result.demod.packet).reading()
        print(f"  {query.command.name}: {reading}  (SNR {result.snr_db:.1f} dB)")

    print()
    stats = mac.stats
    print(
        f"MAC stats: {stats.successes}/{stats.attempts - stats.retries} queries "
        f"delivered, {stats.retries} retries, "
        f"{stats.payload_bits_delivered} payload bits"
    )


if __name__ == "__main__":
    main()
