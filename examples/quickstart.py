#!/usr/bin/env python
"""Quickstart: one battery-free node, one query, one decoded reply.

Builds the paper's basic setup — an acoustic projector, a PAB backscatter
node, and a hydrophone in the MIT Sea Grant Pool A — then runs a single
PING exchange end to end:

1. the projector transmits a PWM downlink query followed by a carrier,
2. the node harvests energy, powers up, decodes the query,
3. the node backscatters its FM0 reply by switching its piezo between
   reflective and absorptive states,
4. the hydrophone's DSP chain decodes the reply.

Run:  python examples/quickstart.py
"""

from repro.acoustics import POOL_A, Position
from repro.core import BackscatterLink, Projector
from repro.net.messages import Command, Query
from repro.node.node import PABNode
from repro.piezo import Transducer


def main() -> None:
    # The paper's transducer: a 17 kHz (in-air) piezo cylinder that
    # resonates near 15 kHz once submerged.
    transducer = Transducer.from_cylinder_design()
    carrier_hz = transducer.resonance_hz
    print(f"Transducer resonance in water: {carrier_hz:.0f} Hz")

    projector = Projector(
        transducer=transducer, drive_voltage_v=50.0, carrier_hz=carrier_hz
    )
    print(f"Projector source level: {projector.source_level_db():.1f} dB re uPa @ 1 m")

    node = PABNode(address=0x07, channel_frequencies_hz=(carrier_hz,))
    link = BackscatterLink(
        POOL_A,
        projector,
        Position(0.5, 1.5, 0.6),   # projector
        node,
        Position(1.5, 1.5, 0.6),   # battery-free node, 1 m away
        Position(1.0, 0.8, 0.6),   # hydrophone
    )

    budget = link.budget()
    print(
        f"Link budget: {budget.incident_pressure_pa:.0f} Pa at the node, "
        f"modulation depth {budget.modulation_depth:.2f}, "
        f"predicted SNR {budget.predicted_snr_db:.1f} dB"
    )

    result = link.run_query(Query(destination=0x07, command=Command.PING))
    print(f"Node powered up:  {result.powered_up}")
    print(f"Query decoded:    {result.query_decoded}")
    print(f"Reply recovered:  {result.success}")
    if result.success:
        print(f"  from node 0x{result.demod.packet.address:02x}")
        print(f"  uplink SNR:  {result.snr_db:.1f} dB")
        print(f"  uplink BER:  {result.ber:.4f}")


if __name__ == "__main__":
    main()
