#!/usr/bin/env python
"""Battery-assisted backscatter: the paper's future-work extension.

Sec. 1: "one could achieve higher throughputs and ranges by adapting
battery-assisted backscatter implementations from RF designs, which
would enable deep-sea deployments."  This example compares a battery-free
node and a battery-assisted node at increasing range under a modest
projector: the battery-free node stops where harvesting fails, while the
assisted node keeps answering (and its amplified reflection keeps the
uplink decodable), at a power budget still five orders of magnitude below
an active acoustic modem.

Run:  python examples/battery_assisted.py
"""

from repro.acoustics import POOL_B, Position
from repro.core import BackscatterLink, Projector
from repro.net.messages import Command, Query
from repro.node import BatteryAssistedNode, PowerState
from repro.node.node import PABNode
from repro.piezo import Transducer


def run_at(node, distance_m, transducer, f):
    projector = Projector(
        transducer=transducer, drive_voltage_v=30.0, carrier_hz=f
    )
    link = BackscatterLink(
        POOL_B,
        projector,
        Position(0.3, 0.6, 0.5),
        node,
        Position(0.3 + distance_m, 0.6, 0.5),
        Position(1.0, 0.6, 0.5),
    )
    return link.run_query(Query(destination=1, command=Command.PING))


def main() -> None:
    transducer = Transducer.from_cylinder_design()
    f = transducer.resonance_hz

    print(f"{'range':>7} | {'battery-free':>14} | {'battery-assisted':>17}")
    print("-" * 46)
    for distance in (1.0, 2.0, 4.0, 6.0, 8.0):
        free = PABNode(address=1, channel_frequencies_hz=(f,), bitrate=200.0)
        assisted = BatteryAssistedNode(
            address=1,
            channel_frequencies_hz=(f,),
            bitrate=200.0,
            reflection_gain=4.0,
        )
        r_free = run_at(free, distance, transducer, f)
        r_assist = run_at(assisted, distance, transducer, f)

        def describe(result):
            if not result.powered_up:
                return "no power-up"
            if result.success:
                return f"ok ({result.snr_db:.1f} dB)"
            return "decode failed"

        print(
            f"{distance:5.1f} m | {describe(r_free):>14} | {describe(r_assist):>17}"
        )

    assisted = BatteryAssistedNode(address=1, reflection_gain=4.0)
    print()
    print(
        f"Assisted node draw while replying: "
        f"{(assisted.power_model.power_w(PowerState.BACKSCATTER, bitrate=1_000.0) + assisted.amplifier_power_w) * 1e3:.1f} mW "
        f"(vs ~100 W for an active modem)"
    )
    print(
        f"Battery life at 1% duty cycle on 100 J: "
        f"{assisted.expected_lifetime_s(duty_cycle=0.01) / 86_400.0:.1f} days"
    )


if __name__ == "__main__":
    main()
