#!/usr/bin/env python
"""Adaptive bitrate: the reader finds the channel's sweet spot.

Fig. 8 shows SNR falling with backscatter bitrate until decoding
collapses past 3 kbps — so the right rate depends on the geometry, and
the downlink's SET_BITRATE command (Sec. 5.1a) lets the reader move the
node along that trade-off.  This example closes the loop: the
:class:`~repro.net.rate_adaptation.RateAdapter` watches each exchange's
outcome and SNR, stepping the node's bitrate up when there is margin and
down when frames start dying.

Run:  python examples/adaptive_bitrate.py
"""

from repro.acoustics import POOL_A, Position
from repro.core import BackscatterLink, Projector
from repro.net.messages import BITRATE_TABLE, Command, Query
from repro.net.rate_adaptation import RateAdapter
from repro.node.node import PABNode
from repro.piezo import Transducer


def main() -> None:
    transducer = Transducer.from_cylinder_design()
    f = transducer.resonance_hz
    projector = Projector(
        transducer=transducer, drive_voltage_v=50.0, carrier_hz=f
    )
    node = PABNode(address=7, channel_frequencies_hz=(f,), bitrate=100.0)
    link = BackscatterLink(
        POOL_A,
        projector,
        Position(0.5, 1.5, 0.6),
        node,
        Position(1.3, 1.5, 0.6),
        Position(1.0, 0.9, 0.6),
    )
    report = link.channel_report()
    spread = report["node_to_hydrophone"]["delay_spread_chips"]
    print(f"Channel delay spread at the start rate: {spread:.2f} chips\n")

    adapter = RateAdapter(up_streak=2, up_margin_db=4.0)
    print(f"{'round':>5} | {'rate (bps)':>10} | {'decoded':>7} | {'SNR (dB)':>8}")
    print("-" * 42)
    for round_index in range(1, 15):
        # Command the node onto the adapter's current rate...
        code = BITRATE_TABLE.index(adapter.bitrate)
        link.run_query(
            Query(destination=7, command=Command.SET_BITRATE, argument=code)
        )
        # ...then run a sensing exchange at that rate.
        result = link.run_query(
            Query(destination=7, command=Command.READ_TEMPERATURE)
        )
        snr = result.snr_db if result.demod is not None else float("nan")
        print(
            f"{round_index:>5} | {adapter.bitrate:>10.0f} | "
            f"{str(result.success):>7} | {snr:>8.1f}"
        )
        adapter.report(success=result.success, snr_db=snr)
    print(f"\nSettled bitrate: {adapter.bitrate:.0f} bps")


if __name__ == "__main__":
    main()
