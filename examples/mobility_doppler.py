#!/usr/bin/env python
"""Mobility and Doppler: what happens when the node drifts.

The paper's discussion (Sec. 8) flags mobility as a challenge for field
deployments.  This example quantifies it: a drifting node Doppler-shifts
and time-dilates the backscattered waveform; the receiver's CFO
estimator absorbs the carrier shift, but chip-clock dilation eventually
slips the symbol timing.  The tolerable drift speed falls with packet
length — a design rule for choosing packet sizes in moving water.

Run:  python examples/mobility_doppler.py
"""

import numpy as np

from repro.acoustics import apply_doppler, doppler_shift_hz
from repro.acoustics.doppler import max_tolerable_velocity_mps
from repro.dsp import BackscatterDemodulator, Packet, fm0_encode
from repro.dsp.waveforms import upconvert_chips

FS = 96_000.0
CARRIER = 15_000.0
BITRATE = 1_000.0


def synth_recording(packet, velocity_mps):
    """Carrier + backscatter, then wideband Doppler from node drift.

    Only the node moves, so the backscatter contribution is dilated
    while the direct carrier arrives unshifted.
    """
    chips = fm0_encode(packet.to_bits()).astype(float)
    modulation = upconvert_chips(chips, 2 * BITRATE, FS)
    pad = np.zeros(int(0.01 * FS))
    m = np.concatenate([pad, modulation, pad])
    t = np.arange(len(m)) / FS
    carrier = np.sin(2 * np.pi * CARRIER * t)
    backscatter = apply_doppler(0.12 * m * carrier, velocity_mps, FS)
    if len(backscatter) < len(m):
        backscatter = np.pad(backscatter, (0, len(m) - len(backscatter)))
    mixture = carrier + backscatter[: len(m)]
    rng = np.random.default_rng(1)
    return mixture + rng.normal(0, 0.01, len(mixture))


def main() -> None:
    packet = Packet(address=7, payload=b"drifting sensor")
    n_bits = len(packet.to_bits())
    print(f"Frame length: {n_bits} bits at {BITRATE:.0f} bps")
    print(
        "Doppler shift at 15 kHz: "
        + ", ".join(
            f"{v:g} m/s -> {doppler_shift_hz(CARRIER, v):+.1f} Hz"
            for v in (0.5, 1.0, 3.0)
        )
    )
    v_max = max_tolerable_velocity_mps(BITRATE, n_bits, FS)
    print(f"Predicted tolerable drift (half-chip slip): ~{v_max:.1f} m/s\n")

    dem = BackscatterDemodulator(CARRIER, BITRATE, FS)
    print(f"{'drift':>8} | {'decoded':>8} | {'CFO est (Hz)':>12}")
    print("-" * 35)
    for velocity in (0.0, 0.5, 1.0, 2.0, 4.0, 8.0):
        recording = synth_recording(packet, velocity)
        result = dem.demodulate(recording)
        print(
            f"{velocity:6.1f} m/s | {str(result.success):>8} | "
            f"{result.cfo_hz:12.2f}"
        )
    print(
        "\nSlow drift is absorbed by the receiver's blockwise phase"
        "\ntracking; past the half-chip-slip limit the chip clock walks"
        "\noff and long frames die first — shorten packets (or track"
        "\nDoppler) for mobile deployments."
    )


if __name__ == "__main__":
    main()
