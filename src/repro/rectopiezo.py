"""The recto-piezo: programmable resonance through matching networks.

A recto-piezo (Sec. 3.3.1) is the combination of a piezoelectric
transducer with a matching network chosen to place the node's
*electrical* resonance at a desired channel frequency.  A
:class:`RectoPiezoBank` holds one or more such modes for a single
transducer — the paper's proposed extension where "the micro-controller
[selects] the recto-piezo" — along with the backscatter switch state for
each mode.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.circuits.backscatter_switch import BackscatterSwitch, SwitchState
from repro.circuits.harvester import EnergyHarvester
from repro.circuits.rectifier import MultiStageRectifier
from repro.piezo.transducer import Transducer


@dataclass(frozen=True)
class RectoPiezoMode:
    """One selectable resonance mode.

    Attributes
    ----------
    index:
        Position in the bank.
    frequency_hz:
        The electrical resonance / channel frequency.
    harvester:
        Harvesting chain matched at that frequency.
    switch:
        Backscatter switch presenting matched/short loads.
    """

    index: int
    frequency_hz: float
    harvester: EnergyHarvester
    switch: BackscatterSwitch


class RectoPiezoBank:
    """All resonance modes of one node's front end.

    Parameters
    ----------
    transducer:
        The shared piezo element.
    frequencies_hz:
        One entry per selectable mode (the paper's nodes each had one;
        two-node experiments used 15 kHz and 18 kHz parts).
    rectifier:
        Shared rectifier model.
    """

    def __init__(
        self,
        transducer: Transducer,
        frequencies_hz,
        *,
        rectifier: MultiStageRectifier | None = None,
    ) -> None:
        freqs = [float(f) for f in frequencies_hz]
        if not freqs:
            raise ValueError("need at least one mode")
        if any(f <= 0 for f in freqs):
            raise ValueError("frequencies must be positive")
        self.transducer = transducer
        self.rectifier = rectifier if rectifier is not None else MultiStageRectifier()
        self._modes: list[RectoPiezoMode] = []
        for i, f in enumerate(freqs):
            harvester = EnergyHarvester(
                transducer, self.rectifier, design_frequency_hz=f
            )
            switch = BackscatterSwitch(
                matching_network=harvester.matching_network,
                rectifier_input_ohm=self.rectifier.input_resistance_ohm,
            )
            self._modes.append(
                RectoPiezoMode(index=i, frequency_hz=f, harvester=harvester, switch=switch)
            )

    def __len__(self) -> int:
        return len(self._modes)

    def mode(self, index: int) -> RectoPiezoMode:
        """Look up a mode by index."""
        if not 0 <= index < len(self._modes):
            raise IndexError("mode index out of range")
        return self._modes[index]

    @property
    def modes(self) -> list[RectoPiezoMode]:
        return list(self._modes)

    def frequencies(self) -> list[float]:
        """Channel frequencies of all modes."""
        return [m.frequency_hz for m in self._modes]

    # -- physics used by the waveform simulation ------------------------------------

    def reflection_states(
        self, mode_index: int, frequency_hz: float
    ) -> tuple[complex, complex]:
        """Complex reflected-pressure gains (absorb, reflect) at a frequency.

        Includes the transducer's mechanical bandpass and backscatter
        loss, so the *difference* of the two values is the modulation the
        hydrophone can see (zero far off resonance — but nonzero at other
        nodes' channels, which is exactly the frequency-agnostic
        interference of Sec. 3.3.2).
        """
        mode = self.mode(mode_index)
        z_absorb = mode.switch.load_impedance(SwitchState.ABSORB, frequency_hz)
        z_reflect = mode.switch.load_impedance(SwitchState.REFLECT, frequency_hz)
        gamma_a = complex(
            np.asarray(
                self.transducer.reflected_pressure(1.0, z_absorb, frequency_hz)
            )
        )
        gamma_r = complex(
            np.asarray(
                self.transducer.reflected_pressure(1.0, z_reflect, frequency_hz)
            )
        )
        return gamma_a, gamma_r

    def modulation_depth(self, mode_index: int, frequency_hz: float) -> float:
        """|Gamma_reflect - Gamma_absorb| at a frequency (uplink amplitude
        per unit incident pressure)."""
        gamma_a, gamma_r = self.reflection_states(mode_index, frequency_hz)
        return abs(gamma_r - gamma_a)
