"""Recto-piezo FDMA channel plan (Sec. 3.3).

Multiple PAB nodes share the water by occupying different electrical
resonance channels: each node's matching network is designed for its own
downlink frequency, and the projector transmits a multi-tone downlink
that powers all of them simultaneously.  The channel plan assigns
(frequency, node) pairs and checks spacing against the transducer's
usable bandwidth so adjacent channels do not swallow each other.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.constants import DEFAULT_CARRIER_HZ, SECOND_CARRIER_HZ


@dataclass(frozen=True)
class Channel:
    """One FDMA channel.

    Attributes
    ----------
    index:
        Channel number in the plan.
    frequency_hz:
        Carrier / recto-piezo design frequency.
    """

    index: int
    frequency_hz: float

    def __post_init__(self) -> None:
        if self.frequency_hz <= 0:
            raise ValueError("frequency must be positive")
        if self.index < 0:
            raise ValueError("index must be non-negative")


@dataclass
class ChannelPlan:
    """A set of FDMA channels and node assignments.

    Parameters
    ----------
    frequencies_hz:
        Channel carrier frequencies.  The paper's two-node experiments
        use 15 and 18 kHz.
    min_spacing_hz:
        Required separation between adjacent channels — at least the
        recto-piezo's usable bandwidth (~1.5-3 kHz in Fig. 3).
    """

    frequencies_hz: tuple = (DEFAULT_CARRIER_HZ, SECOND_CARRIER_HZ)
    min_spacing_hz: float = 1_500.0
    _assignments: dict = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        freqs = sorted(self.frequencies_hz)
        if not freqs:
            raise ValueError("need at least one channel")
        if any(f <= 0 for f in freqs):
            raise ValueError("frequencies must be positive")
        for a, b in zip(freqs, freqs[1:]):
            if b - a < self.min_spacing_hz:
                raise ValueError(
                    f"channels {a} and {b} closer than {self.min_spacing_hz} Hz"
                )
        self.frequencies_hz = tuple(freqs)

    @property
    def channels(self) -> list[Channel]:
        """All channels, ordered by frequency."""
        return [
            Channel(index=i, frequency_hz=f)
            for i, f in enumerate(self.frequencies_hz)
        ]

    def assign(self, node_address: int, channel_index: int) -> Channel:
        """Give a node a channel; one node per channel."""
        if not 0 <= channel_index < len(self.frequencies_hz):
            raise ValueError("channel index out of range")
        for addr, idx in self._assignments.items():
            if idx == channel_index and addr != node_address:
                raise ValueError(
                    f"channel {channel_index} already held by node 0x{addr:02x}"
                )
        self._assignments[node_address] = channel_index
        return self.channels[channel_index]

    def channel_of(self, node_address: int) -> Channel:
        """The channel assigned to a node."""
        if node_address not in self._assignments:
            raise KeyError(f"node 0x{node_address:02x} has no channel")
        return self.channels[self._assignments[node_address]]

    def concurrent_groups(self) -> list[list[int]]:
        """Groups of nodes that may transmit simultaneously.

        With one node per channel, all assigned nodes form one concurrent
        group — that is the point of the recto-piezo design.
        """
        if not self._assignments:
            return []
        return [sorted(self._assignments)]

    @property
    def aggregate_capacity_factor(self) -> int:
        """Throughput multiplier over a single channel (number of channels
        in concurrent use)."""
        return len(set(self._assignments.values())) or 1
