"""Networking layer: messages, addressing, FDMA channel plan, MAC.

The projector acts like an RFID reader (Sec. 3.3.2): it transmits
downlink queries naming a node and a command; powered-up nodes respond by
backscattering an uplink packet.  Concurrent access uses the recto-piezo
FDMA plan plus collision decoding at the hydrophone.
"""

from repro.net.addresses import NodeAddress, BROADCAST
from repro.net.messages import (
    BITRATE_TABLE,
    Command,
    Query,
    Response,
    SensorReading,
    bitrate_code,
    higher_bitrate,
    lower_bitrate,
)
from repro.net.fdma import ChannelPlan, Channel
from repro.net.health import HealthPolicy, HealthState, NodeHealth
from repro.net.mac import PollingMac, MacStats, RetryPolicy
from repro.net.inventory import InventoryReader, InventoryStats
from repro.net.reader import ReaderController, NodeRecord
from repro.net.rate_adaptation import RateAdapter, best_static_rate
from repro.net.tdma import (
    SlotTiming,
    TdmaScheduler,
    ThroughputComparison,
    compare_throughput,
    slot_timing,
)

__all__ = [
    "NodeAddress",
    "BROADCAST",
    "Command",
    "Query",
    "Response",
    "SensorReading",
    "ChannelPlan",
    "Channel",
    "PollingMac",
    "MacStats",
    "RetryPolicy",
    "HealthPolicy",
    "HealthState",
    "NodeHealth",
    "BITRATE_TABLE",
    "bitrate_code",
    "lower_bitrate",
    "higher_bitrate",
    "InventoryReader",
    "InventoryStats",
    "ReaderController",
    "NodeRecord",
    "RateAdapter",
    "best_static_rate",
    "SlotTiming",
    "TdmaScheduler",
    "ThroughputComparison",
    "compare_throughput",
    "slot_timing",
]
