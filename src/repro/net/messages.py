"""Application messages: downlink queries and uplink responses.

Mirrors the paper's protocol sketch (Sec. 3.3.2 and 5.1a): the downlink
query carries a preamble, destination address, and payload; "the
transmitter packet may also include commands for the PAB backscatter node
such as setting backscatter link frequency, switching its resonance mode,
or requesting certain sensed data like pH, temperature, or pressure."
Each of those commands exists here.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.dsp.packets import Packet


class Command(enum.IntEnum):
    """Downlink command opcodes."""

    PING = 0x01
    READ_PH = 0x02
    READ_PRESSURE_TEMP = 0x03
    READ_TEMPERATURE = 0x04
    SET_BITRATE = 0x10
    SET_RESONANCE_MODE = 0x11


#: Bitrate codes for SET_BITRATE (index into this table) [bit/s].
BITRATE_TABLE = (100.0, 200.0, 400.0, 600.0, 800.0, 1_000.0, 2_000.0, 2_800.0, 3_000.0, 5_000.0)


def bitrate_code(bitrate: float) -> int:
    """The SET_BITRATE argument for a table bitrate; raises if absent."""
    try:
        return BITRATE_TABLE.index(bitrate)
    except ValueError as exc:
        raise ValueError(f"bitrate {bitrate} not in BITRATE_TABLE") from exc


def lower_bitrate(bitrate: float) -> float | None:
    """One rung down the rate ladder (Fig. 8: slower buys SNR margin).

    Returns ``None`` when ``bitrate`` is already the table's floor.
    """
    code = bitrate_code(bitrate)
    return BITRATE_TABLE[code - 1] if code > 0 else None


def higher_bitrate(bitrate: float) -> float | None:
    """One rung up the rate ladder; ``None`` at the ceiling."""
    code = bitrate_code(bitrate)
    return BITRATE_TABLE[code + 1] if code + 1 < len(BITRATE_TABLE) else None


@dataclass(frozen=True)
class Query:
    """A downlink query.

    Attributes
    ----------
    destination:
        Target node address (0xFF broadcasts).
    command:
        The opcode.
    argument:
        One-byte command argument (bitrate code, resonance mode index).
    """

    destination: int
    command: Command
    argument: int = 0

    def __post_init__(self) -> None:
        if not 0 <= self.destination <= 0xFF:
            raise ValueError("destination must fit in one byte")
        if not 0 <= self.argument <= 0xFF:
            raise ValueError("argument must fit in one byte")
        if not isinstance(self.command, Command):
            object.__setattr__(self, "command", Command(self.command))

    def to_packet(self) -> Packet:
        """Serialise as a downlink packet."""
        return Packet(
            address=self.destination,
            payload=bytes([int(self.command), self.argument]),
        )

    @classmethod
    def from_packet(cls, packet: Packet) -> "Query":
        """Parse a downlink packet; raises ``ValueError`` on malformed input."""
        if len(packet.payload) < 2:
            raise ValueError("query payload too short")
        try:
            command = Command(packet.payload[0])
        except ValueError as exc:
            raise ValueError(f"unknown command 0x{packet.payload[0]:02x}") from exc
        return cls(
            destination=packet.address,
            command=command,
            argument=packet.payload[1],
        )

    def bitrate(self) -> float:
        """For SET_BITRATE queries: the requested uplink bitrate [bit/s]."""
        if self.command is not Command.SET_BITRATE:
            raise ValueError("not a SET_BITRATE query")
        if self.argument >= len(BITRATE_TABLE):
            raise ValueError("bitrate code out of table")
        return BITRATE_TABLE[self.argument]


@dataclass(frozen=True)
class SensorReading:
    """A decoded sensor value from an uplink response."""

    kind: str
    values: tuple

    def __str__(self) -> str:
        vals = ", ".join(f"{v:.2f}" for v in self.values)
        return f"{self.kind}({vals})"


@dataclass(frozen=True)
class Response:
    """An uplink response.

    Attributes
    ----------
    source:
        Responding node's address.
    command:
        The command being answered.
    data:
        Raw reading bytes (sensor-specific encoding).
    """

    source: int
    command: Command
    data: bytes = b""

    def __post_init__(self) -> None:
        if not 0 <= self.source <= 0xFF:
            raise ValueError("source must fit in one byte")
        if not isinstance(self.command, Command):
            object.__setattr__(self, "command", Command(self.command))
        object.__setattr__(self, "data", bytes(self.data))

    def to_packet(self) -> Packet:
        """Serialise as an uplink packet."""
        return Packet(
            address=self.source, payload=bytes([int(self.command)]) + self.data
        )

    @classmethod
    def from_packet(cls, packet: Packet) -> "Response":
        """Parse an uplink packet."""
        if len(packet.payload) < 1:
            raise ValueError("response payload too short")
        return cls(
            source=packet.address,
            command=Command(packet.payload[0]),
            data=packet.payload[1:],
        )

    def reading(self) -> SensorReading:
        """Decode the data bytes according to the command."""
        from repro.sensing.ph import PhSensor
        from repro.sensing.pressure import MS5837Driver

        if self.command is Command.READ_PH:
            return SensorReading("ph", (PhSensor.decode_reading(self.data),))
        if self.command is Command.READ_PRESSURE_TEMP:
            p, t = MS5837Driver.decode_reading(self.data)
            return SensorReading("pressure_temperature", (p, t))
        if self.command is Command.READ_TEMPERATURE:
            if len(self.data) < 2:
                raise ValueError("temperature payload too short")
            raw = (self.data[0] << 8) | self.data[1]
            return SensorReading("temperature", (raw / 100.0 - 100.0,))
        if self.command is Command.PING:
            return SensorReading("pong", ())
        raise ValueError(f"command {self.command!r} carries no reading")
