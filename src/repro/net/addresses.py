"""Node addressing."""

from __future__ import annotations

from dataclasses import dataclass

#: Address every node accepts queries on.
BROADCAST = 0xFF


@dataclass(frozen=True, order=True)
class NodeAddress:
    """A one-byte node address (0x00-0xFE; 0xFF is broadcast)."""

    value: int

    def __post_init__(self) -> None:
        if not 0 <= self.value <= 0xFF:
            raise ValueError("address must fit in one byte")

    @property
    def is_broadcast(self) -> bool:
        return self.value == BROADCAST

    def accepts(self, destination: int) -> bool:
        """Whether a query addressed to ``destination`` targets this node."""
        return destination == BROADCAST or destination == self.value

    def __int__(self) -> int:
        return self.value

    def __str__(self) -> str:
        return f"node-0x{self.value:02x}"
