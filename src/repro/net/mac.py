"""Polling MAC with CRC-triggered retransmission and fault containment.

The paper's protocol is reader-driven, like RFID (Sec. 3.3.2): the
projector queries nodes; the hydrophone checks each reply's CRC and
"request[s] retransmissions of corrupted packets" (Sec. 5.1b).  The
:class:`PollingMac` implements that loop over any transaction function —
the waveform-level :class:`~repro.core.link.BackscatterLink`, the
multi-node :class:`~repro.core.network.PABNetwork`, or a fast abstract
link in tests — and accounts throughput the way the paper reports it.

A deployed reader cannot afford to crash because one exchange went
wrong: a ``transact`` exception is contained as a failed attempt (the
counters stay consistent), and retransmissions follow a configurable
:class:`RetryPolicy` — exponential backoff with seeded jitter and a
per-query time budget — instead of hammering a node that is browned
out or drowned in a noise burst.
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass, field

import numpy as np

from repro.net.messages import Query
from repro.obs.trace import get_tracer


@dataclass
class MacStats:
    """Counters the MAC keeps.

    Attributes
    ----------
    attempts:
        Queries transmitted (including retries).
    successes:
        CRC-clean replies.
    retries:
        Attempts beyond the first per query.
    payload_bits_delivered:
        Application payload bits in successful replies.
    airtime_s:
        Total channel time consumed.
    backoff_s:
        Total time spent waiting between retransmissions.
    exceptions:
        Transport exceptions contained as failed attempts.
    """

    attempts: int = 0
    successes: int = 0
    retries: int = 0
    payload_bits_delivered: int = 0
    airtime_s: float = 0.0
    backoff_s: float = 0.0
    exceptions: int = 0

    @property
    def delivery_ratio(self) -> float:
        """Successes over distinct queries attempted.

        Guarded for the degenerate corners: no distinct queries (all
        attempts were retries, or nothing was attempted) reports 0.0,
        and the ratio is clamped to [0, 1] so merged or hand-built
        counters can never report an impossible ratio.
        """
        distinct = self.attempts - self.retries
        if distinct <= 0:
            return 0.0
        return min(max(self.successes / distinct, 0.0), 1.0)

    @property
    def goodput_bps(self) -> float:
        """Delivered payload bits per second of airtime."""
        return (
            self.payload_bits_delivered / self.airtime_s if self.airtime_s > 0 else 0.0
        )

    def sample(self) -> dict:
        """JSON-ready point-in-time snapshot of the counters.

        The per-node ``"mac"`` payload inside each ``kind="round"``
        stream event (:mod:`repro.obs.stream`): cumulative counts plus
        the derived delivery ratio, so a live consumer can render
        per-node delivery without replaying the whole campaign.
        """
        return {
            "attempts": self.attempts,
            "successes": self.successes,
            "retries": self.retries,
            "exceptions": self.exceptions,
            "delivery_ratio": self.delivery_ratio,
        }

    def merge(self, *others: "MacStats") -> "MacStats":
        """A new :class:`MacStats` summing this one with ``others``.

        Used by :meth:`repro.net.reader.ReaderController.report` to
        aggregate per-node counters into a network-wide view; the
        operands are left untouched.  Float fields sum with
        :func:`math.fsum` (exactly rounded), so the result is
        independent of operand order — merging per-node counters in
        whatever order a parallel round finished them is byte-identical
        to the sequential order.
        """
        operands = (self, *others)
        return MacStats(
            attempts=sum(s.attempts for s in operands),
            successes=sum(s.successes for s in operands),
            retries=sum(s.retries for s in operands),
            payload_bits_delivered=sum(
                s.payload_bits_delivered for s in operands
            ),
            airtime_s=math.fsum(s.airtime_s for s in operands),
            backoff_s=math.fsum(s.backoff_s for s in operands),
            exceptions=sum(s.exceptions for s in operands),
        )


@dataclass
class RetryPolicy:
    """Retransmission policy: bounded retries, backoff, time budget.

    Parameters
    ----------
    max_retries:
        Retransmissions after a failed attempt.
    base_backoff_s:
        Wait before the first retransmission.
    multiplier:
        Exponential growth factor per further retransmission.
    jitter:
        Fractional uniform jitter, e.g. 0.25 draws the wait from
        ``[0.75, 1.25] * nominal``; decorrelates colliding readers.
    max_backoff_s:
        Backoff ceiling.
    timeout_budget_s:
        Total airtime + backoff allowed per query; once exceeded the
        MAC gives up instead of starting another retransmission.
    seed, rng:
        Jitter reproducibility; ``rng`` wins when both are given.
    """

    max_retries: int = 2
    base_backoff_s: float = 0.1
    multiplier: float = 2.0
    jitter: float = 0.25
    max_backoff_s: float = 5.0
    timeout_budget_s: float = math.inf
    seed: int | None = None
    rng: object = None

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError("max_retries must be non-negative")
        if self.base_backoff_s < 0 or self.max_backoff_s < 0:
            raise ValueError("backoff times must be non-negative")
        if self.multiplier < 1.0:
            raise ValueError("multiplier must be >= 1")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be in [0, 1]")
        if self.timeout_budget_s <= 0:
            raise ValueError("timeout budget must be positive")
        if self.rng is None:
            self.rng = np.random.default_rng(self.seed)

    def backoff_s(self, retry_index: int) -> float:
        """Wait before retransmission ``retry_index`` (0 = first retry)."""
        if retry_index < 0:
            raise ValueError("retry_index must be non-negative")
        nominal = min(
            self.base_backoff_s * self.multiplier**retry_index, self.max_backoff_s
        )
        if nominal <= 0:
            return 0.0
        if self.jitter > 0:
            nominal *= 1.0 + self.jitter * (2.0 * self.rng.random() - 1.0)
        return float(nominal)

    def for_node(self, node: int) -> "RetryPolicy":
        """A copy with an independent RNG stream derived for one node.

        A policy shared across nodes draws jitter from one RNG, so the
        values each node sees depend on global draw *order* — fine
        sequentially, but order is scheduling-dependent under the
        parallel reader.  Seeding a per-node stream from
        ``(seed, node)`` makes every node's jitter sequence a function
        of the node alone.  Without a seed there is nothing to derive
        from, so the shared policy is returned unchanged (parallel mode
        then can't promise identical backoff sequences, only identical
        decode results).
        """
        if self.seed is None:
            return self
        return dataclasses.replace(
            self, rng=np.random.default_rng((self.seed, int(node)))
        )


@dataclass
class PollingMac:
    """Reader-driven polling with bounded, backed-off retransmissions.

    Parameters
    ----------
    transact:
        Callable ``(query) -> result`` where the result exposes
        ``success`` (bool) and optionally ``response`` and ``demod``.
        Exceptions it raises are contained as failed attempts.
    airtime_estimator:
        Callable ``(query, result) -> seconds`` used for throughput
        bookkeeping (``result`` is ``None`` when the attempt raised); a
        constant per-exchange estimate by default.
    max_retries:
        Retransmissions after a failed attempt; ignored when a full
        ``retry_policy`` is supplied.
    retry_policy:
        Optional :class:`RetryPolicy` adding exponential backoff with
        jitter and a per-query timeout budget.
    sleep:
        Optional callable invoked with each backoff wait (e.g.
        ``time.sleep`` on hardware).  Simulations leave it unset; the
        wait is still accounted in :attr:`MacStats.backoff_s`.
    log:
        Optional :class:`~repro.faults.events.EventLog`; retries,
        backoffs, contained exceptions, and give-ups are recorded with
        the MAC's attempt counter as the virtual clock.
    node:
        Address used in event-log entries.
    metrics:
        Optional :class:`~repro.obs.metrics.MetricsRegistry`; attempt /
        retry / success / exception counters and a backoff-seconds
        histogram are recorded alongside :attr:`stats` (the registry
        view is mergeable across readers the same way
        :meth:`MacStats.merge` is).
    """

    transact: object
    airtime_estimator: object = None
    max_retries: int = 2
    stats: MacStats = field(default_factory=MacStats)
    retry_policy: RetryPolicy | None = None
    sleep: object = None
    log: object = None
    node: int = -1
    metrics: object = None

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError("max_retries must be non-negative")
        if self.airtime_estimator is None:
            self.airtime_estimator = lambda query, result: 0.3
        self.last_exception: BaseException | None = None

    def _record(self, kind: str, **detail) -> None:
        if self.log is not None:
            self.log.record(self.stats.attempts, self.node, kind, **detail)

    def _count(self, name: str, amount: float = 1.0) -> None:
        if self.metrics is not None:
            self.metrics.counter(name).inc(amount)

    def poll(self, query: Query):
        """One query with retransmission; returns the last result.

        Never raises on transport failure: an exception from
        ``transact`` becomes a failed attempt (``None`` result if every
        attempt raised), with all counters consistently updated.  The
        last exception is kept on :attr:`last_exception` for diagnosis.
        """
        policy = self.retry_policy
        max_retries = policy.max_retries if policy is not None else self.max_retries
        budget = policy.timeout_budget_s if policy is not None else math.inf
        spent_s = 0.0
        result = None
        self.last_exception = None
        self._count("pab_mac_polls_total")
        with get_tracer().span("mac.poll", node=self.node) as span:
            for attempt in range(max_retries + 1):
                if attempt > 0:
                    wait = policy.backoff_s(attempt - 1) if policy is not None else 0.0
                    if spent_s + wait >= budget:
                        self._record("give_up", reason="timeout_budget", spent_s=round(spent_s + wait, 6))
                        self._count("pab_mac_give_ups_total")
                        break
                    self.stats.retries += 1
                    self._record("retry", attempt=attempt)
                    self._count("pab_mac_retries_total")
                    if wait > 0:
                        spent_s += wait
                        self.stats.backoff_s += wait
                        self._record("backoff", wait_s=round(wait, 6))
                        if self.metrics is not None:
                            self.metrics.histogram(
                                "pab_mac_backoff_seconds"
                            ).observe(wait)
                        if self.sleep is not None:
                            self.sleep(wait)
                try:
                    result = self.transact(query)
                except Exception as exc:
                    result = None
                    self.last_exception = exc
                    self.stats.attempts += 1
                    self.stats.exceptions += 1
                    airtime = float(self.airtime_estimator(query, None))
                    self.stats.airtime_s += airtime
                    spent_s += airtime
                    self._record("exception", error=type(exc).__name__)
                    self._count("pab_mac_attempts_total")
                    self._count("pab_mac_exceptions_total")
                    continue
                self.stats.attempts += 1
                airtime = float(self.airtime_estimator(query, result))
                self.stats.airtime_s += airtime
                spent_s += airtime
                self._count("pab_mac_attempts_total")
                if getattr(result, "success", False):
                    self.stats.successes += 1
                    self._count("pab_mac_successes_total")
                    payload = getattr(
                        getattr(result, "demod", None), "packet", None
                    )
                    if payload is not None and hasattr(payload, "payload"):
                        self.stats.payload_bits_delivered += 8 * len(payload.payload)
                    break
            span.set(
                attempts=attempt + 1,
                success=bool(getattr(result, "success", False)),
            )
        return result

    def run_schedule(self, queries) -> list:
        """Poll a sequence of queries round-robin; returns all results."""
        return [self.poll(q) for q in queries]

    # -- checkpointing -------------------------------------------------------------

    def snapshot_state(self) -> dict:
        """JSON-ready mutable state: counters plus the jitter RNG stream.

        A non-numpy ``retry_policy.rng`` (tests sometimes inject one) has
        no serialisable stream position; its slot is saved as ``None``
        and restore leaves it alone.
        """
        rng = getattr(self.retry_policy, "rng", None)
        bitgen = getattr(rng, "bit_generator", None)
        return {
            "stats": dataclasses.asdict(self.stats),
            "rng": None if bitgen is None else bitgen.state,
        }

    def restore_state(self, state: dict) -> None:
        """Inverse of :meth:`snapshot_state`."""
        self.stats = MacStats(**state["stats"])
        if state["rng"] is not None:
            self.retry_policy.rng.bit_generator.state = state["rng"]
