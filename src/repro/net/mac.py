"""Polling MAC with CRC-triggered retransmission.

The paper's protocol is reader-driven, like RFID (Sec. 3.3.2): the
projector queries nodes; the hydrophone checks each reply's CRC and
"request[s] retransmissions of corrupted packets" (Sec. 5.1b).  The
:class:`PollingMac` implements that loop over any transaction function —
the waveform-level :class:`~repro.core.link.BackscatterLink`, the
multi-node :class:`~repro.core.network.PABNetwork`, or a fast abstract
link in tests — and accounts throughput the way the paper reports it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.net.messages import Query


@dataclass
class MacStats:
    """Counters the MAC keeps.

    Attributes
    ----------
    attempts:
        Queries transmitted (including retries).
    successes:
        CRC-clean replies.
    retries:
        Attempts beyond the first per query.
    payload_bits_delivered:
        Application payload bits in successful replies.
    airtime_s:
        Total channel time consumed.
    """

    attempts: int = 0
    successes: int = 0
    retries: int = 0
    payload_bits_delivered: int = 0
    airtime_s: float = 0.0

    @property
    def delivery_ratio(self) -> float:
        """Successes over distinct queries attempted."""
        distinct = self.attempts - self.retries
        return self.successes / distinct if distinct else 0.0

    @property
    def goodput_bps(self) -> float:
        """Delivered payload bits per second of airtime."""
        return (
            self.payload_bits_delivered / self.airtime_s if self.airtime_s > 0 else 0.0
        )


@dataclass
class PollingMac:
    """Reader-driven polling with bounded retransmissions.

    Parameters
    ----------
    transact:
        Callable ``(query) -> result`` where the result exposes
        ``success`` (bool) and optionally ``response`` and ``demod``.
    airtime_estimator:
        Callable ``(query, result) -> seconds`` used for throughput
        bookkeeping; a constant per-exchange estimate by default.
    max_retries:
        Retransmissions after a failed attempt.
    """

    transact: object
    airtime_estimator: object = None
    max_retries: int = 2
    stats: MacStats = field(default_factory=MacStats)

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError("max_retries must be non-negative")
        if self.airtime_estimator is None:
            self.airtime_estimator = lambda query, result: 0.3

    def poll(self, query: Query):
        """One query with retransmission; returns the last result."""
        result = None
        for attempt in range(self.max_retries + 1):
            result = self.transact(query)
            self.stats.attempts += 1
            if attempt > 0:
                self.stats.retries += 1
            self.stats.airtime_s += float(self.airtime_estimator(query, result))
            if getattr(result, "success", False):
                self.stats.successes += 1
                payload = getattr(
                    getattr(result, "demod", None), "packet", None
                )
                if payload is not None:
                    self.stats.payload_bits_delivered += 8 * len(payload.payload)
                break
        return result

    def run_schedule(self, queries) -> list:
        """Poll a sequence of queries round-robin; returns all results."""
        return [self.poll(q) for q in queries]
