"""The complete reader-side controller.

Ties the networking layers into the workflow a deployed reader actually
runs (the projector-side analogue of an RFID interrogator):

1. **configure** — push per-node settings over the air: uplink bitrate
   (``SET_BITRATE``) and recto-piezo channel (``SET_RESONANCE_MODE``),
   verifying each acknowledgement;
2. **poll** — run periodic sensing rounds through the retransmitting
   MAC, collecting decoded readings;
3. **manage** — track each node's health (HEALTHY -> DEGRADED ->
   QUARANTINED -> PROBING): repeated CRC failures downgrade the node's
   bitrate one rung (Fig. 8: slower backscatter buys SNR margin),
   unresponsive nodes are quarantined so they stop burning airtime and
   re-probed on an exponential backoff schedule;
4. **report** — aggregate per-node and network-wide delivery statistics
   plus availability/MTTR from the structured event log.

The controller is transport-agnostic: it drives any mapping of node
address to a ``transact(query) -> LinkResult``-shaped callable — the
waveform-level :class:`~repro.core.link.BackscatterLink` in simulations,
a fault injector stack from :mod:`repro.faults`, or a stub in tests.
Transport exceptions are contained by the MAC; a full polling campaign
never crashes because one exchange went wrong.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.faults.events import EventLog
from repro.net.health import HealthPolicy, HealthState, NodeHealth
from repro.net.mac import MacStats, PollingMac, RetryPolicy
from repro.obs.metrics import MetricsRegistry
from repro.obs.probe import get_probes
from repro.obs.trace import get_tracer
from repro.perf.fleet import FleetEngine
from repro.net.messages import (
    BITRATE_TABLE,
    Command,
    Query,
    Response,
    bitrate_code,
    lower_bitrate,
)


@dataclass
class NodeRecord:
    """What the reader knows about one node.

    Attributes
    ----------
    address:
        The node's address.
    bitrate:
        Last acknowledged uplink bitrate (None before configuration).
    resonance_mode:
        Last acknowledged recto-piezo mode (None before configuration).
    readings:
        Decoded :class:`~repro.net.messages.SensorReading` history.
    stats:
        Per-node MAC counters.
    health:
        The node's :class:`~repro.net.health.NodeHealth` state machine.
    pending_downgrade:
        A commanded bitrate downgrade that has not been acknowledged
        yet; retried before the node's next sensing poll.
    """

    address: int
    bitrate: float | None = None
    resonance_mode: int | None = None
    readings: list = field(default_factory=list)
    stats: MacStats = field(default_factory=MacStats)
    health: NodeHealth | None = None
    pending_downgrade: bool = False


class ReaderController:
    """Orchestrates configuration, polling, and health of a node set.

    Parameters
    ----------
    transports:
        Mapping ``{address: transact}`` where ``transact(query)`` returns
        an object with ``success`` and ``demod.packet``.
    max_retries:
        Retransmissions per query (ignored when ``retry_policy`` is
        given).
    retry_policy:
        Optional :class:`~repro.net.mac.RetryPolicy` shared by every
        node's MAC: exponential backoff with seeded jitter and a
        per-query timeout budget.
    health_policy:
        Thresholds for the per-node health state machine.
    log:
        Structured :class:`~repro.faults.events.EventLog`; a fresh one
        is created when omitted.  The reader's polling-round counter is
        the log's virtual clock.
    metrics:
        Optional :class:`~repro.obs.metrics.MetricsRegistry` shared by
        every node's MAC and bound to the event log (each recorded
        event also counts into ``pab_events_total``); the reader adds
        per-node health gauges and reading counters.
    ledgers:
        Optional ``{address: NodeEnergyHarness | EnergyLedger}``
        (:mod:`repro.obs.ledger`).  Harnesses are stepped once per
        polling round — the round's delivery outcome drives the node's
        DECODING/BACKSCATTER/IDLE segments — and their energy balances
        join :meth:`report` under ``"energy"``.
    slo:
        Optional :class:`~repro.obs.slo.SLOTracker` fed one observation
        per node per round (delivery, availability, and — when that
        node has an energy harness — sustainability); its report joins
        :meth:`report` under ``"slo"``.
    parallel:
        ``0`` (default) polls nodes sequentially.  ``N >= 1`` runs each
        round's node transactions on an ``N``-wide thread pool
        (:class:`~repro.perf.fleet.FleetEngine`): every node's events
        and metrics go to private staging sinks that are replayed into
        the shared log/registry in sorted-address order afterwards, so
        campaign reports, event logs, and metrics are byte-identical
        to sequential execution.  A seeded ``retry_policy`` is split
        into per-node jitter streams
        (:meth:`~repro.net.mac.RetryPolicy.for_node`) in *both* modes,
        so backoff draws are a function of the node alone — never of
        scheduling or polling order.  Rounds observed by an
        enabled tracer or probe registry fall back to sequential
        execution (same results; real per-stage timings).

    When either ``ledgers`` or ``slo`` is given the reader also keeps
    ``round_log`` — the per-round outcome records the campaign
    timeline (:mod:`repro.obs.timeline`) is built from.  Neither costs
    anything when omitted.
    """

    def __init__(
        self,
        transports: dict,
        *,
        max_retries: int = 2,
        retry_policy: RetryPolicy | None = None,
        health_policy: HealthPolicy | None = None,
        log: EventLog | None = None,
        metrics=None,
        ledgers: dict | None = None,
        slo=None,
        parallel: int = 0,
    ) -> None:
        if not transports:
            raise ValueError("need at least one node transport")
        self.log = log if log is not None else EventLog()
        self.metrics = metrics
        self.ledgers = (
            {int(addr): ledger for addr, ledger in ledgers.items()}
            if ledgers else {}
        )
        self.slo = slo
        self.round_log: list = []
        self._track_rounds = slo is not None or bool(self.ledgers)
        if metrics is not None and getattr(self.log, "metrics", None) is None:
            # Bind the fault/recovery event stream into the same
            # registry: one telemetry substrate, not two.
            self.log.metrics = metrics
        self.health_policy = (
            health_policy if health_policy is not None else HealthPolicy()
        )
        self._round = 0
        self.parallel = int(parallel)
        self._engine = (
            FleetEngine(max_workers=self.parallel)
            if self.parallel >= 1
            else None
        )
        self._macs = {
            int(addr): PollingMac(
                transact=fn,
                max_retries=max_retries,
                retry_policy=(
                    retry_policy.for_node(int(addr))
                    if retry_policy is not None
                    else None
                ),
                log=self.log,
                node=int(addr),
                metrics=metrics,
            )
            for addr, fn in transports.items()
        }
        self.nodes = {
            addr: NodeRecord(
                address=addr,
                health=NodeHealth(
                    node=addr, policy=self.health_policy, log=self.log
                ),
            )
            for addr in self._macs
        }

    # -- configuration ----------------------------------------------------------------

    def set_bitrate(self, address: int, bitrate: float) -> bool:
        """Command a node to a bitrate from the table; True on ack."""
        record = self._record(address)
        code = bitrate_code(bitrate)
        result = self._macs[address].poll(
            Query(destination=address, command=Command.SET_BITRATE, argument=code)
        )
        record.stats = self._macs[address].stats
        if getattr(result, "success", False):
            record.bitrate = bitrate
            record.pending_downgrade = False
            return True
        return False

    def set_resonance_mode(self, address: int, mode: int) -> bool:
        """Command a node to a recto-piezo mode; True on ack."""
        record = self._record(address)
        result = self._macs[address].poll(
            Query(
                destination=address,
                command=Command.SET_RESONANCE_MODE,
                argument=mode,
            )
        )
        record.stats = self._macs[address].stats
        if getattr(result, "success", False):
            record.resonance_mode = mode
            return True
        return False

    # -- polling ----------------------------------------------------------------------

    def poll(self, address: int, command: Command, *, _log=None, _metrics=None):
        """One sensing query to one node; stores the decoded reading.

        The outcome feeds the node's health state machine: entering
        DEGRADED triggers a bitrate downgrade, a successful probe of a
        quarantined node brings it back to HEALTHY.  Malformed replies
        that somehow pass the CRC are contained as failures rather than
        propagating parse errors.

        ``_log``/``_metrics`` are the parallel round's staging sinks;
        callers never pass them directly.
        """
        log = _log if _log is not None else self.log
        metrics = _metrics if _metrics is not None else self.metrics
        record = self._record(address)
        if record.pending_downgrade and record.health.state is HealthState.DEGRADED:
            self._downgrade_bitrate(address, _log=log)
        mac = self._macs[address]
        result = mac.poll(Query(destination=address, command=command))
        record.stats = mac.stats
        success = getattr(result, "success", False)
        reading = None
        if success:
            try:
                response = Response.from_packet(result.demod.packet)
                reading = response.reading()
            except (AttributeError, TypeError, ValueError):
                success = False
            else:
                record.readings.append(reading)
        action = record.health.on_result(success, float(self._round))
        if action == "degrade":
            self._downgrade_bitrate(address, _log=log)
        elif action == "recovered":
            record.pending_downgrade = False
            log.record(self._round, address, "recovery")
        if metrics is not None:
            if reading is not None and success:
                metrics.counter(
                    "pab_reader_readings_total", node=address
                ).inc()
            metrics.gauge("pab_node_health_code", node=address).set(
                record.health.state.code
            )
        return reading if success else None

    def poll_round(self, command: Command) -> dict:
        """Poll every node once; returns ``{address: reading | None}``.

        Quarantined nodes are skipped (their silence must not burn
        airtime) until their probe backoff elapses, at which point they
        get one PING; an acknowledged probe restores them to HEALTHY.

        With ``parallel=N`` the node transactions run concurrently on
        the fleet engine and the round's telemetry is merged back in
        sorted-address order (see :meth:`_poll_round_parallel`), unless
        an enabled tracer or probe registry needs the serialised view.
        """
        if (
            self._engine is not None
            and not get_tracer().enabled
            and not get_probes().enabled
        ):
            return self._poll_round_parallel(command)
        t = float(self._round)
        out = {}
        skipped_addrs = set()
        with get_tracer().span(
            "reader.poll_round", round=self._round, nodes=len(self._macs)
        ) as span:
            skipped = 0
            for addr in sorted(self._macs):
                health = self.nodes[addr].health
                if health.state is HealthState.QUARANTINED:
                    if health.due_for_probe(t):
                        health.start_probe(t)
                        self.log.record(t, addr, "probe")
                        out[addr] = self.poll(addr, Command.PING)
                    else:
                        out[addr] = None
                        skipped += 1
                        skipped_addrs.add(addr)
                    continue
                out[addr] = self.poll(addr, command)
            span.set(
                delivered=sum(1 for r in out.values() if r is not None),
                skipped_quarantined=skipped,
            )
        if self._track_rounds:
            self._observe_round(t, out, skipped_addrs)
        if self.metrics is not None:
            self.metrics.counter("pab_reader_rounds_total").inc()
        self._round += 1
        return out

    def _poll_round_parallel(self, command: Command) -> dict:
        """One polling round across the fleet engine's thread pool.

        Each node's transaction runs in a worker with *staging* sinks:
        a private :class:`EventLog` (so event ordering can't interleave
        across nodes) and a private :class:`MetricsRegistry` (so the
        non-atomic counter increments can't race).  A node's MAC and
        health machine are touched only by that node's worker, so
        repointing their sinks for the duration of the unit is safe.

        The merge replays each staging log into the shared log and
        absorbs each staging registry in sorted-address order — the
        exact order the sequential loop visits nodes — which renumbers
        event sequence numbers and applies gauge writes exactly as
        sequential execution would have.  The result dict, event log,
        metrics, and downstream reports are byte-identical to
        ``parallel=0`` for the same seed.
        """
        t = float(self._round)

        def make_unit(addr: int):
            def unit():
                stage_log = EventLog()
                stage_metrics = (
                    MetricsRegistry() if self.metrics is not None else None
                )
                mac = self._macs[addr]
                health = self.nodes[addr].health
                saved = (mac.log, mac.metrics, health.log)
                mac.log, mac.metrics, health.log = (
                    stage_log, stage_metrics, stage_log,
                )
                try:
                    if health.state is HealthState.QUARANTINED:
                        if health.due_for_probe(t):
                            health.start_probe(t)
                            stage_log.record(t, addr, "probe")
                            reading = self.poll(
                                addr, Command.PING,
                                _log=stage_log, _metrics=stage_metrics,
                            )
                        else:
                            return None, stage_log, stage_metrics, True
                    else:
                        reading = self.poll(
                            addr, command,
                            _log=stage_log, _metrics=stage_metrics,
                        )
                    return reading, stage_log, stage_metrics, False
                finally:
                    mac.log, mac.metrics, health.log = saved

            return unit

        units = {addr: make_unit(addr) for addr in self._macs}
        out = {}
        skipped_addrs = set()
        with get_tracer().span(
            "reader.poll_round", round=self._round, nodes=len(self._macs)
        ) as span:
            for addr, (reading, stage_log, stage_metrics, was_skipped) in (
                self._engine.run_round(units)
            ):
                out[addr] = reading
                if was_skipped:
                    skipped_addrs.add(addr)
                # Replay: record() renumbers seq and fires the bound
                # pab_events_total counters (the staging log was
                # unbound, so each event is counted exactly once).
                for e in stage_log.events:
                    self.log.record(e.t, e.node, e.kind, **dict(e.detail))
                if stage_metrics is not None:
                    self.metrics.absorb(stage_metrics)
            span.set(
                delivered=sum(1 for r in out.values() if r is not None),
                skipped_quarantined=len(skipped_addrs),
            )
        if self._track_rounds:
            self._observe_round(t, out, skipped_addrs)
        if self.metrics is not None:
            self.metrics.counter("pab_reader_rounds_total").inc()
        self._round += 1
        return out

    def _observe_round(self, t: float, out: dict, skipped: set) -> None:
        """Feed energy harnesses + SLO tracker and log the round."""
        outcomes = {}
        for addr in sorted(self._macs):
            health = self.nodes[addr].health.state
            info = {
                "polled": addr not in skipped,
                "delivered": out.get(addr) is not None,
                "up": health in (HealthState.HEALTHY, HealthState.DEGRADED),
                "health": health.value,
            }
            harness = self.ledgers.get(addr)
            if harness is not None and hasattr(harness, "on_poll_round"):
                energy = harness.on_poll_round(
                    t,
                    polled=info["polled"],
                    success=info["delivered"],
                    bitrate=self.nodes[addr].bitrate,
                )
                info["sustainable"] = energy["sustainable"]
                info["soc_v"] = energy["soc_v"]
            outcomes[addr] = info
        record = {"t": t, "outcomes": outcomes}
        if self.slo is not None:
            self.slo.observe_round(t, outcomes)
            record["burn"] = {
                objective: self.slo.burn_rate(objective)
                for objective in sorted(self.slo.targets)
            }
        self.round_log.append(record)

    def run_schedule(self, command: Command, rounds: int) -> dict:
        """Run several polling rounds; returns delivery counts per node."""
        if rounds < 1:
            raise ValueError("need at least one round")
        delivered = {addr: 0 for addr in self._macs}
        for _ in range(rounds):
            for addr, reading in self.poll_round(command).items():
                if reading is not None:
                    delivered[addr] += 1
        return delivered

    def run_campaign(self, command: Command, rounds: int) -> dict:
        """A full resilient campaign: ``rounds`` rounds, then a report.

        Unlike raw :meth:`run_schedule` this is the deployment loop:
        transport exceptions are contained, dead nodes are quarantined
        and re-probed, and the return value is the full
        :meth:`report` including availability and MTTR per node.
        """
        self.run_schedule(command, rounds)
        return self.report()

    # -- health actions ----------------------------------------------------------------

    def _downgrade_bitrate(self, address: int, *, _log=None) -> bool:
        """Step the node one rung down the rate ladder via SET_BITRATE.

        The command goes through the MAC but bypasses health accounting
        (a failed downgrade must not recursively degrade the node);
        unacknowledged downgrades are retried before the node's next
        sensing poll.  ``_log`` is the parallel round's staging log.
        """
        log = _log if _log is not None else self.log
        record = self.nodes[address]
        current = record.bitrate
        target = lower_bitrate(current) if current is not None else BITRATE_TABLE[0]
        if target is None:
            record.pending_downgrade = False
            log.record(
                self._round, address, "bitrate", action="at_floor", bitrate=current
            )
            return False
        mac = self._macs[address]
        result = mac.poll(
            Query(
                destination=address,
                command=Command.SET_BITRATE,
                argument=bitrate_code(target),
            )
        )
        record.stats = mac.stats
        acked = getattr(result, "success", False)
        log.record(
            self._round,
            address,
            "bitrate",
            action="downgrade",
            to=f"{target:g}",
            acked=acked,
        )
        if acked:
            record.bitrate = target
            record.pending_downgrade = False
        else:
            record.pending_downgrade = True
        return acked

    # -- reporting -----------------------------------------------------------------------

    def summary(self) -> list[dict]:
        """Per-node status: configuration, deliveries, MAC counters."""
        out = []
        for addr in sorted(self.nodes):
            record = self.nodes[addr]
            out.append(
                {
                    "address": addr,
                    "bitrate": record.bitrate,
                    "resonance_mode": record.resonance_mode,
                    "readings": len(record.readings),
                    "attempts": record.stats.attempts,
                    "delivery_ratio": record.stats.delivery_ratio,
                    "health": record.health.state.value,
                }
            )
        return out

    def report(self) -> dict:
        """Network-wide report: merged MAC counters + per-node health.

        The network totals use :meth:`~repro.net.mac.MacStats.merge`;
        availability and MTTR come from the structured event log, in
        units of polling rounds.
        """
        end_t = float(self._round)
        per_node = {}
        for addr in sorted(self.nodes):
            record = self.nodes[addr]
            stats = self._macs[addr].stats
            per_node[addr] = {
                "health": record.health.state.value,
                "bitrate": record.bitrate,
                "readings": len(record.readings),
                "attempts": stats.attempts,
                "successes": stats.successes,
                "retries": stats.retries,
                "exceptions": stats.exceptions,
                "delivery_ratio": stats.delivery_ratio,
                "availability": self.log.availability(addr, end_t=end_t),
                "mttr_rounds": self.log.mttr(addr),
            }
        merged = MacStats().merge(*(self._macs[a].stats for a in sorted(self._macs)))
        report = {
            "rounds": self._round,
            "network": {
                "attempts": merged.attempts,
                "successes": merged.successes,
                "retries": merged.retries,
                "exceptions": merged.exceptions,
                "delivery_ratio": merged.delivery_ratio,
                "goodput_bps": merged.goodput_bps,
                "airtime_s": merged.airtime_s,
                "backoff_s": merged.backoff_s,
            },
            "nodes": per_node,
            "events": len(self.log),
        }
        if self.ledgers:
            report["energy"] = {
                addr: harness.summary()
                for addr, harness in sorted(self.ledgers.items())
            }
            if self.metrics is not None:
                for harness in self.ledgers.values():
                    harness.to_metrics(self.metrics)
        if self.slo is not None:
            report["slo"] = self.slo.report()
            if self.metrics is not None:
                self.slo.to_metrics(self.metrics)
        return report

    def _record(self, address: int) -> NodeRecord:
        if address not in self.nodes:
            raise KeyError(f"unknown node address {address}")
        return self.nodes[address]
