"""The complete reader-side controller.

Ties the networking layers into the workflow a deployed reader actually
runs (the projector-side analogue of an RFID interrogator):

1. **configure** — push per-node settings over the air: uplink bitrate
   (``SET_BITRATE``) and recto-piezo channel (``SET_RESONANCE_MODE``),
   verifying each acknowledgement;
2. **poll** — run periodic sensing rounds through the retransmitting
   MAC, collecting decoded readings;
3. **manage** — track each node's health (HEALTHY -> DEGRADED ->
   QUARANTINED -> PROBING): repeated CRC failures downgrade the node's
   bitrate one rung (Fig. 8: slower backscatter buys SNR margin),
   unresponsive nodes are quarantined so they stop burning airtime and
   re-probed on an exponential backoff schedule;
4. **report** — aggregate per-node and network-wide delivery statistics
   plus availability/MTTR from the structured event log.

The controller is transport-agnostic: it drives any mapping of node
address to a ``transact(query) -> LinkResult``-shaped callable — the
waveform-level :class:`~repro.core.link.BackscatterLink` in simulations,
a fault injector stack from :mod:`repro.faults`, or a stub in tests.
Transport exceptions are contained by the MAC; a full polling campaign
never crashes because one exchange went wrong.

Campaigns are additionally crash-safe (:mod:`repro.resilience`):

* every poll runs under a **supervisor** that restarts a crashed worker
  with backoff and, past the restart budget, contains the crash as a
  fault event + health failure instead of aborting the round;
* shards whose workers keep crashing are **quarantined** (skipped, and
  reported) so one wedged transport cannot stall the fleet;
* with a :class:`~repro.resilience.watchdog.WatchdogPolicy`, parallel
  rounds abandon stragglers at their wall-clock deadline and book a
  ``watchdog_timeout`` fault instead of hanging;
* :meth:`ReaderController.snapshot` / :meth:`ReaderController.restore`
  serialise the complete campaign state, and
  :meth:`ReaderController.run_campaign` can write periodic checkpoints
  and resume from one with byte-identical reports and digests.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.faults.events import Event, EventLog
from repro.net.health import HealthPolicy, HealthState, NodeHealth
from repro.net.mac import MacStats, PollingMac, RetryPolicy
from repro.obs.metrics import Counter, Gauge, MetricsRegistry
from repro.obs.postmortem import DecodePostmortem
from repro.obs.probe import get_probes
from repro.obs.analytics import publish_anomalies
from repro.obs.profiler import get_profiler
from repro.obs.stream import get_bus
from repro.obs.trace import get_tracer
from repro.perf.fleet import FleetEngine, auto_parallel_mode
from repro.resilience.checkpoint import (
    checkpoint_path,
    read_checkpoint,
    recorder_path,
    write_checkpoint,
)
from repro.resilience.snapshot import restore_transport, transport_state
from repro.resilience.supervisor import CampaignAbort, SupervisorPolicy, supervise
from repro.resilience.watchdog import WatchdogPolicy, WatchdogTimeout
from repro.net.messages import (
    BITRATE_TABLE,
    Command,
    Query,
    Response,
    SensorReading,
    bitrate_code,
    lower_bitrate,
)


@dataclass
class NodeRecord:
    """What the reader knows about one node.

    Attributes
    ----------
    address:
        The node's address.
    bitrate:
        Last acknowledged uplink bitrate (None before configuration).
    resonance_mode:
        Last acknowledged recto-piezo mode (None before configuration).
    readings:
        Decoded :class:`~repro.net.messages.SensorReading` history.
    stats:
        Per-node MAC counters.
    health:
        The node's :class:`~repro.net.health.NodeHealth` state machine.
    pending_downgrade:
        A commanded bitrate downgrade that has not been acknowledged
        yet; retried before the node's next sensing poll.
    """

    address: int
    bitrate: float | None = None
    resonance_mode: int | None = None
    readings: list = field(default_factory=list)
    stats: MacStats = field(default_factory=MacStats)
    health: NodeHealth | None = None
    pending_downgrade: bool = False


class ReaderController:
    """Orchestrates configuration, polling, and health of a node set.

    Parameters
    ----------
    transports:
        Mapping ``{address: transact}`` where ``transact(query)`` returns
        an object with ``success`` and ``demod.packet``.
    max_retries:
        Retransmissions per query (ignored when ``retry_policy`` is
        given).
    retry_policy:
        Optional :class:`~repro.net.mac.RetryPolicy` shared by every
        node's MAC: exponential backoff with seeded jitter and a
        per-query timeout budget.
    health_policy:
        Thresholds for the per-node health state machine.
    log:
        Structured :class:`~repro.faults.events.EventLog`; a fresh one
        is created when omitted.  The reader's polling-round counter is
        the log's virtual clock.
    metrics:
        Optional :class:`~repro.obs.metrics.MetricsRegistry` shared by
        every node's MAC and bound to the event log (each recorded
        event also counts into ``pab_events_total``); the reader adds
        per-node health gauges and reading counters.
    ledgers:
        Optional ``{address: NodeEnergyHarness | EnergyLedger}``
        (:mod:`repro.obs.ledger`).  Harnesses are stepped once per
        polling round — the round's delivery outcome drives the node's
        DECODING/BACKSCATTER/IDLE segments — and their energy balances
        join :meth:`report` under ``"energy"``.
    slo:
        Optional :class:`~repro.obs.slo.SLOTracker` fed one observation
        per node per round (delivery, availability, and — when that
        node has an energy harness — sustainability); its report joins
        :meth:`report` under ``"slo"``.
    supervisor:
        :class:`~repro.resilience.supervisor.SupervisorPolicy` for the
        per-poll worker supervisor (defaults to the stock policy).  A
        :class:`~repro.resilience.supervisor.WorkerCrash` escaping a
        poll is retried up to ``max_restarts`` times with backoff; a
        worker that exhausts its restarts books a ``worker_crash``
        fault + post-mortem and fails the node's health machine, and
        ``quarantine_after`` consecutive crashed rounds quarantine the
        node's shard entirely (skipped, surfaced in
        :meth:`report` under ``"shards"``).  Campaigns never abort on a
        worker crash; only
        :class:`~repro.resilience.supervisor.CampaignAbort` (the
        SIGKILL-equivalent) propagates.
    watchdog:
        Optional :class:`~repro.resilience.watchdog.WatchdogPolicy`.
        Enforced by the fleet engine in parallel mode: a transaction
        (or round) that outlives its wall-clock budget is abandoned and
        booked as a ``watchdog_timeout`` fault + health failure instead
        of hanging the campaign.  Watchdog-tripped runs trade byte-
        reproducibility for liveness (wall-clock is not virtual time).
    parallel:
        ``0`` (default) polls nodes sequentially.  ``N >= 1`` runs each
        round's node transactions on an ``N``-wide thread pool
        (:class:`~repro.perf.fleet.FleetEngine`): every node's events
        and metrics go to private staging sinks that are replayed into
        the shared log/registry in sorted-address order afterwards, so
        campaign reports, event logs, and metrics are byte-identical
        to sequential execution.  A seeded ``retry_policy`` is split
        into per-node jitter streams
        (:meth:`~repro.net.mac.RetryPolicy.for_node`) in *both* modes,
        so backoff draws are a function of the node alone — never of
        scheduling or polling order.  Rounds observed by an
        enabled tracer or probe registry fall back to sequential
        execution (same results; real per-stage timings).
        ``"auto"`` picks between the two from benchmark evidence
        (:func:`~repro.perf.fleet.auto_parallel_width`): fleets below
        the observed thread crossover in ``BENCH_perf.json`` stay
        cached-sequential, larger ones get a pool; the choice is
        logged on ``repro.perf``.
    bus:
        Optional :class:`~repro.obs.stream.TelemetryBus`; defaults to
        the process-global bus (disabled unless installed via
        ``set_bus``/``use_bus``).  When enabled, the reader binds it to
        the event log and publishes per-round ``soc``/``slo``/
        ``metrics``/``round`` events plus ``checkpoint`` markers and
        engine-level ``postmortem`` verdicts, flushing the bus's sinks
        once per round.  All publication happens on the merge side
        (after the parallel replay), so streams are byte-identical
        across sequential, parallel, and resumed executions.

    When either ``ledgers`` or ``slo`` is given the reader also keeps
    ``round_log`` — the per-round outcome records the campaign
    timeline (:mod:`repro.obs.timeline`) is built from.  Neither costs
    anything when omitted.
    """

    def __init__(
        self,
        transports: dict,
        *,
        max_retries: int = 2,
        retry_policy: RetryPolicy | None = None,
        health_policy: HealthPolicy | None = None,
        log: EventLog | None = None,
        metrics=None,
        ledgers: dict | None = None,
        slo=None,
        parallel: int | str = 0,
        supervisor: SupervisorPolicy | None = None,
        watchdog: WatchdogPolicy | None = None,
        bus=None,
        analytics=None,
    ) -> None:
        if not transports:
            raise ValueError("need at least one node transport")
        if parallel == "auto":
            parallel = auto_parallel_mode(len(transports))
        batch_mode = parallel == "batch"
        if batch_mode:
            # The batched engine is a prepass over the *sequential*
            # round, not a pool: the round itself runs with parallel=0
            # and replays the precomputed legs through the leg memos.
            parallel = 0
        self.log = log if log is not None else EventLog()
        self.metrics = metrics
        #: Telemetry bus (:mod:`repro.obs.stream`).  Defaults to the
        #: process-global bus, which is disabled unless the CLI (or a
        #: test) installed an enabled one — the publish calls below all
        #: short-circuit in that case.  Round telemetry is published on
        #: the merge side only (after the sorted-order replay in
        #: parallel mode), so the stream is byte-identical across
        #: sequential, parallel, and resumed executions.
        self.bus = bus if bus is not None else get_bus()
        if self.bus.enabled and getattr(self.log, "bus", None) is None:
            self.log.bus = self.bus
        self._stream_metrics_state: dict = {}   # not checkpointed: see _publish_metrics
        #: Optional :class:`repro.obs.analytics.AnomalyMonitor`.  Fed
        #: once per round on the merge side (like the stream publish
        #: calls), so the anomaly sequence is identical across
        #: sequential, parallel, and resumed executions.  Costs one
        #: ``is None`` check per round when absent.
        self.analytics = analytics
        self._checkpoint_dir = None
        #: Path of the last flight-recorder dump (set on CampaignAbort
        #: or a watchdog kill when the bus carries a recorder sink).
        self.last_recorder_dump = None
        self.ledgers = (
            {int(addr): ledger for addr, ledger in ledgers.items()}
            if ledgers else {}
        )
        self.slo = slo
        self.round_log: list = []
        self._track_rounds = slo is not None or bool(self.ledgers)
        if metrics is not None and getattr(self.log, "metrics", None) is None:
            # Bind the fault/recovery event stream into the same
            # registry: one telemetry substrate, not two.
            self.log.metrics = metrics
        self.health_policy = (
            health_policy if health_policy is not None else HealthPolicy()
        )
        self._round = 0
        self.parallel = int(parallel)
        self._engine = (
            FleetEngine(max_workers=self.parallel)
            if self.parallel >= 1
            else None
        )
        #: Execution-mode label for bench/profile attribution.
        self.parallel_mode = (
            "batch" if batch_mode
            else ("threads" if self.parallel >= 1 else "sequential")
        )
        self._batch_engine = None
        self._campaign_rounds = None
        if batch_mode:
            from repro.perf.batch import BatchedLinkEngine

            self._batch_engine = BatchedLinkEngine(self)
        self.supervisor = (
            supervisor if supervisor is not None else SupervisorPolicy()
        )
        self.watchdog = watchdog
        #: Post-mortems of engine-level faults (worker crashes, watchdog
        #: timeouts) — kept here because those faults happen outside the
        #: probe-observed waveform pipeline.  Not part of :meth:`report`.
        self.postmortems: list = []
        self._shard_crashes: dict = {}      # addr -> crashed rounds (lifetime)
        self._crash_streak: dict = {}       # addr -> consecutive crashed rounds
        self._quarantined_shards: set = set()
        self._macs = {
            int(addr): PollingMac(
                transact=fn,
                max_retries=max_retries,
                retry_policy=(
                    retry_policy.for_node(int(addr))
                    if retry_policy is not None
                    else None
                ),
                log=self.log,
                node=int(addr),
                metrics=metrics,
            )
            for addr, fn in transports.items()
        }
        self.nodes = {
            addr: NodeRecord(
                address=addr,
                health=NodeHealth(
                    node=addr, policy=self.health_policy, log=self.log
                ),
            )
            for addr in self._macs
        }

    # -- configuration ----------------------------------------------------------------

    def set_bitrate(self, address: int, bitrate: float) -> bool:
        """Command a node to a bitrate from the table; True on ack."""
        record = self._record(address)
        code = bitrate_code(bitrate)
        result = self._macs[address].poll(
            Query(destination=address, command=Command.SET_BITRATE, argument=code)
        )
        record.stats = self._macs[address].stats
        if getattr(result, "success", False):
            record.bitrate = bitrate
            record.pending_downgrade = False
            return True
        return False

    def set_resonance_mode(self, address: int, mode: int) -> bool:
        """Command a node to a recto-piezo mode; True on ack."""
        record = self._record(address)
        result = self._macs[address].poll(
            Query(
                destination=address,
                command=Command.SET_RESONANCE_MODE,
                argument=mode,
            )
        )
        record.stats = self._macs[address].stats
        if getattr(result, "success", False):
            record.resonance_mode = mode
            return True
        return False

    # -- polling ----------------------------------------------------------------------

    def poll(self, address: int, command: Command, *, _log=None, _metrics=None):
        """One sensing query to one node; stores the decoded reading.

        The outcome feeds the node's health state machine: entering
        DEGRADED triggers a bitrate downgrade, a successful probe of a
        quarantined node brings it back to HEALTHY.  Malformed replies
        that somehow pass the CRC are contained as failures rather than
        propagating parse errors.

        ``_log``/``_metrics`` are the parallel round's staging sinks;
        callers never pass them directly.
        """
        log = _log if _log is not None else self.log
        metrics = _metrics if _metrics is not None else self.metrics
        record = self._record(address)
        if record.pending_downgrade and record.health.state is HealthState.DEGRADED:
            self._downgrade_bitrate(address, _log=log)
        mac = self._macs[address]
        result = mac.poll(Query(destination=address, command=command))
        record.stats = mac.stats
        success = getattr(result, "success", False)
        reading = None
        if success:
            try:
                response = Response.from_packet(result.demod.packet)
                reading = response.reading()
            except (AttributeError, TypeError, ValueError):
                success = False
            else:
                record.readings.append(reading)
        action = record.health.on_result(success, float(self._round))
        if action == "degrade":
            self._downgrade_bitrate(address, _log=log)
        elif action == "recovered":
            record.pending_downgrade = False
            log.record(self._round, address, "recovery")
        if metrics is not None:
            if reading is not None and success:
                metrics.counter(
                    "pab_reader_readings_total", node=address
                ).inc()
            metrics.gauge("pab_node_health_code", node=address).set(
                record.health.state.code
            )
        return reading if success else None

    def poll_round(self, command: Command) -> dict:
        """Poll every node once; returns ``{address: reading | None}``.

        Quarantined nodes are skipped (their silence must not burn
        airtime) until their probe backoff elapses, at which point they
        get one PING; an acknowledged probe restores them to HEALTHY.

        With ``parallel=N`` the node transactions run concurrently on
        the fleet engine and the round's telemetry is merged back in
        sorted-address order (see :meth:`_poll_round_parallel`), unless
        an enabled tracer or probe registry needs the serialised view.
        """
        if (
            self._engine is not None
            and not get_tracer().enabled
            and not get_probes().enabled
        ):
            return self._poll_round_parallel(command)
        t = float(self._round)
        out = {}
        skipped_addrs = set()
        if self._batch_engine is not None:
            # Batched prepass: seed the leg memos and demod hints for
            # everything the coming window of rounds will compute, as
            # stacked matrix kernels.  The sequential loop below then
            # replays the round byte-identically (it bails out
            # internally whenever the memo path itself is inactive).
            remaining = None
            if self._campaign_rounds is not None:
                remaining = max(1, int(self._campaign_rounds) - self._round)
            self._batch_engine.prewarm_round(command, remaining=remaining)
        with get_tracer().span(
            "reader.poll_round", round=self._round, nodes=len(self._macs)
        ) as span:
            skipped = 0
            for addr in sorted(self._macs):
                if addr in self._quarantined_shards:
                    out[addr] = None
                    skipped += 1
                    skipped_addrs.add(addr)
                    continue
                health = self.nodes[addr].health
                if health.state is HealthState.QUARANTINED:
                    if health.due_for_probe(t):
                        health.start_probe(t)
                        self.log.record(t, addr, "probe")
                        poll_command = Command.PING
                    else:
                        out[addr] = None
                        skipped += 1
                        skipped_addrs.add(addr)
                        continue
                else:
                    poll_command = command
                reading, outcome = supervise(
                    lambda a=addr, c=poll_command: self.poll(a, c),
                    self.supervisor,
                )
                out[addr] = reading
                self._note_supervision(addr, t, outcome)
            span.set(
                delivered=sum(1 for r in out.values() if r is not None),
                skipped_quarantined=skipped,
            )
        self._finish_round(t, out, skipped_addrs)
        return out

    def _poll_round_parallel(self, command: Command) -> dict:
        """One polling round across the fleet engine's thread pool.

        Each node's transaction runs in a worker with *staging* sinks:
        a private :class:`EventLog` (so event ordering can't interleave
        across nodes) and a private :class:`MetricsRegistry` (so the
        non-atomic counter increments can't race).  A node's MAC and
        health machine are touched only by that node's worker, so
        repointing their sinks for the duration of the unit is safe.

        The merge replays each staging log into the shared log and
        absorbs each staging registry in sorted-address order — the
        exact order the sequential loop visits nodes — which renumbers
        event sequence numbers and applies gauge writes exactly as
        sequential execution would have.  The result dict, event log,
        metrics, and downstream reports are byte-identical to
        ``parallel=0`` for the same seed.
        """
        t = float(self._round)

        def make_unit(addr: int):
            def unit():
                stage_log = EventLog()
                stage_metrics = (
                    MetricsRegistry() if self.metrics is not None else None
                )
                mac = self._macs[addr]
                health = self.nodes[addr].health
                saved = (mac.log, mac.metrics, health.log)
                mac.log, mac.metrics, health.log = (
                    stage_log, stage_metrics, stage_log,
                )
                staged_chain = self._stage_transport_log(mac, stage_log)
                try:
                    if health.state is HealthState.QUARANTINED:
                        if health.due_for_probe(t):
                            health.start_probe(t)
                            stage_log.record(t, addr, "probe")
                            poll_command = Command.PING
                        else:
                            return None, stage_log, stage_metrics, True, None
                    else:
                        poll_command = command
                    # Supervised restarts re-poll into the SAME staging
                    # sinks, so the merged telemetry is identical to what
                    # the sequential supervisor produces.
                    reading, outcome = supervise(
                        lambda: self.poll(
                            addr, poll_command,
                            _log=stage_log, _metrics=stage_metrics,
                        ),
                        self.supervisor,
                    )
                    return reading, stage_log, stage_metrics, False, outcome
                finally:
                    mac.log, mac.metrics, health.log = saved
                    for obj in staged_chain:
                        obj.log = self.log

            return unit

        units = {
            addr: make_unit(addr)
            for addr in self._macs
            if addr not in self._quarantined_shards
        }
        out = {}
        skipped_addrs = set()
        with get_tracer().span(
            "reader.poll_round", round=self._round, nodes=len(self._macs)
        ) as span:
            for addr in sorted(self._quarantined_shards):
                if addr in self._macs:
                    out[addr] = None
                    skipped_addrs.add(addr)
            for addr, payload in self._engine.run_round(
                units, watchdog=self.watchdog
            ):
                if isinstance(payload, WatchdogTimeout):
                    out[addr] = None
                    self._note_watchdog(addr, t, payload)
                    continue
                reading, stage_log, stage_metrics, was_skipped, outcome = payload
                out[addr] = reading
                if was_skipped:
                    skipped_addrs.add(addr)
                # Replay: record() renumbers seq and fires the bound
                # pab_events_total counters (the staging log was
                # unbound, so each event is counted exactly once).
                for e in stage_log.events:
                    self.log.record(e.t, e.node, e.kind, **dict(e.detail))
                if stage_metrics is not None:
                    self.metrics.absorb(stage_metrics)
                self._note_supervision(addr, t, outcome)
            span.set(
                delivered=sum(1 for r in out.values() if r is not None),
                skipped_quarantined=len(skipped_addrs),
            )
        self._finish_round(t, out, skipped_addrs)
        return out

    def _stage_transport_log(self, mac, stage_log) -> list:
        """Repoint shared-log references along a node's transport chain.

        Fault injectors (:mod:`repro.faults.injectors`, including the
        supervisor's :class:`WorkerCrashInjector`) are constructed with
        the *shared* event log and write fault events from inside the
        transaction — which, in a worker thread, would interleave with
        other nodes' events nondeterministically.  Walk the ``transact``
        chain via ``inner`` and swap every ``log`` attribute that *is*
        the shared log to the worker's staging log; the caller restores
        them in its ``finally``.  Returns the objects that were staged.
        """
        staged = []
        obj = mac.transact
        seen = set()
        while obj is not None and id(obj) not in seen:
            seen.add(id(obj))
            if getattr(obj, "log", None) is self.log:
                obj.log = stage_log
                staged.append(obj)
            obj = getattr(obj, "inner", None)
        return staged

    def _observe_round(self, t: float, out: dict, skipped: set) -> dict:
        """Feed energy harnesses + SLO tracker and log the round."""
        outcomes = {}
        for addr in sorted(self._macs):
            health = self.nodes[addr].health.state
            info = {
                "polled": addr not in skipped,
                "delivered": out.get(addr) is not None,
                "up": health in (HealthState.HEALTHY, HealthState.DEGRADED),
                "health": health.value,
            }
            harness = self.ledgers.get(addr)
            if harness is not None and hasattr(harness, "on_poll_round"):
                energy = harness.on_poll_round(
                    t,
                    polled=info["polled"],
                    success=info["delivered"],
                    bitrate=self.nodes[addr].bitrate,
                )
                info["sustainable"] = energy["sustainable"]
                info["soc_v"] = energy["soc_v"]
            outcomes[addr] = info
        record = {"t": t, "outcomes": outcomes}
        if self.slo is not None:
            self.slo.observe_round(t, outcomes)
            record["burn"] = {
                objective: self.slo.burn_rate(objective)
                for objective in sorted(self.slo.targets)
            }
        self.round_log.append(record)
        return record

    def _finish_round(self, t: float, out: dict, skipped: set) -> None:
        """Shared tail of both poll_round paths: round bookkeeping plus
        (when an enabled bus is attached) the round's stream events and
        sink flush.  Runs after the parallel merge, so the published
        stream is identical to sequential execution."""
        record = None
        if self._track_rounds:
            record = self._observe_round(t, out, skipped)
        if self.metrics is not None:
            self.metrics.counter("pab_reader_rounds_total").inc()
        if self.bus.enabled:
            self._publish_round(t, out, skipped, record)
        profiler = get_profiler()
        profile_snapshot = None
        if profiler.enabled:
            # Merge side, after the parallel replay: sequential and
            # parallel campaigns mark identical round boundaries, so a
            # profile's structure (and, under a virtual clock, its
            # bytes) does not depend on the execution mode.
            profile_snapshot = profiler.on_round(t)
            if self.bus.enabled:
                self.bus.publish(
                    "profile", t=t, source="profiler", data=profile_snapshot
                )
        if self.analytics is not None and self.analytics.enabled:
            if record is None:
                # Rounds without ledgers/SLO still feed delivery series.
                record = {
                    "t": t,
                    "outcomes": {
                        addr: {
                            "polled": addr not in skipped,
                            "delivered": out.get(addr) is not None,
                        }
                        for addr in sorted(self._macs)
                    },
                }
            detections = self.analytics.observe_campaign_round(
                t, record, registry=self.metrics, profile=profile_snapshot
            )
            if detections:
                publish_anomalies(
                    detections, t=t, bus=self.bus, metrics=self.metrics
                )
        if self.bus.enabled:
            self.bus.flush()
        self._round += 1

    def _publish_round(self, t: float, out: dict, skipped: set, record) -> None:
        """Publish one round's telemetry events (sorted-address order).

        Per round: one ``soc`` event per energy harness that recorded
        this round, one ``slo`` sample, one ``metrics`` delta, and one
        ``round`` record carrying the timeline outcomes plus each
        node's cumulative MAC counters.  Everything is derived from the
        already-merged shared sinks, never from worker state.
        """
        rnd = int(t)
        for addr in sorted(self.ledgers):
            harness = self.ledgers[addr]
            ledger = getattr(harness, "ledger", harness)
            history = getattr(ledger, "round_history", None)
            if history and int(history[-1]["t"]) == rnd:
                self.bus.publish(
                    "soc", t=t, node=addr, source="ledger",
                    data=dict(history[-1]),
                )
        if self.slo is not None:
            self.bus.publish(
                "slo", t=t, source="slo", data=self.slo.stream_sample()
            )
        self._publish_metrics(t)
        if record is None:
            # Rounds without ledgers/SLO still stream delivery outcomes.
            record = {
                "t": t,
                "outcomes": {
                    addr: {
                        "polled": addr not in skipped,
                        "delivered": out.get(addr) is not None,
                    }
                    for addr in sorted(self._macs)
                },
            }
        data = dict(record)    # shallow: round_log record stays mac-free
        data["mac"] = {
            addr: self._macs[addr].stats.sample() for addr in sorted(self._macs)
        }
        self.bus.publish("round", t=t, source="reader", data=data)

    def _publish_metrics(self, t: float) -> None:
        """Publish counter/gauge values that changed since last round.

        Values are ABSOLUTE, not increments, so a replay is idempotent:
        a resumed campaign re-streaming an overlapping round overwrites
        the aggregator's view with identical numbers instead of double
        counting.  The change-tracking dict is deliberately not part of
        :meth:`snapshot` — after a resume every live metric is simply
        re-published once.  Histograms stay out of the stream (their
        per-observation data is unbounded); they remain available via
        the Prometheus exposition.
        """
        if self.metrics is None:
            return
        from repro.obs.export import _labels_text

        values = {}
        for metric in self.metrics:
            if not isinstance(metric, (Counter, Gauge)):
                continue
            key = f"{metric.name}{_labels_text(metric.labels)}"
            rendered = repr(metric.value)   # NaN-safe change detection
            if self._stream_metrics_state.get(key) != rendered:
                self._stream_metrics_state[key] = rendered
                values[key] = metric.value
        if values:
            self.bus.publish(
                "metrics", t=t, source="metrics", data={"values": values}
            )

    def _dump_recorder(self) -> None:
        """Dump the bus's flight recorder(s) next to the checkpoints.

        Called on :class:`CampaignAbort` and on watchdog kills; a no-op
        unless the campaign has a checkpoint directory and the bus
        carries at least one recorder sink.
        """
        if not self.bus.enabled or self._checkpoint_dir is None:
            return
        recorders = self.bus.recorders()
        if not recorders:
            return
        self.bus.flush()
        path = recorder_path(self._checkpoint_dir, self._round)
        recorders[0].dump_jsonl(path)
        self.last_recorder_dump = path

    def run_schedule(self, command: Command, rounds: int) -> dict:
        """Run several polling rounds; returns delivery counts per node."""
        if rounds < 1:
            raise ValueError("need at least one round")
        delivered = {addr: 0 for addr in self._macs}
        self._campaign_rounds = self._round + rounds
        try:
            for _ in range(rounds):
                for addr, reading in self.poll_round(command).items():
                    if reading is not None:
                        delivered[addr] += 1
        finally:
            self._campaign_rounds = None
        return delivered

    def run_campaign(
        self,
        command: Command,
        rounds: int,
        *,
        checkpoint_every: int = 0,
        checkpoint_dir=None,
        campaign: dict | None = None,
        resume_from=None,
    ) -> dict:
        """A full resilient campaign: ``rounds`` rounds, then a report.

        Unlike raw :meth:`run_schedule` this is the deployment loop:
        transport exceptions are contained, dead nodes are quarantined
        and re-probed, and the return value is the full
        :meth:`report` including availability and MTTR per node.

        With ``checkpoint_every=K`` (and a ``checkpoint_dir``) the full
        campaign state is written to ``checkpoint-NNNNNN.json`` after
        every K-th round (``campaign`` metadata rides along in the
        file).  ``resume_from`` restores a checkpoint file (or an
        already-read checkpoint document) before running the remaining
        rounds; a resumed campaign's report, event log, and digest are
        byte-identical to an uninterrupted run.
        """
        if rounds < 1:
            raise ValueError("need at least one round")
        if checkpoint_every < 0:
            raise ValueError("checkpoint_every must be non-negative")
        if checkpoint_every and checkpoint_dir is None:
            raise ValueError("checkpoint_every requires a checkpoint_dir")
        if checkpoint_dir is not None:
            self._checkpoint_dir = checkpoint_dir
        if resume_from is not None:
            doc = (
                resume_from
                if isinstance(resume_from, dict)
                else read_checkpoint(resume_from)
            )
            self.restore(doc["state"])
        self._campaign_rounds = rounds
        try:
            while self._round < rounds:
                self.poll_round(command)
                if (
                    checkpoint_every
                    and self._round < rounds
                    and self._round % checkpoint_every == 0
                ):
                    self.save_checkpoint(checkpoint_dir, campaign=campaign)
        except CampaignAbort:
            # Crash-equivalent exit: preserve the last events for the
            # post-crash investigation before the process dies.
            if self.bus.enabled:
                self.bus.flush()
            self._dump_recorder()
            raise
        finally:
            self._campaign_rounds = None
        return self.report()

    # -- checkpointing -----------------------------------------------------------------

    def save_checkpoint(self, directory, *, campaign: dict | None = None):
        """Write the current :meth:`snapshot` to ``directory``; returns
        the checkpoint file's path (``checkpoint-NNNNNN.json``)."""
        path = checkpoint_path(directory, self._round)
        write_checkpoint(path, self.snapshot(), round=self._round, campaign=campaign)
        if self.bus.enabled:
            self.bus.publish(
                "checkpoint", t=float(self._round), source="reader",
                data={"path": path.name, "round": self._round},
            )
            self.bus.flush()
        return path

    def snapshot(self) -> dict:
        """The complete campaign state as a JSON-ready dict.

        Mapping keys are stringified so the canonical (sorted-keys)
        JSON rendering is stable across a write/read cycle — Python
        sorts int keys numerically but their JSON spellings sort
        lexicographically, which would break the checkpoint integrity
        hash.  :meth:`restore` converts them back.
        """
        state = {
            "round": self._round,
            "nodes": {},
            "macs": {},
            "health": {},
            "transports": {},
            "shards": {
                "crashes": {
                    str(a): n for a, n in sorted(self._shard_crashes.items())
                },
                "streak": {
                    str(a): n for a, n in sorted(self._crash_streak.items())
                },
                "quarantined": sorted(self._quarantined_shards),
            },
            "events": [e.to_dict() for e in self.log.events],
            "round_log": [
                {
                    **rec,
                    "outcomes": {
                        str(a): info for a, info in rec["outcomes"].items()
                    },
                }
                for rec in self.round_log
            ],
        }
        for addr in sorted(self._macs):
            key = str(addr)
            record = self.nodes[addr]
            state["nodes"][key] = {
                "bitrate": record.bitrate,
                "resonance_mode": record.resonance_mode,
                "pending_downgrade": record.pending_downgrade,
                "readings": [[r.kind, list(r.values)] for r in record.readings],
            }
            state["macs"][key] = self._macs[addr].snapshot_state()
            state["health"][key] = record.health.snapshot_state()
            state["transports"][key] = transport_state(self._macs[addr].transact)
        if self.metrics is not None:
            state["metrics"] = self.metrics.snapshot_state()
        if self.ledgers:
            state["ledgers"] = {
                str(a): harness.snapshot_state()
                for a, harness in sorted(self.ledgers.items())
            }
        if self.slo is not None:
            state["slo"] = self.slo.snapshot_state()
        if self.analytics is not None:
            state["analytics"] = self.analytics.snapshot_state()
        return state

    def restore(self, state: dict) -> None:
        """Inverse of :meth:`snapshot`: rebuild the campaign mid-flight.

        The reader must have been constructed with the same fleet
        (addresses, transports, policies) as the one that snapshotted;
        only mutable state is restored.
        """
        expected = sorted(self._macs)
        snapshotted = sorted(int(k) for k in state["nodes"])
        if snapshotted != expected:
            raise ValueError(
                f"checkpoint covers nodes {snapshotted}, reader has {expected}"
            )
        self._round = int(state["round"])
        if self._batch_engine is not None:
            # The hinted-rounds countdown described a timeline this
            # restore just replaced; replan from the restored state.
            self._batch_engine.reset_window()
        for addr in expected:
            key = str(addr)
            record = self.nodes[addr]
            node_state = state["nodes"][key]
            record.bitrate = node_state["bitrate"]
            record.resonance_mode = node_state["resonance_mode"]
            record.pending_downgrade = bool(node_state["pending_downgrade"])
            record.readings = [
                SensorReading(kind, tuple(values))
                for kind, values in node_state["readings"]
            ]
            mac = self._macs[addr]
            mac.restore_state(state["macs"][key])
            record.stats = mac.stats
            record.health.restore_state(state["health"][key])
            restore_transport(mac.transact, state["transports"][key])
        shards = state["shards"]
        self._shard_crashes = {int(a): int(n) for a, n in shards["crashes"].items()}
        self._crash_streak = {int(a): int(n) for a, n in shards["streak"].items()}
        self._quarantined_shards = {int(a) for a in shards["quarantined"]}
        # Assign events directly: record() would renumber and double-
        # count pab_events_total (the counters arrive via the metrics
        # snapshot below).
        self.log.events = [Event.from_dict(d) for d in state["events"]]
        self.round_log = [
            {
                **rec,
                "outcomes": {
                    int(a): info for a, info in rec["outcomes"].items()
                },
            }
            for rec in state["round_log"]
        ]
        if self.metrics is not None and "metrics" in state:
            self.metrics.restore_state(state["metrics"])
        for addr, harness in self.ledgers.items():
            harness.restore_state(state["ledgers"][str(addr)])
        if self.slo is not None and "slo" in state:
            self.slo.restore_state(state["slo"])
        if self.analytics is not None and "analytics" in state:
            self.analytics.restore_state(state["analytics"])

    # -- crash containment -------------------------------------------------------------

    def _note_supervision(self, addr: int, t: float, outcome) -> None:
        """Book a poll's supervision outcome into the shared telemetry.

        Runs on the merge side in parallel mode (sorted-address order),
        so restart/crash events land exactly where the sequential
        supervisor would put them.
        """
        if outcome is None:
            return
        if outcome.restarts > 0 and not outcome.crashed:
            self.log.record(
                t, addr, "worker_restart",
                restarts=outcome.restarts,
                backoff_s=round(outcome.backoff_s, 6),
                error=outcome.error,
            )
            if self.metrics is not None:
                self.metrics.counter(
                    "pab_worker_restarts_total", node=addr
                ).inc(outcome.restarts)
        if not outcome.crashed:
            self._crash_streak[addr] = 0
            return
        self.log.record(
            t, addr, "fault",
            injector="worker_crash",
            error=outcome.error,
            restarts=outcome.restarts,
        )
        if self.metrics is not None:
            self.metrics.counter("pab_worker_crashes_total", node=addr).inc()
        pm = DecodePostmortem.from_fault(
            "worker_crash",
            node=addr,
            detail={"error": outcome.error, "restarts": outcome.restarts},
            txn=self._round,
        )
        self.postmortems.append(pm)
        if self.bus.enabled:
            self.bus.publish(
                "postmortem", t=t, node=addr, source="reader", data=pm.to_dict()
            )
        self._fail_node(addr, t)
        self._bump_crash_streak(addr, t)

    def _note_watchdog(self, addr: int, t: float, timeout: WatchdogTimeout) -> None:
        """Book an abandoned straggler as a fault + health failure."""
        self.log.record(
            t, addr, "fault",
            injector="watchdog_timeout",
            budget=timeout.budget,
            deadline_s=timeout.deadline_s,
        )
        if self.metrics is not None:
            self.metrics.counter("pab_watchdog_timeouts_total", node=addr).inc()
        pm = DecodePostmortem.from_fault(
            "watchdog_timeout",
            node=addr,
            detail={"budget": timeout.budget, "deadline_s": timeout.deadline_s},
            txn=self._round,
        )
        self.postmortems.append(pm)
        if self.bus.enabled:
            self.bus.publish(
                "postmortem", t=t, node=addr, source="reader", data=pm.to_dict()
            )
        # The abandoned worker is a zombie still holding this node's
        # staging sinks; repoint the health log at the shared log so the
        # state transition is visible.  (The zombie's cleanup restores
        # the shared log again whenever it finally unblocks.)
        self.nodes[addr].health.log = self.log
        self._fail_node(addr, t)
        self._bump_crash_streak(addr, t)
        # A watchdog kill already trades byte-reproducibility for
        # liveness, so dumping the recorder here (wall-clock event
        # order) costs nothing extra.
        self._dump_recorder()

    def _fail_node(self, addr: int, t: float) -> None:
        """Feed one engine-level failure to the node's health machine.

        A commanded downgrade is deferred (``pending_downgrade``): the
        node's worker just died or hung, so the SET_BITRATE goes out at
        the node's next successful poll attempt instead.
        """
        record = self.nodes[addr]
        action = record.health.on_result(False, t)
        if action == "degrade":
            record.pending_downgrade = True
        if self.metrics is not None:
            self.metrics.gauge("pab_node_health_code", node=addr).set(
                record.health.state.code
            )

    def _bump_crash_streak(self, addr: int, t: float) -> None:
        """Count a crashed round; quarantine the shard past the policy."""
        self._shard_crashes[addr] = self._shard_crashes.get(addr, 0) + 1
        streak = self._crash_streak.get(addr, 0) + 1
        self._crash_streak[addr] = streak
        if (
            streak >= self.supervisor.quarantine_after
            and addr not in self._quarantined_shards
        ):
            self._quarantined_shards.add(addr)
            self.log.record(t, addr, "shard_quarantine", crashes=streak)
            if self.metrics is not None:
                self.metrics.counter(
                    "pab_shard_quarantines_total", node=addr
                ).inc()

    # -- health actions ----------------------------------------------------------------

    def _downgrade_bitrate(self, address: int, *, _log=None) -> bool:
        """Step the node one rung down the rate ladder via SET_BITRATE.

        The command goes through the MAC but bypasses health accounting
        (a failed downgrade must not recursively degrade the node);
        unacknowledged downgrades are retried before the node's next
        sensing poll.  ``_log`` is the parallel round's staging log.
        """
        log = _log if _log is not None else self.log
        record = self.nodes[address]
        current = record.bitrate
        target = lower_bitrate(current) if current is not None else BITRATE_TABLE[0]
        if target is None:
            record.pending_downgrade = False
            log.record(
                self._round, address, "bitrate", action="at_floor", bitrate=current
            )
            return False
        mac = self._macs[address]
        result = mac.poll(
            Query(
                destination=address,
                command=Command.SET_BITRATE,
                argument=bitrate_code(target),
            )
        )
        record.stats = mac.stats
        acked = getattr(result, "success", False)
        log.record(
            self._round,
            address,
            "bitrate",
            action="downgrade",
            to=f"{target:g}",
            acked=acked,
        )
        if acked:
            record.bitrate = target
            record.pending_downgrade = False
        else:
            record.pending_downgrade = True
        return acked

    # -- reporting -----------------------------------------------------------------------

    def summary(self) -> list[dict]:
        """Per-node status: configuration, deliveries, MAC counters."""
        out = []
        for addr in sorted(self.nodes):
            record = self.nodes[addr]
            out.append(
                {
                    "address": addr,
                    "bitrate": record.bitrate,
                    "resonance_mode": record.resonance_mode,
                    "readings": len(record.readings),
                    "attempts": record.stats.attempts,
                    "delivery_ratio": record.stats.delivery_ratio,
                    "health": record.health.state.value,
                }
            )
        return out

    def report(self) -> dict:
        """Network-wide report: merged MAC counters + per-node health.

        The network totals use :meth:`~repro.net.mac.MacStats.merge`;
        availability and MTTR come from the structured event log, in
        units of polling rounds.
        """
        end_t = float(self._round)
        per_node = {}
        for addr in sorted(self.nodes):
            record = self.nodes[addr]
            stats = self._macs[addr].stats
            per_node[addr] = {
                "health": record.health.state.value,
                "bitrate": record.bitrate,
                "readings": len(record.readings),
                "attempts": stats.attempts,
                "successes": stats.successes,
                "retries": stats.retries,
                "exceptions": stats.exceptions,
                "delivery_ratio": stats.delivery_ratio,
                "availability": self.log.availability(addr, end_t=end_t),
                "mttr_rounds": self.log.mttr(addr),
            }
        merged = MacStats().merge(*(self._macs[a].stats for a in sorted(self._macs)))
        report = {
            "rounds": self._round,
            "network": {
                "attempts": merged.attempts,
                "successes": merged.successes,
                "retries": merged.retries,
                "exceptions": merged.exceptions,
                "delivery_ratio": merged.delivery_ratio,
                "goodput_bps": merged.goodput_bps,
                "airtime_s": merged.airtime_s,
                "backoff_s": merged.backoff_s,
            },
            "nodes": per_node,
            "events": len(self.log),
        }
        if self._shard_crashes or self._quarantined_shards:
            # Only present when the engine actually lost workers, so
            # crash-free campaign reports (and their digests) are
            # unchanged.
            report["shards"] = {
                "crashed_rounds": {
                    addr: self._shard_crashes.get(addr, 0)
                    for addr in sorted(
                        set(self._shard_crashes) | self._quarantined_shards
                    )
                },
                "quarantined": sorted(self._quarantined_shards),
            }
        if self.ledgers:
            report["energy"] = {
                addr: harness.summary()
                for addr, harness in sorted(self.ledgers.items())
            }
            if self.metrics is not None:
                for harness in self.ledgers.values():
                    harness.to_metrics(self.metrics)
        if self.slo is not None:
            report["slo"] = self.slo.report()
            if self.metrics is not None:
                self.slo.to_metrics(self.metrics)
        return report

    def _record(self, address: int) -> NodeRecord:
        if address not in self.nodes:
            raise KeyError(f"unknown node address {address}")
        return self.nodes[address]
