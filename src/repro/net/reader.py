"""The complete reader-side controller.

Ties the networking layers into the workflow a deployed reader actually
runs (the projector-side analogue of an RFID interrogator):

1. **configure** — push per-node settings over the air: uplink bitrate
   (``SET_BITRATE``) and recto-piezo channel (``SET_RESONANCE_MODE``),
   verifying each acknowledgement;
2. **poll** — run periodic sensing rounds through the retransmitting
   MAC, collecting decoded readings;
3. **report** — aggregate per-node delivery statistics.

The controller is transport-agnostic: it drives any mapping of node
address to a ``transact(query) -> LinkResult``-shaped callable — the
waveform-level :class:`~repro.core.link.BackscatterLink` in simulations,
or a stub in tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.net.mac import MacStats, PollingMac
from repro.net.messages import BITRATE_TABLE, Command, Query, Response


@dataclass
class NodeRecord:
    """What the reader knows about one node.

    Attributes
    ----------
    address:
        The node's address.
    bitrate:
        Last acknowledged uplink bitrate (None before configuration).
    resonance_mode:
        Last acknowledged recto-piezo mode (None before configuration).
    readings:
        Decoded :class:`~repro.net.messages.SensorReading` history.
    stats:
        Per-node MAC counters.
    """

    address: int
    bitrate: float | None = None
    resonance_mode: int | None = None
    readings: list = field(default_factory=list)
    stats: MacStats = field(default_factory=MacStats)


class ReaderController:
    """Orchestrates configuration and polling of a set of nodes.

    Parameters
    ----------
    transports:
        Mapping ``{address: transact}`` where ``transact(query)`` returns
        an object with ``success`` and ``demod.packet``.
    max_retries:
        Retransmissions per query.
    """

    def __init__(self, transports: dict, *, max_retries: int = 2) -> None:
        if not transports:
            raise ValueError("need at least one node transport")
        self._macs = {
            int(addr): PollingMac(transact=fn, max_retries=max_retries)
            for addr, fn in transports.items()
        }
        self.nodes = {
            addr: NodeRecord(address=addr) for addr in self._macs
        }

    # -- configuration ----------------------------------------------------------------

    def set_bitrate(self, address: int, bitrate: float) -> bool:
        """Command a node to a bitrate from the table; True on ack."""
        record = self._record(address)
        try:
            code = BITRATE_TABLE.index(bitrate)
        except ValueError as exc:
            raise ValueError(f"bitrate {bitrate} not in BITRATE_TABLE") from exc
        result = self._macs[address].poll(
            Query(destination=address, command=Command.SET_BITRATE, argument=code)
        )
        if getattr(result, "success", False):
            record.bitrate = bitrate
            return True
        return False

    def set_resonance_mode(self, address: int, mode: int) -> bool:
        """Command a node to a recto-piezo mode; True on ack."""
        record = self._record(address)
        result = self._macs[address].poll(
            Query(
                destination=address,
                command=Command.SET_RESONANCE_MODE,
                argument=mode,
            )
        )
        if getattr(result, "success", False):
            record.resonance_mode = mode
            return True
        return False

    # -- polling ----------------------------------------------------------------------

    def poll(self, address: int, command: Command):
        """One sensing query to one node; stores the decoded reading."""
        record = self._record(address)
        result = self._macs[address].poll(
            Query(destination=address, command=command)
        )
        record.stats = self._macs[address].stats
        if getattr(result, "success", False):
            packet = result.demod.packet
            response = Response.from_packet(packet)
            reading = response.reading()
            record.readings.append(reading)
            return reading
        return None

    def poll_round(self, command: Command) -> dict:
        """Poll every node once; returns ``{address: reading | None}``."""
        return {addr: self.poll(addr, command) for addr in sorted(self._macs)}

    def run_schedule(self, command: Command, rounds: int) -> dict:
        """Run several polling rounds; returns delivery counts per node."""
        if rounds < 1:
            raise ValueError("need at least one round")
        delivered = {addr: 0 for addr in self._macs}
        for _ in range(rounds):
            for addr, reading in self.poll_round(command).items():
                if reading is not None:
                    delivered[addr] += 1
        return delivered

    # -- reporting -----------------------------------------------------------------------

    def summary(self) -> list[dict]:
        """Per-node status: configuration, deliveries, MAC counters."""
        out = []
        for addr in sorted(self.nodes):
            record = self.nodes[addr]
            out.append(
                {
                    "address": addr,
                    "bitrate": record.bitrate,
                    "resonance_mode": record.resonance_mode,
                    "readings": len(record.readings),
                    "attempts": record.stats.attempts,
                    "delivery_ratio": record.stats.delivery_ratio,
                }
            )
        return out

    def _record(self, address: int) -> NodeRecord:
        if address not in self.nodes:
            raise KeyError(f"unknown node address {address}")
        return self.nodes[address]
