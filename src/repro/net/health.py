"""Per-node health state machine for the resilient reader.

A battery-free node in an open medium is *usually* unreachable — it
browns out when harvested power dips, drowns in noise bursts, drifts out
of the beam.  The reader must treat node silence as a first-class state
rather than an error, so each node carries a small state machine:

::

    HEALTHY --k consecutive failures--> DEGRADED
        (reader downgrades the node's bitrate one rung: Fig. 8 says a
         slower backscatter rate buys SNR margin)
    DEGRADED --more failures--> QUARANTINED
        (the node stops being polled: silence must not burn airtime)
    QUARANTINED --backoff elapsed--> PROBING
        (one cheap PING; the backoff doubles on each failed probe)
    PROBING --ack--> HEALTHY     PROBING --silence--> QUARANTINED
    DEGRADED --successes--> HEALTHY

All timing is in the reader's polling-round counter — a deterministic
virtual clock — so chaos tests reproduce byte-identical event logs.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class HealthState(str, enum.Enum):
    """Reader-side view of one node's reachability."""

    HEALTHY = "HEALTHY"
    DEGRADED = "DEGRADED"
    QUARANTINED = "QUARANTINED"
    PROBING = "PROBING"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value

    @property
    def code(self) -> int:
        """Stable numeric code for metrics gauges (0 = HEALTHY ...).

        Exported so dashboards reading the Prometheus exposition can
        alert on ``pab_node_health_code > 0`` without string matching.
        """
        return HEALTH_STATE_CODES[self]


#: Numeric gauge encoding of each health state (severity-ordered).
HEALTH_STATE_CODES = {
    HealthState.HEALTHY: 0,
    HealthState.DEGRADED: 1,
    HealthState.PROBING: 2,
    HealthState.QUARANTINED: 3,
}


@dataclass(frozen=True)
class HealthPolicy:
    """Thresholds and backoff schedule for the state machine.

    Parameters
    ----------
    degrade_after:
        Consecutive failed polls before HEALTHY -> DEGRADED.
    quarantine_after:
        Consecutive failed polls (counted from the first failure)
        before DEGRADED -> QUARANTINED.
    recover_after:
        Consecutive successful polls before DEGRADED -> HEALTHY.
    probe_backoff_rounds:
        Rounds to wait before the first probe of a quarantined node.
    backoff_multiplier:
        Probe backoff growth per failed probe.
    max_probe_backoff_rounds:
        Probe backoff ceiling.
    """

    degrade_after: int = 2
    quarantine_after: int = 4
    recover_after: int = 2
    probe_backoff_rounds: int = 2
    backoff_multiplier: float = 2.0
    max_probe_backoff_rounds: int = 16

    def __post_init__(self) -> None:
        if self.degrade_after < 1 or self.recover_after < 1:
            raise ValueError("thresholds must be >= 1")
        if self.quarantine_after <= self.degrade_after:
            raise ValueError("quarantine_after must exceed degrade_after")
        if self.probe_backoff_rounds < 1:
            raise ValueError("probe_backoff_rounds must be >= 1")
        if self.backoff_multiplier < 1.0:
            raise ValueError("backoff_multiplier must be >= 1")
        if self.max_probe_backoff_rounds < self.probe_backoff_rounds:
            raise ValueError("max backoff must be >= initial backoff")


@dataclass
class NodeHealth:
    """One node's health tracker.

    Feed poll outcomes through :meth:`on_result`; it returns the action
    the reader should take (``"degrade"`` — downgrade the bitrate,
    ``"recovered"`` — the node is back, or ``None``).  Quarantine
    scheduling is exposed through :meth:`due_for_probe` /
    :meth:`start_probe`.
    """

    node: int
    policy: HealthPolicy = field(default_factory=HealthPolicy)
    log: object = None
    state: HealthState = HealthState.HEALTHY
    consecutive_failures: int = 0
    consecutive_successes: int = 0
    next_probe_t: float = 0.0
    _probe_backoff: float = field(init=False)

    def __post_init__(self) -> None:
        self._probe_backoff = float(self.policy.probe_backoff_rounds)

    # -- transitions ----------------------------------------------------------------------

    def _transition(self, to: HealthState, t: float, **detail) -> None:
        if to is self.state:
            return
        if self.log is not None:
            self.log.record(
                t, self.node, "state", to=to.value, **{"from": self.state.value}, **detail
            )
        self.state = to

    def due_for_probe(self, t: float) -> bool:
        """Whether a quarantined node should be probed at time ``t``."""
        return self.state is HealthState.QUARANTINED and t >= self.next_probe_t

    def start_probe(self, t: float) -> None:
        """QUARANTINED -> PROBING (the reader is about to send a PING)."""
        if self.state is not HealthState.QUARANTINED:
            raise ValueError("can only probe a quarantined node")
        self._transition(HealthState.PROBING, t)

    def on_result(self, success: bool, t: float) -> str | None:
        """Feed one poll outcome; returns the reader's action, if any."""
        if success:
            self.consecutive_failures = 0
            self.consecutive_successes += 1
        else:
            self.consecutive_successes = 0
            self.consecutive_failures += 1

        if self.state is HealthState.PROBING:
            if success:
                self._recover(t)
                return "recovered"
            self._quarantine(t, grow=True)
            return None

        if self.state is HealthState.HEALTHY:
            if not success and self.consecutive_failures >= self.policy.degrade_after:
                self._transition(
                    HealthState.DEGRADED, t, failures=self.consecutive_failures
                )
                return "degrade"
            return None

        if self.state is HealthState.DEGRADED:
            if success and self.consecutive_successes >= self.policy.recover_after:
                self._recover(t)
                return "recovered"
            if not success and self.consecutive_failures >= self.policy.quarantine_after:
                self._quarantine(t, grow=False)
                return "quarantine"
            return None

        # QUARANTINED nodes are not normally polled; a forced poll's
        # outcome is treated like a probe.
        if success:
            self._recover(t)
            return "recovered"
        self._quarantine(t, grow=True)
        return None

    def _quarantine(self, t: float, *, grow: bool) -> None:
        if grow and self.state in (HealthState.PROBING, HealthState.QUARANTINED):
            self._probe_backoff = min(
                self._probe_backoff * self.policy.backoff_multiplier,
                float(self.policy.max_probe_backoff_rounds),
            )
        self.next_probe_t = t + self._probe_backoff
        self._transition(
            HealthState.QUARANTINED, t, next_probe_t=f"{self.next_probe_t:g}"
        )

    def _recover(self, t: float) -> None:
        self._probe_backoff = float(self.policy.probe_backoff_rounds)
        self.consecutive_failures = 0
        self._transition(HealthState.HEALTHY, t)

    # -- checkpointing --------------------------------------------------------------------

    def snapshot_state(self) -> dict:
        """JSON-ready mutable state (policy and log are rebuilt, not saved)."""
        return {
            "state": self.state.value,
            "consecutive_failures": self.consecutive_failures,
            "consecutive_successes": self.consecutive_successes,
            "next_probe_t": self.next_probe_t,
            "probe_backoff": self._probe_backoff,
        }

    def restore_state(self, state: dict) -> None:
        """Inverse of :meth:`snapshot_state`; no events fire."""
        self.state = HealthState(state["state"])
        self.consecutive_failures = int(state["consecutive_failures"])
        self.consecutive_successes = int(state["consecutive_successes"])
        self.next_probe_t = float(state["next_probe_t"])
        self._probe_backoff = float(state["probe_backoff"])
