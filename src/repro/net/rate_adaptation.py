"""SNR-driven bitrate adaptation for the polling reader.

The paper's downlink includes "commands for the PAB backscatter node
such as setting backscatter link frequency" (Sec. 5.1a), and its Fig. 7/8
results imply the policy: FM0 decodes from ~2 dB, so pick the fastest
bitrate whose measured SNR clears the threshold with margin.

:class:`RateAdapter` implements that policy with hysteresis: it steps
down aggressively on failures or low SNR, and steps up conservatively
after a streak of comfortable successes — the classic ARF structure, with
the rate ladder being the paper's tested bitrate table.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.net.messages import BITRATE_TABLE

#: Minimum decodable SNR for FM0 (paper Sec. 6.1a).
DECODE_THRESHOLD_DB = 2.0


@dataclass
class RateAdapter:
    """Hysteretic bitrate selection over the paper's rate ladder.

    Parameters
    ----------
    ladder:
        Ascending usable bitrates (defaults to the table without the
        5 kbps entry, which Fig. 8 shows is never decodable).
    up_margin_db:
        SNR headroom above the decode threshold required to *consider*
        stepping up.
    up_streak:
        Consecutive comfortable successes before stepping up.
    start_index:
        Initial position on the ladder.
    """

    ladder: tuple = tuple(r for r in BITRATE_TABLE if r <= 3_000.0)
    up_margin_db: float = 6.0
    up_streak: int = 3
    start_index: int = 0
    _index: int = field(init=False)
    _streak: int = field(init=False, default=0)

    def __post_init__(self) -> None:
        if not self.ladder:
            raise ValueError("ladder must not be empty")
        if list(self.ladder) != sorted(self.ladder):
            raise ValueError("ladder must be ascending")
        if not 0 <= self.start_index < len(self.ladder):
            raise ValueError("start index out of range")
        if self.up_margin_db < 0 or self.up_streak < 1:
            raise ValueError("invalid hysteresis parameters")
        self._index = self.start_index

    @property
    def bitrate(self) -> float:
        """The currently selected bitrate [bit/s]."""
        return self.ladder[self._index]

    def report(self, *, success: bool, snr_db: float | None = None) -> float:
        """Feed one exchange outcome; returns the (possibly new) bitrate.

        Failures or SNR below threshold step down immediately; a streak
        of successes with comfortable margin steps up one rung.
        """
        low_snr = snr_db is not None and snr_db < DECODE_THRESHOLD_DB
        if not success or low_snr:
            self._streak = 0
            if self._index > 0:
                self._index -= 1
            return self.bitrate
        comfortable = (
            snr_db is None
            or snr_db >= DECODE_THRESHOLD_DB + self.up_margin_db
        )
        if comfortable:
            self._streak += 1
            if self._streak >= self.up_streak and self._index < len(self.ladder) - 1:
                self._index += 1
                self._streak = 0
        else:
            self._streak = 0
        return self.bitrate

    def reset(self) -> None:
        """Back to the starting rung."""
        self._index = self.start_index
        self._streak = 0


def best_static_rate(snr_by_rate: dict, *, margin_db: float = 0.0) -> float:
    """Offline policy: fastest rate whose SNR clears threshold + margin.

    ``snr_by_rate`` maps bitrate -> measured SNR (a Fig. 8 style sweep).
    Raises ``ValueError`` when no rate is decodable.
    """
    usable = [
        rate
        for rate, snr in snr_by_rate.items()
        if snr >= DECODE_THRESHOLD_DB + margin_db
    ]
    if not usable:
        raise ValueError("no bitrate clears the decode threshold")
    return max(usable)
