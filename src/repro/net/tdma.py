"""TDMA baseline scheduler and network-throughput accounting.

The paper's concurrency claim (Sec. 1, 6.3) is that recto-piezo FDMA plus
collision decoding "doubl[es] the network throughput through concurrent
transmissions" relative to querying nodes one at a time.  This module
provides the baseline — a reader-driven TDMA schedule where each node
gets the channel exclusively — and the arithmetic for comparing both
MACs' aggregate throughput.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dsp.packets import PacketFormat
from repro.dsp.pwm import PWMCode


@dataclass(frozen=True)
class SlotTiming:
    """Airtime composition of one reader-node exchange.

    Attributes
    ----------
    query_s:
        Downlink query duration (PWM frame).
    reply_s:
        Uplink frame duration at the node's bitrate.
    guard_s:
        Turnaround/guard time.
    """

    query_s: float
    reply_s: float
    guard_s: float

    @property
    def total_s(self) -> float:
        return self.query_s + self.reply_s + self.guard_s


def slot_timing(
    payload_bytes: int,
    bitrate: float,
    *,
    pwm_code: PWMCode | None = None,
    uplink_format: PacketFormat | None = None,
    guard_s: float = 0.05,
    query_bits: int = 9 + 16 + 16 + 16,
) -> SlotTiming:
    """Airtime of one polled exchange carrying ``payload_bytes`` uplink.

    ``query_bits`` defaults to the library's downlink frame (9-bit
    preamble + header + 2-byte command payload + CRC).
    """
    if payload_bytes < 0 or bitrate <= 0:
        raise ValueError("payload and bitrate must be positive")
    code = pwm_code if pwm_code is not None else PWMCode()
    fmt = uplink_format if uplink_format is not None else PacketFormat()
    # PWM duration for balanced data.
    mean_symbol = (code.symbol_duration(0) + code.symbol_duration(1)) / 2.0
    query_s = query_bits * mean_symbol
    reply_bits = fmt.overhead_bits() + 8 * payload_bytes
    reply_s = reply_bits / bitrate
    return SlotTiming(query_s=query_s, reply_s=reply_s, guard_s=guard_s)


@dataclass(frozen=True)
class ThroughputComparison:
    """Aggregate throughput of TDMA polling vs concurrent FDMA.

    Attributes
    ----------
    tdma_bps:
        Payload goodput when nodes are polled one at a time.
    fdma_bps:
        Payload goodput when all nodes reply in one concurrent round.
    speedup:
        ``fdma_bps / tdma_bps`` — the paper's claimed ~Nx gain.
    """

    tdma_bps: float
    fdma_bps: float

    @property
    def speedup(self) -> float:
        return self.fdma_bps / self.tdma_bps if self.tdma_bps > 0 else float("inf")


def compare_throughput(
    n_nodes: int,
    payload_bytes: int,
    bitrate: float,
    *,
    fdma_success_ratio: float = 1.0,
    **slot_kwargs,
) -> ThroughputComparison:
    """Compare aggregate goodput of the two access schemes.

    TDMA runs ``n_nodes`` sequential slots per round; concurrent FDMA
    fits all replies into a single slot (they overlap in time), with
    ``fdma_success_ratio`` accounting for collision-decoding losses.
    """
    if n_nodes < 1:
        raise ValueError("need at least one node")
    if not 0.0 <= fdma_success_ratio <= 1.0:
        raise ValueError("success ratio must be in [0, 1]")
    slot = slot_timing(payload_bytes, bitrate, **slot_kwargs)
    payload_bits = 8 * payload_bytes
    tdma_bps = n_nodes * payload_bits / (n_nodes * slot.total_s)
    fdma_bps = fdma_success_ratio * n_nodes * payload_bits / slot.total_s
    return ThroughputComparison(tdma_bps=tdma_bps, fdma_bps=fdma_bps)


class TdmaScheduler:
    """Round-robin slot assignment for the polling reader.

    Produces the query order for one round and tracks per-node outcomes
    so starved nodes get priority in later rounds (simple deficit
    counter).
    """

    def __init__(self, addresses) -> None:
        self._addresses = list(dict.fromkeys(int(a) for a in addresses))
        if not self._addresses:
            raise ValueError("need at least one address")
        self._deficit = {a: 0 for a in self._addresses}

    @property
    def addresses(self) -> list[int]:
        return list(self._addresses)

    def next_round(self) -> list[int]:
        """Slot order for the next round: most-starved first."""
        return sorted(
            self._addresses, key=lambda a: (-self._deficit[a], a)
        )

    def report(self, address: int, success: bool) -> None:
        """Record a slot outcome; failures raise the node's priority."""
        if address not in self._deficit:
            raise KeyError(f"unknown address {address}")
        if success:
            self._deficit[address] = 0
        else:
            self._deficit[address] += 1
