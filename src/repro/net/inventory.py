"""Reader-side inventory: discovering an unknown node population.

Sec. 3.3.2: PAB's protocol "is similar to that adopted by RFIDs.
Specifically, the projector is similar to an RFID reader and transmits a
query on the downlink."  RFID readers do more than poll known tags —
they *inventory* an unknown population with framed slotted ALOHA
(EPC Gen2's Q algorithm).  This module implements that discovery layer
for PAB:

1. the reader broadcasts an INVENTORY query carrying a frame size,
2. every powered-up, un-acknowledged node picks a random slot (hashed
   from its address and the round nonce, so the choice is reproducible
   and battery-free nodes need no RNG hardware),
3. singleton slots yield a decodable reply and the node is acknowledged;
   collision slots fail (unless the receiver's collision decoder can
   separate up to K overlapping replies — the PAB twist),
4. the reader adapts the frame size to the observed collision rate
   (halving/doubling, like Gen2's Q adjustment) and repeats until a
   round produces no replies.

The medium here is abstract (slot outcomes, not waveforms): the physics
of a single reply and of a 2-node collision are validated end to end by
the waveform engine; the inventory layer only needs the outcome model.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field


def slot_choice(address: int, nonce: int, frame_size: int) -> int:
    """The deterministic slot a node picks in a round.

    A keyed hash of (address, nonce) — reproducible across reader and
    simulation, uniform across nodes, and new every round.
    """
    if frame_size < 1:
        raise ValueError("frame size must be positive")
    digest = hashlib.blake2s(
        address.to_bytes(2, "big") + nonce.to_bytes(4, "big"), digest_size=4
    ).digest()
    return int.from_bytes(digest, "big") % frame_size


@dataclass
class InventoryStats:
    """Counters of one inventory run.

    Attributes
    ----------
    rounds:
        Frames transmitted.
    slots:
        Total slots elapsed.
    singles, collisions, idle_slots:
        Slot outcomes (collision slots that the decoder separated count
        as resolved, not as collisions).
    resolved_collisions:
        Collision slots recovered by the K-way collision decoder.
    """

    rounds: int = 0
    slots: int = 0
    singles: int = 0
    collisions: int = 0
    idle_slots: int = 0
    resolved_collisions: int = 0

    @property
    def efficiency(self) -> float:
        """Discovered nodes per slot (ALOHA efficiency; ~0.36 ideal)."""
        discovered = self.singles + self.resolved_collisions
        return discovered / self.slots if self.slots else 0.0


class InventoryReader:
    """Framed slotted ALOHA discovery with adaptive frame size.

    Parameters
    ----------
    initial_frame_size:
        Starting frame size (power of two, like Gen2's 2^Q).
    collision_decode_limit:
        Largest K-way collision the receiver can separate (1 = none;
        2 with the paper's two-channel recto-piezo decoder).
    max_rounds:
        Safety bound on the number of frames.
    """

    def __init__(
        self,
        *,
        initial_frame_size: int = 4,
        collision_decode_limit: int = 1,
        max_rounds: int = 64,
    ) -> None:
        if initial_frame_size < 1:
            raise ValueError("frame size must be positive")
        if collision_decode_limit < 1:
            raise ValueError("collision decode limit must be >= 1")
        if max_rounds < 1:
            raise ValueError("max rounds must be positive")
        self.initial_frame_size = initial_frame_size
        self.collision_decode_limit = collision_decode_limit
        self.max_rounds = max_rounds

    def run(self, population) -> tuple[set, InventoryStats]:
        """Discover ``population`` (iterable of addresses).

        Returns ``(discovered_addresses, stats)``.  Termination: a round
        in which no node replies at all (every remaining node is
        acknowledged) ends the inventory.
        """
        remaining = set(int(a) for a in population)
        discovered: set[int] = set()
        stats = InventoryStats()
        frame_size = self.initial_frame_size
        nonce = 0

        while stats.rounds < self.max_rounds:
            stats.rounds += 1
            nonce += 1
            slots: dict[int, list[int]] = {}
            for address in remaining:
                slots.setdefault(
                    slot_choice(address, nonce, frame_size), []
                ).append(address)

            stats.slots += frame_size
            collisions_this_round = 0
            for index in range(frame_size):
                replies = slots.get(index, [])
                if not replies:
                    stats.idle_slots += 1
                elif len(replies) == 1:
                    stats.singles += 1
                    discovered.add(replies[0])
                elif len(replies) <= self.collision_decode_limit:
                    stats.resolved_collisions += 1
                    discovered.update(replies)
                else:
                    stats.collisions += 1
                    collisions_this_round += 1
            remaining -= discovered

            if not remaining:
                break
            # Gen2-style frame adaptation: grow when collisions dominate,
            # shrink when the frame is mostly idle.
            if collisions_this_round > frame_size // 2:
                frame_size = min(frame_size * 2, 256)
            elif collisions_this_round == 0 and frame_size > 1:
                frame_size = max(frame_size // 2, 1)
        return discovered, stats


def expected_rounds(n_nodes: int, frame_size: int) -> float:
    """Rough analytic expectation of rounds to discover ``n_nodes``.

    Each round resolves roughly ``n * (1 - 1/L)^(n-1)`` singleton nodes
    (ALOHA); iterate until fewer than one node remains.  A planning aid,
    not an exact result.
    """
    if n_nodes < 0 or frame_size < 1:
        raise ValueError("invalid population or frame size")
    remaining = float(n_nodes)
    rounds = 0.0
    while remaining >= 1.0 and rounds < 1_000:
        p_single = (1.0 - 1.0 / frame_size) ** max(remaining - 1.0, 0.0)
        resolved = remaining * p_single
        if resolved < 1e-6:
            break
        remaining -= resolved
        rounds += 1.0
    return rounds
