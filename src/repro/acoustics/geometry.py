"""Positions and tank geometries.

The paper evaluates in two enclosed tanks at the MIT Sea Grant
(Sec. 5.1(d)):

* **Pool A** — 3 m x 4 m rectangular cross-section, 1.3 m deep.
* **Pool B** — 1.2 m x 10 m rectangular cross-section ("corridor"), 1 m
  deep.

A :class:`Tank` is an axis-aligned box of water with a pressure-release
surface on top (air-water interface, reflection coefficient ~ -1) and
acoustically hard walls and floor (concrete, reflection coefficient close
to +1 with some loss).  Coordinates: x along the length, y across the
width, z measured downward from the surface (z = 0 is the surface,
z = depth is the floor).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.constants import POOL_A_DIMENSIONS, POOL_B_DIMENSIONS


@dataclass(frozen=True)
class Position:
    """A point in tank coordinates [m]."""

    x: float
    y: float
    z: float

    def distance_to(self, other: "Position") -> float:
        """Euclidean distance [m]."""
        return math.sqrt(
            (self.x - other.x) ** 2
            + (self.y - other.y) ** 2
            + (self.z - other.z) ** 2
        )

    def as_tuple(self) -> tuple[float, float, float]:
        return (self.x, self.y, self.z)


@dataclass(frozen=True)
class Tank:
    """An enclosed rectangular water tank.

    Parameters
    ----------
    length, width, depth:
        Interior dimensions [m].
    surface_reflection:
        Pressure reflection coefficient of the air-water surface.  The
        ideal pressure-release value is -1.
    wall_reflection:
        *Effective specular* pressure reflection coefficient of walls and
        floor.  Although hard walls reflect nearly all energy, most of it
        scatters away from the specular direction the image-source model
        assumes (rough surfaces, fixtures, non-planar liners), so the
        effective coefficient is well below 1.  The default is fitted so
        simulated uplink SNRs in the paper's tanks land in the range of
        Fig. 8.
    name:
        Optional label for reports.
    """

    length: float
    width: float
    depth: float
    surface_reflection: float = -0.95
    wall_reflection: float = 0.45
    name: str = "tank"

    def __post_init__(self) -> None:
        if min(self.length, self.width, self.depth) <= 0:
            raise ValueError("tank dimensions must be positive")
        for r in (self.surface_reflection, self.wall_reflection):
            if abs(r) > 1.0:
                raise ValueError("reflection coefficients must be in [-1, 1]")

    def contains(self, p: Position) -> bool:
        """Whether a position lies inside the water volume."""
        return (
            0.0 <= p.x <= self.length
            and 0.0 <= p.y <= self.width
            and 0.0 <= p.z <= self.depth
        )

    def validate_position(self, p: Position, what: str = "position") -> None:
        """Raise ``ValueError`` if ``p`` is outside the tank."""
        if not self.contains(p):
            raise ValueError(
                f"{what} {p.as_tuple()} outside {self.name} "
                f"({self.length} x {self.width} x {self.depth} m)"
            )

    @property
    def aspect_ratio(self) -> float:
        """Length over width — large for corridor-like tanks (Pool B)."""
        return self.length / self.width

    @property
    def diagonal(self) -> float:
        """Longest straight-line distance inside the tank [m]."""
        return math.sqrt(self.length**2 + self.width**2 + self.depth**2)


def _make_pool(dims: tuple[float, float, float], name: str) -> Tank:
    length, width, depth = dims
    return Tank(length=length, width=width, depth=depth, name=name)


#: Pool A from the paper: 3 m x 4 m cross-section, 1.3 m deep.
POOL_A = _make_pool(POOL_A_DIMENSIONS, "Pool A")

#: Pool B from the paper: elongated 1.2 m x 10 m "corridor", 1 m deep.
POOL_B = _make_pool(POOL_B_DIMENSIONS, "Pool B")


def open_water(name: str = "open water") -> Tank:
    """A tank so large that no reflections matter within simulated ranges.

    Useful as a free-field baseline for ablations.
    """
    return Tank(
        length=1e4,
        width=1e4,
        depth=1e4,
        surface_reflection=0.0,
        wall_reflection=0.0,
        name=name,
    )
