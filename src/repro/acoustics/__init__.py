"""Underwater acoustic channel substrate.

This subpackage models everything between the projector's radiating face and
the hydrophone's sensing face: sound speed, absorption, geometric spreading,
ambient noise, and the multipath structure of enclosed test tanks (the
paper's Pool A and Pool B at the MIT Sea Grant).
"""

from repro.acoustics.sound_speed import (
    sound_speed_mackenzie,
    sound_speed_medwin,
    sound_speed_coppens,
)
from repro.acoustics.attenuation import (
    thorp_attenuation_db_per_km,
    francois_garrison_db_per_km,
    absorption_db,
)
from repro.acoustics.spreading import (
    spreading_loss_db,
    transmission_loss_db,
    pressure_ratio_from_tl,
)
from repro.acoustics.noise import AmbientNoiseModel, wenz_noise_psd_db
from repro.acoustics.geometry import Position, Tank, POOL_A, POOL_B
from repro.acoustics.multipath import ImageSourceModel, Path
from repro.acoustics.doppler import (
    apply_doppler,
    doppler_factor,
    doppler_shift_hz,
)
from repro.acoustics.fading import FadingProcess
from repro.acoustics.channel import AcousticChannel, ChannelOutput

__all__ = [
    "sound_speed_mackenzie",
    "sound_speed_medwin",
    "sound_speed_coppens",
    "thorp_attenuation_db_per_km",
    "francois_garrison_db_per_km",
    "absorption_db",
    "spreading_loss_db",
    "transmission_loss_db",
    "pressure_ratio_from_tl",
    "AmbientNoiseModel",
    "wenz_noise_psd_db",
    "Position",
    "Tank",
    "POOL_A",
    "POOL_B",
    "ImageSourceModel",
    "Path",
    "apply_doppler",
    "doppler_factor",
    "doppler_shift_hz",
    "FadingProcess",
    "AcousticChannel",
    "ChannelOutput",
]
