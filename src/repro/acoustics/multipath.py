"""Image-source multipath model for rectangular tanks.

The classic image-source method (Allen & Berkley 1979, adapted from room
acoustics to water tanks) mirrors the source across each boundary of the
box, recursively, producing a lattice of virtual sources.  Each virtual
source contributes one propagation path whose

* delay is its straight-line distance over the sound speed,
* amplitude is the product of the boundary reflection coefficients it
  bounced off, divided by the spreading law, times absorption.

The air-water surface is pressure-release (reflection ~ -1, sign flip);
walls and floor are hard (positive reflection).  This reproduces the
paper's observation (Fig. 9) that the elongated Pool B acts as a corridor
that focuses energy along its axis: its side walls are close, so many
low-order wall images add nearly in phase for on-axis geometries.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.acoustics.attenuation import absorption_db
from repro.acoustics.geometry import Position, Tank
from repro.constants import NOMINAL_SOUND_SPEED


@dataclass(frozen=True)
class Path:
    """A single propagation path between two points.

    Attributes
    ----------
    delay_s:
        Propagation delay [s].
    gain:
        Linear pressure gain relative to the source pressure at 1 m
        (signed: surface bounces flip polarity).
    distance_m:
        Total path length [m].
    bounces:
        Number of boundary reflections along the path (0 = direct).
    """

    delay_s: float
    gain: float
    distance_m: float
    bounces: int

    @property
    def is_direct(self) -> bool:
        return self.bounces == 0


class ImageSourceModel:
    """Enumerates propagation paths inside a rectangular tank.

    Parameters
    ----------
    tank:
        The tank geometry and boundary reflection coefficients.
    max_order:
        Maximum number of image reflections per axis.  Order 0 gives the
        direct path only; 2-3 is enough for the tank sizes in the paper.
    sound_speed:
        Speed of sound [m/s].
    frequency_hz:
        Carrier frequency used for the absorption term.  Absorption over
        tens of metres at 15 kHz is small (~1 dB/km) but included for
        completeness.
    min_gain:
        Paths weaker than this linear gain are dropped.
    """

    def __init__(
        self,
        tank: Tank,
        *,
        max_order: int = 2,
        sound_speed: float = NOMINAL_SOUND_SPEED,
        frequency_hz: float = 15_000.0,
        min_gain: float = 1e-6,
    ) -> None:
        if max_order < 0:
            raise ValueError("max_order must be non-negative")
        if sound_speed <= 0:
            raise ValueError("sound speed must be positive")
        self.tank = tank
        self.max_order = max_order
        self.sound_speed = sound_speed
        self.frequency_hz = frequency_hz
        self.min_gain = min_gain

    # -- image enumeration --------------------------------------------------

    def _axis_images(
        self, coord: float, size: float, order: int
    ) -> Iterator[tuple[float, int]]:
        """Images of one coordinate across a pair of parallel boundaries.

        Yields ``(image_coordinate, bounce_count)``.  The standard image
        lattice for a 1-D box [0, size] is ``2*n*size + coord`` and
        ``2*n*size - coord`` for integer n; the bounce count is how many
        boundary crossings the unfolded path makes.
        """
        for n in range(-order, order + 1):
            # Even-parity image: 2nL + coord crosses the boundary pair 2|n|
            # times.  Odd-parity image: 2nL - coord crosses |2n - 1| times.
            yield 2.0 * n * size + coord, 2 * abs(n)
            yield 2.0 * n * size - coord, abs(2 * n - 1)

    def paths(self, source: Position, receiver: Position) -> list[Path]:
        """All propagation paths from ``source`` to ``receiver``.

        Paths are sorted by increasing delay; the first entry is always the
        direct path.
        """
        self.tank.validate_position(source, "source")
        self.tank.validate_position(receiver, "receiver")
        t = self.tank
        result: list[Path] = []
        x_images = list(self._axis_images(source.x, t.length, self.max_order))
        y_images = list(self._axis_images(source.y, t.width, self.max_order))
        z_images = list(self._axis_images(source.z, t.depth, self.max_order))
        for xi, bx in x_images:
            for yi, by in y_images:
                for zi, bz in z_images:
                    order = bx + by + bz
                    if order > 2 * self.max_order:
                        continue
                    dx = xi - receiver.x
                    dy = yi - receiver.y
                    dz = zi - receiver.z
                    dist = math.sqrt(dx * dx + dy * dy + dz * dz)
                    if dist < 1e-6:
                        continue
                    gain = self._path_gain(dist, bx, by, bz, zi)
                    if abs(gain) < self.min_gain:
                        continue
                    result.append(
                        Path(
                            delay_s=dist / self.sound_speed,
                            gain=gain,
                            distance_m=dist,
                            bounces=order,
                        )
                    )
        result.sort(key=lambda p: p.delay_s)
        return result

    def _path_gain(
        self, distance: float, bx: int, by: int, bz: int, z_image: float
    ) -> float:
        """Signed linear gain of one image path."""
        t = self.tank
        # Wall bounces in x and y are always "hard" boundaries.
        refl = t.wall_reflection ** (bx + by)
        # z bounces alternate between surface (pressure release, z=0 plane)
        # and floor (hard).  The unfolded lattice alternates starting from
        # whichever boundary is crossed first; we approximate by splitting
        # bz bounces as evenly as possible between surface and floor, with
        # the surface taking the extra bounce when the image sits above the
        # physical tank (negative or small z image coordinate).
        surface_bounces = bz // 2
        floor_bounces = bz // 2
        if bz % 2 == 1:
            if z_image < 0 or z_image % (2 * t.depth) < t.depth:
                surface_bounces += 1
            else:
                floor_bounces += 1
        refl *= t.surface_reflection**surface_bounces
        refl *= t.wall_reflection**floor_bounces
        spreading = 1.0 / max(distance, 1.0)
        absorb = 10.0 ** (
            -absorption_db(self.frequency_hz, distance) / 20.0
        )
        return refl * spreading * absorb

    # -- impulse response ----------------------------------------------------

    def impulse_response(
        self,
        source: Position,
        receiver: Position,
        sample_rate: float,
        *,
        max_delay_s: float | None = None,
    ) -> np.ndarray:
        """Discrete-time pressure impulse response.

        Fractional delays are handled by linearly splitting each arrival
        between the two neighbouring samples, which preserves total energy
        to first order and keeps the model fast.
        """
        if sample_rate <= 0:
            raise ValueError("sample rate must be positive")
        all_paths = self.paths(source, receiver)
        if max_delay_s is not None:
            all_paths = [p for p in all_paths if p.delay_s <= max_delay_s]
        if not all_paths:
            return np.zeros(1)
        last = max(p.delay_s for p in all_paths)
        n = int(math.ceil(last * sample_rate)) + 2
        h = np.zeros(n)
        for p in all_paths:
            pos = p.delay_s * sample_rate
            i = int(math.floor(pos))
            frac = pos - i
            h[i] += p.gain * (1.0 - frac)
            h[i + 1] += p.gain * frac
        return h

    def channel_gain_at(
        self, source: Position, receiver: Position, frequency_hz: float
    ) -> complex:
        """Complex narrowband channel gain H(f) at one frequency."""
        acc = 0.0 + 0.0j
        for p in self.paths(source, receiver):
            acc += p.gain * np.exp(-2j * math.pi * frequency_hz * p.delay_s)
        return acc

    def rms_gain(self, source: Position, receiver: Position) -> float:
        """Incoherent (power-sum) channel gain sqrt(sum |g_i|^2).

        The right magnitude for *energy* budgets: a harvesting node
        integrates power over the whole reverberant field, and in a real
        tank the arrival phases decorrelate (rough walls, drift), so the
        deterministic coherent sum of the image model would over- or
        under-state long-range harvesting at specific spots."""
        return math.sqrt(sum(p.gain**2 for p in self.paths(source, receiver)))
