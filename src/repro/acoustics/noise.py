"""Ambient underwater noise: Wenz-style spectra and a time-domain generator.

The classic decomposition (Wenz 1962, as summarised by Coates 1990 and
widely used in underwater-network simulators) models the ambient noise
power spectral density as the sum of four sources — turbulence, distant
shipping, wind-driven surface agitation, and thermal noise:

    10 log N_t(f)  = 17 - 30 log f
    10 log N_s(f)  = 40 + 20 (s - 0.5) + 26 log f - 60 log(f + 0.03)
    10 log N_w(f)  = 50 + 7.5 sqrt(w) + 20 log f - 40 log(f + 0.4)
    10 log N_th(f) = -15 + 20 log f

with ``f`` in kHz, shipping activity ``s`` in [0, 1], wind speed ``w`` in
m/s, and PSD levels in dB re 1 uPa^2/Hz.

For indoor test tanks (the paper's pools) the open-ocean sources are not
physically present; instead there is broadband facility noise.  The
:class:`AmbientNoiseModel` therefore also supports a flat "tank" spectrum
whose level can be calibrated.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np


def turbulence_noise_db(frequency_hz: float) -> float:
    """Turbulence component of the Wenz curves [dB re uPa^2/Hz]."""
    f_khz = _f_khz(frequency_hz)
    return 17.0 - 30.0 * math.log10(f_khz)


def shipping_noise_db(frequency_hz: float, shipping_activity: float = 0.5) -> float:
    """Distant-shipping component [dB re uPa^2/Hz]; activity in [0, 1]."""
    if not 0.0 <= shipping_activity <= 1.0:
        raise ValueError("shipping_activity must be in [0, 1]")
    f_khz = _f_khz(frequency_hz)
    return (
        40.0
        + 20.0 * (shipping_activity - 0.5)
        + 26.0 * math.log10(f_khz)
        - 60.0 * math.log10(f_khz + 0.03)
    )


def wind_noise_db(frequency_hz: float, wind_speed_mps: float = 0.0) -> float:
    """Wind/surface-agitation component [dB re uPa^2/Hz]."""
    if wind_speed_mps < 0:
        raise ValueError("wind speed must be non-negative")
    f_khz = _f_khz(frequency_hz)
    return (
        50.0
        + 7.5 * math.sqrt(wind_speed_mps)
        + 20.0 * math.log10(f_khz)
        - 40.0 * math.log10(f_khz + 0.4)
    )


def thermal_noise_db(frequency_hz: float) -> float:
    """Thermal (molecular agitation) component [dB re uPa^2/Hz]."""
    f_khz = _f_khz(frequency_hz)
    return -15.0 + 20.0 * math.log10(f_khz)


def wenz_noise_psd_db(
    frequency_hz: float,
    *,
    shipping_activity: float = 0.5,
    wind_speed_mps: float = 0.0,
) -> float:
    """Total Wenz ambient noise PSD [dB re 1 uPa^2/Hz] at one frequency."""
    components_db = [
        turbulence_noise_db(frequency_hz),
        shipping_noise_db(frequency_hz, shipping_activity),
        wind_noise_db(frequency_hz, wind_speed_mps),
        thermal_noise_db(frequency_hz),
    ]
    total_linear = sum(10.0 ** (c / 10.0) for c in components_db)
    return 10.0 * math.log10(total_linear)


def _f_khz(frequency_hz: float) -> float:
    if frequency_hz <= 0:
        raise ValueError("frequency must be positive")
    return frequency_hz / 1000.0


@dataclass
class AmbientNoiseModel:
    """Generates ambient noise pressure waveforms.

    Parameters
    ----------
    spectrum:
        ``"wenz"`` for the open-water composite spectrum or ``"flat"`` for
        a white facility-noise floor (appropriate for indoor tanks).
    flat_level_db:
        PSD level [dB re 1 uPa^2/Hz] used when ``spectrum == "flat"``.
    shipping_activity, wind_speed_mps:
        Wenz parameters, ignored for the flat spectrum.
    seed:
        Optional RNG seed for reproducible noise.
    """

    spectrum: str = "flat"
    flat_level_db: float = 60.0
    shipping_activity: float = 0.5
    wind_speed_mps: float = 0.0
    seed: int | None = None
    _rng: np.random.Generator = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.spectrum not in ("wenz", "flat"):
            raise ValueError(f"unknown spectrum {self.spectrum!r}")
        self._rng = np.random.default_rng(self.seed)

    def snapshot_state(self) -> dict:
        """JSON-ready RNG stream position (for campaign checkpoints)."""
        return {"rng": self._rng.bit_generator.state}

    def restore_state(self, state: dict) -> None:
        """Inverse of :meth:`snapshot_state`."""
        self._rng.bit_generator.state = state["rng"]

    def psd_db(self, frequency_hz: float) -> float:
        """Noise PSD [dB re 1 uPa^2/Hz] at ``frequency_hz``."""
        if self.spectrum == "flat":
            if frequency_hz <= 0:
                raise ValueError("frequency must be positive")
            return self.flat_level_db
        return wenz_noise_psd_db(
            frequency_hz,
            shipping_activity=self.shipping_activity,
            wind_speed_mps=self.wind_speed_mps,
        )

    def band_pressure_rms(self, f_low_hz: float, f_high_hz: float) -> float:
        """RMS noise pressure [Pa] integrated over a frequency band."""
        if not 0 < f_low_hz < f_high_hz:
            raise ValueError("need 0 < f_low < f_high")
        freqs = np.linspace(f_low_hz, f_high_hz, 256)
        psd_upa2 = np.array([10.0 ** (self.psd_db(float(f)) / 10.0) for f in freqs])
        power_upa2 = float(np.trapezoid(psd_upa2, freqs))
        return math.sqrt(power_upa2) * 1e-6  # uPa -> Pa

    def generate(
        self,
        n_samples: int,
        sample_rate: float,
        *,
        band: tuple[float, float] | None = None,
    ) -> np.ndarray:
        """Generate a noise pressure waveform [Pa].

        For the flat spectrum this is white Gaussian noise whose total power
        equals the PSD integrated over the Nyquist band (or over ``band`` if
        given, in which case the waveform is still white but scaled to the
        in-band power — adequate because the receiver always band-filters).
        For the Wenz spectrum the waveform is spectrally shaped via an FFT
        colouring filter.
        """
        if n_samples < 0:
            raise ValueError("n_samples must be non-negative")
        if n_samples == 0:
            return np.zeros(0)
        nyquist = sample_rate / 2.0
        f_low, f_high = band if band is not None else (1.0, nyquist)
        if self.spectrum == "flat":
            psd_pa2 = 10.0 ** (self.flat_level_db / 10.0) * 1e-12  # Pa^2/Hz
            sigma = math.sqrt(psd_pa2 * nyquist)
            return self._rng.normal(0.0, sigma, n_samples)
        # Shape white noise by the sqrt of the Wenz PSD.
        white = self._rng.normal(0.0, 1.0, n_samples)
        spectrum = np.fft.rfft(white)
        freqs = np.fft.rfftfreq(n_samples, d=1.0 / sample_rate)
        gains = np.zeros_like(freqs)
        valid = (freqs >= max(f_low, 1.0)) & (freqs <= f_high)
        psd_pa2 = np.array(
            [10.0 ** (self.psd_db(float(f)) / 10.0) * 1e-12 for f in freqs[valid]]
        )
        gains[valid] = np.sqrt(psd_pa2 * sample_rate)
        shaped = np.fft.irfft(spectrum * gains, n=n_samples)
        return shaped
