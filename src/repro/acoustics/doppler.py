"""Doppler effects for mobile nodes (paper Sec. 8: "Operation Environment").

The paper's discussion notes that rivers, lakes, and oceans "are also
likely to introduce new challenges, such as mobility and multipath".
This module provides the standard narrowband and wideband Doppler models
so links can be simulated with moving nodes:

* :func:`doppler_shift_hz` — carrier shift for a radial velocity,
* :func:`doppler_factor` — the time-compression factor ``1 + v/c``,
* :func:`apply_doppler` — wideband resampling of a waveform (acoustic
  Doppler is *not* a pure frequency shift at these fractional
  bandwidths; the whole waveform dilates).

Sign convention: positive ``radial_velocity_mps`` means the endpoints
are closing (approaching), which raises the received frequency.
"""

from __future__ import annotations

import numpy as np

from repro.constants import NOMINAL_SOUND_SPEED


def doppler_factor(
    radial_velocity_mps: float,
    sound_speed: float = NOMINAL_SOUND_SPEED,
) -> float:
    """Time-compression factor ``a = 1 + v/c`` of the received waveform."""
    if sound_speed <= 0:
        raise ValueError("sound speed must be positive")
    if abs(radial_velocity_mps) >= sound_speed:
        raise ValueError("velocity must be below the sound speed")
    return 1.0 + radial_velocity_mps / sound_speed


def doppler_shift_hz(
    frequency_hz: float,
    radial_velocity_mps: float,
    sound_speed: float = NOMINAL_SOUND_SPEED,
) -> float:
    """Carrier frequency shift [Hz] for a radial velocity."""
    if frequency_hz <= 0:
        raise ValueError("frequency must be positive")
    return frequency_hz * (doppler_factor(radial_velocity_mps, sound_speed) - 1.0)


def apply_doppler(
    waveform,
    radial_velocity_mps: float,
    sample_rate: float,
    sound_speed: float = NOMINAL_SOUND_SPEED,
) -> np.ndarray:
    """Wideband Doppler: resample the waveform by the compression factor.

    Underwater platforms move at non-negligible fractions of the sound
    speed (1 m/s is ~67 ppm at 1.5 km/s — already several Hz at 15 kHz),
    and acoustic links are wideband relative to RF, so the correct model
    is a time-axis dilation, implemented here by linear-interpolated
    resampling.  Output length is ``len(input) / a`` (closing targets
    compress the waveform).
    """
    x = np.asarray(waveform, dtype=float)
    if x.ndim != 1:
        raise ValueError("waveform must be one-dimensional")
    if sample_rate <= 0:
        raise ValueError("sample rate must be positive")
    a = doppler_factor(radial_velocity_mps, sound_speed)
    if len(x) < 2 or a == 1.0:
        return x.copy()
    n_out = max(int(np.floor(len(x) / a)), 1)
    # Received sample k corresponds to transmitted time k * a / fs.
    positions = np.arange(n_out) * a
    return np.interp(positions, np.arange(len(x)), x)


def max_tolerable_velocity_mps(
    bitrate: float,
    packet_bits: int,
    sample_rate: float,
    sound_speed: float = NOMINAL_SOUND_SPEED,
    *,
    max_chip_slip: float = 0.5,
) -> float:
    """Largest radial speed before Doppler slips chip timing by
    ``max_chip_slip`` chips over one packet.

    A design aid for the mobility discussion: without Doppler tracking,
    the chip clock drifts by ``v/c`` per second, so long packets at high
    bitrates bound the tolerable platform speed.
    """
    if bitrate <= 0 or packet_bits <= 0:
        raise ValueError("bitrate and packet size must be positive")
    packet_s = packet_bits / bitrate
    chip_s = 1.0 / (2.0 * bitrate)
    # slip = (v / c) * packet_s; require slip <= max_chip_slip * chip_s.
    return max_chip_slip * chip_s / packet_s * sound_speed
