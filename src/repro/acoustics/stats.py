"""Channel statistics: delay spread, coherence bandwidth, K factor.

Summary quantities of the multipath structure, computed from the
image-source path list.  These explain the receiver's behaviour: the RMS
delay spread (in chips) predicts how much inter-chip interference the
equaliser must undo, and the coherence bandwidth predicts how frequency-
selective the recto-piezo channels are.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.acoustics.geometry import Position, Tank
from repro.acoustics.multipath import ImageSourceModel


@dataclass(frozen=True)
class ChannelStats:
    """Multipath summary for one geometry.

    Attributes
    ----------
    mean_delay_s:
        Power-weighted mean arrival delay.
    rms_delay_spread_s:
        Power-weighted standard deviation of arrival delays — the ISI
        yardstick.
    coherence_bandwidth_hz:
        ~1 / (5 * rms delay spread), the 0.5-correlation convention.
    k_factor_db:
        Power ratio of the strongest arrival to the sum of all others
        (the Rician K of this static geometry).
    n_paths:
        Arrivals above the model's gain floor.
    """

    mean_delay_s: float
    rms_delay_spread_s: float
    coherence_bandwidth_hz: float
    k_factor_db: float
    n_paths: int

    def delay_spread_chips(self, bitrate: float) -> float:
        """RMS delay spread expressed in FM0 chips at a bitrate."""
        if bitrate <= 0:
            raise ValueError("bitrate must be positive")
        chip_s = 1.0 / (2.0 * bitrate)
        return self.rms_delay_spread_s / chip_s


def channel_stats(
    tank: Tank,
    source: Position,
    receiver: Position,
    *,
    max_order: int = 2,
) -> ChannelStats:
    """Compute :class:`ChannelStats` for one link geometry."""
    model = ImageSourceModel(tank, max_order=max_order)
    paths = model.paths(source, receiver)
    if not paths:
        raise ValueError("no propagation paths")
    powers = np.array([p.gain**2 for p in paths])
    delays = np.array([p.delay_s for p in paths])
    total = float(np.sum(powers))
    mean_delay = float(np.sum(powers * delays) / total)
    rms = float(
        math.sqrt(np.sum(powers * (delays - mean_delay) ** 2) / total)
    )
    if rms < 1e-15:  # single-arrival geometries, modulo float rounding
        rms = 0.0
    strongest = float(np.max(powers))
    rest = total - strongest
    k_db = 10.0 * math.log10(strongest / rest) if rest > 0 else float("inf")
    coherence = 1.0 / (5.0 * rms) if rms > 0 else float("inf")
    return ChannelStats(
        mean_delay_s=mean_delay,
        rms_delay_spread_s=rms,
        coherence_bandwidth_hz=coherence,
        k_factor_db=k_db,
        n_paths=len(paths),
    )


def max_isi_free_bitrate(
    tank: Tank,
    source: Position,
    receiver: Position,
    *,
    max_spread_chips: float = 0.5,
    max_order: int = 2,
) -> float:
    """Largest bitrate keeping RMS delay spread under ``max_spread_chips``.

    A design rule of thumb: beyond this rate the chip-domain equaliser is
    doing real work (and will eventually run out of taps).
    """
    stats = channel_stats(tank, source, receiver, max_order=max_order)
    if stats.rms_delay_spread_s <= 0:
        return float("inf")
    chip_s = stats.rms_delay_spread_s / max_spread_chips
    return 1.0 / (2.0 * chip_s)
