"""Time-varying channel fading from surface motion.

Enclosed tanks are static, but the paper's target environments (Sec. 8)
have moving surfaces: waves modulate the surface-bounce paths, so the
composite channel gain fades over time.  The standard model for a
carrier whose multipath includes one strong stable component plus many
weak fluctuating ones is **Rician fading**; with no stable component it
degenerates to **Rayleigh**.

:class:`FadingProcess` generates a correlated complex gain series using
a first-order Gauss-Markov (AR(1)) process for the diffuse part, with a
coherence time set by the surface motion, and applies it to passband
waveforms by complex multiplication of the analytic signal.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np
from scipy.signal import hilbert


@dataclass
class FadingProcess:
    """A correlated Rician fading gain generator.

    Parameters
    ----------
    k_factor_db:
        Rician K factor [dB]: power ratio of the stable (specular)
        component to the diffuse component.  Large K -> nearly static;
        K -> -inf dB is Rayleigh.
    coherence_time_s:
        1/e decorrelation time of the diffuse component — of order the
        surface wave period (0.1-2 s for wind waves).
    mean_gain:
        RMS composite gain (total power normalisation).
    seed:
        RNG seed.
    """

    k_factor_db: float = 10.0
    coherence_time_s: float = 0.5
    mean_gain: float = 1.0
    seed: int | None = None
    _rng: np.random.Generator = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.coherence_time_s <= 0:
            raise ValueError("coherence time must be positive")
        if self.mean_gain <= 0:
            raise ValueError("mean gain must be positive")
        self._rng = np.random.default_rng(self.seed)

    @property
    def k_linear(self) -> float:
        """Linear Rician K factor."""
        return 10.0 ** (self.k_factor_db / 10.0)

    def gain_series(self, n_samples: int, sample_rate: float) -> np.ndarray:
        """Complex channel gain per sample, unit mean power x mean_gain^2.

        The diffuse part is an AR(1) complex Gaussian process with the
        requested coherence time; the specular part is a constant phasor.
        """
        if n_samples < 0:
            raise ValueError("n_samples must be non-negative")
        if sample_rate <= 0:
            raise ValueError("sample rate must be positive")
        if n_samples == 0:
            return np.zeros(0, dtype=complex)
        k = self.k_linear
        specular_power = k / (k + 1.0)
        diffuse_power = 1.0 / (k + 1.0)
        rho = math.exp(-1.0 / (self.coherence_time_s * sample_rate))
        innovation = math.sqrt((1.0 - rho**2) * diffuse_power / 2.0)
        # AR(1) recursion; vectorising exactly needs a scan, but the
        # per-sample loop in numpy would crawl — use the standard trick of
        # filtering white noise with a one-pole IIR.
        from scipy.signal import lfilter

        white = self._rng.normal(size=n_samples) + 1j * self._rng.normal(
            size=n_samples
        )
        diffuse = lfilter([innovation], [1.0, -rho], white)
        # Start the recursion in steady state.
        steady = (
            self._rng.normal() + 1j * self._rng.normal()
        ) * math.sqrt(diffuse_power / 2.0)
        diffuse = diffuse + steady * rho ** np.arange(1, n_samples + 1)
        specular = math.sqrt(specular_power)
        return self.mean_gain * (specular + diffuse)

    def apply(self, waveform, sample_rate: float) -> np.ndarray:
        """Apply the fading gain to a real passband waveform."""
        x = np.asarray(waveform, dtype=float)
        if x.ndim != 1:
            raise ValueError("waveform must be one-dimensional")
        if len(x) == 0:
            return x.copy()
        gains = self.gain_series(len(x), sample_rate)
        return np.real(gains * hilbert(x))

    def outage_probability(
        self,
        margin_db: float,
        *,
        n_samples: int = 200_000,
        sample_rate: float = 1_000.0,
    ) -> float:
        """Monte-Carlo probability that |gain|^2 fades below -margin_db.

        The planning quantity: with a link budget ``margin_db`` above the
        decode threshold, this is the fraction of time the link is down.
        """
        if margin_db < 0:
            raise ValueError("margin must be non-negative")
        gains = self.gain_series(n_samples, sample_rate)
        power = np.abs(gains) ** 2 / self.mean_gain**2
        threshold = 10.0 ** (-margin_db / 10.0)
        return float(np.mean(power < threshold))
