"""Sound speed in water as a function of temperature, salinity, and depth.

Three standard empirical equations are provided.  All return metres per
second.  Inputs are temperature in degrees Celsius, salinity in parts per
thousand (PSU), and depth in metres unless noted otherwise.

References
----------
* Mackenzie, K.V. (1981), "Nine-term equation for sound speed in the
  oceans", JASA 70(3).
* Medwin, H. (1975), "Speed of sound in water: a simple equation for
  realistic parameters", JASA 58(6).
* Coppens, A.B. (1981), "Simple equations for the speed of sound in
  Neptunian waters", JASA 69(3).
"""

from __future__ import annotations


class SoundSpeedRangeError(ValueError):
    """Raised when an input falls outside an equation's validity range."""


def _check_range(name: str, value: float, low: float, high: float) -> None:
    if not low <= value <= high:
        raise SoundSpeedRangeError(
            f"{name}={value!r} outside validity range [{low}, {high}]"
        )


def sound_speed_mackenzie(
    temperature_c: float,
    salinity_psu: float = 0.0,
    depth_m: float = 0.0,
    *,
    validate: bool = True,
) -> float:
    """Mackenzie (1981) nine-term sound-speed equation.

    Valid for temperature 2-30 C, salinity 25-40 PSU, depth 0-8000 m.
    With ``validate=False`` the polynomial is evaluated outside the fitted
    range (useful for fresh-water test tanks where salinity ~ 0).
    """
    t, s, d = temperature_c, salinity_psu, depth_m
    if validate:
        _check_range("temperature_c", t, 2.0, 30.0)
        _check_range("salinity_psu", s, 25.0, 40.0)
        _check_range("depth_m", d, 0.0, 8000.0)
    return (
        1448.96
        + 4.591 * t
        - 5.304e-2 * t**2
        + 2.374e-4 * t**3
        + 1.340 * (s - 35.0)
        + 1.630e-2 * d
        + 1.675e-7 * d**2
        - 1.025e-2 * t * (s - 35.0)
        - 7.139e-13 * t * d**3
    )


def sound_speed_medwin(
    temperature_c: float,
    salinity_psu: float = 0.0,
    depth_m: float = 0.0,
    *,
    validate: bool = True,
) -> float:
    """Medwin (1975) simplified sound-speed equation.

    Valid for temperature 0-35 C, salinity 0-45 PSU, depth 0-1000 m.  This
    is the default equation for the paper's shallow fresh-water tanks.
    """
    t, s, d = temperature_c, salinity_psu, depth_m
    if validate:
        _check_range("temperature_c", t, 0.0, 35.0)
        _check_range("salinity_psu", s, 0.0, 45.0)
        _check_range("depth_m", d, 0.0, 1000.0)
    return (
        1449.2
        + 4.6 * t
        - 5.5e-2 * t**2
        + 2.9e-4 * t**3
        + (1.34 - 1.0e-2 * t) * (s - 35.0)
        + 1.6e-2 * d
    )


def sound_speed_coppens(
    temperature_c: float,
    salinity_psu: float = 0.0,
    depth_m: float = 0.0,
    *,
    validate: bool = True,
) -> float:
    """Coppens (1981) sound-speed equation.

    Valid for temperature 0-35 C, salinity 0-45 PSU, depth 0-4000 m.
    """
    t, s, d = temperature_c, salinity_psu, depth_m
    if validate:
        _check_range("temperature_c", t, 0.0, 35.0)
        _check_range("salinity_psu", s, 0.0, 45.0)
        _check_range("depth_m", d, 0.0, 4000.0)
    t10 = t / 10.0
    d_km = d / 1000.0
    c0 = (
        1449.05
        + 45.7 * t10
        - 5.21 * t10**2
        + 0.23 * t10**3
        + (1.333 - 0.126 * t10 + 0.009 * t10**2) * (s - 35.0)
    )
    return (
        c0
        + (16.23 + 0.253 * t10) * d_km
        + (0.213 - 0.1 * t10) * d_km**2
        + (0.016 + 0.0002 * (s - 35.0)) * (s - 35.0) * t10 * d_km
    )
