"""Frequency-dependent absorption of sound in water.

Two standard models are implemented:

* **Thorp (1967)** — the classic low-frequency seawater fit, valid roughly
  100 Hz - 50 kHz, which covers the paper's whole 12-18 kHz operating band.
* **Francois & Garrison (1982)** — the full three-relaxation model (boric
  acid, magnesium sulphate, pure-water viscosity) with temperature,
  salinity, depth and pH dependence.  With salinity 0 it degrades
  gracefully to the fresh-water (viscous-only) limit, which is what the
  paper's test tanks actually are.

Both return attenuation in dB per kilometre; :func:`absorption_db` scales
to an arbitrary path length.
"""

from __future__ import annotations

import math


def thorp_attenuation_db_per_km(frequency_hz: float) -> float:
    """Thorp's empirical seawater absorption [dB/km].

    Parameters
    ----------
    frequency_hz:
        Acoustic frequency in Hz.  Must be positive.
    """
    if frequency_hz <= 0:
        raise ValueError("frequency must be positive")
    f_khz = frequency_hz / 1000.0
    f2 = f_khz * f_khz
    return (
        0.11 * f2 / (1.0 + f2)
        + 44.0 * f2 / (4100.0 + f2)
        + 2.75e-4 * f2
        + 0.003
    )


def francois_garrison_db_per_km(
    frequency_hz: float,
    temperature_c: float = 20.0,
    salinity_psu: float = 0.0,
    depth_m: float = 1.0,
    ph: float = 7.0,
    sound_speed: float | None = None,
) -> float:
    """Francois & Garrison (1982) absorption [dB/km].

    The three terms are boric-acid relaxation, magnesium-sulphate
    relaxation, and pure-water viscous absorption.  The first two vanish in
    fresh water (salinity 0), leaving only the viscous term, which is the
    correct behaviour for the paper's fresh-water pools.
    """
    if frequency_hz <= 0:
        raise ValueError("frequency must be positive")
    f = frequency_hz / 1000.0  # kHz
    t = temperature_c
    s = salinity_psu
    d = depth_m
    if sound_speed is None:
        sound_speed = 1412.0 + 3.21 * t + 1.19 * s + 0.0167 * d

    theta = 273.0 + t

    # Boric acid contribution (zero in fresh water).
    if s > 0:
        a1 = 8.86 / sound_speed * 10.0 ** (0.78 * ph - 5.0)
        p1 = 1.0
        f1 = 2.8 * math.sqrt(s / 35.0) * 10.0 ** (4.0 - 1245.0 / theta)
        boric = a1 * p1 * f1 * f * f / (f1 * f1 + f * f)
    else:
        boric = 0.0

    # Magnesium sulphate contribution (zero in fresh water).
    if s > 0:
        a2 = 21.44 * s / sound_speed * (1.0 + 0.025 * t)
        p2 = 1.0 - 1.37e-4 * d + 6.2e-9 * d * d
        f2 = 8.17 * 10.0 ** (8.0 - 1990.0 / theta) / (1.0 + 0.0018 * (s - 35.0))
        mgso4 = a2 * p2 * f2 * f * f / (f2 * f2 + f * f)
    else:
        mgso4 = 0.0

    # Pure water viscous contribution.
    if t <= 20.0:
        a3 = (
            4.937e-4
            - 2.59e-5 * t
            + 9.11e-7 * t * t
            - 1.50e-8 * t**3
        )
    else:
        a3 = (
            3.964e-4
            - 1.146e-5 * t
            + 1.45e-7 * t * t
            - 6.5e-10 * t**3
        )
    p3 = 1.0 - 3.83e-5 * d + 4.9e-10 * d * d
    water = a3 * p3 * f * f

    return boric + mgso4 + water


def absorption_db(
    frequency_hz: float,
    distance_m: float,
    *,
    model: str = "thorp",
    **model_kwargs: float,
) -> float:
    """Total absorption loss over ``distance_m`` [dB].

    Parameters
    ----------
    model:
        ``"thorp"`` (default) or ``"francois-garrison"``.
    """
    if distance_m < 0:
        raise ValueError("distance must be non-negative")
    if model == "thorp":
        per_km = thorp_attenuation_db_per_km(frequency_hz)
    elif model in ("francois-garrison", "fg"):
        per_km = francois_garrison_db_per_km(frequency_hz, **model_kwargs)
    else:
        raise ValueError(f"unknown absorption model {model!r}")
    return per_km * distance_m / 1000.0
