"""Waveform-level acoustic channel.

:class:`AcousticChannel` ties the pieces of this subpackage together: given
a tank (or free field), source/receiver positions, and a noise model, it
turns a transmitted pressure waveform (referenced to 1 m from the source)
into the received pressure waveform at the receiver, including multipath,
propagation delay, and additive ambient noise.

The same object also provides narrowband summary quantities (channel gain,
transmission loss) used by the energy-budget engine, so the communication
and harvesting simulations see a consistent channel.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.signal import fftconvolve

from repro.acoustics.geometry import Position, Tank
from repro.acoustics.multipath import ImageSourceModel, Path
from repro.acoustics.noise import AmbientNoiseModel
from repro.constants import NOMINAL_SOUND_SPEED
from repro.perf.cache import get_cache


@dataclass
class ChannelOutput:
    """Result of pushing a waveform through the channel.

    Attributes
    ----------
    waveform:
        Received pressure waveform [Pa], same sample rate as the input.
        Longer than the input by the channel spread.
    direct_delay_s:
        Delay of the first (direct) arrival [s].
    paths:
        The multipath structure used.
    """

    waveform: np.ndarray
    direct_delay_s: float
    paths: list[Path]


class AcousticChannel:
    """Point-to-point underwater channel inside a tank.

    Parameters
    ----------
    tank:
        Geometry and boundary properties.
    source, receiver:
        Endpoint positions.
    sample_rate:
        Waveform sample rate [Hz].
    frequency_hz:
        Nominal carrier for absorption and narrowband summaries.
    noise:
        Ambient noise model; ``None`` disables additive noise.
    max_order:
        Image-source reflection order.
    sound_speed:
        Speed of sound [m/s].
    """

    def __init__(
        self,
        tank: Tank,
        source: Position,
        receiver: Position,
        *,
        sample_rate: float,
        frequency_hz: float = 15_000.0,
        noise: AmbientNoiseModel | None = None,
        max_order: int = 2,
        sound_speed: float = NOMINAL_SOUND_SPEED,
    ) -> None:
        if sample_rate <= 0:
            raise ValueError("sample rate must be positive")
        self.tank = tank
        self.source = source
        self.receiver = receiver
        self.sample_rate = sample_rate
        self.frequency_hz = frequency_hz
        self.noise = noise
        self.sound_speed = sound_speed
        self._model = ImageSourceModel(
            tank,
            max_order=max_order,
            sound_speed=sound_speed,
            frequency_hz=frequency_hz,
        )
        # Path enumeration and impulse-response synthesis depend only on
        # geometry + model parameters; links rebuilt for the same layout
        # (every transaction in a polling campaign) share the results.
        geo_key = (
            tank, source, receiver, max_order, sound_speed, frequency_hz
        )
        self._paths = get_cache("channel_paths", maxsize=1024).get_or_compute(
            geo_key, lambda: tuple(self._model.paths(source, receiver))
        )
        self._impulse = get_cache("channel_irs", maxsize=1024).get_or_compute(
            geo_key + (sample_rate,),
            lambda: self._model.impulse_response(
                source, receiver, sample_rate
            ),
        )

    @property
    def paths(self) -> list[Path]:
        """Multipath arrivals, sorted by delay."""
        return list(self._paths)

    @property
    def direct_path(self) -> Path:
        """The line-of-sight arrival."""
        for p in self._paths:
            if p.is_direct:
                return p
        # Direct path can only be missing if endpoints coincide; guarded in
        # ImageSourceModel, but keep a clear error for safety.
        raise RuntimeError("channel has no direct path")

    @property
    def distance(self) -> float:
        """Source-receiver straight-line distance [m]."""
        return self.source.distance_to(self.receiver)

    def gain_at(self, frequency_hz: float | None = None) -> complex:
        """Complex narrowband gain H(f) including multipath."""
        f = self.frequency_hz if frequency_hz is None else frequency_hz
        return self._model.channel_gain_at(self.source, self.receiver, f)

    def magnitude_gain(self, frequency_hz: float | None = None) -> float:
        """|H(f)| — linear pressure gain relative to source level at 1 m."""
        return abs(self.gain_at(frequency_hz))

    def incoherent_gain(self) -> float:
        """Power-sum gain sqrt(sum |g_i|^2) — used for energy budgets."""
        return self._model.rms_gain(self.source, self.receiver)

    def transmission_loss_db(self, frequency_hz: float | None = None) -> float:
        """Effective TL [dB] including coherent multipath gain."""
        g = self.magnitude_gain(frequency_hz)
        if g <= 0:
            return float("inf")
        return -20.0 * float(np.log10(g))

    def apply(
        self,
        waveform: np.ndarray,
        *,
        include_noise: bool = True,
        rng_noise: bool = True,
    ) -> ChannelOutput:
        """Propagate ``waveform`` (source pressure at 1 m [Pa]) to the receiver."""
        waveform = np.asarray(waveform, dtype=float)
        if waveform.ndim != 1:
            raise ValueError("waveform must be one-dimensional")
        received = fftconvolve(waveform, self._impulse)
        if include_noise and self.noise is not None and rng_noise:
            received = received + self.noise.generate(
                len(received), self.sample_rate
            )
        return ChannelOutput(
            waveform=received,
            direct_delay_s=self.direct_path.delay_s,
            paths=self.paths,
        )
