"""Deployment-environment presets (paper Sec. 8, "Operation Environment").

The paper plans deployments beyond test tanks — "more complex
environments such as rivers, lakes, and oceans".  A preset bundles the
water properties (temperature, salinity), the derived sound speed, the
matching absorption model, and an ambient noise configuration, so links
can be parameterised by *where* they run instead of by raw constants.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.acoustics.attenuation import francois_garrison_db_per_km
from repro.acoustics.geometry import Tank, open_water
from repro.acoustics.noise import AmbientNoiseModel
from repro.acoustics.sound_speed import sound_speed_medwin


@dataclass(frozen=True)
class DeploymentEnvironment:
    """Water properties and noise of one deployment setting.

    Attributes
    ----------
    name:
        Label ("test tank", "river", ...).
    temperature_c, salinity_psu, depth_m:
        Bulk water properties at the deployment depth.
    noise:
        Ambient noise model appropriate for the setting.
    tank:
        Boundary geometry; ``None`` means unbounded open water.
    """

    name: str
    temperature_c: float
    salinity_psu: float
    depth_m: float
    noise: AmbientNoiseModel
    tank: Tank | None = None

    @property
    def sound_speed_mps(self) -> float:
        """Sound speed from the Medwin equation for these properties."""
        return sound_speed_medwin(
            self.temperature_c, self.salinity_psu, self.depth_m
        )

    def absorption_db_per_km(self, frequency_hz: float) -> float:
        """Francois-Garrison absorption for these water properties."""
        return francois_garrison_db_per_km(
            frequency_hz,
            temperature_c=self.temperature_c,
            salinity_psu=self.salinity_psu,
            depth_m=self.depth_m,
        )

    def geometry(self) -> Tank:
        """The boundary model (an effectively unbounded box if none)."""
        return self.tank if self.tank is not None else open_water(self.name)


def indoor_tank(seed: int | None = 0) -> DeploymentEnvironment:
    """An indoor fresh-water tank like the paper's pools."""
    from repro.acoustics.geometry import POOL_A

    return DeploymentEnvironment(
        name="test tank",
        temperature_c=20.0,
        salinity_psu=0.0,
        depth_m=1.0,
        noise=AmbientNoiseModel(spectrum="flat", flat_level_db=60.0, seed=seed),
        tank=POOL_A,
    )


def river(seed: int | None = 0) -> DeploymentEnvironment:
    """A shallow fresh-water river: cool, turbulent, flow noise."""
    return DeploymentEnvironment(
        name="river",
        temperature_c=12.0,
        salinity_psu=0.2,
        depth_m=3.0,
        noise=AmbientNoiseModel(spectrum="flat", flat_level_db=70.0, seed=seed),
        tank=None,
    )


def lake(seed: int | None = 0) -> DeploymentEnvironment:
    """A quiet fresh-water lake."""
    return DeploymentEnvironment(
        name="lake",
        temperature_c=15.0,
        salinity_psu=0.1,
        depth_m=10.0,
        noise=AmbientNoiseModel(spectrum="flat", flat_level_db=55.0, seed=seed),
        tank=None,
    )


def coastal_ocean(
    seed: int | None = 0,
    *,
    wind_speed_mps: float = 5.0,
    shipping_activity: float = 0.5,
) -> DeploymentEnvironment:
    """Shallow coastal seawater with Wenz-curve ambient noise."""
    return DeploymentEnvironment(
        name="coastal ocean",
        temperature_c=14.0,
        salinity_psu=33.0,
        depth_m=20.0,
        noise=AmbientNoiseModel(
            spectrum="wenz",
            wind_speed_mps=wind_speed_mps,
            shipping_activity=shipping_activity,
            seed=seed,
        ),
        tank=None,
    )


#: Registry of available presets.
ENVIRONMENTS = {
    "tank": indoor_tank,
    "river": river,
    "lake": lake,
    "ocean": coastal_ocean,
}
