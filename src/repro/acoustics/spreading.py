"""Geometric spreading and total transmission loss.

Underwater transmission loss is conventionally written

    TL(r, f) = k * 10 * log10(r / r0) + alpha(f) * r

where ``k = 20`` for spherical spreading (free field), ``k = 10`` for
cylindrical spreading (fully ducted), and intermediate values model
partially bounded environments such as shallow tanks.  ``alpha`` is the
absorption from :mod:`repro.acoustics.attenuation`.
"""

from __future__ import annotations

import math

from repro.acoustics.attenuation import absorption_db
from repro.constants import REFERENCE_DISTANCE

#: Spreading exponents for the two limiting regimes.
SPHERICAL = 20.0
CYLINDRICAL = 10.0


def spreading_loss_db(
    distance_m: float,
    *,
    exponent: float = SPHERICAL,
    reference_m: float = REFERENCE_DISTANCE,
) -> float:
    """Geometric spreading loss [dB] relative to ``reference_m``.

    Distances closer than the reference distance are clamped to the
    reference (the near field of a real transducer is not modelled by the
    far-field spreading law, and the paper never operates there).
    """
    if distance_m < 0:
        raise ValueError("distance must be non-negative")
    if exponent < 0:
        raise ValueError("spreading exponent must be non-negative")
    r = max(distance_m, reference_m)
    return exponent * math.log10(r / reference_m)


def transmission_loss_db(
    distance_m: float,
    frequency_hz: float,
    *,
    exponent: float = SPHERICAL,
    absorption_model: str = "thorp",
    **absorption_kwargs: float,
) -> float:
    """Total one-way transmission loss [dB]: spreading plus absorption."""
    return spreading_loss_db(distance_m, exponent=exponent) + absorption_db(
        frequency_hz, distance_m, model=absorption_model, **absorption_kwargs
    )


def pressure_ratio_from_tl(tl_db: float) -> float:
    """Convert a transmission loss in dB to a linear pressure ratio.

    A TL of 0 dB maps to 1.0; 20 dB maps to 0.1.
    """
    return 10.0 ** (-tl_db / 20.0)


def tl_from_pressure_ratio(ratio: float) -> float:
    """Inverse of :func:`pressure_ratio_from_tl`."""
    if ratio <= 0:
        raise ValueError("pressure ratio must be positive")
    return -20.0 * math.log10(ratio)
