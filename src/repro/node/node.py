"""PABNode: the complete battery-free sensor node.

Composes the transducer, recto-piezo bank, energy storage, firmware, and
sensing peripherals into the device of paper Fig. 4/5.  The node exposes
exactly two physical interfaces to the outside world, matching reality:

* the incident acoustic pressure at its transducer (input), and
* its reflection coefficient trajectory over time (output).

Everything else — harvesting, decoding, sensing, FM0 modulation — happens
inside.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.rectopiezo import RectoPiezoBank
from repro.net.addresses import NodeAddress
from repro.net.messages import Query, Response
from repro.node.energy import PowerUpSimulator
from repro.obs.trace import get_tracer
from repro.node.firmware import FirmwareConfig, FirmwareState, NodeFirmware
from repro.node.power import NodePowerModel
from repro.piezo.transducer import Transducer
from repro.sensing.i2c import I2CBus
from repro.sensing.ph import PhSensor
from repro.sensing.pressure import MS5837, MS5837Driver, WaterColumn
from repro.sensing.temperature import ThermistorChannel


@dataclass
class Environment:
    """Ground truth the node's sensors observe.

    Attributes
    ----------
    water:
        Depth / temperature / surface pressure at the node.
    true_ph:
        Solution pH at the node.
    """

    water: WaterColumn = field(default_factory=WaterColumn)
    true_ph: float = 7.0


class PABNode:
    """A battery-free piezo-acoustic backscatter sensor node.

    Parameters
    ----------
    address:
        Node address (int or :class:`NodeAddress`).
    channel_frequencies_hz:
        Recto-piezo bank frequencies; the first is the boot default.
    transducer:
        Custom transducer; the paper's cylinder design by default.
    environment:
        World state for the sensors.
    bitrate:
        Initial uplink bitrate [bit/s].
    ledger:
        Optional :class:`~repro.obs.ledger.EnergyLedger` shared by the
        firmware (power-state bucketing) and any
        :meth:`power_up_simulator` this node hands out (capacitor joule
        flows).
    """

    def __init__(
        self,
        address,
        channel_frequencies_hz=(15_000.0,),
        *,
        transducer: Transducer | None = None,
        environment: Environment | None = None,
        bitrate: float = 1_000.0,
        ledger=None,
    ) -> None:
        self.address = (
            address if isinstance(address, NodeAddress) else NodeAddress(int(address))
        )
        self.transducer = (
            transducer if transducer is not None else Transducer.from_cylinder_design()
        )
        self.bank = RectoPiezoBank(self.transducer, channel_frequencies_hz)
        self.environment = environment if environment is not None else Environment()

        # Peripherals wired exactly like the paper's platform.
        self.i2c = I2CBus()
        self.i2c.attach(MS5837(self.environment.water))
        pressure_driver = MS5837Driver(self.i2c)
        self.ledger = ledger
        self.firmware = NodeFirmware(
            FirmwareConfig(address=self.address, bitrate=bitrate),
            ph_sensor=PhSensor(),
            pressure_driver=pressure_driver,
            thermistor=ThermistorChannel(),
            environment=self.environment,
            n_resonance_modes=len(self.bank),
            ledger=ledger,
        )
        self.power_model = NodePowerModel()
        self._powered = False

    # -- energy ---------------------------------------------------------------------

    @property
    def is_powered(self) -> bool:
        return self._powered

    @property
    def active_mode(self):
        """The currently selected recto-piezo mode."""
        return self.bank.mode(self.firmware.config.resonance_mode)

    def power_up_simulator(self, mode_index: int | None = None) -> PowerUpSimulator:
        """An energy engine bound to one of this node's modes."""
        mode = self.bank.mode(
            self.firmware.config.resonance_mode if mode_index is None else mode_index
        )
        return PowerUpSimulator(
            mode.harvester, power_model=self.power_model, ledger=self.ledger
        )

    def try_power_up(self, incident_pressure_pa: float, frequency_hz: float) -> bool:
        """Attempt cold start from an incident tone; boots firmware on success."""
        sim = self.power_up_simulator()
        if sim.can_power_up(incident_pressure_pa, frequency_hz):
            self._powered = True
            self.firmware.boot()
        else:
            self._powered = False
            self.firmware.brown_out()
        return self._powered

    def force_power(self, powered: bool = True) -> None:
        """Directly set the power state (bench-supply equivalent,
        Sec. 6.4's measurement setup)."""
        self._powered = powered
        if powered:
            self.firmware.boot()
        else:
            self.firmware.brown_out()

    # -- checkpointing ----------------------------------------------------------------

    def snapshot_state(self) -> dict:
        """JSON-ready mutable state (power flag + firmware books)."""
        return {"powered": self._powered, "firmware": self.firmware.snapshot_state()}

    def restore_state(self, state: dict) -> None:
        """Inverse of :meth:`snapshot_state` (no boot/brown-out side effects)."""
        self._powered = bool(state["powered"])
        self.firmware.restore_state(state["firmware"])

    # -- communication ----------------------------------------------------------------

    def receive_query(self, envelope, sample_rate: float) -> Query | None:
        """Node-side downlink decode (envelope detector + PWM).

        Traced as ``node.decode_query`` under the process-global tracer
        (a child of the link's ``link.node`` stage when both run).
        """
        if not self._powered:
            return None
        with get_tracer().span(
            "node.decode_query", node=int(self.address), samples=len(envelope)
        ):
            return self.firmware.decode_downlink_envelope(envelope, sample_rate)

    def respond(self, query: Query) -> Response | None:
        """Execute a query and return the response (or None)."""
        if not self._powered:
            return None
        with get_tracer().span(
            "node.respond",
            node=int(self.address),
            command=getattr(query.command, "name", str(query.command)),
        ):
            return self.firmware.handle_query(query)

    def uplink_chips(self, response: Response) -> np.ndarray:
        """FM0 switch-state chips for a response frame."""
        with get_tracer().span("node.encode_uplink", node=int(self.address)):
            return self.firmware.build_uplink_chips(response)

    def reflection_trajectory(
        self, chips, carrier_hz: float
    ) -> tuple[complex, complex, np.ndarray]:
        """Per-chip complex reflection gains at a carrier.

        Returns ``(gamma_absorb, gamma_reflect, gamma_per_chip)`` where
        the trajectory holds the complex reflected-pressure gain of each
        chip interval.  The link simulation upconverts this to samples.
        """
        gamma_a, gamma_r = self.bank.reflection_states(
            self.firmware.config.resonance_mode, carrier_hz
        )
        chips = np.asarray(chips)
        trajectory = np.where(chips.astype(bool), gamma_r, gamma_a)
        return gamma_a, gamma_r, trajectory

    @property
    def bitrate(self) -> float:
        return self.firmware.config.bitrate

    @property
    def channel_frequency_hz(self) -> float:
        """The active mode's channel frequency."""
        return self.active_mode.frequency_hz

    def __repr__(self) -> str:
        state = self.firmware.state.value
        return (
            f"PABNode({self.address}, channel={self.channel_frequency_hz:.0f} Hz, "
            f"bitrate={self.bitrate:.0f} bps, state={state})"
        )
