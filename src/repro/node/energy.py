"""Cold-start and power-up simulation (the Fig. 9 energy engine).

A battery-free node wakes in the COLD state with an empty supercapacitor.
The pull-down transistor is open, so all rectified energy charges the cap
(Sec. 4.2.1).  Once the cap crosses the power-up threshold (2.5 V in
Fig. 3 — enough headroom for the LDO), the regulator starts, the MCU
boots, and the node can hold IDLE as long as harvested power covers the
load.

:class:`PowerUpSimulator` runs this envelope-domain ODE for a given
incident pressure and reports whether/when the node powers up and whether
operation is sustainable — the primitive behind the paper's
maximum-power-up-distance experiment.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.circuits.harvester import EnergyHarvester
from repro.circuits.regulator import LowDropoutRegulator
from repro.circuits.storage import Supercapacitor
from repro.constants import POWER_UP_THRESHOLD_V
from repro.node.power import NodePowerModel, PowerState


@dataclass(frozen=True)
class PowerUpResult:
    """Outcome of a cold-start simulation.

    Attributes
    ----------
    powered_up:
        Whether the threshold was reached.
    time_to_power_up_s:
        Charging time [s] (``inf`` if never reached).
    equilibrium_voltage_v:
        Asymptotic capacitor voltage with no load.
    sustainable_idle:
        Whether harvested power can hold the node in IDLE indefinitely.
    """

    powered_up: bool
    time_to_power_up_s: float
    equilibrium_voltage_v: float
    sustainable_idle: bool


class PowerUpSimulator:
    """Envelope-domain energy simulation of one node.

    Parameters
    ----------
    harvester:
        The node's harvesting chain (transducer + match + rectifier).
    capacitor:
        Storage element; a fresh default 1000 uF part if omitted.
    regulator, power_model:
        Load-side models.
    threshold_v:
        Power-up threshold (paper: 2.5 V).
    ledger:
        Optional :class:`~repro.obs.ledger.EnergyLedger`; attached to
        the capacitor so every charging step streams its joule flows
        into the books, and power-up/brownout drills move its
        :class:`PowerState` bucket.
    """

    def __init__(
        self,
        harvester: EnergyHarvester,
        *,
        capacitor: Supercapacitor | None = None,
        regulator: LowDropoutRegulator | None = None,
        power_model: NodePowerModel | None = None,
        threshold_v: float = POWER_UP_THRESHOLD_V,
        ledger=None,
    ) -> None:
        if threshold_v <= 0:
            raise ValueError("threshold must be positive")
        self.harvester = harvester
        self.capacitor = capacitor if capacitor is not None else Supercapacitor()
        self.regulator = regulator if regulator is not None else LowDropoutRegulator()
        self.power_model = power_model if power_model is not None else NodePowerModel()
        self.threshold_v = threshold_v
        self.ledger = ledger
        if ledger is not None:
            ledger.attach(self.capacitor)

    def _ledger_state(self, state: PowerState) -> None:
        if self.ledger is not None:
            self.ledger.set_state(state)

    def can_power_up(self, incident_pressure_pa: float, frequency_hz: float) -> bool:
        """Whether cold-start charging can ever cross the threshold.

        With the pull-down open the only losses are capacitor leakage, so
        the equilibrium voltage is (almost) the rectifier's open-circuit
        voltage; the node powers up iff that clears the threshold.
        """
        v_oc, r_out = self.harvester.charging_source(
            incident_pressure_pa, frequency_hz
        )
        leak = self.capacitor.leakage_resistance_ohm
        v_eq = v_oc * leak / (leak + r_out)
        return v_eq >= self.threshold_v

    def cold_start(
        self,
        incident_pressure_pa: float,
        frequency_hz: float,
        *,
        dt_s: float = 2e-3,
        timeout_s: float = 120.0,
        start_voltage_v: float = 0.0,
    ) -> PowerUpResult:
        """Simulate charging from ``start_voltage_v``; report the outcome.

        The default is the true cold start (empty cap); a non-zero
        ``start_voltage_v`` models a warm restart — e.g. a node that
        browned out with residual charge.  When the process-global
        :class:`~repro.obs.probe.ProbeRegistry` wants the
        ``node.energy`` stage, the charging trajectory is captured as a
        supercap-SoC waveform tap.
        """
        from repro.obs.probe import get_probes

        v_oc, r_out = self.harvester.charging_source(
            incident_pressure_pa, frequency_hz
        )
        leak = self.capacitor.leakage_resistance_ohm
        v_eq = v_oc * leak / (leak + r_out)
        self.capacitor.reset(voltage_v=start_voltage_v)
        self._ledger_state(PowerState.COLD)
        probes = get_probes()
        record = [start_voltage_v] if probes.wants("node.energy") else None
        t = self.capacitor.time_to_reach(
            self.threshold_v, v_oc, r_out, dt_s=dt_s, timeout_s=timeout_s,
            record=record,
        )
        powered = t is not None
        if powered:
            self._ledger_state(PowerState.IDLE)
        if record is not None:
            probes.capture(
                "node.energy",
                "cold_start",
                waveform=record,
                sample_rate=1.0 / dt_s,
                threshold_v=self.threshold_v,
                start_voltage_v=start_voltage_v,
                powered_up=powered,
                pressure_pa=incident_pressure_pa,
            )
        return PowerUpResult(
            powered_up=powered,
            time_to_power_up_s=t if powered else float("inf"),
            equilibrium_voltage_v=v_eq,
            sustainable_idle=self.sustainable(
                incident_pressure_pa, frequency_hz, PowerState.IDLE
            ),
        )

    def sustainable(
        self,
        incident_pressure_pa: float,
        frequency_hz: float,
        state: PowerState,
        *,
        bitrate: float = 0.0,
    ) -> bool:
        """Whether harvested DC power covers a state's consumption."""
        op = self.harvester.operating_point(incident_pressure_pa, frequency_hz)
        supply_v = max(self.threshold_v, self.regulator.minimum_input_v)
        draw = self.power_model.power_w(state, bitrate=bitrate, supply_v=supply_v)
        return op.dc_power_w >= draw

    def brownout_recovery_time(
        self,
        incident_pressure_pa: float,
        frequency_hz: float,
        *,
        from_v: float | None = None,
        dt_s: float = 2e-3,
        timeout_s: float = 120.0,
    ) -> float | None:
        """Recharge time after a brownout, or ``None`` if unrecoverable.

        When the load momentarily exceeds harvest the capacitor dips
        below the LDO's minimum input and the node goes dark; with the
        pull-down open again all rectified energy recharges the cap.
        This is the time from ``from_v`` (default: the LDO dropout
        voltage, where the brownout tripped) back up to the power-up
        threshold — the recovery interval a fault injector
        (:meth:`repro.faults.injectors.BrownoutInjector.from_energy_model`)
        should keep the node dark for.
        """
        start_v = (
            from_v if from_v is not None else self.regulator.minimum_input_v
        )
        if start_v < 0:
            raise ValueError("from_v must be non-negative")
        if start_v >= self.threshold_v:
            return 0.0
        v_oc, r_out = self.harvester.charging_source(
            incident_pressure_pa, frequency_hz
        )
        self.capacitor.reset(voltage_v=start_v)
        self._ledger_state(PowerState.COLD)
        t = self.capacitor.time_to_reach(
            self.threshold_v, v_oc, r_out, dt_s=dt_s, timeout_s=timeout_s
        )
        if t is not None:
            self._ledger_state(PowerState.IDLE)
        return t

    def run_duty_cycle(
        self,
        incident_pressure_pa: float,
        frequency_hz: float,
        *,
        backscatter_s: float,
        bitrate: float,
        dt_s: float = 2e-3,
    ) -> bool:
        """Charge from empty, then attempt one backscatter burst.

        Returns ``True`` if the capacitor stays above the LDO's minimum
        input for the whole burst — i.e. the node completed its reply
        without browning out.
        """
        result = self.cold_start(incident_pressure_pa, frequency_hz, dt_s=dt_s)
        if not result.powered_up:
            return False
        v_oc, r_out = self.harvester.charging_source(
            incident_pressure_pa, frequency_hz
        )
        i_load = self.power_model.current_a(
            PowerState.BACKSCATTER, bitrate=bitrate
        )
        self._ledger_state(PowerState.BACKSCATTER)
        steps = max(int(backscatter_s / dt_s), 1)
        for _ in range(steps):
            self.capacitor.charge_from_source(dt_s, v_oc, r_out, i_load_a=i_load)
            if self.capacitor.voltage_v < self.regulator.minimum_input_v:
                self._ledger_state(PowerState.COLD)
                return False
        self._ledger_state(PowerState.IDLE)
        return True
