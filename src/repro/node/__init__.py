"""The battery-free PAB node: power model, energy engine, firmware."""

from repro.node.power import NodePowerModel, PowerState
from repro.node.energy import PowerUpSimulator, PowerUpResult
from repro.node.firmware import NodeFirmware, FirmwareState, FirmwareConfig
from repro.node.node import PABNode
from repro.node.battery_assisted import BatteryAssistedNode

__all__ = [
    "NodePowerModel",
    "PowerState",
    "PowerUpSimulator",
    "PowerUpResult",
    "NodeFirmware",
    "FirmwareState",
    "FirmwareConfig",
    "PABNode",
    "BatteryAssistedNode",
]
