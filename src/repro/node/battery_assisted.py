"""Battery-assisted backscatter node (the paper's stated future work).

Sec. 1: "In principle, one could achieve higher throughputs and ranges by
adapting battery-assisted backscatter implementations from RF designs,
which would enable deep-sea deployments and exploration, while still
inheriting PAB's benefits of ultra-low power backscatter communication."

The battery-assisted variant differs from the battery-free node in two
ways, mirroring RF battery-assisted-passive (BAP) tags:

1. **No power-up constraint** — the battery keeps the MCU and decoder
   alive regardless of the incident field, so the node responds wherever
   the *communication* link closes, not where the *harvesting* link does.
2. **Reflection amplification** — an active reflection stage (the acoustic
   analogue of a tunnel-diode/negative-resistance reflection amplifier)
   multiplies the backscattered pressure by a gain > 1, extending the
   uplink range at milliwatt-level cost that is still far below
   generating a carrier.

It composes the same firmware, sensing, and recto-piezo bank as
:class:`~repro.node.node.PABNode` and is a drop-in replacement in
:class:`~repro.core.link.BackscatterLink`.
"""

from __future__ import annotations

import numpy as np

from repro.node.node import Environment, PABNode
from repro.node.power import PowerState
from repro.piezo.transducer import Transducer


class BatteryAssistedNode(PABNode):
    """A PAB node with a battery and an active reflection amplifier.

    Parameters
    ----------
    address, channel_frequencies_hz, transducer, environment, bitrate:
        As for :class:`PABNode`.
    reflection_gain:
        Linear pressure gain of the active reflection stage (>= 1).
    battery_capacity_j:
        Usable battery energy [J]; drawn down by operation.
    """

    def __init__(
        self,
        address,
        channel_frequencies_hz=(15_000.0,),
        *,
        transducer: Transducer | None = None,
        environment: Environment | None = None,
        bitrate: float = 1_000.0,
        reflection_gain: float = 4.0,
        battery_capacity_j: float = 100.0,
    ) -> None:
        if reflection_gain < 1.0:
            raise ValueError("reflection gain must be >= 1")
        if battery_capacity_j <= 0:
            raise ValueError("battery capacity must be positive")
        super().__init__(
            address,
            channel_frequencies_hz,
            transducer=transducer,
            environment=environment,
            bitrate=bitrate,
        )
        self.reflection_gain = reflection_gain
        self.battery_capacity_j = battery_capacity_j
        self.battery_energy_j = battery_capacity_j
        # The battery keeps the node alive from the start.
        self.force_power(True)

    # -- energy: the battery replaces harvesting --------------------------------------

    def try_power_up(self, incident_pressure_pa: float, frequency_hz: float) -> bool:
        """Battery-assisted nodes are alive while the battery lasts."""
        alive = self.battery_energy_j > 0.0
        self.force_power(alive)
        return alive

    def drain(self, duration_s: float, state: PowerState, *, bitrate: float = 0.0) -> float:
        """Account battery energy for operating in ``state`` [J remaining].

        The reflection amplifier adds a milliwatt-class draw during
        backscatter — orders of magnitude below an active modem, as the
        paper's argument requires.
        """
        if duration_s < 0:
            raise ValueError("duration must be non-negative")
        power = self.power_model.power_w(state, bitrate=bitrate)
        if state is PowerState.BACKSCATTER:
            power += self.amplifier_power_w
        self.battery_energy_j = max(self.battery_energy_j - power * duration_s, 0.0)
        if self.battery_energy_j == 0.0:
            self.force_power(False)
        return self.battery_energy_j

    @property
    def amplifier_power_w(self) -> float:
        """Draw of the reflection amplifier (scales with its gain)."""
        return 1e-3 * (self.reflection_gain**2 - 1.0)

    def expected_lifetime_s(self, duty_cycle: float = 0.01, bitrate: float = 1_000.0) -> float:
        """Battery life under a backscatter duty cycle [s]."""
        if not 0.0 <= duty_cycle <= 1.0:
            raise ValueError("duty cycle must be in [0, 1]")
        p_idle = self.power_model.power_w(PowerState.IDLE)
        p_tx = (
            self.power_model.power_w(PowerState.BACKSCATTER, bitrate=bitrate)
            + self.amplifier_power_w
        )
        mean_power = (1.0 - duty_cycle) * p_idle + duty_cycle * p_tx
        return self.battery_energy_j / mean_power

    # -- amplified reflection -----------------------------------------------------------

    def reflection_trajectory(self, chips, carrier_hz: float):
        """Per-chip reflection gains with the active amplification applied.

        Only the *modulated* part is amplified (the amplifier sits behind
        the switch); the absorptive state is unchanged so the harvesting
        path of hybrid designs would still work.
        """
        gamma_a, gamma_r, trajectory = super().reflection_trajectory(
            chips, carrier_hz
        )
        gamma_r_amp = gamma_a + self.reflection_gain * (gamma_r - gamma_a)
        chips = np.asarray(chips)
        trajectory = np.where(chips.astype(bool), gamma_r_amp, gamma_a)
        return gamma_a, gamma_r_amp, trajectory
