"""MCU firmware state machine (paper Sec. 4.2.2).

Upon powering up, the MCU waits in low-power mode for downlink edges,
measures PWM pulse widths to decode the query, checks the address, runs
the requested command (sampling a sensor if needed), and answers by
toggling the backscatter switch with the FM0-encoded response frame.

The firmware is deliberately written as a small synchronous state
machine over decoded edge streams — the same structure as the real
interrupt-driven C code, minus the interrupts.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

import numpy as np

from repro.circuits.schmitt import SchmittTrigger
from repro.dsp.fm0 import fm0_encode
from repro.dsp.packets import (
    DOWNLINK_PREAMBLE,
    FramingError,
    Packet,
    PacketFormat,
)
from repro.dsp.pwm import PWMCode, pwm_decode_edges
from repro.net.addresses import NodeAddress
from repro.net.messages import BITRATE_TABLE, Command, Query, Response
from repro.node.power import PowerState
from repro.perf.cache import get_cache

#: Downlink frames use the paper's 9-bit preamble.
DOWNLINK_FORMAT = PacketFormat(preamble=DOWNLINK_PREAMBLE)


class FirmwareState(enum.Enum):
    """Firmware lifecycle states."""

    OFF = "off"
    IDLE = "idle"
    RESPONDING = "responding"


@dataclass
class FirmwareConfig:
    """Mutable firmware settings.

    Attributes
    ----------
    address:
        This node's address.
    bitrate:
        Current uplink bitrate [bit/s].
    resonance_mode:
        Index into the node's recto-piezo bank (Sec. 3.3.2 extension:
        "incorporating multiple matching circuits onboard ... enabling the
        micro-controller to select the recto-piezo").
    pwm_code:
        Downlink timing parameters.
    uplink_format:
        Frame layout for uplink packets.  Concurrent nodes are given
        distinct preambles so the receiver's channel estimator can tell
        their training regions apart (the RFID analogue of distinct
        RN16s).
    """

    address: NodeAddress
    bitrate: float = 1_000.0
    resonance_mode: int = 0
    pwm_code: PWMCode = field(default_factory=PWMCode)
    uplink_format: PacketFormat = field(default_factory=PacketFormat)


class NodeFirmware:
    """The node's control program.

    Parameters
    ----------
    config:
        Initial settings.
    ph_sensor, pressure_driver, thermistor:
        Attached peripherals (any may be ``None`` — the command then
        fails silently, like firmware without that sensor compiled in).
    environment:
        Ground-truth world state the sensors observe; must expose
        ``true_ph`` and ``water.temperature_c`` when the corresponding
        sensor is attached.
    n_resonance_modes:
        Size of the recto-piezo bank.
    ledger:
        Optional :class:`~repro.obs.ledger.EnergyLedger`; lifecycle
        transitions move its :class:`PowerState` bucket so consumed
        joules land under the state that spent them.  ``None`` (the
        default) keeps the firmware observability-free.
    """

    def __init__(
        self,
        config: FirmwareConfig,
        *,
        ph_sensor=None,
        pressure_driver=None,
        thermistor=None,
        environment=None,
        n_resonance_modes: int = 1,
        ledger=None,
    ) -> None:
        if n_resonance_modes < 1:
            raise ValueError("need at least one resonance mode")
        if config.resonance_mode >= n_resonance_modes:
            raise ValueError("initial resonance mode out of range")
        self.config = config
        self.ph_sensor = ph_sensor
        self.pressure_driver = pressure_driver
        self.thermistor = thermistor
        self.environment = environment
        self.n_resonance_modes = n_resonance_modes
        self.state = FirmwareState.OFF
        self.queries_handled = 0
        self.queries_ignored = 0
        self.ledger = ledger

    def _sync_ledger(self) -> None:
        if self.ledger is not None:
            self.ledger.set_state(self.power_state)

    # -- lifecycle ---------------------------------------------------------------

    def boot(self) -> None:
        """Called when the supercap crosses the power-up threshold."""
        self.state = FirmwareState.IDLE
        self._sync_ledger()

    def brown_out(self) -> None:
        """Called when the supply collapses."""
        self.state = FirmwareState.OFF
        self._sync_ledger()

    @property
    def power_state(self) -> PowerState:
        """Map firmware state to the power model's states."""
        if self.state is FirmwareState.OFF:
            return PowerState.COLD
        if self.state is FirmwareState.RESPONDING:
            return PowerState.BACKSCATTER
        return PowerState.IDLE

    # -- checkpointing -------------------------------------------------------------

    def _sensor_adcs(self) -> dict:
        """The attached sensors' ADC converters, by sensor name.

        Each carries a seeded input-noise RNG whose stream position is
        part of the node's mutable state: a reading consumes draws, so
        both checkpoint/resume and the batched engine's predictive
        prepass must be able to save and rewind it exactly.
        """
        adcs = {}
        for name in ("ph_sensor", "pressure_driver", "thermistor"):
            sensor = getattr(self, name, None)
            adc = getattr(sensor, "adc", None)
            if adc is not None and callable(getattr(adc, "snapshot_state", None)):
                adcs[name] = adc
        return adcs

    def snapshot_state(self) -> dict:
        """JSON-ready mutable state (peripherals/format are rebuilt)."""
        return {
            "state": self.state.value,
            "queries_handled": self.queries_handled,
            "queries_ignored": self.queries_ignored,
            "bitrate": self.config.bitrate,
            "resonance_mode": self.config.resonance_mode,
            "sensor_adcs": {
                name: adc.snapshot_state()
                for name, adc in sorted(self._sensor_adcs().items())
            },
        }

    def restore_state(self, state: dict) -> None:
        """Inverse of :meth:`snapshot_state`; the ledger is not re-synced
        (campaign restore re-wires observability separately)."""
        self.state = FirmwareState(state["state"])
        self.queries_handled = int(state["queries_handled"])
        self.queries_ignored = int(state["queries_ignored"])
        self.config.bitrate = float(state["bitrate"])
        self.config.resonance_mode = int(state["resonance_mode"])
        # Older checkpoints predate ADC stream capture; leave the
        # converters where they are rather than failing the restore.
        adc_states = state.get("sensor_adcs", {})
        for name, adc in self._sensor_adcs().items():
            if name in adc_states:
                adc.restore_state(adc_states[name])

    # -- downlink ------------------------------------------------------------------

    def decode_downlink_envelope(
        self,
        envelope,
        sample_rate: float,
        *,
        schmitt: SchmittTrigger | None = None,
    ) -> Query | None:
        """Full node-side downlink decode: envelope -> edges -> PWM -> query.

        Returns ``None`` when no valid query frame is present.
        """
        if self.state is FirmwareState.OFF:
            return None
        if self.ledger is not None:
            # The MCU spends this stretch timing PWM edges.
            self.ledger.set_state(PowerState.DECODING)
        try:
            return self._decode_downlink_envelope(envelope, sample_rate, schmitt)
        finally:
            self._sync_ledger()

    def _decode_downlink_envelope(
        self, envelope, sample_rate: float, schmitt: SchmittTrigger | None
    ) -> Query | None:
        env = np.asarray(envelope, dtype=float)
        # Shorter than one PWM symbol cannot contain a frame (and would
        # underflow the smoothing filter's padding).
        if len(env) < int(self.config.pwm_code.short_s * sample_rate):
            return None
        # Smooth residual carrier/multipath wiggle well below the symbol
        # timescale before slicing.
        cutoff = min(
            2.0 / self.config.pwm_code.short_s, sample_rate / 2.5
        )
        from repro.dsp.filters import butter_lowpass

        env = butter_lowpass(env, cutoff, sample_rate)
        if schmitt is None:
            # Threshold off the sustained on-level (90th percentile), not
            # the absolute peak: multipath transients overshoot the
            # steady level and would push a peak-based threshold too high.
            level = float(np.percentile(env, 90.0))
            if level <= 0:
                return None
            schmitt = SchmittTrigger(
                high_threshold_v=0.5 * level, low_threshold_v=0.3 * level
            )
        times, pols = schmitt.edges(env, sample_rate)
        bits = pwm_decode_edges(times, pols, self.config.pwm_code)
        return self.parse_query_bits(bits)

    def parse_query_bits(self, bits) -> Query | None:
        """Locate the downlink preamble in a bit stream and parse the query."""
        bits = np.asarray(bits, dtype=np.int8)
        pre = DOWNLINK_FORMAT.preamble_bits
        n = len(pre)
        for start in range(0, len(bits) - DOWNLINK_FORMAT.overhead_bits() + 1):
            if not np.array_equal(bits[start : start + n], pre):
                continue
            try:
                packet = Packet.from_bits(bits[start:], DOWNLINK_FORMAT)
                return Query.from_packet(packet)
            except (FramingError, ValueError):
                continue
        return None

    # -- command dispatch --------------------------------------------------------------

    def handle_query(self, query: Query) -> Response | None:
        """Execute a query if it addresses this node; build the response."""
        if self.state is FirmwareState.OFF:
            return None
        if not self.config.address.accepts(query.destination):
            self.queries_ignored += 1
            return None
        handler = {
            Command.PING: self._cmd_ping,
            Command.READ_PH: self._cmd_read_ph,
            Command.READ_PRESSURE_TEMP: self._cmd_read_pressure_temp,
            Command.READ_TEMPERATURE: self._cmd_read_temperature,
            Command.SET_BITRATE: self._cmd_set_bitrate,
            Command.SET_RESONANCE_MODE: self._cmd_set_resonance_mode,
        }[query.command]
        response = handler(query)
        if response is not None:
            self.queries_handled += 1
            self.state = FirmwareState.RESPONDING
            self._sync_ledger()
        return response

    def response_sent(self) -> None:
        """Called after the backscatter burst completes."""
        if self.state is FirmwareState.RESPONDING:
            self.state = FirmwareState.IDLE
            self._sync_ledger()

    def _cmd_ping(self, query: Query) -> Response:
        return Response(source=int(self.config.address), command=Command.PING)

    def _cmd_read_ph(self, query: Query) -> Response | None:
        if self.ph_sensor is None or self.environment is None:
            return None
        value = self.ph_sensor.read_ph(
            self.environment.true_ph, self.environment.water.temperature_c
        )
        return Response(
            source=int(self.config.address),
            command=Command.READ_PH,
            data=self.ph_sensor.encode_reading(value),
        )

    def _cmd_read_pressure_temp(self, query: Query) -> Response | None:
        if self.pressure_driver is None:
            return None
        try:
            pressure, temperature = self.pressure_driver.read()
        except IOError:
            # Peripheral fault (NACK, bus error): real firmware times out
            # and stays silent rather than replying with garbage.
            return None
        return Response(
            source=int(self.config.address),
            command=Command.READ_PRESSURE_TEMP,
            data=self.pressure_driver.encode_reading(pressure, temperature),
        )

    def _cmd_read_temperature(self, query: Query) -> Response | None:
        if self.thermistor is None or self.environment is None:
            return None
        value = self.thermistor.read(self.environment.water.temperature_c)
        raw = int(round((value + 100.0) * 100.0))
        return Response(
            source=int(self.config.address),
            command=Command.READ_TEMPERATURE,
            data=bytes([(raw >> 8) & 0xFF, raw & 0xFF]),
        )

    def _cmd_set_bitrate(self, query: Query) -> Response | None:
        if query.argument >= len(BITRATE_TABLE):
            return None
        self.config.bitrate = BITRATE_TABLE[query.argument]
        return Response(
            source=int(self.config.address),
            command=Command.SET_BITRATE,
            data=bytes([query.argument]),
        )

    def _cmd_set_resonance_mode(self, query: Query) -> Response | None:
        if query.argument >= self.n_resonance_modes:
            return None
        self.config.resonance_mode = query.argument
        return Response(
            source=int(self.config.address),
            command=Command.SET_RESONANCE_MODE,
            data=bytes([query.argument]),
        )

    # -- uplink --------------------------------------------------------------------

    def build_uplink_chips(self, response: Response) -> np.ndarray:
        """FM0 chip sequence (0/1 switch states) for a response frame.

        A sensor that keeps reporting the same reading re-encodes the
        same frame; the chip expansion is memoized by the serialised
        bits (format included, since framing determines the bits).
        """
        bits = response.to_packet().to_bits(self.config.uplink_format)
        return get_cache("fm0_chips", maxsize=1024).get_or_compute(
            bits.tobytes(), lambda: fm0_encode(bits)
        )
