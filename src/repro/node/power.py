"""Node power consumption model (paper Sec. 6.4 / Fig. 11).

The paper measures 124 uW idle (waiting to receive and decode a downlink
signal) and ~500 uW while backscattering at any of the tested bitrates,
noting that:

* the MCU draws ~230 uA in active mode and the LDO ~25 uA on top,
  explaining the backscatter-mode number at the 2.1 V supply used for
  the measurements;
* idle power exceeds datasheet expectations because the MCU keeps a few
  pins driven high (the pull-down transistor, interrupt handles) and the
  LDO quiescent tax persists in standby.

The model reproduces both, plus a small switching term that grows with
the backscatter rate (gate charge on the switch transistors), matching
Fig. 11's gentle upward trend.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.constants import (
    LDO_QUIESCENT_A,
    MCU_ACTIVE_A,
    MCU_LPM3_A,
    MEASURED_IDLE_POWER_W,
)

#: Supply voltage at which the paper took the Fig. 11 measurements.
MEASUREMENT_SUPPLY_V = 2.1


class PowerState(enum.Enum):
    """Operating states of the node."""

    COLD = "cold"  # supercap below power-up threshold; everything off
    IDLE = "idle"  # waiting for a downlink query (MCU in LPM3)
    DECODING = "decoding"  # timing downlink edges (brief active bursts)
    BACKSCATTER = "backscatter"  # driving the switch at the chip rate
    SENSING = "sensing"  # sampling a peripheral


@dataclass(frozen=True)
class NodePowerModel:
    """Current/power budget of the node's electronics.

    Parameters
    ----------
    mcu_active_a, mcu_lpm3_a, ldo_quiescent_a:
        Component currents [A] (datasheet defaults).
    pin_drive_a:
        Extra idle current from pins held high; calibrated so idle power
        matches the paper's 124 uW measurement.
    switch_charge_c:
        Effective gate charge moved per backscatter chip transition [C];
        sets the (small) bitrate-dependent term.
    sensor_a:
        Extra draw while a peripheral is sampled.
    """

    mcu_active_a: float = MCU_ACTIVE_A
    mcu_lpm3_a: float = MCU_LPM3_A
    ldo_quiescent_a: float = LDO_QUIESCENT_A
    pin_drive_a: float = (
        MEASURED_IDLE_POWER_W / MEASUREMENT_SUPPLY_V - LDO_QUIESCENT_A - MCU_LPM3_A
    )
    switch_charge_c: float = 2e-9
    sensor_a: float = 300e-6

    def __post_init__(self) -> None:
        for name in (
            "mcu_active_a",
            "mcu_lpm3_a",
            "ldo_quiescent_a",
            "pin_drive_a",
            "switch_charge_c",
            "sensor_a",
        ):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")

    def current_a(
        self,
        state: PowerState,
        *,
        bitrate: float = 0.0,
        supply_v: float = MEASUREMENT_SUPPLY_V,
    ) -> float:
        """Supply current in a state [A]."""
        if bitrate < 0:
            raise ValueError("bitrate must be non-negative")
        if supply_v <= 0:
            raise ValueError("supply voltage must be positive")
        if state is PowerState.COLD:
            return 0.0
        base = self.ldo_quiescent_a
        if state is PowerState.IDLE:
            return base + self.mcu_lpm3_a + self.pin_drive_a
        if state is PowerState.DECODING:
            # Edge-interrupt bursts: roughly half active, half LPM3.  The
            # pin-drive current is part of the MCU's active-mode budget.
            return base + 0.5 * (self.mcu_active_a + self.mcu_lpm3_a)
        if state is PowerState.BACKSCATTER:
            chip_rate = 2.0 * bitrate
            switching = self.switch_charge_c * chip_rate
            return base + self.mcu_active_a + switching
        if state is PowerState.SENSING:
            return base + self.mcu_active_a + self.sensor_a
        raise ValueError(f"unknown state {state!r}")

    def power_w(
        self,
        state: PowerState,
        *,
        bitrate: float = 0.0,
        supply_v: float = MEASUREMENT_SUPPLY_V,
    ) -> float:
        """Supply power in a state [W] — the Fig. 11 quantity."""
        return self.current_a(state, bitrate=bitrate, supply_v=supply_v) * supply_v

    def fig11_sweep(self, bitrates) -> dict:
        """Reproduce Fig. 11: idle plus per-bitrate backscatter power [W]."""
        result = {"idle": self.power_w(PowerState.IDLE)}
        for rate in bitrates:
            result[float(rate)] = self.power_w(
                PowerState.BACKSCATTER, bitrate=float(rate)
            )
        return result

    def energy_per_bit_j(self, bitrate: float) -> float:
        """Communication energy cost [J/bit] while backscattering."""
        if bitrate <= 0:
            raise ValueError("bitrate must be positive")
        return self.power_w(PowerState.BACKSCATTER, bitrate=bitrate) / bitrate
