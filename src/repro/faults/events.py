"""Structured event log for fault-injection and recovery accounting.

The resilient reader stack emits one :class:`Event` per noteworthy
occurrence — an injected fault, a retry, a health-state transition, a
bitrate downgrade, a recovery — into an :class:`EventLog`.  Tests assert
against the log (same seed => byte-identical ``to_lines()``), and
deployments read availability and MTTR per node from it.

Time is whatever clock the emitter uses.  The reader stack uses its
polling-round counter (a deterministic virtual clock); waveform-level
harnesses may use accumulated airtime seconds.  The log itself never
consults a wall clock, so it is reproducible by construction.
"""

from __future__ import annotations

import enum
import json
import pathlib
from dataclasses import dataclass, field


class EventKind(str, enum.Enum):
    """Event categories the stack emits."""

    FAULT = "fault"            # an injector fired
    ATTEMPT = "attempt"        # one MAC transmission
    RETRY = "retry"            # a retransmission was scheduled
    BACKOFF = "backoff"        # the MAC waited before retrying
    EXCEPTION = "exception"    # transact raised; contained by the MAC
    STATE = "state"            # health state transition
    BITRATE = "bitrate"        # bitrate change commanded
    PROBE = "probe"            # quarantined node probed
    RECOVERY = "recovery"      # node returned to HEALTHY
    GIVE_UP = "give_up"        # retry/timeout budget exhausted
    WORKER_RESTART = "worker_restart"      # supervisor restarted a crashed worker
    SHARD_QUARANTINE = "shard_quarantine"  # engine quarantined a crashing shard

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass(frozen=True)
class Event:
    """One log entry.

    Attributes
    ----------
    seq:
        Monotonic sequence number (assigned by the log).
    t:
        Virtual time of the event (rounds or seconds — emitter's choice).
    node:
        Node address the event concerns (``-1`` for reader-wide events).
    kind:
        The :class:`EventKind`.
    detail:
        Free-form ``key=value`` payload, rendered sorted by key so the
        serialisation is deterministic.
    """

    seq: int
    t: float
    node: int
    kind: EventKind
    detail: tuple = ()

    def to_line(self) -> str:
        """Deterministic one-line rendering."""
        parts = [f"{self.seq:06d}", f"t={self.t:.6g}", f"node={self.node}", str(self.kind)]
        parts.extend(f"{k}={v}" for k, v in self.detail)
        return " ".join(parts)

    def to_dict(self) -> dict:
        """JSON-ready rendering (the JSONL trace-file row shape)."""
        return {
            "seq": self.seq,
            "t": self.t,
            "node": self.node,
            "kind": str(self.kind),
            "detail": {k: v for k, v in self.detail},
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Event":
        """Inverse of :meth:`to_dict` (round-trips exactly)."""
        return cls(
            seq=int(data["seq"]),
            t=float(data["t"]),
            node=int(data["node"]),
            kind=EventKind(data["kind"]),
            detail=tuple(sorted(
                (str(k), str(v)) for k, v in data.get("detail", {}).items()
            )),
        )


@dataclass
class EventLog:
    """Append-only recorder with per-node reliability metrics.

    ``metrics`` optionally binds a
    :class:`~repro.obs.metrics.MetricsRegistry` (duck-typed: anything
    with ``counter(name, **labels)``): every recorded event also
    increments ``pab_events_total{kind=...}``, making the log an
    emitter into the observability substrate rather than a parallel
    telemetry universe.  Batch replay of an unbound log is
    :func:`repro.obs.export.events_to_metrics`.

    ``bus`` optionally binds a
    :class:`~repro.obs.stream.TelemetryBus` (duck-typed: anything with
    ``publish(kind, ...)`` and an ``enabled`` flag): every recorded
    event is also published as a ``kind="event"`` stream event.  The
    parallel reader binds only the *shared* log (its staging logs stay
    unbound), so streamed events appear in merge order — byte-identical
    to sequential execution.
    """

    events: list = field(default_factory=list)
    metrics: object = None
    bus: object = None

    def record(self, t: float, node: int, kind: EventKind | str, **detail) -> Event:
        """Append one event; detail keys are sorted for determinism."""
        event = Event(
            seq=len(self.events),
            t=float(t),
            node=int(node),
            kind=EventKind(kind),
            detail=tuple(sorted((str(k), str(v)) for k, v in detail.items())),
        )
        self.events.append(event)
        if self.metrics is not None:
            self.metrics.counter("pab_events_total", kind=str(event.kind)).inc()
        if self.bus is not None and self.bus.enabled:
            self.bus.publish(
                "event", t=event.t, node=event.node, source="log",
                data=event.to_dict(),
            )
        return event

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    def merge(self, *others: "EventLog") -> "EventLog":
        """A new log combining this one with ``others``, deterministically.

        Events are ordered by ``(t, node, seq)`` and renumbered, so the
        result is independent of which operand recorded an event first —
        two logs with equal timestamps merge identically regardless of
        operand order (the regression that motivated this: parallel-mode
        merges previously depended on insertion order).  Operands are
        left untouched and no metrics fire (the events were already
        counted when first recorded).
        """
        combined = sorted(
            (e for log in (self, *others) for e in log.events),
            key=lambda e: (e.t, e.node, e.seq),
        )
        merged = EventLog()
        merged.events = [
            Event(
                seq=i, t=e.t, node=e.node, kind=e.kind, detail=e.detail
            )
            for i, e in enumerate(combined)
        ]
        return merged

    def filter(self, *, node: int | None = None, kind: EventKind | str | None = None) -> list:
        """Events matching a node and/or kind."""
        want_kind = EventKind(kind) if kind is not None else None
        return [
            e
            for e in self.events
            if (node is None or e.node == node)
            and (want_kind is None or e.kind is want_kind)
        ]

    def to_lines(self) -> list[str]:
        """Deterministic serialisation; identical seeds => identical lines."""
        return [e.to_line() for e in self.events]

    def dump(self) -> str:
        """The whole log as one newline-joined string."""
        return "\n".join(self.to_lines())

    def to_jsonl(self) -> str:
        """One JSON object per event — the same file format as the obs
        trace dumps (:func:`repro.obs.export.spans_to_jsonl`), so fault
        events and spans can interleave in one tooling pipeline.
        Deterministic: sorted keys, compact separators."""
        return "\n".join(
            json.dumps(e.to_dict(), sort_keys=True, separators=(",", ":"))
            for e in self.events
        ) + ("\n" if self.events else "")

    @classmethod
    def from_jsonl(cls, text: str) -> "EventLog":
        """Rebuild a log from :meth:`to_jsonl` output (exact round-trip)."""
        log = cls()
        for line in text.splitlines():
            line = line.strip()
            if line:
                log.events.append(Event.from_dict(json.loads(line)))
        return log

    def flush_jsonl(self, path) -> int:
        """Append events not yet in ``path``; returns the count appended.

        The streaming counterpart of :meth:`to_jsonl`: instead of
        rewriting the whole log each time, only the tail past the
        file's current line count is appended — so a long (or resumed)
        campaign can flush after every checkpoint at O(new events)
        write cost.  The file's line count is the source of truth,
        which makes the flush idempotent across process boundaries: a
        resumed campaign whose restored log already matches the file
        appends nothing until new events arrive.  Line ``i`` of the
        file is always event ``seq=i``, so interleaved flush/resume
        cycles still round-trip exactly through :meth:`from_jsonl`.
        """
        out = pathlib.Path(path)
        existing = 0
        if out.exists():
            with out.open() as fh:
                existing = sum(1 for line in fh if line.strip())
        if existing > len(self.events):
            raise ValueError(
                f"{out} holds {existing} events but the log only has "
                f"{len(self.events)}; refusing to append a divergent tail"
            )
        new = self.events[existing:]
        if new:
            out.parent.mkdir(parents=True, exist_ok=True)
            with out.open("a") as fh:
                fh.write("\n".join(
                    json.dumps(e.to_dict(), sort_keys=True,
                               separators=(",", ":"))
                    for e in new
                ) + "\n")
        return len(new)

    # -- reliability metrics --------------------------------------------------------------

    def state_intervals(self, node: int, *, end_t: float | None = None) -> list:
        """``(state, start_t, end_t)`` intervals from STATE events.

        The first STATE event opens the record; the last interval is
        closed at ``end_t`` (default: the last event's time).
        """
        transitions = self.filter(node=node, kind=EventKind.STATE)
        if not transitions:
            return []
        if end_t is None:
            end_t = self.events[-1].t if self.events else transitions[-1].t
        intervals = []
        for i, e in enumerate(transitions):
            state = dict(e.detail).get("to", "?")
            stop = transitions[i + 1].t if i + 1 < len(transitions) else end_t
            intervals.append((state, e.t, max(stop, e.t)))
        return intervals

    #: Health states that count as serving traffic.
    UP_STATES = ("HEALTHY", "DEGRADED")

    def availability(self, node: int, *, end_t: float | None = None) -> float:
        """Fraction of observed time the node was serving traffic.

        Serving means HEALTHY or DEGRADED; QUARANTINED and PROBING time
        counts as downtime.  Returns 1.0 when the node never left
        HEALTHY (no transitions were logged).

        A campaign that ends mid-outage must not look perfect: when the
        observation window has zero total duration (e.g. the default
        ``end_t`` coincides with the final transition), availability is
        decided by the node's final state — 0.0 if it ended down.
        Still-open outage windows are charged as downtime up to
        ``end_t``, because :meth:`state_intervals` closes the last
        interval there.
        """
        intervals = self.state_intervals(node, end_t=end_t)
        if not intervals:
            return 1.0
        total = sum(stop - start for _, start, stop in intervals)
        if total <= 0:
            # Zero-duration window: report the instantaneous state.
            return 1.0 if intervals[-1][0] in self.UP_STATES else 0.0
        up = sum(
            stop - start
            for state, start, stop in intervals
            if state in self.UP_STATES
        )
        return up / total

    def open_outage(self, node: int, *, end_t: float | None = None) -> float | None:
        """Duration of an outage still open at ``end_t``, else ``None``.

        :meth:`mttr` only averages *completed* failure/repair cycles; a
        campaign that ends mid-outage would silently drop that outage.
        This exposes it so reports can flag the un-repaired tail.
        """
        transitions = self.filter(node=node, kind=EventKind.STATE)
        if not transitions:
            return None
        left_at = None
        for e in transitions:
            detail = dict(e.detail)
            if detail.get("to") in self.UP_STATES:
                left_at = None
            elif left_at is None:
                left_at = e.t
        if left_at is None:
            return None
        if end_t is None:
            end_t = self.events[-1].t if self.events else transitions[-1].t
        return max(end_t - left_at, 0.0)

    def mttr(self, node: int) -> float:
        """Mean time from leaving HEALTHY to next returning HEALTHY.

        ``nan`` when the node never completed a failure/repair cycle.
        """
        transitions = self.filter(node=node, kind=EventKind.STATE)
        repairs = []
        left_at = None
        for e in transitions:
            detail = dict(e.detail)
            if detail.get("from") == "HEALTHY" and left_at is None:
                left_at = e.t
            elif detail.get("to") == "HEALTHY" and left_at is not None:
                repairs.append(e.t - left_at)
                left_at = None
        return sum(repairs) / len(repairs) if repairs else float("nan")

    def node_report(self, node: int, *, end_t: float | None = None) -> dict:
        """Availability, MTTR, and event counts for one node."""
        return {
            "node": node,
            "availability": self.availability(node, end_t=end_t),
            "mttr": self.mttr(node),
            "open_outage": self.open_outage(node, end_t=end_t),
            "faults": len(self.filter(node=node, kind=EventKind.FAULT)),
            "retries": len(self.filter(node=node, kind=EventKind.RETRY)),
            "exceptions": len(self.filter(node=node, kind=EventKind.EXCEPTION)),
            "transitions": len(self.filter(node=node, kind=EventKind.STATE)),
        }
