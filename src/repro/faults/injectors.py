"""Composable, seeded fault injectors for ``transact`` callables.

Each injector wraps any ``transact(query) -> LinkResult``-shaped callable
(the waveform-level :class:`~repro.core.link.BackscatterLink`, a stub, or
another injector — they stack) and injects one paper-motivated
impairment:

* :class:`NoiseBurstInjector` — transient ambient-noise burst: SNR
  collapses and the CRC fails for a window of transactions (the bursty
  snapping-shrimp/facility noise of Sec. 6.1).
* :class:`BrownoutInjector` — the supercapacitor dips below the 2.5 V
  power-up threshold mid-exchange and the node goes dark for a recovery
  interval; :meth:`BrownoutInjector.from_energy_model` derives that
  interval from the Fig. 9 energy engine
  (:class:`~repro.node.energy.PowerUpSimulator`).
* :class:`GilbertElliottInjector` — the classic two-state good/bad
  burst-loss channel for intermittent dropouts.
* :class:`GarbledReplyInjector` — stuck/garbled replies: the reply
  arrives but its bits are trash, so the CRC rejects it.
* :class:`TransportExceptionInjector` — the transport itself raises
  (modem hiccup, serial timeout); the resilient MAC must contain it.

Determinism: every stochastic injector takes ``seed`` (or a ready
``rng``); identical seeds reproduce identical fault sequences, which is
what makes the chaos tests assertable.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np


class TransportError(RuntimeError):
    """Raised by a failing transport (and by the exception injector)."""


def _rng_state(rng):
    """JSON-ready numpy Generator state (``None`` for non-numpy RNGs)."""
    bit_generator = getattr(rng, "bit_generator", None)
    return None if bit_generator is None else bit_generator.state


def _set_rng_state(rng, state) -> None:
    if state is not None:
        rng.bit_generator.state = state


def _snapshot_inner(inner):
    """Duck-typed snapshot of the wrapped transport (chains recurse)."""
    target = getattr(inner, "__self__", inner)
    fn = getattr(target, "snapshot_state", None)
    return fn() if callable(fn) else None


def _restore_inner(inner, state) -> None:
    if state is None:
        return
    target = getattr(inner, "__self__", inner)
    fn = getattr(target, "restore_state", None)
    if not callable(fn):
        raise ValueError(
            f"snapshot carries state for wrapped transport {target!r}, "
            "which cannot restore it"
        )
    fn(state)


class _GarbledDemod:
    """Demod-shaped object carrying a garbled packet with a failed CRC."""

    def __init__(self, packet) -> None:
        self.packet = packet
        self.success = False
        self.bits = np.array([], dtype=int)


@dataclass
class InjectedResult:
    """A LinkResult-shaped failure fabricated by an injector.

    Only the attributes the MAC/reader stack reads are provided;
    ``success`` is always ``False``.
    """

    fault: str
    powered_up: bool = True
    query_decoded: bool = False
    response = None
    demod: object = None
    ber: float = float("nan")
    snr_db: float = float("nan")
    #: Filled in by the injector when signal probes are enabled.
    postmortem: object = None

    @property
    def success(self) -> bool:
        return False


class FaultInjector:
    """Base class: counts transactions, logs fired faults, passes through.

    Parameters
    ----------
    inner:
        The wrapped ``transact(query) -> result`` callable.
    node:
        Address used in event-log entries.
    log:
        Optional :class:`~repro.faults.events.EventLog`.
    seed, rng:
        Reproducibility controls; ``rng`` wins when both are given.
    metrics:
        Optional :class:`~repro.obs.metrics.MetricsRegistry`; each
        fired fault increments ``pab_faults_injected_total{injector=}``.
    """

    name = "fault"

    #: Pipeline stage this fault class knocks out (mirrored on the
    #: post-mortems via :data:`FAULT_FAILING_STAGES`).
    failing_stage = "unknown"

    def __init__(self, inner, *, node: int = -1, log=None, seed: int | None = None, rng=None, metrics=None) -> None:
        if not callable(inner):
            raise TypeError("inner transact must be callable")
        self.inner = inner
        self.node = int(node)
        self.log = log
        self.metrics = metrics
        self.rng = rng if rng is not None else np.random.default_rng(seed)
        self.transactions = 0
        self.faults_fired = 0

    def __call__(self, query):
        index = self.transactions
        self.transactions += 1
        injected = self._intercept(query, index)
        if injected is not None:
            self.faults_fired += 1
            self._record_postmortem(injected)
            return injected
        return self.inner(query)

    def _intercept(self, query, index: int):
        """Return a fabricated result to inject a fault, or None to pass."""
        return None

    def _record_postmortem(self, result) -> None:
        """Autopsy a fabricated failure when signal probes are enabled.

        Injected results never ran the waveform pipeline, so the
        post-mortem classifies by fault class (the injector *knows* why
        the exchange failed) rather than by reading taps.
        """
        from repro.obs.probe import get_probes

        probes = get_probes()
        if not probes.enabled:
            return
        from repro.obs.postmortem import DecodePostmortem

        pm = DecodePostmortem.from_fault(
            getattr(result, "fault", self.name), node=self.node
        )
        if hasattr(result, "postmortem"):
            result.postmortem = pm
        probes.record_postmortem(pm)

    def _fire(self, index: int, **detail) -> None:
        if self.log is not None:
            self.log.record(index, self.node, "fault", injector=self.name, **detail)
        if self.metrics is not None:
            self.metrics.counter(
                "pab_faults_injected_total", injector=self.name
            ).inc()

    # -- checkpointing --------------------------------------------------------------------

    def _extra_state(self) -> dict:
        """Subclass hook: mutable state beyond the base counters/RNG."""
        return {}

    def _restore_extra(self, extra: dict) -> None:
        """Inverse of :meth:`_extra_state`."""

    def snapshot_state(self) -> dict:
        """JSON-ready mutable state, recursing through the wrapped chain."""
        return {
            "injector": self.name,
            "transactions": self.transactions,
            "faults_fired": self.faults_fired,
            "rng": _rng_state(self.rng),
            "extra": self._extra_state(),
            "inner": _snapshot_inner(self.inner),
        }

    def restore_state(self, state: dict) -> None:
        """Inverse of :meth:`snapshot_state` (validates the chain shape)."""
        if state.get("injector") != self.name:
            raise ValueError(
                f"snapshot was taken from injector {state.get('injector')!r}, "
                f"this transport is {self.name!r}"
            )
        self.transactions = int(state["transactions"])
        self.faults_fired = int(state["faults_fired"])
        _set_rng_state(self.rng, state["rng"])
        self._restore_extra(state.get("extra", {}))
        _restore_inner(self.inner, state.get("inner"))


class NoiseBurstInjector(FaultInjector):
    """SNR collapse for a window of transactions.

    Deterministic mode: the burst covers transactions
    ``[start, start + duration)``.  Stochastic mode (``start=None``): a
    burst begins with probability ``burst_prob`` per transaction and
    lasts ``duration`` transactions; draws come from the seeded RNG.

    During a burst the reply is received but undecodable: the result
    reports a collapsed ``snr_db`` and a failed CRC.
    """

    name = "noise_burst"
    failing_stage = "link.hydrophone_dsp"

    def __init__(
        self,
        inner,
        *,
        duration: int = 3,
        start: int | None = None,
        burst_prob: float = 0.0,
        collapsed_snr_db: float = -10.0,
        **kwargs,
    ) -> None:
        super().__init__(inner, **kwargs)
        if duration < 1:
            raise ValueError("duration must be >= 1")
        if start is None and not 0.0 <= burst_prob <= 1.0:
            raise ValueError("burst_prob must be a probability")
        self.duration = int(duration)
        self.start = None if start is None else int(start)
        self.burst_prob = float(burst_prob)
        self.collapsed_snr_db = float(collapsed_snr_db)
        self._burst_until = -1

    def _intercept(self, query, index: int):
        if self.start is not None:
            in_burst = self.start <= index < self.start + self.duration
        else:
            if index >= self._burst_until and self.rng.random() < self.burst_prob:
                self._burst_until = index + self.duration
            in_burst = index < self._burst_until
        if not in_burst:
            return None
        self._fire(index, snr_db=self.collapsed_snr_db)
        return InjectedResult(
            fault=self.name,
            powered_up=True,
            query_decoded=True,
            snr_db=self.collapsed_snr_db,
        )

    def _extra_state(self) -> dict:
        return {"burst_until": self._burst_until}

    def _restore_extra(self, extra: dict) -> None:
        self._burst_until = int(extra["burst_until"])


class BrownoutInjector(FaultInjector):
    """Node goes dark for a recovery interval after a supply dip.

    The trigger is transaction ``at`` (deterministic) or probability
    ``prob`` per transaction (stochastic).  Once triggered, the node is
    unpowered (``powered_up=False`` results) for ``dark_for``
    transactions — the time the supercapacitor needs to recharge from
    the LDO dropout voltage back past the 2.5 V threshold.
    """

    name = "brownout"
    failing_stage = "link.node"

    def __init__(
        self,
        inner,
        *,
        dark_for: int = 5,
        at: int | None = None,
        prob: float = 0.0,
        **kwargs,
    ) -> None:
        super().__init__(inner, **kwargs)
        if dark_for < 1:
            raise ValueError("dark_for must be >= 1")
        if at is None and not 0.0 <= prob <= 1.0:
            raise ValueError("prob must be a probability")
        self.dark_for = int(dark_for)
        self.at = None if at is None else int(at)
        self.prob = float(prob)
        self._dark_until = -1

    @classmethod
    def from_energy_model(
        cls,
        inner,
        simulator,
        incident_pressure_pa: float,
        frequency_hz: float,
        *,
        poll_period_s: float,
        **kwargs,
    ) -> "BrownoutInjector":
        """Size the dark interval from the Fig. 9 energy engine.

        The recovery time is how long :class:`~repro.node.energy.
        PowerUpSimulator` takes to recharge the supercapacitor from the
        LDO's minimum input back to the power-up threshold at this
        illumination; it is converted to whole polling periods.  An
        unreachable threshold (too little harvested power) maps to a
        very long dark interval rather than an error.
        """
        if poll_period_s <= 0:
            raise ValueError("poll_period_s must be positive")
        recovery_s = simulator.brownout_recovery_time(
            incident_pressure_pa, frequency_hz
        )
        if recovery_s is None or math.isinf(recovery_s):
            dark_for = 10_000
        else:
            dark_for = max(1, int(math.ceil(recovery_s / poll_period_s)))
        return cls(inner, dark_for=dark_for, **kwargs)

    def _intercept(self, query, index: int):
        dark = index < self._dark_until
        if not dark:
            if self.at is not None:
                trigger = index == self.at
            else:
                trigger = self.prob > 0.0 and self.rng.random() < self.prob
            if trigger:
                self._dark_until = index + self.dark_for
                dark = True
                self._fire(index, dark_for=self.dark_for)
        if not dark:
            return None
        return InjectedResult(fault=self.name, powered_up=False)

    def _extra_state(self) -> dict:
        return {"dark_until": self._dark_until}

    def _restore_extra(self, extra: dict) -> None:
        self._dark_until = int(extra["dark_until"])


class GilbertElliottInjector(FaultInjector):
    """Two-state Markov (good/bad) burst-loss channel.

    In the good state replies are dropped with probability
    ``good_loss``; in the bad state with ``bad_loss``.  State
    transitions happen per transaction with ``p_good_to_bad`` and
    ``p_bad_to_good``.  A dropped reply looks like a node that never
    responded (no demod, powered but undecoded).
    """

    name = "gilbert_elliott"
    failing_stage = "link.uplink_propagation"

    def __init__(
        self,
        inner,
        *,
        p_good_to_bad: float = 0.05,
        p_bad_to_good: float = 0.3,
        good_loss: float = 0.0,
        bad_loss: float = 0.9,
        start_bad: bool = False,
        **kwargs,
    ) -> None:
        super().__init__(inner, **kwargs)
        for name, p in (
            ("p_good_to_bad", p_good_to_bad),
            ("p_bad_to_good", p_bad_to_good),
            ("good_loss", good_loss),
            ("bad_loss", bad_loss),
        ):
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"{name} must be a probability")
        self.p_good_to_bad = float(p_good_to_bad)
        self.p_bad_to_good = float(p_bad_to_good)
        self.good_loss = float(good_loss)
        self.bad_loss = float(bad_loss)
        self.bad = bool(start_bad)

    def _intercept(self, query, index: int):
        # Advance the channel state, then draw the loss.
        if self.bad:
            if self.rng.random() < self.p_bad_to_good:
                self.bad = False
        else:
            if self.rng.random() < self.p_good_to_bad:
                self.bad = True
        loss_p = self.bad_loss if self.bad else self.good_loss
        if self.rng.random() >= loss_p:
            return None
        self._fire(index, state="bad" if self.bad else "good")
        return InjectedResult(fault=self.name, powered_up=True, query_decoded=False)

    def _extra_state(self) -> dict:
        return {"bad": self.bad}

    def _restore_extra(self, extra: dict) -> None:
        self.bad = bool(extra["bad"])


class GarbledReplyInjector(FaultInjector):
    """Stuck or garbled replies: bits arrive, the CRC rejects them.

    With probability ``prob`` (or deterministically at indices in
    ``at``), the inner transport still runs but its reply is replaced by
    a CRC-failed demod carrying garbage bytes — the reader must treat it
    exactly like any corrupted packet (retry), never parse it.
    """

    name = "garbled"
    failing_stage = "link.hydrophone_dsp"

    def __init__(self, inner, *, prob: float = 0.0, at=(), length: int = 6, **kwargs) -> None:
        super().__init__(inner, **kwargs)
        if not 0.0 <= prob <= 1.0:
            raise ValueError("prob must be a probability")
        if length < 1:
            raise ValueError("length must be >= 1")
        self.prob = float(prob)
        self.at = frozenset(int(i) for i in at)
        self.length = int(length)

    def _intercept(self, query, index: int):
        garble = index in self.at or (self.prob > 0.0 and self.rng.random() < self.prob)
        if not garble:
            return None
        # Burn the airtime: the inner exchange still happens.
        self.inner(query)
        garbage = bytes(int(b) for b in self.rng.integers(0, 256, self.length))
        self._fire(index, bytes=garbage.hex())
        result = InjectedResult(fault=self.name, powered_up=True, query_decoded=True)
        result.demod = _GarbledDemod(garbage)
        return result


class TransportExceptionInjector(FaultInjector):
    """The transport raises instead of returning a result.

    Models reader-side failures (modem hiccup, serial timeout) that the
    paper's deployed stack must survive.  Raises :class:`TransportError`
    at indices in ``at`` or with probability ``prob``.
    """

    name = "transport_exception"
    failing_stage = "transport"

    def __init__(self, inner, *, prob: float = 0.0, at=(), **kwargs) -> None:
        super().__init__(inner, **kwargs)
        if not 0.0 <= prob <= 1.0:
            raise ValueError("prob must be a probability")
        self.prob = float(prob)
        self.at = frozenset(int(i) for i in at)

    def _intercept(self, query, index: int):
        if index in self.at or (self.prob > 0.0 and self.rng.random() < self.prob):
            self._fire(index)
            # Raising means __call__ never sees a result to autopsy, so
            # the post-mortem is filed here (registry only — there is no
            # result object to attach it to).
            self._record_postmortem(InjectedResult(fault=self.name))
            raise TransportError(f"injected transport failure at transaction {index}")
        return None


#: Failing stage per fault class, consumed by
#: :meth:`repro.obs.postmortem.DecodePostmortem.from_fault` so chaos
#: drills and post-mortems agree on where each fault bites.
FAULT_FAILING_STAGES = {
    cls.name: cls.failing_stage
    for cls in (
        NoiseBurstInjector,
        BrownoutInjector,
        GilbertElliottInjector,
        GarbledReplyInjector,
        TransportExceptionInjector,
    )
}

# Engine-level faults booked by the resilience layer
# (:mod:`repro.resilience`): a worker crash or a watchdog-abandoned
# straggler never reaches the waveform pipeline, so both fail at the
# engine itself.
FAULT_FAILING_STAGES["worker_crash"] = "engine"
FAULT_FAILING_STAGES["watchdog_timeout"] = "engine"
