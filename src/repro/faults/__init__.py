"""Fault injection and resilience instrumentation.

The paper's deployment environment (Sec. 5-6) is an open, hostile
medium: battery-free nodes brown out mid-packet when harvested power
dips below the 2.5 V threshold, ambient noise is bursty, and links drop
out intermittently.  This package provides the adversarial half of that
story — composable, seeded fault injectors that wrap any
``transact(query) -> LinkResult``-shaped callable — plus the structured
event log the resilient reader stack (``repro.net.mac``,
``repro.net.health``, ``repro.net.reader``) emits so tests can assert
recovery behaviour deterministically.

Everything here is reproducible by construction: every stochastic
injector takes an explicit ``seed`` (or ``rng``), and the event log
serialises to byte-identical lines for identical seeds.
"""

from repro.faults.events import Event, EventKind, EventLog
from repro.faults.injectors import (
    BrownoutInjector,
    FaultInjector,
    GarbledReplyInjector,
    GilbertElliottInjector,
    InjectedResult,
    NoiseBurstInjector,
    TransportExceptionInjector,
    TransportError,
)
from repro.faults.schedule import FaultSchedule, ScheduledFaultInjector

__all__ = [
    "Event",
    "EventKind",
    "EventLog",
    "FaultInjector",
    "InjectedResult",
    "NoiseBurstInjector",
    "BrownoutInjector",
    "GilbertElliottInjector",
    "GarbledReplyInjector",
    "TransportExceptionInjector",
    "TransportError",
    "FaultSchedule",
    "ScheduledFaultInjector",
]
