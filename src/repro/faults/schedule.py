"""Scripted, deterministic fault scenarios.

:class:`FaultSchedule` is a small builder for chaos scripts: "at
transaction 3 a noise burst starts for 4 exchanges, at 5 the node browns
out for 10, at 7 the transport raises".  :class:`ScheduledFaultInjector`
executes the script against any ``transact`` callable with zero
randomness — the same schedule always produces the same fault sequence,
which is what the acceptance tests assert against.

Stochastic campaigns compose the seeded injectors from
:mod:`repro.faults.injectors` instead; a schedule is for scripting the
exact adversarial timeline a test needs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.faults.injectors import (
    FaultInjector,
    InjectedResult,
    TransportError,
    _GarbledDemod,
)

#: Recognised scripted actions.
ACTIONS = ("drop", "garble", "brownout", "noise", "exception")


@dataclass
class FaultSchedule:
    """An ordered script of fault actions keyed by transaction index."""

    _actions: dict = field(default_factory=dict)

    def _add(self, at: int, action: str, **params) -> "FaultSchedule":
        if at < 0:
            raise ValueError("transaction index must be non-negative")
        if action not in ACTIONS:
            raise ValueError(f"unknown action {action!r}")
        self._actions.setdefault(int(at), []).append((action, params))
        return self

    def drop(self, at: int) -> "FaultSchedule":
        """No reply for this one transaction."""
        return self._add(at, "drop")

    def garble(self, at: int, data: bytes = b"\xde\xad\xbe\xef") -> "FaultSchedule":
        """Reply arrives with trashed bits (CRC failure) at ``at``."""
        return self._add(at, "garble", data=bytes(data))

    def brownout(self, at: int, dark_for: int = 5) -> "FaultSchedule":
        """Node goes unpowered for ``dark_for`` transactions from ``at``."""
        if dark_for < 1:
            raise ValueError("dark_for must be >= 1")
        return self._add(at, "brownout", dark_for=int(dark_for))

    def noise_burst(self, at: int, duration: int = 3, snr_db: float = -10.0) -> "FaultSchedule":
        """SNR collapse for ``duration`` transactions from ``at``."""
        if duration < 1:
            raise ValueError("duration must be >= 1")
        return self._add(at, "noise", duration=int(duration), snr_db=float(snr_db))

    def exception(self, at: int, message: str = "scheduled transport failure") -> "FaultSchedule":
        """The transport raises :class:`TransportError` at ``at``."""
        return self._add(at, "exception", message=str(message))

    def actions_at(self, index: int) -> list:
        """The scripted actions for one transaction index."""
        return list(self._actions.get(index, ()))

    @property
    def horizon(self) -> int:
        """One past the last scripted index (0 when empty)."""
        return max(self._actions, default=-1) + 1

    def __len__(self) -> int:
        return sum(len(v) for v in self._actions.values())


class ScheduledFaultInjector(FaultInjector):
    """Executes a :class:`FaultSchedule` against a transact callable.

    Window actions (brownout, noise burst) persist for their scripted
    duration; point actions (drop, garble, exception) fire on their
    exact transaction.  When several apply at once the most severe wins:
    exception > brownout > noise > garble > drop.
    """

    name = "scheduled"

    def __init__(self, inner, schedule: FaultSchedule, **kwargs) -> None:
        super().__init__(inner, **kwargs)
        self.schedule = schedule
        self._dark_until = -1
        self._noise_until = -1
        self._noise_snr_db = float("nan")

    def _intercept(self, query, index: int):
        point = {action: params for action, params in self.schedule.actions_at(index)}
        if "brownout" in point:
            self._dark_until = max(self._dark_until, index + point["brownout"]["dark_for"])
        if "noise" in point:
            self._noise_until = max(self._noise_until, index + point["noise"]["duration"])
            self._noise_snr_db = point["noise"]["snr_db"]

        if "exception" in point:
            self._fire(index, action="exception")
            raise TransportError(point["exception"]["message"])
        if index < self._dark_until:
            if "brownout" in point:
                self._fire(index, action="brownout", dark_for=point["brownout"]["dark_for"])
            return InjectedResult(fault="brownout", powered_up=False)
        if index < self._noise_until:
            if "noise" in point:
                self._fire(index, action="noise", snr_db=self._noise_snr_db)
            return InjectedResult(
                fault="noise_burst",
                powered_up=True,
                query_decoded=True,
                snr_db=self._noise_snr_db,
            )
        if "garble" in point:
            self._fire(index, action="garble")
            self.inner(query)  # the exchange still burns airtime
            result = InjectedResult(fault="garbled", powered_up=True, query_decoded=True)
            result.demod = _GarbledDemod(point["garble"]["data"])
            return result
        if "drop" in point:
            self._fire(index, action="drop")
            return InjectedResult(fault="drop", powered_up=True, query_decoded=False)
        return None
