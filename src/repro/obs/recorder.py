"""Flight recorder: a bounded ring buffer over the telemetry stream.

The streaming counterpart of the probe registry's failure artifacts: a
:class:`FlightRecorder` sink keeps the last ``capacity`` bus events in
memory (and only that many — the ring is a ``deque(maxlen=...)``, so a
week-long campaign costs the same as a ten-round one) and dumps them
as stream-format JSONL when something dies:

* ``ReaderController.run_campaign`` dumps the ring next to its
  checkpoints (``flight-recorder-NNNNNN.jsonl``, see
  :func:`repro.resilience.checkpoint.recorder_path`) when a
  :class:`~repro.resilience.supervisor.CampaignAbort` escapes or a
  watchdog abandons a straggler;
* the pytest failure hook (``tests/conftest.py``) dumps any recorder
  attached to the process-global bus into ``PAB_ARTIFACT_DIR``, beside
  the probe ``.npz`` and post-mortem dumps.

Because events arrive at publish time (not flush time), the ring is
current up to the very last event published before the crash.
Determinism: the ring sees the same merge-side event sequence in every
execution mode, so same-seed sequential and parallel campaigns dump
byte-identical recordings.
"""

from __future__ import annotations

import collections
import pathlib
import re

from repro.obs.stream import event_to_line

#: Default ring capacity (events).  256 rounds out to a few fleet
#: rounds of full telemetry — enough context to autopsy a crash
#: without dragging a whole campaign into every artifact.
DEFAULT_CAPACITY = 256

_SAFE_NAME = re.compile(r"[^A-Za-z0-9_.-]+")


class FlightRecorder:
    """Keep the last ``capacity`` stream events; dump them on demand."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = int(capacity)
        self._ring: collections.deque = collections.deque(maxlen=self.capacity)
        #: Total events ever emitted into the recorder (survives wraps).
        self.events_seen = 0

    # -- sink protocol ----------------------------------------------------------------

    def emit(self, event: dict) -> None:
        self._ring.append(event)
        self.events_seen += 1

    def flush(self) -> None:  # pragma: no cover - nothing buffered
        pass

    # -- inspection -------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._ring)

    def snapshot(self) -> list:
        """The ring's events, oldest first (a copy)."""
        return list(self._ring)

    def to_jsonl(self) -> str:
        """The ring as stream-format JSONL text."""
        lines = [event_to_line(e) for e in self._ring]
        return "\n".join(lines) + ("\n" if lines else "")

    def dump_jsonl(self, path) -> pathlib.Path:
        """Write :meth:`to_jsonl` to ``path`` (parents created)."""
        out = pathlib.Path(path)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(self.to_jsonl())
        return out


def dump_flight_recorders(directory, name: str) -> list:
    """Dump every recorder on the process-global bus into ``directory``.

    The pytest-failure counterpart of
    :func:`repro.obs.probe.dump_failure_artifacts`: ``name`` (usually
    the test node id) is sanitised into the filename.  Returns the
    paths written (empty when no recorder is attached or none has
    events).
    """
    from repro.obs.stream import get_bus

    written = []
    safe = _SAFE_NAME.sub("_", name).strip("_") or "recorder"
    directory = pathlib.Path(directory)
    for i, recorder in enumerate(get_bus().recorders()):
        if not len(recorder):
            continue
        suffix = f"-{i}" if i else ""
        written.append(
            recorder.dump_jsonl(
                directory / f"{safe}-flight-recorder{suffix}.jsonl"
            )
        )
    return written
