"""Per-node energy ledger: joule accounting for battery-free operation.

The paper's headline claim is battery-free operation — nodes live or die
by the balance between harvested acoustic power and the 124 uW idle /
~500 uW backscatter budget (Sec. 6.4, Figs. 9/11) — yet spans, metrics,
and probes only watch the *communication* path.  The ledger closes the
energy side: it integrates harvested vs. consumed joules bucketed by
:class:`~repro.node.power.PowerState`, tracks supercapacitor
state-of-charge, clamp/leakage losses, duty-cycle fractions, and the
brownout margin (minimum voltage headroom above
``POWER_UP_THRESHOLD_V``), and checks conservation: ``harvested ==
stored + consumed + losses`` to within float precision, because the
:class:`~repro.circuits.storage.Supercapacitor` evaluates flows at each
step's midpoint voltage.

Two feeding modes:

* **Waveform/ODE mode** — :meth:`EnergyLedger.attach` registers the
  ledger as a capacitor's per-step ``observer``; every
  :meth:`~repro.circuits.storage.Supercapacitor.step` streams its flows
  in, bucketed under the ledger's current :class:`PowerState` (firmware
  transitions move the bucket via :meth:`EnergyLedger.set_state`).
* **Round mode** — :class:`NodeEnergyHarness` advances one node's
  supercapacitor through a polling round (DECODING + BACKSCATTER +
  IDLE segments, or COLD while browned out), driven by
  :meth:`~repro.net.reader.ReaderController.poll_round`.

Disabled is free: nothing here runs unless a ledger is constructed and
attached — the hot-path cost of *not* using one is a single ``is None``
check at each hook site (capacitor step, firmware transition).
"""

from __future__ import annotations

import math

from repro.constants import POWER_UP_THRESHOLD_V
from repro.node.power import NodePowerModel, PowerState

#: Flow directions the ledger buckets joules under (with a PowerState).
DIRECTIONS = ("harvested", "consumed", "leaked", "clamped")


class EnergyLedger:
    """Joule books and SoC telemetry for one battery-free node.

    Parameters
    ----------
    node:
        Node address stamped on metrics and summaries.
    power_model:
        Used by :meth:`advance` to integrate state consumption when no
        capacitor streams flows; defaults to the paper-calibrated model.
    threshold_v:
        Power-up threshold the brownout margin is measured against.
    max_soc_samples:
        SoC series length cap; when exceeded, every other sample is
        dropped and the stride doubles (same bounded-memory contract as
        :class:`~repro.obs.probe.ProbeRegistry` decimation).
    """

    def __init__(
        self,
        node: int = -1,
        *,
        power_model: NodePowerModel | None = None,
        threshold_v: float = POWER_UP_THRESHOLD_V,
        max_soc_samples: int = 4096,
    ) -> None:
        if max_soc_samples < 2:
            raise ValueError("max_soc_samples must be >= 2")
        self.node = int(node)
        self.power_model = power_model if power_model is not None else NodePowerModel()
        self.threshold_v = float(threshold_v)
        self.max_soc_samples = int(max_soc_samples)
        self.t = 0.0
        self.state = PowerState.COLD
        self.state_seconds: dict = {s: 0.0 for s in PowerState}
        #: ``{(direction, PowerState): joules}`` flow buckets.
        self.flows: dict = {}
        self.capacitor = None
        self._baseline_energy_j = 0.0
        self._baseline_adjusted_j = 0.0
        self.soc_t: list = []
        self.soc_v: list = []
        self._soc_stride = 1
        self._soc_phase = 0
        self.min_voltage_v = math.inf
        #: Minimum observed voltage while out of COLD (inf until powered).
        self.min_powered_voltage_v = math.inf
        self.brownouts = 0
        self.last_voltage_v = float("nan")
        #: Per-polling-round snapshots appended by :class:`NodeEnergyHarness`
        #: (consumed by the campaign timeline).
        self.round_history: list = []
        #: Deltas already pushed into a metrics registry, keyed by
        #: ``(name, labels)`` — lets :meth:`to_metrics` be called
        #: repeatedly without double-counting counters.
        self._pushed: dict = {}

    # -- feeding ----------------------------------------------------------------------

    def attach(self, capacitor) -> "EnergyLedger":
        """Stream ``capacitor``'s per-step flows into this ledger.

        Returns ``self`` so construction chains:
        ``ledger = EnergyLedger(7).attach(cap)``.
        """
        self.capacitor = capacitor
        capacitor.observer = self._on_cap_step
        self._baseline_energy_j = capacitor.energy_j
        self._baseline_adjusted_j = capacitor.adjusted_j
        self._observe_soc(capacitor.voltage_v)
        return self

    def _on_cap_step(self, dt_s, v, e_in, e_load, e_leak, e_clamp) -> None:
        """Capacitor observer: one integration step's flows."""
        self.t += dt_s
        self.state_seconds[self.state] += dt_s
        state = self.state
        flows = self.flows
        if e_in:
            flows[("harvested", state)] = flows.get(("harvested", state), 0.0) + e_in
        if e_load:
            flows[("consumed", state)] = flows.get(("consumed", state), 0.0) + e_load
        if e_leak:
            flows[("leaked", state)] = flows.get(("leaked", state), 0.0) + e_leak
        if e_clamp:
            flows[("clamped", state)] = flows.get(("clamped", state), 0.0) + e_clamp
        self._observe_soc(v)

    def _observe_soc(self, v: float) -> None:
        self.last_voltage_v = v
        if v < self.min_voltage_v:
            self.min_voltage_v = v
        if self.state is not PowerState.COLD and v < self.min_powered_voltage_v:
            self.min_powered_voltage_v = v
        self._soc_phase += 1
        if self._soc_phase >= self._soc_stride:
            self._soc_phase = 0
            self.soc_t.append(self.t)
            self.soc_v.append(v)
            if len(self.soc_v) > self.max_soc_samples:
                self.soc_t = self.soc_t[::2]
                self.soc_v = self.soc_v[::2]
                self._soc_stride *= 2

    def set_state(self, state: PowerState) -> None:
        """Move the flow/duty bucket; counts powered -> COLD brownouts."""
        state = PowerState(state)
        if state is self.state:
            return
        if state is PowerState.COLD and self.state is not PowerState.COLD:
            self.brownouts += 1
        self.state = state

    def advance(
        self,
        state: PowerState,
        dt_s: float,
        *,
        bitrate: float = 0.0,
        harvested_w: float = 0.0,
    ) -> None:
        """Round-mode accounting without a capacitor.

        Integrates the power model's draw for ``state`` over ``dt_s``
        (plus an optional constant harvest) — for abstract campaign
        nodes that have no ODE-level storage model.
        """
        if dt_s < 0:
            raise ValueError("dt_s must be non-negative")
        self.set_state(state)
        self.t += dt_s
        self.state_seconds[self.state] += dt_s
        consumed = self.power_model.power_w(self.state, bitrate=bitrate) * dt_s
        if consumed:
            key = ("consumed", self.state)
            self.flows[key] = self.flows.get(key, 0.0) + consumed
        if harvested_w:
            key = ("harvested", self.state)
            self.flows[key] = self.flows.get(key, 0.0) + harvested_w * dt_s
        if self.last_voltage_v == self.last_voltage_v:  # not NaN
            self._observe_soc(self.last_voltage_v)

    def record_round(self, **info) -> dict:
        """Append one polling-round snapshot (timeline raw material)."""
        self.round_history.append(info)
        return info

    # -- books ------------------------------------------------------------------------

    def total(self, direction: str, state: PowerState | None = None) -> float:
        """Total joules for a direction (optionally one state's bucket)."""
        if direction not in DIRECTIONS:
            raise ValueError(f"unknown direction {direction!r}")
        if state is not None:
            return self.flows.get((direction, PowerState(state)), 0.0)
        # fsum: exactly rounded, so the total is independent of bucket
        # order (live insertion order vs the sorted order a checkpoint
        # restore rebuilds the dict in).
        return math.fsum(v for (d, _), v in self.flows.items() if d == direction)

    @property
    def harvested_j(self) -> float:
        return self.total("harvested")

    @property
    def consumed_j(self) -> float:
        return self.total("consumed")

    @property
    def leaked_j(self) -> float:
        return self.total("leaked")

    @property
    def clamped_j(self) -> float:
        return self.total("clamped")

    @property
    def brownout_margin_v(self) -> float:
        """Minimum powered-voltage headroom above the threshold.

        Negative means the node dipped below the power-up threshold
        while nominally operating; ``nan`` when it never powered.
        """
        if math.isinf(self.min_powered_voltage_v):
            return float("nan")
        return self.min_powered_voltage_v - self.threshold_v

    def balance(self) -> dict:
        """Conservation check: harvested vs stored + consumed + losses.

        ``error_fraction`` normalises by total harvested (plus any
        by-fiat adjustment magnitude) so "< 1%" is meaningful for both
        strongly and weakly illuminated nodes.
        """
        if self.capacitor is not None:
            stored_delta = self.capacitor.energy_j - self._baseline_energy_j
            adjusted = self.capacitor.adjusted_j - self._baseline_adjusted_j
        else:
            stored_delta = 0.0
            adjusted = 0.0
        harvested = self.harvested_j
        error = (
            harvested + adjusted
            - stored_delta - self.consumed_j - self.leaked_j - self.clamped_j
        )
        scale = max(harvested + abs(adjusted), 1e-12)
        return {
            "harvested_j": harvested,
            "consumed_j": self.consumed_j,
            "leaked_j": self.leaked_j,
            "clamped_j": self.clamped_j,
            "adjusted_j": adjusted,
            "stored_delta_j": stored_delta,
            "error_j": error,
            "error_fraction": error / scale,
        }

    def duty_cycle(self) -> dict:
        """``{state value: fraction of observed time}`` (empty if t==0)."""
        total = math.fsum(self.state_seconds.values())
        if total <= 0:
            return {}
        return {
            state.value: seconds / total
            for state, seconds in self.state_seconds.items()
        }

    def summary(self) -> dict:
        """One node's energy report: balance + duty cycle + SoC stats."""
        out = {"node": self.node, "t_s": self.t}
        out.update(self.balance())
        out["duty_cycle"] = self.duty_cycle()
        out["soc_v"] = self.last_voltage_v
        out["min_voltage_v"] = (
            self.min_voltage_v if not math.isinf(self.min_voltage_v) else float("nan")
        )
        out["brownout_margin_v"] = self.brownout_margin_v
        out["brownouts"] = self.brownouts
        return out

    def soc_series(self) -> tuple:
        """``(times_s, volts)`` — the (decimated) SoC trajectory."""
        return list(self.soc_t), list(self.soc_v)

    # -- checkpointing ----------------------------------------------------------------

    def snapshot_state(self) -> dict:
        """JSON-ready mutable state, including the attached capacitor.

        ``inf``/``nan`` sentinels survive because Python's ``json``
        writes and reads the ``Infinity``/``NaN`` extension tokens.
        """
        return {
            "t": self.t,
            "state": self.state.value,
            "state_seconds": {s.value: v for s, v in self.state_seconds.items()},
            "flows": [
                [direction, state.value, joules]
                for (direction, state), joules in sorted(
                    self.flows.items(), key=lambda kv: (kv[0][0], kv[0][1].value)
                )
            ],
            "baseline_energy_j": self._baseline_energy_j,
            "baseline_adjusted_j": self._baseline_adjusted_j,
            "soc_t": list(self.soc_t),
            "soc_v": list(self.soc_v),
            "soc_stride": self._soc_stride,
            "soc_phase": self._soc_phase,
            "min_voltage_v": self.min_voltage_v,
            "min_powered_voltage_v": self.min_powered_voltage_v,
            "brownouts": self.brownouts,
            "last_voltage_v": self.last_voltage_v,
            "round_history": [dict(info) for info in self.round_history],
            "pushed": [
                [name, [list(pair) for pair in labels], value]
                for (name, labels), value in sorted(self._pushed.items())
            ],
            "capacitor": (
                None if self.capacitor is None
                else self.capacitor.snapshot_state()
            ),
        }

    def restore_state(self, state: dict) -> None:
        """Inverse of :meth:`snapshot_state`.

        The capacitor section restores into the *already attached*
        capacitor (attachment wires the observer callback, which JSON
        cannot carry).
        """
        self.t = state["t"]
        self.state = PowerState(state["state"])
        self.state_seconds = {
            PowerState(s): v for s, v in state["state_seconds"].items()
        }
        self.flows = {
            (direction, PowerState(s)): joules
            for direction, s, joules in state["flows"]
        }
        self._baseline_energy_j = state["baseline_energy_j"]
        self._baseline_adjusted_j = state["baseline_adjusted_j"]
        self.soc_t = list(state["soc_t"])
        self.soc_v = list(state["soc_v"])
        self._soc_stride = int(state["soc_stride"])
        self._soc_phase = int(state["soc_phase"])
        self.min_voltage_v = state["min_voltage_v"]
        self.min_powered_voltage_v = state["min_powered_voltage_v"]
        self.brownouts = int(state["brownouts"])
        self.last_voltage_v = state["last_voltage_v"]
        self.round_history = [dict(info) for info in state["round_history"]]
        self._pushed = {
            (name, tuple(tuple(pair) for pair in labels)): value
            for name, labels, value in state["pushed"]
        }
        if state["capacitor"] is not None:
            if self.capacitor is None:
                raise ValueError(
                    "snapshot carries capacitor state but no capacitor is attached"
                )
            self.capacitor.restore_state(state["capacitor"])

    # -- export -----------------------------------------------------------------------

    def publish_probe(self, name: str = "soc") -> object:
        """Capture the SoC trajectory as a ``node.energy`` probe tap.

        Goes through the process-global
        :class:`~repro.obs.probe.ProbeRegistry` (no-op when disabled);
        returns the tap or ``None``.
        """
        from repro.obs.probe import get_probes

        probes = get_probes()
        if not probes.wants("node.energy"):
            return None
        times, volts = self.soc_series()
        rate = None
        if len(times) >= 2 and times[-1] > times[0]:
            rate = (len(times) - 1) / (times[-1] - times[0])
        return probes.capture(
            "node.energy",
            name,
            waveform=volts,
            sample_rate=rate,
            node=self.node,
            soc_v=self.last_voltage_v,
            min_voltage_v=self.min_voltage_v,
            brownout_margin_v=self.brownout_margin_v,
            brownouts=self.brownouts,
        )

    def _push_counter(self, registry, name: str, value: float, **labels) -> None:
        """Counter-set semantics: inc by the delta since the last push."""
        key = (name, tuple(sorted(labels.items())))
        delta = value - self._pushed.get(key, 0.0)
        if delta > 0:
            registry.counter(name, **labels).inc(delta)
            self._pushed[key] = value

    def to_metrics(self, registry) -> None:
        """Export gauges/counters into a metrics registry.

        * ``pab_node_soc_volts{node=}`` — current supercap voltage.
        * ``pab_node_energy_margin_volts{node=}`` — brownout margin.
        * ``pab_node_brownouts_total{node=}`` — powered -> COLD drops.
        * ``pab_node_energy_joules_total{node=,direction=,state=}`` —
          the flow buckets (idempotent across repeated calls).

        Counters merge across readers; gauges are point-in-time.
        """
        registry.gauge("pab_node_soc_volts", node=self.node).set(
            self.last_voltage_v if self.last_voltage_v == self.last_voltage_v else 0.0
        )
        margin = self.brownout_margin_v
        if margin == margin:  # not NaN
            registry.gauge(
                "pab_node_energy_margin_volts", node=self.node
            ).set(margin)
        self._push_counter(
            registry, "pab_node_brownouts_total", float(self.brownouts),
            node=self.node,
        )
        for (direction, state), joules in sorted(
            self.flows.items(), key=lambda kv: (kv[0][0], kv[0][1].value)
        ):
            self._push_counter(
                registry, "pab_node_energy_joules_total", joules,
                node=self.node, direction=direction, state=state.value,
            )


class NodeEnergyHarness:
    """Round-based energy simulation of one fleet node.

    Bridges the reader's per-round virtual clock to the capacitor's ODE:
    each :meth:`on_poll_round` advances the node's supercapacitor
    through one polling period — DECODING and BACKSCATTER segments when
    the node was polled while powered, IDLE otherwise, COLD while
    browned out — and feeds the attached :class:`EnergyLedger`.

    Power-state hysteresis mirrors the hardware: the node powers up
    when the cap crosses ``threshold_v`` (2.5 V) and browns out when it
    dips below ``brownout_v`` (the LDO's minimum input).

    Parameters
    ----------
    ledger:
        The ledger to feed; created (with ``node``'s address) if omitted.
    capacitor:
        Storage element; defaults to the standard 1000 uF part started
        at ``initial_voltage_v``.
    v_oc_v, r_out_ohm:
        Thevenin charging source (a harvester's
        :meth:`~repro.circuits.harvester.EnergyHarvester.charging_source`
        output, or hand-picked numbers for abstract campaign nodes).
    poll_period_s, decode_s, backscatter_s:
        Round duration and the active-segment lengths within it.
    bitrate:
        Backscatter bitrate for the power model's switching term.
    dt_s:
        ODE sub-step.
    """

    def __init__(
        self,
        node: int,
        *,
        ledger: EnergyLedger | None = None,
        capacitor=None,
        v_oc_v: float = 4.0,
        r_out_ohm: float = 4.0e3,
        power_model: NodePowerModel | None = None,
        poll_period_s: float = 1.0,
        decode_s: float = 0.1,
        backscatter_s: float = 0.2,
        bitrate: float = 1_000.0,
        threshold_v: float = POWER_UP_THRESHOLD_V,
        brownout_v: float = 2.1,
        initial_voltage_v: float = 3.0,
        dt_s: float = 0.02,
    ) -> None:
        if poll_period_s <= 0 or dt_s <= 0:
            raise ValueError("poll_period_s and dt_s must be positive")
        if decode_s + backscatter_s > poll_period_s:
            raise ValueError("active segments cannot exceed the poll period")
        if brownout_v > threshold_v:
            raise ValueError("brownout_v must not exceed threshold_v")
        from repro.circuits.storage import Supercapacitor

        self.node = int(node)
        self.power_model = power_model if power_model is not None else NodePowerModel()
        self.ledger = (
            ledger if ledger is not None
            else EnergyLedger(
                node, power_model=self.power_model, threshold_v=threshold_v
            )
        )
        self.capacitor = (
            capacitor if capacitor is not None
            else Supercapacitor(initial_voltage_v=initial_voltage_v)
        )
        self.ledger.attach(self.capacitor)
        self.v_oc_v = float(v_oc_v)
        self.r_out_ohm = float(r_out_ohm)
        self.poll_period_s = float(poll_period_s)
        self.decode_s = float(decode_s)
        self.backscatter_s = float(backscatter_s)
        self.bitrate = float(bitrate)
        self.threshold_v = float(threshold_v)
        self.brownout_v = float(brownout_v)
        self.dt_s = float(dt_s)
        self.powered = self.capacitor.voltage_v >= self.threshold_v
        self.ledger.set_state(
            PowerState.IDLE if self.powered else PowerState.COLD
        )

    def _run_segment(self, state: PowerState, seconds: float) -> None:
        if seconds <= 0:
            return
        self.ledger.set_state(state)
        i_load = (
            self.power_model.current_a(state, bitrate=self.bitrate)
            if self.powered else 0.0
        )
        steps = max(int(round(seconds / self.dt_s)), 1)
        dt = seconds / steps
        for _ in range(steps):
            self.capacitor.charge_from_source(
                dt, self.v_oc_v, self.r_out_ohm, i_load_a=i_load
            )
            v = self.capacitor.voltage_v
            if self.powered and v < self.brownout_v:
                self.powered = False
                self.ledger.set_state(PowerState.COLD)
                i_load = 0.0
            elif not self.powered and v >= self.threshold_v:
                self.powered = True
                if self.ledger.state is PowerState.COLD:
                    self.ledger.set_state(PowerState.IDLE)
                i_load = self.power_model.current_a(
                    state, bitrate=self.bitrate
                ) if self.ledger.state is state else 0.0

    def on_poll_round(
        self, t: float, *, polled: bool, success: bool, bitrate: float | None = None
    ) -> dict:
        """Advance one polling period; returns the round's energy info.

        The returned dict feeds the SLO tracker's energy-sustainability
        objective: ``sustainable`` is whether the round's harvest
        covered its consumption (losses included) without browning out.
        """
        if bitrate is not None and bitrate > 0:
            self.bitrate = float(bitrate)
        before = self.ledger.balance()
        was_powered = self.powered
        idle_s = self.poll_period_s
        if polled and self.powered:
            self._run_segment(PowerState.DECODING, self.decode_s)
            self._run_segment(PowerState.BACKSCATTER, self.backscatter_s)
            idle_s -= self.decode_s + self.backscatter_s
        self._run_segment(
            PowerState.IDLE if self.powered else PowerState.COLD, idle_s
        )
        after = self.ledger.balance()
        harvested = after["harvested_j"] - before["harvested_j"]
        consumed = (
            after["consumed_j"] + after["leaked_j"] + after["clamped_j"]
            - before["consumed_j"] - before["leaked_j"] - before["clamped_j"]
        )
        info = {
            "t": float(t),
            "node": self.node,
            "polled": bool(polled),
            "success": bool(success),
            "powered": self.powered,
            "soc_v": self.capacitor.voltage_v,
            "harvested_j": harvested,
            "consumed_j": consumed,
            "sustainable": harvested >= consumed and (
                self.powered or not was_powered
            ),
        }
        self.ledger.record_round(**info)
        return info

    def summary(self) -> dict:
        """The attached ledger's summary."""
        return self.ledger.summary()

    def to_metrics(self, registry) -> None:
        """Delegate to the attached ledger."""
        self.ledger.to_metrics(registry)

    # -- checkpointing ----------------------------------------------------------------

    def snapshot_state(self) -> dict:
        """JSON-ready mutable state (the ledger carries the capacitor)."""
        return {
            "powered": self.powered,
            "bitrate": self.bitrate,
            "ledger": self.ledger.snapshot_state(),
        }

    def restore_state(self, state: dict) -> None:
        """Inverse of :meth:`snapshot_state`."""
        self.powered = bool(state["powered"])
        self.bitrate = float(state["bitrate"])
        self.ledger.restore_state(state["ledger"])
