"""Span-based tracer for the PAB simulation stack.

Zero-dependency tracing shaped like the usual span model: a
:class:`Tracer` hands out nestable :class:`Span` context managers that
record wall-clock duration (``time.perf_counter``) plus arbitrary
attributes::

    tracer = Tracer()
    with tracer.span("channel.propagate", samples=n):
        ...

Three properties matter for this codebase:

* **Disabled is free.**  A disabled tracer returns one shared no-op
  span object from :meth:`Tracer.span`; the waveform hot path pays a
  single attribute check per instrumentation point.  Instrumented code
  never needs its own ``if tracing:`` guards.
* **Deterministic option.**  A :class:`VirtualClock` replaces
  ``perf_counter`` with a manually-advanced counter (the same
  convention as the fault :class:`~repro.faults.events.EventLog`'s
  round counter), so traces are byte-identical across runs under a
  fixed seed — what the determinism tests assert.
* **Exception safe.**  A span that exits via an exception is still
  closed, popped from the nesting stack, and tagged with the exception
  type; the trace stays well-formed.

A process-global tracer (disabled by default) lets deeply nested layers
— e.g. the node firmware inside :class:`~repro.core.link.BackscatterLink`
— participate without threading a tracer argument through every call:
:func:`get_tracer` / :func:`set_tracer` / :func:`use_tracer`.
"""

from __future__ import annotations

import contextlib
from time import perf_counter


class VirtualClock:
    """Deterministic clock: manual :meth:`advance` plus optional auto-tick.

    Parameters
    ----------
    start:
        Initial reading.
    tick:
        Amount the clock auto-advances *after* each read.  With a
        non-zero tick every span gets a reproducible non-zero duration
        (each read moves time forward by a fixed step), which is what
        the byte-determinism tests rely on.
    """

    def __init__(self, start: float = 0.0, tick: float = 0.0) -> None:
        self.t = float(start)
        self.tick = float(tick)

    def __call__(self) -> float:
        now = self.t
        self.t += self.tick
        return now

    def advance(self, dt: float) -> None:
        """Move the clock forward by ``dt`` (must be non-negative)."""
        if dt < 0:
            raise ValueError("clock cannot run backwards")
        self.t += dt


class Span:
    """One timed, attributed region of execution.

    Created by :meth:`Tracer.span`; use as a context manager.  After
    exit, :attr:`end_s` is set and the span appears on
    :attr:`Tracer.spans` in completion order.
    """

    __slots__ = (
        "tracer", "name", "span_id", "parent_id", "start_s", "end_s", "attrs"
    )

    def __init__(self, tracer: "Tracer", name: str, span_id: int,
                 parent_id: int | None, attrs: dict) -> None:
        self.tracer = tracer
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.start_s: float | None = None
        self.end_s: float | None = None
        self.attrs = attrs

    @property
    def finished(self) -> bool:
        return self.end_s is not None

    @property
    def duration_s(self) -> float:
        """Seconds between enter and exit (``nan`` while still open)."""
        if self.start_s is None or self.end_s is None:
            return float("nan")
        return self.end_s - self.start_s

    def set(self, **attrs) -> "Span":
        """Attach attributes to an open (or closed) span."""
        self.attrs.update(attrs)
        return self

    def __enter__(self) -> "Span":
        self.tracer._enter(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is not None:
            self.attrs["error"] = exc_type.__name__
        self.tracer._exit(self)
        return False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = f"{self.duration_s:.6g}s" if self.finished else "open"
        return f"Span({self.name!r}, id={self.span_id}, {state})"


class _NullSpan:
    """Shared do-nothing span returned by disabled tracers."""

    __slots__ = ()
    finished = False
    duration_s = float("nan")
    name = None

    def set(self, **attrs) -> "_NullSpan":
        return self

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


#: The singleton handed out when tracing is off (or in `span()`'s fast path).
NULL_SPAN = _NullSpan()


class Tracer:
    """Collects spans; nesting tracked via an explicit stack.

    Parameters
    ----------
    clock:
        ``() -> float`` time source; ``time.perf_counter`` by default,
        a :class:`VirtualClock` for deterministic traces.
    enabled:
        When False, :meth:`span` returns the shared :data:`NULL_SPAN`
        and nothing is recorded.
    metrics:
        Optional :class:`~repro.obs.metrics.MetricsRegistry` (or
        anything with a matching ``histogram``); each finished span's
        duration is observed into ``pab_span_seconds{name=...}``, so
        tracing and metrics stay one substrate, not two.
    """

    def __init__(self, *, clock=None, enabled: bool = True, metrics=None,
                 bus=None) -> None:
        self.clock = clock if clock is not None else perf_counter
        self.enabled = bool(enabled)
        self.metrics = metrics
        #: Optional :class:`~repro.obs.stream.TelemetryBus`: each
        #: finished span is also published as a ``kind="span"`` stream
        #: event.  (An enabled tracer forces the reader into sequential
        #: mode, so span publication order is deterministic.)
        self.bus = bus
        self.spans: list[Span] = []
        self._stack: list[Span] = []
        self._next_id = 1

    # -- recording ------------------------------------------------------------------

    def span(self, name: str, **attrs) -> Span | _NullSpan:
        """A new span context manager (no-op when disabled)."""
        if not self.enabled:
            return NULL_SPAN
        span = Span(
            self,
            name,
            self._next_id,
            self._stack[-1].span_id if self._stack else None,
            attrs,
        )
        self._next_id += 1
        return span

    def _enter(self, span: Span) -> None:
        # Late-bind the parent: the span may have been created before
        # sibling spans opened/closed.
        span.parent_id = self._stack[-1].span_id if self._stack else None
        self._stack.append(span)
        span.start_s = self.clock()

    def _exit(self, span: Span) -> None:
        span.end_s = self.clock()
        # Pop through anything left open below us (defensive: a caller
        # that forgot to close an inner span must not corrupt nesting).
        while self._stack:
            popped = self._stack.pop()
            if popped is span:
                break
        self.spans.append(span)
        if self.metrics is not None:
            self.metrics.histogram(
                "pab_span_seconds", name=span.name
            ).observe(span.duration_s)
        if self.bus is not None and self.bus.enabled:
            from repro.obs.export import span_to_dict

            self.bus.publish(
                "span", t=span.end_s, source="tracer",
                data=span_to_dict(span),
            )

    def reset(self) -> None:
        """Drop all recorded spans and nesting state."""
        self.spans.clear()
        self._stack.clear()
        self._next_id = 1

    # -- aggregation ----------------------------------------------------------------

    def stage_totals(self) -> dict:
        """``{name: {"count": n, "total_s": t, "mean_s": t/n}}``.

        Spans sharing a name (a stage traversed more than once per
        transaction) aggregate; iteration order is first-seen, which is
        deterministic for a deterministic workload.
        """
        out: dict = {}
        for span in self.spans:
            entry = out.setdefault(span.name, {"count": 0, "total_s": 0.0})
            entry["count"] += 1
            entry["total_s"] += span.duration_s
        for entry in out.values():
            entry["mean_s"] = entry["total_s"] / entry["count"]
        return out


# ---------------------------------------------------------------------------
# Process-global tracer (disabled by default)
# ---------------------------------------------------------------------------

_GLOBAL_TRACER = Tracer(enabled=False)


def get_tracer() -> Tracer:
    """The process-global tracer (a disabled one until installed)."""
    return _GLOBAL_TRACER


def set_tracer(tracer: Tracer) -> Tracer:
    """Install ``tracer`` globally; returns the previous one."""
    global _GLOBAL_TRACER
    previous = _GLOBAL_TRACER
    _GLOBAL_TRACER = tracer
    return previous


@contextlib.contextmanager
def use_tracer(tracer: Tracer):
    """Temporarily install ``tracer`` as the global tracer."""
    previous = set_tracer(tracer)
    try:
        yield tracer
    finally:
        set_tracer(previous)
