"""Campaign timeline: one merged per-round view of a fleet's health.

A chaos campaign produces four parallel narratives — health-state
transitions and injected faults in the
:class:`~repro.faults.events.EventLog`, delivery outcomes in the
reader's round log, supercap state-of-charge in each node's
:class:`~repro.obs.ledger.EnergyLedger`, and SLO burn in the
:class:`~repro.obs.slo.SLOTracker`.  Debugging means cross-referencing
them by hand ("round 14: node 3 quarantined... was that the noise burst?
where was its cap?").  The timeline merges them into one table, one row
per (round, node), rendered as text / CSV / JSONL.

Row columns (missing sources leave their columns blank):

==================  ========================================================
``round``           polling round (the campaign's virtual clock)
``node``            node address
``polled``          1 if the reader attempted the node this round
``delivered``       1 if a reading came back
``health``          health-state code after the round (H/D/Q/P)
``transition``      ``FROM>TO`` when the state changed this round
``faults``          injected-fault events filed for this node this round
``soc_v``           supercap voltage at end of round (energy harness)
``harvested_j``     joules harvested this round
``consumed_j``      joules consumed (incl. leakage/clamp) this round
``sustainable``     1 if the round's energy balance closed
``burn_delivery``   fleet delivery burn rate after the round
``burn_energy``     fleet energy burn rate after the round
==================  ========================================================
"""

from __future__ import annotations

import json
import math
import pathlib

from repro.faults.events import EventKind

#: Column order for the tabular exports.
COLUMNS = (
    "round", "node", "polled", "delivered", "health", "transition",
    "faults", "soc_v", "harvested_j", "consumed_j", "sustainable",
    "burn_delivery", "burn_energy",
)

#: Health-state name -> single-letter code for the compact text view.
HEALTH_CODES = {
    "HEALTHY": "H", "DEGRADED": "D", "QUARANTINED": "Q", "PROBING": "P",
}


def _round_events(log, kind) -> dict:
    """``{(round, node): [events]}`` for one kind, rounds floored."""
    out: dict = {}
    if log is None:
        return out
    for e in log.filter(kind=kind):
        key = (int(math.floor(e.t)), e.node)
        out.setdefault(key, []).append(e)
    return out


def build_timeline(round_log, *, log=None, ledgers=None) -> list:
    """Merge a campaign's narratives into per-(round, node) rows.

    Parameters
    ----------
    round_log:
        The reader's per-round records: dicts with ``t``, ``outcomes``
        (``{node: {"polled", "delivered", "up", ...}}``), and optional
        ``burn`` (``{objective: rate}``) — what
        :class:`~repro.net.reader.ReaderController` accumulates when an
        SLO tracker or energy harnesses are attached.
    log:
        Optional :class:`~repro.faults.events.EventLog` for health
        transitions and fault annotations.
    ledgers:
        Optional ``{node: EnergyLedger | NodeEnergyHarness}``; their
        per-round records supply the SoC / joule columns.

    Returns a list of dicts keyed by :data:`COLUMNS`.
    """
    transitions = _round_events(log, EventKind.STATE)
    faults = _round_events(log, EventKind.FAULT)
    energy_rounds: dict = {}
    if ledgers:
        for node, ledger in ledgers.items():
            ledger = getattr(ledger, "ledger", ledger)  # accept harnesses
            for info in ledger.round_history:
                energy_rounds[(int(math.floor(info["t"])), int(node))] = info
    rows = []
    health_by_node: dict = {}
    for record in round_log:
        rnd = int(math.floor(record["t"]))
        burn = record.get("burn", {})
        for node in sorted(record.get("outcomes", {})):
            info = record["outcomes"][node]
            key = (rnd, node)
            moved = transitions.get(key, [])
            transition = ""
            if moved:
                first = dict(moved[0].detail)
                last = dict(moved[-1].detail)
                transition = f"{first.get('from', '?')}>{last.get('to', '?')}"
                health_by_node[node] = last.get("to", "?")
            health = info.get(
                "health", health_by_node.get(node, "HEALTHY")
            )
            energy = energy_rounds.get(key, {})
            rows.append({
                "round": rnd,
                "node": node,
                "polled": int(bool(info.get("polled", False))),
                "delivered": int(bool(info.get("delivered", False))),
                "health": HEALTH_CODES.get(health, health),
                "transition": transition,
                "faults": len(faults.get(key, [])),
                "soc_v": energy.get("soc_v", float("nan")),
                "harvested_j": energy.get("harvested_j", float("nan")),
                "consumed_j": energy.get("consumed_j", float("nan")),
                "sustainable": (
                    int(bool(energy["sustainable"]))
                    if "sustainable" in energy else ""
                ),
                "burn_delivery": burn.get("delivery", float("nan")),
                "burn_energy": burn.get("energy", float("nan")),
            })
    return rows


def render_timeline(rows, *, max_rows: int | None = None) -> str:
    """Human-readable fixed-width table of timeline rows."""
    if not rows:
        return "(empty timeline)\n"
    shown = rows if max_rows is None else rows[:max_rows]
    cells = [tuple(_fmt(row[c]) for c in COLUMNS) for row in shown]
    widths = [
        max(len(col), *(len(r[i]) for r in cells))
        for i, col in enumerate(COLUMNS)
    ]
    lines = [
        "  ".join(col.rjust(w) for col, w in zip(COLUMNS, widths)),
        "  ".join("-" * w for w in widths),
    ]
    lines += ["  ".join(c.rjust(w) for c, w in zip(row, widths)) for row in cells]
    if max_rows is not None and len(rows) > max_rows:
        lines.append(f"... ({len(rows) - max_rows} more rows)")
    return "\n".join(lines) + "\n"


def _fmt(value) -> str:
    if isinstance(value, float):
        if value != value:
            return ""
        return f"{value:.4g}"
    return str(value)


def timeline_to_csv(rows) -> str:
    """CSV text of timeline rows (results-directory formatting)."""
    from repro.obs.export import rows_to_csv

    return rows_to_csv(COLUMNS, [tuple(r[c] for c in COLUMNS) for r in rows])


def write_timeline_csv(path, rows) -> pathlib.Path:
    """Write :func:`timeline_to_csv` output; returns the path."""
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(timeline_to_csv(rows))
    return path


def timeline_to_jsonl(rows) -> str:
    """One JSON object per row — joins the spans/events JSONL pipeline.

    Deterministic: sorted keys, compact separators; NaN cells are
    rendered as ``null`` (JSON has no NaN).
    """
    out = []
    for row in rows:
        safe = {
            k: (None if isinstance(v, float) and v != v else v)
            for k, v in row.items()
        }
        out.append(json.dumps(safe, sort_keys=True, separators=(",", ":")))
    return "\n".join(out) + ("\n" if out else "")


def write_timeline_jsonl(path, rows) -> pathlib.Path:
    """Write :func:`timeline_to_jsonl` output; returns the path."""
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(timeline_to_jsonl(rows))
    return path


def soc_rows(ledgers) -> list:
    """``(node, t_s, soc_v)`` rows from ledgers' SoC series.

    For ``repro energy --out``: dumps every attached ledger's
    (decimated) supercap trajectory in one flat CSV-ready table.
    """
    rows = []
    for node in sorted(ledgers):
        ledger = getattr(ledgers[node], "ledger", ledgers[node])
        times, volts = ledger.soc_series()
        rows.extend((int(node), t, v) for t, v in zip(times, volts))
    return rows
