"""Signal probes: named waveform taps through the PAB decode pipeline.

Spans (:mod:`repro.obs.trace`) say *which stage* was slow; metrics say
*how often* decodes fail.  Neither says *why the signal died* — the
paper's own evaluation reasons at the waveform level (demodulated
envelopes, recto-piezo spectra, BER-vs-SNR curves), and acoustic link
debugging is dominated by channel/DSP artifacts invisible to
packet-level counters.  Probes close that gap: instrumented stages
publish named taps — a (possibly decimated) waveform plus scalar stage
diagnostics — into a :class:`ProbeRegistry`, and a failed decode's taps
feed a :class:`~repro.obs.postmortem.DecodePostmortem`.

The contract mirrors the tracer:

* **Disabled is free.**  The process-global registry is disabled by
  default; publishers guard every capture (and any diagnostic
  computation) behind :meth:`ProbeRegistry.wants`, a single attribute
  check plus an optional stage-filter lookup.
* **Bounded.**  Captured waveforms are decimated to
  ``max_samples`` points (stride recorded on the tap), so a probed
  campaign cannot exhaust memory.
* **Scoped.**  :meth:`ProbeRegistry.begin_transaction` stamps
  subsequent taps with a transaction id; post-mortems only look at the
  failing transaction's taps.

Publishers (stage names as recorded on the taps):

========================  ====================================================
``link.pwm_synthesis``    projector waveforms (query, query+carrier)
``link.downlink_propagation``  incident pressure at the node
``link.node``             power-up, query envelope, uplink chips, backscatter
``link.uplink_propagation``    hydrophone mixture (direct + uplink + noise)
``link.hydrophone_dsp``   analysis-segment bookkeeping
``hydrophone.demodulate`` recording + decode outcome (CRC, SNR, CFO)
``sync.detect_packet``    preamble correlation, peak/threshold margin, timing
``fm0.decode``            chip amplitudes + Viterbi path cost
``mimo.zero_forcing``     channel-matrix condition number
========================  ====================================================
"""

from __future__ import annotations

import contextlib
import json
import pathlib
import re

import numpy as np


class ProbeTap:
    """One captured signal tap.

    Attributes
    ----------
    seq:
        Monotonic capture index within the registry.
    txn:
        Transaction id (0 outside any transaction).
    stage:
        Pipeline stage that published the tap (see the module table).
    name:
        Tap name within the stage (``"correlation"``, ``"chips"``, ...).
    waveform:
        The captured (possibly decimated) array, or ``None`` for a
        diagnostics-only tap.
    sample_rate:
        Sample rate of the *original* waveform [Hz] (``None`` when not
        applicable, e.g. chip-indexed arrays).
    decimation:
        Stride applied to the original waveform (1 = verbatim).
    diagnostics:
        Scalar stage diagnostics, computed at full rate by the
        publisher (SNR, correlation margin, condition number, ...).
    """

    __slots__ = (
        "seq", "txn", "stage", "name", "waveform", "sample_rate",
        "decimation", "diagnostics",
    )

    def __init__(self, seq: int, txn: int, stage: str, name: str,
                 waveform, sample_rate, decimation: int,
                 diagnostics: dict) -> None:
        self.seq = seq
        self.txn = txn
        self.stage = stage
        self.name = name
        self.waveform = waveform
        self.sample_rate = sample_rate
        self.decimation = decimation
        self.diagnostics = diagnostics

    @property
    def samples(self) -> int:
        """Stored sample count (0 for diagnostics-only taps)."""
        return 0 if self.waveform is None else len(self.waveform)

    def to_dict(self) -> dict:
        """JSON-ready metadata (the waveform itself is *not* included)."""
        from repro.obs.export import _json_safe

        return {
            "seq": self.seq,
            "txn": self.txn,
            "stage": self.stage,
            "name": self.name,
            "samples": self.samples,
            "sample_rate": self.sample_rate,
            "decimation": self.decimation,
            "diagnostics": {
                str(k): _json_safe(v)
                for k, v in sorted(self.diagnostics.items())
            },
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ProbeTap({self.stage!r}/{self.name!r}, txn={self.txn}, "
            f"samples={self.samples})"
        )


class ProbeRegistry:
    """Collects signal taps and decode post-mortems.

    Parameters
    ----------
    enabled:
        When False, :meth:`wants` is always False and :meth:`capture`
        is a no-op — the disabled hot-path cost is one attribute check.
    max_samples:
        Per-tap waveform length cap; longer captures are strided down
        and the stride recorded as the tap's ``decimation``.
    stages:
        Optional iterable of stage names to capture; ``None`` captures
        everything.  Lets a long campaign probe only, say,
        ``sync.detect_packet`` without paying for waveform copies at
        every other stage.
    """

    def __init__(self, *, enabled: bool = True, max_samples: int = 4096,
                 stages=None) -> None:
        if max_samples < 1:
            raise ValueError("max_samples must be positive")
        self.enabled = bool(enabled)
        self.max_samples = int(max_samples)
        self.stages = frozenset(stages) if stages is not None else None
        self.taps: list[ProbeTap] = []
        self.postmortems: list = []
        self._txn = 0
        self._next_seq = 1

    # -- capture ----------------------------------------------------------------------

    def wants(self, stage: str) -> bool:
        """Whether a capture for ``stage`` would be recorded.

        Publishers gate both the :meth:`capture` call and any expensive
        diagnostic computation behind this check.
        """
        if not self.enabled:
            return False
        return self.stages is None or stage in self.stages

    def capture(self, stage: str, name: str, *, waveform=None,
                sample_rate: float | None = None, **diagnostics):
        """Record one tap; returns it (or ``None`` when not wanted)."""
        if not self.wants(stage):
            return None
        stored, decimation = self._decimate(waveform)
        tap = ProbeTap(
            self._next_seq, self._txn, stage, name,
            stored, sample_rate, decimation, diagnostics,
        )
        self._next_seq += 1
        self.taps.append(tap)
        return tap

    def _decimate(self, waveform):
        if waveform is None:
            return None, 1
        x = np.asarray(waveform)
        if x.ndim != 1:
            x = x.ravel()
        if len(x) <= self.max_samples:
            return x.copy(), 1
        stride = -(-len(x) // self.max_samples)  # ceil division
        return x[::stride].copy(), stride

    def begin_transaction(self) -> int:
        """Start a new tap scope; returns the new transaction id."""
        self._txn += 1
        return self._txn

    def record_postmortem(self, postmortem) -> None:
        """File a :class:`~repro.obs.postmortem.DecodePostmortem`.

        Also publishes the verdict on the process-global telemetry bus
        (``kind="postmortem"``) when one is enabled — probes force the
        reader into sequential mode, so the publication order is
        deterministic.
        """
        self.postmortems.append(postmortem)
        from repro.obs.stream import get_bus

        bus = get_bus()
        if bus.enabled:
            bus.publish(
                "postmortem",
                t=float(postmortem.txn or 0),
                node=int(postmortem.node if postmortem.node is not None else -1),
                source="probe",
                data=postmortem.to_dict(),
            )

    def reset(self) -> None:
        """Drop all taps, post-mortems, and transaction state."""
        self.taps.clear()
        self.postmortems.clear()
        self._txn = 0
        self._next_seq = 1

    # -- queries ----------------------------------------------------------------------

    def taps_for(self, stage: str, *, txn: int | None = None) -> list:
        """Taps published by ``stage`` (optionally one transaction's)."""
        return [
            t for t in self.taps
            if t.stage == stage and (txn is None or t.txn == txn)
        ]

    def latest(self, stage: str, *, txn: int | None = None):
        """Most recent tap for ``stage``, or ``None``."""
        matches = self.taps_for(stage, txn=txn)
        return matches[-1] if matches else None

    def transaction_taps(self, txn: int | None = None) -> list:
        """All taps of one transaction (default: the current one)."""
        txn = self._txn if txn is None else txn
        return [t for t in self.taps if t.txn == txn]

    # -- export -----------------------------------------------------------------------

    def to_npz(self, path) -> pathlib.Path:
        """Dump raw taps to ``path`` as a ``.npz`` archive.

        Waveform-bearing taps become arrays keyed
        ``tap<seq>__<stage>__<name>``; the full tap metadata (including
        diagnostics and diagnostics-only taps) lands in ``meta_json``.
        Parent directories are created.
        """
        path = pathlib.Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        arrays = {}
        for tap in self.taps:
            if tap.waveform is not None:
                arrays[f"tap{tap.seq:04d}__{tap.stage}__{tap.name}"] = (
                    tap.waveform
                )
        meta = [tap.to_dict() for tap in self.taps]
        arrays["meta_json"] = np.array(
            json.dumps(meta, sort_keys=True, separators=(",", ":"))
        )
        with open(path, "wb") as fh:
            np.savez(fh, **arrays)
        return path


# ---------------------------------------------------------------------------
# Process-global registry (disabled by default)
# ---------------------------------------------------------------------------

_GLOBAL_PROBES = ProbeRegistry(enabled=False)


def get_probes() -> ProbeRegistry:
    """The process-global probe registry (disabled until installed)."""
    return _GLOBAL_PROBES


def set_probes(probes: ProbeRegistry) -> ProbeRegistry:
    """Install ``probes`` globally; returns the previous registry."""
    global _GLOBAL_PROBES
    previous = _GLOBAL_PROBES
    _GLOBAL_PROBES = probes
    return previous


@contextlib.contextmanager
def use_probes(probes: ProbeRegistry):
    """Temporarily install ``probes`` as the global registry."""
    previous = set_probes(probes)
    try:
        yield probes
    finally:
        set_probes(previous)


# ---------------------------------------------------------------------------
# CI failure artifacts
# ---------------------------------------------------------------------------

def dump_failure_artifacts(directory, name: str) -> list:
    """Persist the global registry's taps/post-mortems for a failed test.

    Called from the pytest hooks in ``tests/conftest.py`` and
    ``benchmarks/conftest.py`` when ``PAB_ARTIFACT_DIR`` is set: the CI
    obs/chaos jobs upload the directory as a workflow artifact so a
    failing decode can be autopsied without rerunning the job.  Returns
    the paths written (empty when the registry holds nothing).
    """
    probes = get_probes()
    if not probes.taps and not probes.postmortems:
        return []
    safe = re.sub(r"[^A-Za-z0-9._-]+", "_", name)[:120]
    directory = pathlib.Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    written = []
    if probes.taps:
        written.append(probes.to_npz(directory / f"{safe}.probes.npz"))
    if probes.postmortems:
        from repro.obs.postmortem import write_postmortems_jsonl

        written.append(
            write_postmortems_jsonl(
                directory / f"{safe}.postmortems.jsonl", probes.postmortems
            )
        )
    return written
