"""Decode post-mortems: structured verdicts for failed exchanges.

When a transaction fails — CRC failure, sync miss, brownout, an
ill-conditioned collision matrix — the packet-level result only says
*that* it failed.  A :class:`DecodePostmortem` says *why*, by reading
the signal taps the probed pipeline captured
(:mod:`repro.obs.probe`) and the demodulator's own outputs, and
condensing them into a one-line verdict plus per-stage findings::

    sync found at 3.2 sigma (metric 0.41 >= 0.12) but eye closed after
    chip 41 (opening 0.08); CFO 0.3 Hz; SNR 1.2 dB vs 9.3 dB predicted

Assembly points:

* :meth:`DecodePostmortem.from_link` — called by
  :class:`~repro.core.link.BackscatterLink` after a failed transact
  when probes are enabled; the verdict is attached to the active
  ``link.transact`` span and the post-mortem filed in the registry.
* :meth:`DecodePostmortem.from_fault` — called by the
  :mod:`repro.faults` injectors for fabricated failures, so an injected
  brownout is *classified as* a brownout (failing stage from the
  injector class) rather than misread as a physics problem.

Serialisation is JSONL (:func:`write_postmortems_jsonl` /
:func:`load_postmortems_jsonl`), rendered by ``python -m repro
postmortem``.
"""

from __future__ import annotations

import json
import math
import pathlib
from dataclasses import dataclass, field

import numpy as np


#: Failure classes a post-mortem can report.
FAILURES = (
    "injected_fault",
    "no_power_up",
    "query_not_decoded",
    "no_response",
    "sync_miss",
    "crc_fail",
    "zf_ill_conditioned",
)


@dataclass
class StageFinding:
    """One stage's contribution to the autopsy.

    ``status`` is ``"ok"``, ``"degraded"``, or ``"failed"``; ``data``
    holds the raw numbers the ``detail`` sentence was built from.
    """

    stage: str
    status: str
    detail: str
    data: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        from repro.obs.export import _json_safe

        return {
            "stage": self.stage,
            "status": self.status,
            "detail": self.detail,
            "data": {
                str(k): _json_safe(v) for k, v in sorted(self.data.items())
            },
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "StageFinding":
        return cls(
            stage=payload["stage"],
            status=payload["status"],
            detail=payload["detail"],
            data=dict(payload.get("data", {})),
        )


def _finite(value) -> bool:
    try:
        return math.isfinite(float(value))
    except (TypeError, ValueError):
        return False


#: Verdict blurbs for the injected-fault classes (keyed by injector name).
_FAULT_BLURBS = {
    "noise_burst": "ambient noise burst collapsed receiver SNR; CRC cannot pass",
    "brownout": "supercapacitor brownout: node below the power-up threshold",
    "gilbert_elliott": "burst-loss channel dropped the reply",
    "garbled": "reply bits garbled in flight; CRC rejected the frame",
    "transport_exception": "transport raised before any waveform was captured",
    "worker_crash": "fleet worker died mid-transaction; restarts exhausted",
    "watchdog_timeout": "transaction outlived its wall-clock budget; straggler abandoned",
}


@dataclass
class DecodePostmortem:
    """Structured autopsy of one failed exchange."""

    failure: str
    failing_stage: str
    verdict: str
    findings: list = field(default_factory=list)
    fault: str | None = None
    node: int | None = None
    txn: int | None = None

    # -- serialisation ----------------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "failure": self.failure,
            "failing_stage": self.failing_stage,
            "verdict": self.verdict,
            "fault": self.fault,
            "node": self.node,
            "txn": self.txn,
            "findings": [f.to_dict() for f in self.findings],
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "DecodePostmortem":
        return cls(
            failure=payload["failure"],
            failing_stage=payload["failing_stage"],
            verdict=payload["verdict"],
            findings=[
                StageFinding.from_dict(f) for f in payload.get("findings", ())
            ],
            fault=payload.get("fault"),
            node=payload.get("node"),
            txn=payload.get("txn"),
        )

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))

    def render(self) -> str:
        """Human-readable report (the ``repro postmortem`` output)."""
        lines = [f"== decode post-mortem: {self.failure} at {self.failing_stage} =="]
        if self.fault is not None:
            lines.append(f"injected fault: {self.fault}")
        if self.node is not None and self.node >= 0:
            lines.append(f"node: {self.node}")
        lines.append(f"verdict: {self.verdict}")
        if self.findings:
            lines.append("findings:")
            width = max(len(f.status) for f in self.findings) + 2
            for finding in self.findings:
                tag = f"[{finding.status}]".ljust(width)
                lines.append(f"  {tag} {finding.stage}: {finding.detail}")
        return "\n".join(lines)

    # -- assembly: injected faults ----------------------------------------------------

    @classmethod
    def from_fault(
        cls,
        name: str,
        *,
        node: int | None = None,
        detail: dict | None = None,
        txn: int | None = None,
    ) -> "DecodePostmortem":
        """Classify a fabricated (injected) failure by its fault class.

        The failing stage comes from the injector class's
        ``failing_stage`` attribute (``repro.faults.injectors``), so
        reliability drills and post-mortems agree on where each fault
        class bites.
        """
        try:
            from repro.faults.injectors import FAULT_FAILING_STAGES

            stage = FAULT_FAILING_STAGES.get(name, "unknown")
        except ImportError:  # pragma: no cover - faults always ships
            stage = "unknown"
        blurb = _FAULT_BLURBS.get(name, "fabricated failure")
        verdict = f"injected fault '{name}' at {stage}: {blurb}"
        finding = StageFinding(
            stage=stage, status="failed", detail=blurb, data=dict(detail or {})
        )
        return cls(
            failure="injected_fault",
            failing_stage=stage,
            verdict=verdict,
            findings=[finding],
            fault=name,
            node=node,
            txn=txn,
        )

    # -- assembly: waveform-level failures --------------------------------------------

    @classmethod
    def from_link(cls, result, probes, *, txn: int | None = None) -> "DecodePostmortem":
        """Autopsy a failed :class:`~repro.core.link.LinkResult`.

        Reads the failing transaction's taps out of ``probes`` plus the
        demodulator outputs carried on the result itself.  Works with
        whatever taps exist — a registry probing only some stages still
        yields a verdict, just with fewer supporting findings.
        """
        if getattr(result, "fault", None):
            return cls.from_fault(result.fault, txn=txn)
        taps = probes.transaction_taps(txn)
        txn_id = taps[0].txn if taps else txn
        findings: list[StageFinding] = []

        def latest(stage, name=None):
            matches = [
                t for t in taps
                if t.stage == stage and (name is None or t.name == name)
            ]
            return matches[-1] if matches else None

        power = latest("link.node", "power_up")
        if power is not None:
            incident = power.diagnostics.get("incident_pressure_pa")
            powered = power.diagnostics.get("powered", result.powered_up)
            findings.append(StageFinding(
                stage="link.node",
                status="ok" if powered else "failed",
                detail=(
                    f"power-up {'succeeded' if powered else 'failed'} at "
                    f"{incident:.3g} Pa incident"
                    if _finite(incident) else
                    f"power-up {'succeeded' if powered else 'failed'}"
                ),
                data=dict(power.diagnostics),
            ))
        if not result.powered_up:
            return cls._finish(
                "no_power_up", "link.node",
                "node never powered up: incident pressure below the "
                "power-up threshold",
                findings, txn_id,
            )

        envelope = latest("link.node", "query_envelope")
        if envelope is not None:
            decoded = bool(envelope.diagnostics.get(
                "decoded", result.query_decoded
            ))
            findings.append(StageFinding(
                stage="link.node",
                status="ok" if decoded else "failed",
                detail=(
                    "query envelope decoded" if decoded
                    else "query envelope not decodable at the node"
                ),
                data=dict(envelope.diagnostics),
            ))
        if not result.query_decoded:
            return cls._finish(
                "query_not_decoded", "link.node",
                "downlink query not decoded at the node",
                findings, txn_id,
            )
        if result.response is None:
            return cls._finish(
                "no_response", "link.node",
                "node decoded the query but produced no response",
                findings, txn_id,
            )

        downlink = latest("link.downlink_propagation")
        if downlink is not None and _finite(
            downlink.diagnostics.get("band_snr_db")
        ):
            snr = float(downlink.diagnostics["band_snr_db"])
            findings.append(StageFinding(
                stage="link.downlink_propagation",
                status="ok" if snr > 10.0 else "degraded",
                detail=f"carrier band SNR {snr:.1f} dB at the node",
                data=dict(downlink.diagnostics),
            ))
        uplink = latest("link.uplink_propagation")
        if uplink is not None and _finite(
            uplink.diagnostics.get("band_snr_db")
        ):
            snr = float(uplink.diagnostics["band_snr_db"])
            findings.append(StageFinding(
                stage="link.uplink_propagation",
                status="ok" if snr > 10.0 else "degraded",
                detail=f"carrier band SNR {snr:.1f} dB at the hydrophone",
                data=dict(uplink.diagnostics),
            ))

        # Zero-forcing collision decode, when it ran this transaction.
        zf = latest("mimo.zero_forcing")
        zf_clause = ""
        if zf is not None:
            cond = float(zf.diagnostics.get("cond", float("nan")))
            ill = bool(zf.diagnostics.get("ill_conditioned", False))
            findings.append(StageFinding(
                stage="mimo.zero_forcing",
                status="failed" if ill else "ok",
                detail=(
                    f"channel matrix cond={cond:.3g}"
                    + (" -> channels under-separated" if ill else "")
                ),
                data=dict(zf.diagnostics),
            ))
            if ill:
                return cls._finish(
                    "zf_ill_conditioned", "mimo.zero_forcing",
                    f"ZF cond={cond:.3g} -> channels under-separated; "
                    "zero-forcing aborted",
                    findings, txn_id,
                )
            if cond > 10.0:
                zf_clause = f"; ZF cond={cond:.3g} (channels marginally separable)"

        sync = latest("sync.detect_packet")
        demod = result.demod
        detection = getattr(demod, "detection", None) if demod is not None else None
        if demod is None or detection is None:
            detail = "no preamble found"
            if sync is not None:
                peak = float(sync.diagnostics.get("peak", float("nan")))
                threshold = float(
                    sync.diagnostics.get("threshold", float("nan"))
                )
                sigma = float(sync.diagnostics.get("peak_sigma", float("nan")))
                detail = (
                    f"sync miss: preamble correlation peaked at {peak:.2f} "
                    f"({sigma:.1f} sigma), below threshold {threshold:.2f} "
                    f"(margin {peak - threshold:+.2f})"
                )
                findings.append(StageFinding(
                    stage="sync.detect_packet", status="failed",
                    detail=detail, data=dict(sync.diagnostics),
                ))
            return cls._finish(
                "sync_miss", "link.hydrophone_dsp", detail, findings, txn_id,
            )

        # CRC failure: sync found, frame decoded, checksum rejected.
        sigma = float("nan")
        sync_clause = f"sync found (metric {detection.metric:.2f})"
        if sync is not None:
            sigma = float(sync.diagnostics.get("peak_sigma", float("nan")))
            threshold = float(sync.diagnostics.get("threshold", float("nan")))
            if _finite(sigma) and _finite(threshold):
                sync_clause = (
                    f"sync found at {sigma:.1f} sigma "
                    f"(metric {detection.metric:.2f} >= {threshold:.2f})"
                )
            timing = sync.diagnostics.get("timing_offset_chips")
            sync_data = dict(sync.diagnostics)
            sync_data["metric"] = detection.metric
            findings.append(StageFinding(
                stage="sync.detect_packet", status="ok",
                detail=sync_clause
                + (
                    f", timing offset {float(timing):+.2f} chips"
                    if _finite(timing) else ""
                ),
                data=sync_data,
            ))

        eye_clause = "no chip amplitudes captured"
        chip_amplitudes = getattr(demod, "chip_amplitudes", None)
        if chip_amplitudes is not None and len(chip_amplitudes) >= 4:
            from repro.dsp.metrics import eye_opening_stats

            eye = eye_opening_stats(
                np.asarray(chip_amplitudes, dtype=float)
            )
            closed_at = eye["first_closed_chip"]
            if eye["opening"] <= 0.0 or closed_at >= 0:
                eye_clause = (
                    f"eye closed after chip {max(closed_at, 0)} "
                    f"(opening {eye['opening']:.2f})"
                )
                eye_status = "failed"
            else:
                eye_clause = f"eye open (opening {eye['opening']:.2f})"
                eye_status = "ok"
            findings.append(StageFinding(
                stage="link.hydrophone_dsp", status=eye_status,
                detail=eye_clause, data=eye,
            ))

        cfo = float(getattr(demod, "cfo_hz", float("nan")))
        snr = float(result.snr_db) if _finite(result.snr_db) else float("nan")
        predicted = float(
            getattr(result.budget, "predicted_snr_db", float("nan"))
        )
        snr_clause = ""
        if _finite(snr):
            snr_clause = f"; SNR {snr:.1f} dB"
            if _finite(predicted):
                snr_clause += f" vs {predicted:.1f} dB predicted"
        cfo_clause = f"; CFO {cfo:.1f} Hz" if _finite(cfo) else ""
        error = getattr(demod, "error", None)
        error_clause = f"; demodulator: {error}" if error else ""
        verdict = (
            f"{sync_clause} but {eye_clause}{cfo_clause}{snr_clause}"
            f"{zf_clause}{error_clause} -> CRC failed"
        )
        return cls._finish(
            "crc_fail", "link.hydrophone_dsp", verdict, findings, txn_id,
        )

    @classmethod
    def _finish(cls, failure, stage, verdict, findings, txn) -> "DecodePostmortem":
        return cls(
            failure=failure,
            failing_stage=stage,
            verdict=verdict,
            findings=findings,
            txn=txn,
        )


# ---------------------------------------------------------------------------
# JSONL serialisation (alongside the span export)
# ---------------------------------------------------------------------------

def postmortems_to_jsonl(postmortems) -> str:
    """One JSON object per post-mortem, deterministic keys."""
    lines = [pm.to_json() for pm in postmortems]
    return "\n".join(lines) + ("\n" if lines else "")


def write_postmortems_jsonl(path, postmortems) -> pathlib.Path:
    """Write a post-mortem JSONL dump (parent dirs created)."""
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(postmortems_to_jsonl(postmortems))
    return path


def load_postmortems_jsonl(path) -> list:
    """Load post-mortems back from a JSONL dump."""
    text = pathlib.Path(path).read_text()
    return [
        DecodePostmortem.from_dict(json.loads(line))
        for line in text.splitlines()
        if line.strip()
    ]
