"""Online anomaly detection over campaign telemetry series.

Five PRs of observability record everything — streams, profiles, SLO
burn, energy ledgers — but nothing *watches* those series for drift
while a campaign runs.  This module adds that layer: small, purely
arithmetic online detectors that the reader feeds once per round (on
the merge side, after the parallel replay) and that emit schema-1
``anomaly`` envelopes plus ``pab_anomaly_*`` metrics when a watched
series departs from its learned baseline.

Two detector families, both deterministic (no wall clock, no RNG —
their state is a pure function of the observed value sequence, so
sequential, parallel, and kill+resume campaigns flag byte-identical
anomaly sequences):

* :class:`EwmaDetector` — exponentially weighted mean/variance with a
  z-score trigger.  The baseline *adapts*, so it flags the onset of a
  shift and, once it has absorbed the new level, the recovery too.
* :class:`CusumDetector` — a standardized two-sided CUSUM against a
  baseline frozen after warm-up.  Slow drifts that never produce a
  single outlying round accumulate until the decision threshold trips.

:class:`AnomalyMonitor` multiplexes detectors over the per-round
series the reader already produces: fleet delivery ratio, per-node
delivery, per-node SoC, per-objective SLO burn rate, round-mean link
SNR/BER (from the metrics registry's histograms), and per-stage
profile fractions.  Wall-clock-derived series (profile fractions, and
the optional flush-latency watch) are supported but excluded from the
byte-determinism guarantee — see docs/OBSERVABILITY.md.

Everything is opt-in: a reader constructed without a monitor pays one
``is None`` check per round.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

__all__ = [
    "EwmaDetector",
    "CusumDetector",
    "AnomalyMonitor",
    "publish_anomalies",
    "SEVERITIES",
]

#: Severity ladder for anomaly envelopes, least severe first.
SEVERITIES = ("warn", "critical")


def _round6(value: float) -> float:
    """Stable 6-decimal rounding for envelope payload floats."""
    return round(float(value), 6)


@dataclass
class EwmaDetector:
    """EWMA mean/variance with a z-score trigger.

    After ``warmup`` observations, a value whose distance from the
    EWMA mean exceeds ``threshold`` standard deviations is flagged;
    the baseline then keeps adapting, so a sustained shift is flagged
    at its onset and again (in the other direction) when it recovers.
    ``min_std``/``rel_floor`` put a floor under sigma so a series that
    has been perfectly constant (variance zero) still yields finite
    z-scores instead of dividing by zero.
    """

    alpha: float = 0.25
    threshold: float = 4.0
    warmup: int = 8
    min_std: float = 1e-3
    rel_floor: float = 0.02
    n: int = 0
    mean: float = 0.0
    var: float = 0.0

    name = "ewma"

    def observe(self, value: float):
        """Feed one sample; returns a detection dict or ``None``."""
        x = float(value)
        detection = None
        if self.n >= self.warmup:
            sigma = max(
                math.sqrt(max(self.var, 0.0)),
                self.min_std,
                self.rel_floor * abs(self.mean),
            )
            score = abs(x - self.mean) / sigma
            if score >= self.threshold:
                detection = {
                    "detector": self.name,
                    "value": x,
                    "expected": self.mean,
                    "deviation": x - self.mean,
                    "score": score,
                    "threshold": self.threshold,
                }
        if self.n == 0:
            self.mean = x
        else:
            delta = x - self.mean
            self.mean += self.alpha * delta
            self.var = (1.0 - self.alpha) * (
                self.var + self.alpha * delta * delta
            )
        self.n += 1
        return detection

    def snapshot_state(self) -> dict:
        return {"n": self.n, "mean": self.mean, "var": self.var}

    def restore_state(self, state: dict) -> None:
        self.n = int(state["n"])
        self.mean = float(state["mean"])
        self.var = float(state["var"])


@dataclass
class CusumDetector:
    """Two-sided standardized CUSUM against a frozen baseline.

    The first ``warmup`` observations estimate the baseline mean and
    variance (Welford); the baseline is then frozen and each further
    sample's z-score feeds the classic one-sided sums ``s+`` and
    ``s-`` with slack ``drift``.  Crossing ``threshold`` flags a
    detection and *disarms* the detector until the statistic decays
    back below the threshold, so a persistent shift yields exactly one
    detection per excursion instead of one per round (the sums are
    clamped at twice the threshold so recovery decay stays prompt).
    """

    drift: float = 0.5
    threshold: float = 5.0
    warmup: int = 8
    min_std: float = 1e-3
    rel_floor: float = 0.02
    n: int = 0
    mean: float = 0.0
    m2: float = 0.0
    pos: float = 0.0
    neg: float = 0.0
    armed: bool = True

    name = "cusum"

    def observe(self, value: float):
        """Feed one sample; returns a detection dict or ``None``."""
        x = float(value)
        if self.n < self.warmup:
            self.n += 1
            delta = x - self.mean
            self.mean += delta / self.n
            self.m2 += delta * (x - self.mean)
            return None
        var = self.m2 / (self.warmup - 1) if self.warmup > 1 else 0.0
        sigma = max(
            math.sqrt(max(var, 0.0)),
            self.min_std,
            self.rel_floor * abs(self.mean),
        )
        z = (x - self.mean) / sigma
        clamp = 2.0 * self.threshold
        self.pos = min(max(0.0, self.pos + z - self.drift), clamp)
        self.neg = min(max(0.0, self.neg - z - self.drift), clamp)
        self.n += 1
        score = max(self.pos, self.neg)
        if score >= self.threshold:
            if not self.armed:
                return None
            self.armed = False
            return {
                "detector": self.name,
                "value": x,
                "expected": self.mean,
                "deviation": x - self.mean,
                "score": score,
                "threshold": self.threshold,
            }
        self.armed = True
        return None

    def snapshot_state(self) -> dict:
        return {
            "n": self.n,
            "mean": self.mean,
            "m2": self.m2,
            "pos": self.pos,
            "neg": self.neg,
            "armed": self.armed,
        }

    def restore_state(self, state: dict) -> None:
        self.n = int(state["n"])
        self.mean = float(state["mean"])
        self.m2 = float(state["m2"])
        self.pos = float(state["pos"])
        self.neg = float(state["neg"])
        self.armed = bool(state["armed"])


def _make_detector(kind: str, config: dict):
    if kind == "ewma":
        return EwmaDetector(
            alpha=config["ewma_alpha"],
            threshold=config["ewma_threshold"],
            warmup=config["warmup"],
        )
    if kind == "cusum":
        return CusumDetector(
            drift=config["cusum_drift"],
            threshold=config["cusum_threshold"],
            warmup=config["warmup"],
        )
    raise ValueError(f"unknown detector kind {kind!r}")


@dataclass
class AnomalyMonitor:
    """Per-series detector bank fed by the reader once per round.

    One detector of each configured kind is lazily created per
    ``(series, node)`` pair on first observation.  Detections come
    back as JSON-ready payload dicts (floats rounded to 6 decimals)
    naming the offending series, node, stage, round, detector, and a
    severity from :data:`SEVERITIES` — ``critical`` when the score
    reaches ``critical_factor`` times the detector's threshold.

    The monitor's state joins the reader checkpoint
    (:meth:`snapshot_state`/:meth:`restore_state`), so a resumed
    campaign's anomaly stream splices byte-identically onto the
    pre-kill stream.
    """

    detectors: tuple = ("ewma", "cusum")
    warmup: int = 8
    ewma_alpha: float = 0.25
    ewma_threshold: float = 4.0
    cusum_drift: float = 0.5
    cusum_threshold: float = 5.0
    critical_factor: float = 2.0
    enabled: bool = True
    anomalies: list = field(default_factory=list)
    counts: dict = field(default_factory=dict)
    #: Detections emitted before the checkpoint this monitor was
    #: restored from (their envelopes are already on the stream).
    prior_total: int = 0
    _series: dict = field(default_factory=dict)
    _hist_state: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.detectors = tuple(self.detectors)
        config = {
            "warmup": int(self.warmup),
            "ewma_alpha": float(self.ewma_alpha),
            "ewma_threshold": float(self.ewma_threshold),
            "cusum_drift": float(self.cusum_drift),
            "cusum_threshold": float(self.cusum_threshold),
        }
        for kind in self.detectors:
            _make_detector(kind, config)  # validate kinds eagerly
        self._config = config

    # -- core ---------------------------------------------------------------------------

    def observe(
        self,
        series: str,
        value,
        *,
        node: int = -1,
        stage: str = "",
        rnd: int = -1,
    ) -> list:
        """Feed one sample of one series; returns detection payloads."""
        if not self.enabled or value is None:
            return []
        x = float(value)
        if not math.isfinite(x):
            return []
        key = (series, int(node))
        bank = self._series.get(key)
        if bank is None:
            bank = [
                _make_detector(kind, self._config) for kind in self.detectors
            ]
            self._series[key] = bank
        out = []
        for detector in bank:
            hit = detector.observe(x)
            if hit is None:
                continue
            severity = (
                "critical"
                if hit["score"] >= self.critical_factor * hit["threshold"]
                else "warn"
            )
            payload = {
                "series": series,
                "node": int(node),
                "stage": stage,
                "round": int(rnd),
                "detector": hit["detector"],
                "severity": severity,
                "value": _round6(hit["value"]),
                "expected": _round6(hit["expected"]),
                "deviation": _round6(hit["deviation"]),
                "score": _round6(hit["score"]),
                "threshold": _round6(hit["threshold"]),
            }
            self.anomalies.append(payload)
            self.counts[severity] = self.counts.get(severity, 0) + 1
            out.append(payload)
        return out

    def observe_campaign_round(
        self, t: float, record: dict, *, registry=None, profile=None
    ) -> list:
        """Feed one reader round record; returns detection payloads.

        ``record`` is the reader's round-log record shape (``t`` /
        ``outcomes`` / optional ``burn``).  Observation order is fixed
        — fleet delivery, per-node delivery, per-node SoC, SLO burn,
        link SNR/BER, stage fractions — so the emitted anomaly
        sequence is deterministic for a given campaign.
        """
        if not self.enabled:
            return []
        rnd = int(t)
        out = []
        outcomes = record.get("outcomes", {})
        polled = [a for a in sorted(outcomes) if outcomes[a].get("polled")]
        if polled:
            delivered = sum(
                1 for a in polled if outcomes[a].get("delivered")
            )
            out += self.observe(
                "delivery_ratio",
                delivered / len(polled),
                stage="mac",
                rnd=rnd,
            )
        for addr in polled:
            out += self.observe(
                "node_delivered",
                1.0 if outcomes[addr].get("delivered") else 0.0,
                node=int(addr),
                stage="mac",
                rnd=rnd,
            )
        for addr in sorted(outcomes):
            soc = outcomes[addr].get("soc_v")
            if soc is not None:
                out += self.observe(
                    "soc_v", soc, node=int(addr), stage="energy", rnd=rnd
                )
        for objective in sorted(record.get("burn", {})):
            out += self.observe(
                f"slo_burn:{objective}",
                record["burn"][objective],
                stage="slo",
                rnd=rnd,
            )
        out += self._observe_link_quality(registry, rnd)
        out += self._observe_stage_fractions(profile, rnd)
        return out

    def observe_flush(self, p99_s, *, rnd: int = -1) -> list:
        """Optional wall-clock watch on the bus's p99 flush latency.

        Not wired by default — flush timings are host noise, so
        feeding them breaks the byte-determinism guarantee.  Soak
        harnesses that care about flush regressions call this
        explicitly.
        """
        return self.observe(
            "flush_p99_s", p99_s, stage="stream", rnd=rnd
        )

    def _observe_link_quality(self, registry, rnd: int) -> list:
        """Round-mean SNR/BER from the registry's link histograms.

        Histograms are cumulative, so the monitor tracks (count, sum)
        per family and observes the delta mean — the mean SNR/BER of
        the transactions this round only.
        """
        if registry is None:
            return []
        out = []
        for name, series in (
            ("pab_link_snr_db", "snr_db"),
            ("pab_link_ber", "ber"),
        ):
            count = 0
            total = 0.0
            found = False
            for metric in registry:
                if getattr(metric, "name", "") != name:
                    continue
                if not hasattr(metric, "bucket_counts"):
                    continue
                found = True
                count += metric.count - metric.nan_count
                total += metric.sum
            if not found:
                continue
            prev_count, prev_total = self._hist_state.get(name, (0, 0.0))
            self._hist_state[name] = (count, total)
            if count > prev_count:
                out += self.observe(
                    series,
                    (total - prev_total) / (count - prev_count),
                    stage="link",
                    rnd=rnd,
                )
        return out

    def _observe_stage_fractions(self, profile, rnd: int) -> list:
        """Per-stage wall-time fractions from a profiler round snapshot.

        Only meaningful when the profiler is enabled; fractions are
        wall-clock derived, so (like :meth:`observe_flush`) they sit
        outside the byte-determinism guarantee.
        """
        if not profile:
            return []
        stages = profile.get("stages") or {}
        total = sum(s.get("total_s", 0.0) for s in stages.values())
        if total <= 0.0:
            return []
        out = []
        for stage in sorted(stages):
            out += self.observe(
                f"stage_fraction:{stage}",
                stages[stage].get("total_s", 0.0) / total,
                stage=stage,
                rnd=rnd,
            )
        return out

    # -- reporting ----------------------------------------------------------------------

    def summary(self) -> dict:
        """Counts by severity plus the total, for reports and tests."""
        return {
            "total": self.prior_total + len(self.anomalies),
            **{sev: self.counts.get(sev, 0) for sev in SEVERITIES},
        }

    # -- checkpointing ------------------------------------------------------------------

    def snapshot_state(self) -> dict:
        """JSON-ready detector state (keys stringified for canonical
        sorted-keys rendering, same discipline as the reader)."""
        return {
            "series": {
                f"{series}\x1f{node}": [d.snapshot_state() for d in bank]
                for (series, node), bank in sorted(self._series.items())
            },
            "hist": {
                name: [count, total]
                for name, (count, total) in sorted(self._hist_state.items())
            },
            "counts": dict(sorted(self.counts.items())),
            "total": self.prior_total + len(self.anomalies),
        }

    def restore_state(self, state: dict) -> None:
        self._series = {}
        for key, bank_state in state["series"].items():
            series, _, node = key.rpartition("\x1f")
            bank = [
                _make_detector(kind, self._config) for kind in self.detectors
            ]
            for detector, det_state in zip(bank, bank_state):
                detector.restore_state(det_state)
            self._series[(series, int(node))] = bank
        self._hist_state = {
            name: (int(count), float(total))
            for name, (count, total) in state["hist"].items()
        }
        self.counts = {k: int(v) for k, v in state["counts"].items()}
        # Envelopes before the checkpoint are already on the stream;
        # the in-memory list restarts empty and the restored counts
        # keep summary() consistent with the full campaign.
        self.prior_total = int(state["total"])
        self.anomalies = []


def publish_anomalies(detections, *, t: float, bus=None, metrics=None):
    """Book a round's detections into the stream and the registry.

    One ``anomaly`` envelope per detection (``node`` lifted to the
    envelope for filtering) and two metric families:
    ``pab_anomaly_events_total{series,detector,severity}`` and the
    last absolute z/CUSUM score per series/node in
    ``pab_anomaly_score``.  Call order is the detection order, so the
    stream stays deterministic.
    """
    for a in detections:
        if metrics is not None:
            metrics.counter(
                "pab_anomaly_events_total",
                series=a["series"],
                detector=a["detector"],
                severity=a["severity"],
            ).inc()
            metrics.gauge(
                "pab_anomaly_score", series=a["series"], node=a["node"]
            ).set(a["score"])
        if bus is not None and bus.enabled:
            bus.publish(
                "anomaly", t=t, node=a["node"], source="analytics",
                data=dict(a),
            )
