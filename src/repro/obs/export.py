"""Exporters for traces and metrics: JSONL, Prometheus text, CSV.

One instrumentation substrate, three serialisations:

* :func:`spans_to_jsonl` — one JSON object per span, sorted keys, for
  offline trace analysis; byte-deterministic under a
  :class:`~repro.obs.trace.VirtualClock`.
* :func:`metrics_to_prometheus` — the text exposition format, so a
  deployment can be scraped without any client library.
* :func:`metrics_to_csv` / :func:`write_csv` — rows compatible with the
  ``benchmarks/results/`` CSVs (same formatting rules as
  :class:`~repro.core.experiment.ExperimentTable`).

The structured fault :class:`~repro.faults.events.EventLog` is *an
emitter into* this substrate, not a parallel universe: bind a registry
to a live log (``log.metrics = registry``) to count events as they
happen, or replay an existing log with :func:`events_to_metrics`.
"""

from __future__ import annotations

import json
import math
import pathlib


# ---------------------------------------------------------------------------
# Traces
# ---------------------------------------------------------------------------

def span_to_dict(span) -> dict:
    """A JSON-ready rendering of one finished span."""
    return {
        "name": span.name,
        "span_id": span.span_id,
        "parent_id": span.parent_id,
        "start_s": span.start_s,
        "end_s": span.end_s,
        "duration_s": span.duration_s,
        "attrs": {str(k): _json_safe(v) for k, v in sorted(span.attrs.items())},
    }


def _json_safe(value):
    if isinstance(value, float) and not math.isfinite(value):
        return str(value)
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)


def spans_to_jsonl(spans) -> str:
    """One JSON object per line, completion order, deterministic keys."""
    return "\n".join(
        json.dumps(span_to_dict(s), sort_keys=True, separators=(",", ":"))
        for s in spans
    ) + ("\n" if spans else "")


def write_spans_jsonl(path, spans) -> pathlib.Path:
    """Write a JSONL trace dump; returns the path written."""
    path = pathlib.Path(path)
    path.write_text(spans_to_jsonl(spans))
    return path


# ---------------------------------------------------------------------------
# Metrics — Prometheus text exposition
# ---------------------------------------------------------------------------

def _escape_label_value(value) -> str:
    # Prometheus exposition format: backslash, double-quote, and line
    # feed must be escaped inside label values.
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _escape_help(text) -> str:
    # HELP text escapes only backslash and line feed (no quotes — the
    # text is not quoted in the exposition format).
    return str(text).replace("\\", "\\\\").replace("\n", "\\n")


#: ``# HELP`` text per metric family.  Families not listed fall back to
#: a generated line so every family still gets exactly one HELP entry.
METRIC_HELP = {
    "pab_anomaly_events_total": "Online-detector anomaly detections, by series, detector, and severity.",
    "pab_anomaly_score": "Last anomaly z/CUSUM score per series and node.",
    "pab_build_info": "Constant 1; labels carry the code and stream-schema versions.",
    "pab_cache_capacity": "Configured LRU cache entry bound (maxsize).",
    "pab_cache_entries": "Current LRU cache entries.",
    "pab_cache_evictions_total": "LRU cache evictions.",
    "pab_cache_hits_total": "LRU cache hits.",
    "pab_cache_misses_total": "LRU cache misses.",
    "pab_events_total": "Structured fault/recovery events recorded, by kind.",
    "pab_faults_injected_total": "Faults fired by injectors, by injector name.",
    "pab_link_ber": "Measured uplink bit error rate per decoded transaction.",
    "pab_link_crc_failures_total": "Uplink frames whose CRC check failed.",
    "pab_link_powerups_total": "Node power-up events observed by the link.",
    "pab_link_query_decodes_total": "Downlink queries the node decoded.",
    "pab_link_snr_db": "Measured uplink SNR in dB per transaction.",
    "pab_link_successes_total": "Link transactions that decoded end to end.",
    "pab_link_transactions_total": "Link transactions attempted, by outcome.",
    "pab_mac_attempts_total": "MAC transmission attempts.",
    "pab_mac_backoff_seconds": "Retry backoff delay per scheduled retry.",
    "pab_mac_exceptions_total": "Transport exceptions contained by the MAC.",
    "pab_mac_give_ups_total": "Polls abandoned after exhausting retries.",
    "pab_mac_polls_total": "Poll transactions issued by the MAC.",
    "pab_mac_retries_total": "MAC retransmissions scheduled.",
    "pab_mac_successes_total": "MAC exchanges that decoded successfully.",
    "pab_node_brownouts_total": "Supercap brownout events per node.",
    "pab_node_energy_joules_total": "Joules moved through the ledger, by direction and power state.",
    "pab_node_energy_margin_volts": "Supercap voltage margin above the brownout threshold.",
    "pab_node_health_code": "Health state code (0=HEALTHY 1=DEGRADED 2=QUARANTINED 3=PROBING).",
    "pab_node_soc_volts": "Supercap state of charge in volts.",
    "pab_profile_cache_saved_seconds": "Estimated seconds saved per cache (hits x mean miss cost).",
    "pab_profile_mem_peak_bytes": "Campaign tracemalloc high-water mark.",
    "pab_profile_stage_seconds": "Profiler per-stage span totals.",
    "pab_profile_worker_busy_seconds": "Wall-clock each fleet worker spent executing units.",
    "pab_profile_worker_gil_ratio": "Per-worker CPU-time/wall-time ratio (GIL-contention proxy).",
    "pab_profile_worker_queue_wait_seconds": "Submit-to-start latency summed per fleet worker.",
    "pab_profile_worker_utilization": "Fraction of engine wall-clock each worker spent busy.",
    "pab_reader_readings_total": "Decoded sensor readings stored per node.",
    "pab_reader_rounds_total": "Polling rounds completed.",
    "pab_shard_quarantines_total": "Shards quarantined after consecutive worker crashes.",
    "pab_slo_burn_rate": "Rolling SLO budget burn multiplier.",
    "pab_slo_compliance": "Fraction of units meeting the objective.",
    "pab_slo_error_budget_remaining": "SLO error budget remaining (1=untouched, <0=violated).",
    "pab_span_seconds": "Span durations by stage name.",
    "pab_stream_unknown_kinds_total": "Stream envelopes skipped because their kind is unknown to this consumer.",
    "pab_watchdog_timeouts_total": "Workers abandoned at their watchdog deadline.",
    "pab_worker_crashes_total": "Worker crashes past the restart budget.",
    "pab_worker_restarts_total": "Supervised worker restarts.",
}


def _labels_text(labels, extra=()) -> str:
    items = list(labels) + list(extra)
    if not items:
        return ""
    body = ",".join(f'{k}="{_escape_label_value(v)}"' for k, v in items)
    return "{" + body + "}"


def _num(value: float) -> str:
    if value != value:
        return "NaN"
    if value == float("inf"):
        return "+Inf"
    if value == float("-inf"):
        return "-Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def metrics_to_prometheus(registry) -> str:
    """Prometheus text-format exposition of a registry.

    Emits one ``# HELP`` and one ``# TYPE`` line per metric family
    (first occurrence; :data:`METRIC_HELP` supplies the help text,
    with a generated fallback for unlisted families) and the standard
    ``_bucket``/``_sum``/``_count`` series for histograms.
    """
    from repro.obs.metrics import Counter, Gauge, Histogram

    lines = []
    typed = set()

    def _family(name: str, kind: str) -> None:
        if name not in typed:
            help_text = METRIC_HELP.get(name, f"{name} ({kind}).")
            lines.append(f"# HELP {name} {_escape_help(help_text)}")
            lines.append(f"# TYPE {name} {kind}")
            typed.add(name)

    for metric in registry:
        if isinstance(metric, Counter):
            _family(metric.name, "counter")
            lines.append(
                f"{metric.name}{_labels_text(metric.labels)} {_num(metric.value)}"
            )
        elif isinstance(metric, Gauge):
            _family(metric.name, "gauge")
            lines.append(
                f"{metric.name}{_labels_text(metric.labels)} {_num(metric.value)}"
            )
        elif isinstance(metric, Histogram):
            _family(metric.name, "histogram")
            for bound, cumulative in metric.cumulative():
                le = "+Inf" if bound == float("inf") else _num(bound)
                lines.append(
                    f"{metric.name}_bucket"
                    f"{_labels_text(metric.labels, [('le', le)])} {cumulative}"
                )
            lines.append(
                f"{metric.name}_sum{_labels_text(metric.labels)} {_num(metric.sum)}"
            )
            lines.append(
                f"{metric.name}_count{_labels_text(metric.labels)} {metric.count}"
            )
    return "\n".join(lines) + ("\n" if lines else "")


# ---------------------------------------------------------------------------
# CSV (benchmarks/results/-compatible)
# ---------------------------------------------------------------------------

def _fmt_cell(value) -> str:
    # Mirrors ExperimentTable's cell formatting so obs CSVs and the
    # figure-reproduction CSVs interleave in one results directory.
    if isinstance(value, float):
        if value != value:
            return "nan"
        if value == float("inf"):
            return "inf"
        if abs(value) >= 1000 or (abs(value) < 0.01 and value != 0):
            return f"{value:.3e}"
        return f"{value:.3f}"
    return str(value)


def rows_to_csv(columns, rows) -> str:
    """CSV text from a header plus row tuples."""
    lines = [",".join(str(c) for c in columns)]
    lines += [",".join(_fmt_cell(v) for v in row) for row in rows]
    return "\n".join(lines) + "\n"


def write_csv(path, columns, rows) -> pathlib.Path:
    """Write ``columns``/``rows`` as CSV; returns the path written."""
    path = pathlib.Path(path)
    path.write_text(rows_to_csv(columns, rows))
    return path


def metrics_to_csv(registry) -> str:
    """Flat CSV view of a registry (histograms as mean + count)."""
    from repro.obs.metrics import Counter, Gauge, Histogram

    rows = []
    for metric in registry:
        labels = ";".join(f"{k}={v}" for k, v in metric.labels)
        if isinstance(metric, (Counter, Gauge)):
            kind = "counter" if isinstance(metric, Counter) else "gauge"
            rows.append((metric.name, labels, kind, metric.value, ""))
        elif isinstance(metric, Histogram):
            rows.append(
                (metric.name, labels, "histogram", metric.mean, metric.count)
            )
    return rows_to_csv(("name", "labels", "type", "value", "count"), rows)


def stage_table(tracer):
    """Per-stage timing rows from a tracer (an ExperimentTable).

    Convenience for the CLI and the perf-baseline benchmark: aggregates
    spans by name into ``(stage, count, total_s, mean_s)`` rows.
    """
    from repro.core.experiment import ExperimentTable

    table = ExperimentTable(
        title="Per-stage span timings",
        columns=("stage", "count", "total_s", "mean_s"),
    )
    for name, entry in tracer.stage_totals().items():
        table.add_row(name, entry["count"], entry["total_s"], entry["mean_s"])
    return table


# ---------------------------------------------------------------------------
# EventLog adapter
# ---------------------------------------------------------------------------

def events_to_metrics(log, registry=None):
    """Replay an :class:`~repro.faults.events.EventLog` into a registry.

    Counts ``pab_events_total{kind=...}`` per event kind — the batch
    counterpart of binding a registry to a live log via its ``metrics``
    attribute.  Returns the registry (a fresh one when omitted).
    """
    from repro.obs.metrics import MetricsRegistry

    if registry is None:
        registry = MetricsRegistry()
    for event in log:
        registry.counter("pab_events_total", kind=str(event.kind)).inc()
    return registry
