"""Fleet SLO tracking: objectives, error budgets, burn rates.

The reliability layer (PR 1) measures what happened — delivery ratios,
availability, MTTR.  This module adds the judgement call deployments
actually operate on: *are we inside our service-level objectives, and
how fast are we spending the error budget?*  Three objectives map onto
the battery-free regime:

``delivery``
    Fraction of polls that returned a decoded reading (consumes
    :class:`~repro.net.mac.MacStats`-shaped attempt/success counts).
``availability``
    Fraction of observed time a node was serving traffic (consumes
    :meth:`~repro.faults.events.EventLog.availability` and the reader's
    per-round health states).
``energy``
    Fraction of polling rounds that were energy-sustainable — harvest
    covered consumption without a brownout (consumes
    :class:`~repro.obs.ledger.EnergyLedger` round records).

The arithmetic is the standard SRE error-budget model over a virtual
clock of polling rounds: with target ``T``, a window of ``n`` units of
which ``bad`` missed the objective has

* error budget allowed = ``(1 - T) * n``
* budget remaining = ``1 - bad / allowed``  (can go negative)
* burn rate = ``(bad / n) / (1 - T)``  (1.0 = spending exactly at
  budget; >1 = on track to exhaust it early)

Everything is plain counting — no wall clock, no threads — so reports
are byte-deterministic for a seeded campaign.
"""

from __future__ import annotations

import collections

#: The standard objective names (free-form names are also accepted).
OBJECTIVES = ("delivery", "availability", "energy")

#: Default targets per objective — deliberately modest: an acoustically
#: harsh, battery-free network is engineered for graceful degradation,
#: not five nines.
DEFAULT_TARGETS = {"delivery": 0.90, "availability": 0.95, "energy": 0.90}


class SLOTracker:
    """Rolling per-node and fleet-wide SLO accounting.

    Parameters
    ----------
    targets:
        ``{objective: target fraction in (0, 1)}``; merged over
        :data:`DEFAULT_TARGETS`.
    window:
        Rolling-window length in rounds for burn-rate estimates (the
        cumulative books are unbounded).
    """

    def __init__(self, targets: dict | None = None, *, window: int = 20) -> None:
        if window < 1:
            raise ValueError("window must be >= 1")
        self.targets = dict(DEFAULT_TARGETS)
        if targets:
            for name, target in targets.items():
                if not 0.0 < float(target) < 1.0:
                    raise ValueError(
                        f"target for {name!r} must be in (0, 1), got {target}"
                    )
                self.targets[str(name)] = float(target)
        self.window = int(window)
        #: ``{(objective, node): [good, bad]}`` cumulative counts.
        self._counts: dict = {}
        #: ``{(objective, node): deque[(t, good, bad)]}`` rolling window.
        self._recent: dict = {}
        self.rounds_observed = 0
        self.last_t = float("nan")

    def _target(self, objective: str) -> float:
        try:
            return self.targets[objective]
        except KeyError:
            raise KeyError(f"no target configured for objective {objective!r}")

    # -- recording --------------------------------------------------------------------

    def record(
        self, objective: str, node: int, *, good: float = 0.0, bad: float = 0.0,
        t: float | None = None,
    ) -> None:
        """Count ``good``/``bad`` units toward one node's objective."""
        if good < 0 or bad < 0:
            raise ValueError("good/bad counts must be non-negative")
        self._target(objective)  # validate early
        key = (str(objective), int(node))
        counts = self._counts.setdefault(key, [0.0, 0.0])
        counts[0] += good
        counts[1] += bad
        recent = self._recent.setdefault(
            key, collections.deque(maxlen=self.window)
        )
        recent.append((self.rounds_observed if t is None else t, good, bad))
        if t is not None:
            self.last_t = t

    def observe_round(self, t: float, outcomes: dict) -> None:
        """Record one polling round.

        ``outcomes`` maps node address to a dict with any of:

        * ``polled`` / ``delivered`` — a delivery unit (skipped nodes,
          e.g. quarantined ones waiting out their probe backoff, do not
          consume delivery budget; their unavailability is charged by
          the availability objective instead);
        * ``up`` — whether the node was serving this round;
        * ``sustainable`` — whether the round's energy balance closed
          (present when an energy harness ran; omit otherwise).
        """
        for node, info in sorted(outcomes.items()):
            if info.get("polled", True):
                delivered = bool(info.get("delivered", False))
                self.record(
                    "delivery", node,
                    good=1.0 if delivered else 0.0,
                    bad=0.0 if delivered else 1.0,
                    t=t,
                )
            if "up" in info:
                up = bool(info["up"])
                self.record(
                    "availability", node,
                    good=1.0 if up else 0.0,
                    bad=0.0 if up else 1.0,
                    t=t,
                )
            if "sustainable" in info:
                ok = bool(info["sustainable"])
                self.record(
                    "energy", node,
                    good=1.0 if ok else 0.0,
                    bad=0.0 if ok else 1.0,
                    t=t,
                )
        self.rounds_observed += 1
        self.last_t = t

    # -- queries ----------------------------------------------------------------------

    def nodes(self) -> list:
        """Sorted node addresses with any recorded data."""
        return sorted({node for _, node in self._counts})

    def counts(self, objective: str, node: int | None = None) -> tuple:
        """Cumulative ``(good, bad)`` for a node (or fleet-wide)."""
        self._target(objective)
        good = bad = 0.0
        for (obj, n), (g, b) in self._counts.items():
            if obj == objective and (node is None or n == node):
                good += g
                bad += b
        return good, bad

    def compliance(self, objective: str, node: int | None = None) -> float:
        """Achieved good fraction (``nan`` with no data)."""
        good, bad = self.counts(objective, node)
        total = good + bad
        return good / total if total > 0 else float("nan")

    def error_budget_remaining(
        self, objective: str, node: int | None = None
    ) -> float:
        """1.0 = untouched budget, 0.0 = exhausted, negative = violated.

        ``nan`` with no data.
        """
        target = self._target(objective)
        good, bad = self.counts(objective, node)
        total = good + bad
        if total <= 0:
            return float("nan")
        allowed = (1.0 - target) * total
        return 1.0 - bad / allowed

    def burn_rate(self, objective: str, node: int | None = None) -> float:
        """Rolling-window budget burn multiplier.

        1.0 means failures arrive exactly at the budgeted rate; 2.0
        means the budget is being spent twice as fast as allowed.
        ``nan`` with no windowed data.
        """
        target = self._target(objective)
        good = bad = 0.0
        for (obj, n), recent in self._recent.items():
            if obj == objective and (node is None or n == node):
                for _, g, b in recent:
                    good += g
                    bad += b
        total = good + bad
        if total <= 0:
            return float("nan")
        return (bad / total) / (1.0 - target)

    def stream_sample(self) -> dict:
        """Fleet-level per-objective numbers for one stream event.

        The ``kind="slo"`` payload the reader publishes after each
        round: ``{objective: {target, burn_rate, budget_remaining,
        compliance}}``, sorted by objective for determinism.  Cheap by
        design (no per-node breakdown) — the full :meth:`report` still
        exists for batch consumers.
        """
        return {
            objective: {
                "target": self.targets[objective],
                "burn_rate": self.burn_rate(objective),
                "budget_remaining": self.error_budget_remaining(objective),
                "compliance": self.compliance(objective),
            }
            for objective in sorted(self.targets)
        }

    # -- checkpointing ----------------------------------------------------------------

    def snapshot_state(self) -> dict:
        """JSON-ready mutable state (targets travel too, for validation)."""
        return {
            "targets": dict(self.targets),
            "window": self.window,
            "counts": [
                [obj, node, good, bad]
                for (obj, node), (good, bad) in sorted(self._counts.items())
            ],
            "recent": [
                [obj, node, [list(entry) for entry in recent]]
                for (obj, node), recent in sorted(self._recent.items())
            ],
            "rounds_observed": self.rounds_observed,
            "last_t": self.last_t,
        }

    def restore_state(self, state: dict) -> None:
        """Inverse of :meth:`snapshot_state` (replaces current books)."""
        # Values are NOT coerced: JSON preserves int/float identity, and
        # the fuzz suite asserts snapshot -> restore -> snapshot equality.
        self.targets = {str(k): float(v) for k, v in state["targets"].items()}
        self.window = int(state["window"])
        self._counts = {
            (obj, int(node)): [good, bad]
            for obj, node, good, bad in state["counts"]
        }
        self._recent = {}
        for obj, node, entries in state["recent"]:
            recent = collections.deque(maxlen=self.window)
            recent.extend(tuple(entry) for entry in entries)
            self._recent[(obj, int(node))] = recent
        self.rounds_observed = int(state["rounds_observed"])
        self.last_t = state["last_t"]

    # -- bulk ingestion ---------------------------------------------------------------

    def ingest_mac_stats(self, node: int, stats) -> None:
        """Fold a :class:`~repro.net.mac.MacStats` into ``delivery``.

        For post-hoc analysis of a campaign that was not tracked
        round-by-round; uses attempts/successes as the good/bad units.
        """
        attempts = float(getattr(stats, "attempts", 0))
        successes = float(getattr(stats, "successes", 0))
        if attempts > 0:
            self.record(
                "delivery", node,
                good=successes, bad=max(attempts - successes, 0.0),
            )

    def ingest_event_log(self, log, nodes, *, end_t: float | None = None) -> None:
        """Fold an :class:`~repro.faults.events.EventLog` into
        ``availability`` — one unit per observed round, split by each
        node's availability fraction."""
        for node in nodes:
            intervals = log.state_intervals(node, end_t=end_t)
            if not intervals:
                continue
            total = sum(stop - start for _, start, stop in intervals)
            if total <= 0:
                continue
            avail = log.availability(node, end_t=end_t)
            self.record(
                "availability", node,
                good=avail * total, bad=(1.0 - avail) * total,
            )

    def ingest_ledger(self, ledger) -> None:
        """Fold an :class:`~repro.obs.ledger.EnergyLedger`'s round
        history into ``energy``."""
        for info in ledger.round_history:
            ok = bool(info.get("sustainable", False))
            self.record(
                "energy", ledger.node,
                good=1.0 if ok else 0.0, bad=0.0 if ok else 1.0,
                t=info.get("t"),
            )

    # -- reporting --------------------------------------------------------------------

    def node_report(self, node: int) -> dict:
        """Per-objective compliance/budget/burn for one node."""
        out = {"node": int(node)}
        for objective in sorted(self.targets):
            good, bad = self.counts(objective, node)
            if good + bad <= 0:
                continue
            out[objective] = {
                "target": self.targets[objective],
                "compliance": self.compliance(objective, node),
                "budget_remaining": self.error_budget_remaining(objective, node),
                "burn_rate": self.burn_rate(objective, node),
                "good": good,
                "bad": bad,
            }
        return out

    def report(self) -> dict:
        """Fleet-wide + per-node SLO report (deterministic ordering)."""
        fleet = {}
        for objective in sorted(self.targets):
            good, bad = self.counts(objective)
            if good + bad <= 0:
                continue
            fleet[objective] = {
                "target": self.targets[objective],
                "compliance": self.compliance(objective),
                "budget_remaining": self.error_budget_remaining(objective),
                "burn_rate": self.burn_rate(objective),
                "good": good,
                "bad": bad,
            }
        return {
            "rounds": self.rounds_observed,
            "window": self.window,
            "fleet": fleet,
            "nodes": [self.node_report(n) for n in self.nodes()],
        }

    def to_metrics(self, registry) -> None:
        """Export SLO gauges into a metrics registry.

        * ``pab_slo_error_budget_remaining{objective=,node=}`` (node
          label ``fleet`` for the aggregate)
        * ``pab_slo_burn_rate{objective=,node=}``
        * ``pab_slo_compliance{objective=,node=}``
        """
        scopes = [("fleet", None)] + [(str(n), n) for n in self.nodes()]
        for objective in sorted(self.targets):
            for label, node in scopes:
                good, bad = self.counts(objective, node)
                if good + bad <= 0:
                    continue
                registry.gauge(
                    "pab_slo_error_budget_remaining",
                    objective=objective, node=label,
                ).set(self.error_budget_remaining(objective, node))
                burn = self.burn_rate(objective, node)
                if burn == burn:  # not NaN
                    registry.gauge(
                        "pab_slo_burn_rate", objective=objective, node=label
                    ).set(burn)
                registry.gauge(
                    "pab_slo_compliance", objective=objective, node=label
                ).set(self.compliance(objective, node))
