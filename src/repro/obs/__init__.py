"""Observability for the PAB stack: tracing, metrics, exporters.

The measurement substrate under every performance claim in this repo:

* :mod:`repro.obs.trace` — nestable wall-clock spans with a disabled
  no-op mode (free on the waveform hot path) and a deterministic
  virtual clock for byte-identical test traces.
* :mod:`repro.obs.metrics` — counters, gauges, and fixed-bucket
  histograms in a mergeable registry.
* :mod:`repro.obs.export` — JSONL trace dumps, Prometheus text
  exposition, and ``benchmarks/results/``-compatible CSV.
* :mod:`repro.obs.probe` — named waveform taps through the decode
  pipeline (disabled-by-default, like the tracer).
* :mod:`repro.obs.postmortem` — structured verdicts assembled from a
  failed exchange's taps, serialized as JSONL.
* :mod:`repro.obs.ledger` — per-node energy ledgers: harvested vs
  consumed joules by power state, supercap SoC, brownout margin, and
  conservation checks.
* :mod:`repro.obs.slo` — fleet SLO tracking (delivery, availability,
  energy sustainability) with error budgets and burn rates.
* :mod:`repro.obs.timeline` — the merged per-round campaign view
  (health + faults + SoC + SLO burn) as text / CSV / JSONL.
* :mod:`repro.obs.stream` — the streaming telemetry bus every producer
  above publishes to incrementally (disabled by default), its JSONL
  stream sink, the Prometheus snapshot HTTP server, and the
  :class:`StreamAggregator` that rebuilds the end-of-run views from a
  stream (``repro tail``).
* :mod:`repro.obs.recorder` — the bounded ring-buffer flight recorder
  dumped next to checkpoints on campaign aborts.
* :mod:`repro.obs.profiler` — the deterministic campaign profiler:
  stage/worker/cache/memory attribution plus collapsed-stack and
  speedscope flamegraph exports (``repro profile``).

* :mod:`repro.obs.analytics` — deterministic online anomaly detectors
  (EWMA z-score, CUSUM) the reader feeds per round; detections become
  schema-1 ``anomaly`` envelopes and ``pab_anomaly_*`` metrics.
* :mod:`repro.obs.diff` — the campaign diff engine: aligns two
  campaign artifacts and attributes drift to stage, node,
  failure-taxonomy class, and energy bucket (``repro diff``).

See ``docs/OBSERVABILITY.md`` for the instrumentation guide and the
overhead policy.
"""

from repro.obs.analytics import (
    AnomalyMonitor,
    CusumDetector,
    EwmaDetector,
    publish_anomalies,
)
from repro.obs.diff import (
    DiffThresholds,
    diff_campaigns,
    drift_to_json,
    load_artifact,
    render_drift,
)
from repro.obs.export import (
    events_to_metrics,
    metrics_to_csv,
    metrics_to_prometheus,
    rows_to_csv,
    spans_to_jsonl,
    stage_table,
    write_csv,
    write_spans_jsonl,
)
from repro.obs.metrics import (
    BER_BUCKETS,
    LATENCY_BUCKETS_S,
    SNR_DB_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    set_build_info,
)
from repro.obs.postmortem import (
    DecodePostmortem,
    StageFinding,
    load_postmortems_jsonl,
    postmortems_to_jsonl,
    write_postmortems_jsonl,
)
from repro.obs.profiler import (
    CampaignProfiler,
    collapsed_stacks,
    get_profiler,
    profile_stage_costs,
    set_profiler,
    speedscope_document,
    speedscope_stage_totals,
    use_profiler,
    write_flamegraphs,
)
from repro.obs.probe import (
    ProbeRegistry,
    ProbeTap,
    dump_failure_artifacts,
    get_probes,
    set_probes,
    use_probes,
)
from repro.obs.recorder import FlightRecorder, dump_flight_recorders
from repro.obs.slo import DEFAULT_TARGETS, OBJECTIVES, SLOTracker
from repro.obs.stream import (
    SCHEMA_VERSION,
    JsonlStreamSink,
    MemorySink,
    MetricsSnapshotServer,
    StreamAggregator,
    TelemetryBus,
    event_from_line,
    event_to_line,
    get_bus,
    set_bus,
    use_bus,
)
from repro.obs.timeline import (
    build_timeline,
    render_timeline,
    soc_rows,
    timeline_to_csv,
    timeline_to_jsonl,
    write_timeline_csv,
    write_timeline_jsonl,
)
from repro.obs.trace import (
    NULL_SPAN,
    Span,
    Tracer,
    VirtualClock,
    get_tracer,
    set_tracer,
    use_tracer,
)

#: Names served lazily from :mod:`repro.obs.ledger` (PEP 562).  The
#: ledger module imports :mod:`repro.node`, whose firmware imports
#: :mod:`repro.net.messages`, which reaches back into this package via
#: the DSP probe hooks — importing it eagerly here would close that
#: cycle.  Everything else in this package stays dependency-light.
_LEDGER_EXPORTS = ("DIRECTIONS", "EnergyLedger", "NodeEnergyHarness")


def __getattr__(name: str):
    if name in _LEDGER_EXPORTS:
        from repro.obs import ledger

        return getattr(ledger, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "BER_BUCKETS",
    "DEFAULT_TARGETS",
    "DIRECTIONS",
    "LATENCY_BUCKETS_S",
    "NULL_SPAN",
    "OBJECTIVES",
    "SNR_DB_BUCKETS",
    "AnomalyMonitor",
    "CampaignProfiler",
    "Counter",
    "CusumDetector",
    "DecodePostmortem",
    "DiffThresholds",
    "EnergyLedger",
    "EwmaDetector",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "FlightRecorder",
    "JsonlStreamSink",
    "MemorySink",
    "MetricsSnapshotServer",
    "NodeEnergyHarness",
    "ProbeRegistry",
    "ProbeTap",
    "SCHEMA_VERSION",
    "SLOTracker",
    "Span",
    "StageFinding",
    "StreamAggregator",
    "TelemetryBus",
    "Tracer",
    "VirtualClock",
    "build_timeline",
    "collapsed_stacks",
    "diff_campaigns",
    "drift_to_json",
    "dump_failure_artifacts",
    "dump_flight_recorders",
    "event_from_line",
    "event_to_line",
    "events_to_metrics",
    "get_bus",
    "get_probes",
    "get_profiler",
    "get_tracer",
    "load_artifact",
    "load_postmortems_jsonl",
    "metrics_to_csv",
    "metrics_to_prometheus",
    "postmortems_to_jsonl",
    "profile_stage_costs",
    "publish_anomalies",
    "render_drift",
    "render_timeline",
    "rows_to_csv",
    "set_build_info",
    "set_bus",
    "set_probes",
    "set_profiler",
    "set_tracer",
    "soc_rows",
    "spans_to_jsonl",
    "speedscope_document",
    "speedscope_stage_totals",
    "stage_table",
    "timeline_to_csv",
    "timeline_to_jsonl",
    "use_bus",
    "use_probes",
    "use_profiler",
    "use_tracer",
    "write_csv",
    "write_flamegraphs",
    "write_postmortems_jsonl",
    "write_spans_jsonl",
    "write_timeline_csv",
    "write_timeline_jsonl",
]
