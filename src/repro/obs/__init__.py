"""Observability for the PAB stack: tracing, metrics, exporters.

The measurement substrate under every performance claim in this repo:

* :mod:`repro.obs.trace` — nestable wall-clock spans with a disabled
  no-op mode (free on the waveform hot path) and a deterministic
  virtual clock for byte-identical test traces.
* :mod:`repro.obs.metrics` — counters, gauges, and fixed-bucket
  histograms in a mergeable registry.
* :mod:`repro.obs.export` — JSONL trace dumps, Prometheus text
  exposition, and ``benchmarks/results/``-compatible CSV.
* :mod:`repro.obs.probe` — named waveform taps through the decode
  pipeline (disabled-by-default, like the tracer).
* :mod:`repro.obs.postmortem` — structured verdicts assembled from a
  failed exchange's taps, serialized as JSONL.

See ``docs/OBSERVABILITY.md`` for the instrumentation guide and the
overhead policy.
"""

from repro.obs.export import (
    events_to_metrics,
    metrics_to_csv,
    metrics_to_prometheus,
    rows_to_csv,
    spans_to_jsonl,
    stage_table,
    write_csv,
    write_spans_jsonl,
)
from repro.obs.metrics import (
    BER_BUCKETS,
    LATENCY_BUCKETS_S,
    SNR_DB_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.postmortem import (
    DecodePostmortem,
    StageFinding,
    load_postmortems_jsonl,
    postmortems_to_jsonl,
    write_postmortems_jsonl,
)
from repro.obs.probe import (
    ProbeRegistry,
    ProbeTap,
    dump_failure_artifacts,
    get_probes,
    set_probes,
    use_probes,
)
from repro.obs.trace import (
    NULL_SPAN,
    Span,
    Tracer,
    VirtualClock,
    get_tracer,
    set_tracer,
    use_tracer,
)

__all__ = [
    "BER_BUCKETS",
    "LATENCY_BUCKETS_S",
    "NULL_SPAN",
    "SNR_DB_BUCKETS",
    "Counter",
    "DecodePostmortem",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "ProbeRegistry",
    "ProbeTap",
    "Span",
    "StageFinding",
    "Tracer",
    "VirtualClock",
    "dump_failure_artifacts",
    "events_to_metrics",
    "get_probes",
    "get_tracer",
    "load_postmortems_jsonl",
    "metrics_to_csv",
    "metrics_to_prometheus",
    "postmortems_to_jsonl",
    "rows_to_csv",
    "set_probes",
    "set_tracer",
    "spans_to_jsonl",
    "stage_table",
    "use_probes",
    "use_tracer",
    "write_csv",
    "write_postmortems_jsonl",
    "write_spans_jsonl",
]
