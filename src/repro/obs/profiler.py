"""Deterministic campaign profiler: stage/worker attribution + flamegraphs.

PRs 2-7 built tracing, metrics, probes, ledgers, SLOs, and a streaming
bus; this module is the last observability pillar — *profiling*: where
does a campaign's wall-clock actually go?  It attributes time along
four axes:

* **Stages / spans** — every span the :class:`~repro.obs.trace.Tracer`
  records (including the five ``BackscatterLink.transact`` stages)
  aggregates into per-stage totals and exports as flamegraphs:
  collapsed-stack text (Brendan Gregg's format, one
  ``root;child;leaf weight`` line per unique stack) and a
  speedscope-compatible evented JSON profile.
* **Workers** — :class:`~repro.perf.fleet.FleetEngine` wraps each unit
  of work when a profiler is enabled and records, per worker thread,
  busy wall-clock, consumed CPU time (``time.thread_time``), and
  queue-wait (submit-to-start latency).  The per-worker CPU/wall ratio
  is the GIL-contention proxy: a CPU-bound workload whose workers sit
  far below 1.0 is serialised by the interpreter lock, not by work.
* **Caches** — :class:`~repro.perf.cache.LRUCache` times each miss's
  ``compute()`` when a profiler is enabled; hits x mean miss cost is
  the per-cache time-saved estimate.
* **Memory** — optional per-round ``tracemalloc`` snapshots (current
  and high-water bytes), marked from the reader's merge-side round
  tail so sequential and parallel campaigns snapshot at identical
  points.

Like the tracer, probes, and bus, the profiler is **disabled by
default** and free when disabled: instrumentation sites pay one
attribute check (asserted inside the <5% disabled-overhead gate in
``benchmarks/test_perf_baseline.py``).  Process-global accessors follow
the house pattern: :func:`get_profiler` / :func:`set_profiler` /
:func:`use_profiler`.

Determinism: flamegraph exports are pure functions of the recorded
spans.  Under a :class:`~repro.obs.trace.VirtualClock` (tick > 0) every
span timestamp is a deterministic integer, so the collapsed-stack text
and the speedscope JSON are byte-identical across runs with the same
seed — asserted by ``tests/obs/test_profiler.py`` and the CI profile
determinism step.  Worker and cache attributions are wall-clock
*measurements* and carry run-to-run jitter by nature; the reader
publishes them merge-side in sorted order so their stream *structure*
stays deterministic.
"""

from __future__ import annotations

import contextlib
import json
import pathlib
import threading
from time import perf_counter


class CampaignProfiler:
    """Accumulates stage, worker, cache, and memory attributions.

    Parameters
    ----------
    enabled:
        When False every ``record_*`` hook returns immediately; the
        instrumentation sites in :mod:`repro.perf` and
        :mod:`repro.net.reader` check this flag and pay nothing else.
    memory:
        Track per-round memory high-water via ``tracemalloc``.
        Tracing allocations costs real time (it hooks every allocation),
        so it is opt-in even within an enabled profiler.
    """

    def __init__(self, *, enabled: bool = True, memory: bool = False) -> None:
        self.enabled = bool(enabled)
        self.memory = bool(memory)
        self._lock = threading.Lock()
        #: Per-unit worker samples since the last :meth:`on_round` drain.
        self._pending_workers: list = []
        #: Cumulative per-worker accounting: name -> dict.
        self._workers: dict = {}
        #: Engine rounds: list of {"wall_s", "width"}.
        self._engine_rounds: list = []
        #: Cache miss costs: name -> [count, total_s].
        self._miss_costs: dict = {}
        #: Per-round snapshots from :meth:`on_round`.
        self.round_snapshots: list = []
        #: Cumulative per-stage tracer deltas: name -> {"count","total_s"}.
        self._stages: dict = {}
        self._span_cursor = 0
        self._tracemalloc_started = False

    # -- worker attribution (called from FleetEngine workers) -----------------------

    def record_worker_sample(self, *, worker: str, key, queue_wait_s: float,
                             wall_s: float, cpu_s: float) -> None:
        """One executed unit of work, reported from its worker thread."""
        if not self.enabled:
            return
        with self._lock:
            self._pending_workers.append({
                "worker": str(worker),
                "key": key,
                "queue_wait_s": float(queue_wait_s),
                "wall_s": float(wall_s),
                "cpu_s": float(cpu_s),
            })
            entry = self._workers.setdefault(str(worker), {
                "units": 0, "busy_s": 0.0, "cpu_s": 0.0, "queue_wait_s": 0.0,
            })
            entry["units"] += 1
            entry["busy_s"] += float(wall_s)
            entry["cpu_s"] += float(cpu_s)
            entry["queue_wait_s"] += float(queue_wait_s)

    def record_engine_round(self, *, wall_s: float, width: int) -> None:
        """One completed ``FleetEngine.run_round`` (its wall-clock span)."""
        if not self.enabled:
            return
        with self._lock:
            self._engine_rounds.append(
                {"wall_s": float(wall_s), "width": int(width)}
            )

    def worker_report(self) -> dict:
        """``{worker: {units, busy_s, cpu_s, queue_wait_s, gil_ratio,
        utilization}}`` in sorted worker order.

        ``gil_ratio`` is CPU-time / busy wall-time — the GIL-contention
        proxy (1.0 = the thread computed the whole time it was
        scheduled; << 1.0 on a CPU-bound workload = it waited for the
        interpreter lock).  ``utilization`` is busy wall-time over the
        engine's total round wall-clock (idle = 1 - utilization).
        """
        with self._lock:
            engine_wall = sum(r["wall_s"] for r in self._engine_rounds)
            out = {}
            for name in sorted(self._workers):
                w = self._workers[name]
                out[name] = {
                    "units": w["units"],
                    "busy_s": w["busy_s"],
                    "cpu_s": w["cpu_s"],
                    "queue_wait_s": w["queue_wait_s"],
                    "gil_ratio": (w["cpu_s"] / w["busy_s"]) if w["busy_s"] else 0.0,
                    "utilization": (w["busy_s"] / engine_wall) if engine_wall else 0.0,
                }
            return out

    def engine_wall_s(self) -> float:
        """Total wall-clock spent inside engine rounds."""
        with self._lock:
            return sum(r["wall_s"] for r in self._engine_rounds)

    # -- cache attribution (called from LRUCache on misses) --------------------------

    def record_cache_miss(self, name: str, seconds: float) -> None:
        """One timed cache-miss ``compute()``."""
        if not self.enabled:
            return
        with self._lock:
            entry = self._miss_costs.setdefault(str(name), [0, 0.0])
            entry[0] += 1
            entry[1] += float(seconds)

    def cache_report(self, stats: dict) -> dict:
        """Per-cache time-saved estimates from ``{name: CacheStats}``.

        ``saved_s`` = hits x mean measured miss cost; caches whose miss
        cost was never observed while this profiler was enabled report
        a cost (and saving) of 0 rather than guessing.
        """
        with self._lock:
            costs = {k: (v[1] / v[0] if v[0] else 0.0)
                     for k, v in self._miss_costs.items()}
        out = {}
        for name in sorted(stats):
            s = stats[name]
            cost = costs.get(name, 0.0)
            out[name] = {
                "hits": s.hits,
                "misses": s.misses,
                "miss_cost_s": cost,
                "saved_s": s.hits * cost,
            }
        return out

    # -- stage attribution + per-round snapshots --------------------------------------

    def on_round(self, t: float, *, tracer=None) -> dict:
        """Merge-side round mark: fold in new spans, snapshot memory.

        Called from ``ReaderController._finish_round`` — after the
        parallel merge, so sequential and ``parallel=N`` campaigns mark
        identical points.  Returns the round's JSON-ready snapshot
        (also appended to :attr:`round_snapshots`); the reader publishes
        it as a ``profile``-kind stream event when a bus is live.
        """
        if not self.enabled:
            return {}
        if tracer is None:
            from repro.obs.trace import get_tracer

            tracer = get_tracer()
        snap: dict = {"round": int(t)}
        if tracer.enabled and len(tracer.spans) > self._span_cursor:
            delta: dict = {}
            for span in tracer.spans[self._span_cursor:]:
                entry = delta.setdefault(
                    span.name, {"count": 0, "total_s": 0.0}
                )
                entry["count"] += 1
                entry["total_s"] += span.duration_s
            self._span_cursor = len(tracer.spans)
            with self._lock:
                for name, entry in delta.items():
                    total = self._stages.setdefault(
                        name, {"count": 0, "total_s": 0.0}
                    )
                    total["count"] += entry["count"]
                    total["total_s"] += entry["total_s"]
            snap["stages"] = {name: dict(delta[name]) for name in sorted(delta)}
        with self._lock:
            pending, self._pending_workers = self._pending_workers, []
        if pending:
            per_worker: dict = {}
            for sample in pending:
                entry = per_worker.setdefault(sample["worker"], {
                    "units": 0, "busy_s": 0.0, "cpu_s": 0.0,
                    "queue_wait_s": 0.0,
                })
                entry["units"] += 1
                entry["busy_s"] += sample["wall_s"]
                entry["cpu_s"] += sample["cpu_s"]
                entry["queue_wait_s"] += sample["queue_wait_s"]
            snap["workers"] = {
                name: per_worker[name] for name in sorted(per_worker)
            }
        if self.memory:
            import tracemalloc

            if not tracemalloc.is_tracing():
                tracemalloc.start()
                self._tracemalloc_started = True
            current, peak = tracemalloc.get_traced_memory()
            snap["mem_current_b"] = int(current)
            snap["mem_peak_b"] = int(peak)
            tracemalloc.reset_peak()
        self.round_snapshots.append(snap)
        return snap

    def stage_totals(self) -> dict:
        """Cumulative ``{name: {"count", "total_s"}}`` over all rounds."""
        with self._lock:
            return {
                name: dict(entry)
                for name, entry in sorted(self._stages.items())
            }

    def memory_report(self) -> dict:
        """``{"rounds", "peak_b", "final_b"}`` over the marked rounds."""
        marks = [s for s in self.round_snapshots if "mem_peak_b" in s]
        if not marks:
            return {"rounds": 0, "peak_b": 0, "final_b": 0}
        return {
            "rounds": len(marks),
            "peak_b": max(s["mem_peak_b"] for s in marks),
            "final_b": marks[-1]["mem_current_b"],
        }

    # -- export -----------------------------------------------------------------------

    def to_metrics(self, registry, *, cache_stats: dict | None = None) -> None:
        """Export the accumulated attributions as ``pab_profile_*`` gauges."""
        for name, entry in self.stage_totals().items():
            registry.gauge("pab_profile_stage_seconds", stage=name).set(
                entry["total_s"]
            )
        for name, w in self.worker_report().items():
            registry.gauge("pab_profile_worker_busy_seconds", worker=name).set(
                w["busy_s"]
            )
            registry.gauge(
                "pab_profile_worker_queue_wait_seconds", worker=name
            ).set(w["queue_wait_s"])
            registry.gauge("pab_profile_worker_gil_ratio", worker=name).set(
                w["gil_ratio"]
            )
            registry.gauge("pab_profile_worker_utilization", worker=name).set(
                w["utilization"]
            )
        if cache_stats:
            for name, entry in self.cache_report(cache_stats).items():
                registry.gauge(
                    "pab_profile_cache_saved_seconds", cache=name
                ).set(entry["saved_s"])
        mem = self.memory_report()
        if mem["rounds"]:
            registry.gauge("pab_profile_mem_peak_bytes").set(mem["peak_b"])

    # -- lifecycle --------------------------------------------------------------------

    def reset(self) -> None:
        """Drop all accumulated samples and snapshots."""
        with self._lock:
            self._pending_workers.clear()
            self._workers.clear()
            self._engine_rounds.clear()
            self._miss_costs.clear()
            self._stages.clear()
        self.round_snapshots.clear()
        self._span_cursor = 0

    def close(self) -> None:
        """Stop tracemalloc if this profiler started it (idempotent)."""
        if self._tracemalloc_started:
            import tracemalloc

            if tracemalloc.is_tracing():
                tracemalloc.stop()
            self._tracemalloc_started = False


# ---------------------------------------------------------------------------
# Process-global profiler (disabled by default, like tracer/probes/bus)
# ---------------------------------------------------------------------------

_GLOBAL_PROFILER = CampaignProfiler(enabled=False)


def get_profiler() -> CampaignProfiler:
    """The process-global profiler (a disabled one until installed)."""
    return _GLOBAL_PROFILER


def set_profiler(profiler: CampaignProfiler) -> CampaignProfiler:
    """Install ``profiler`` globally; returns the previous one."""
    global _GLOBAL_PROFILER
    previous = _GLOBAL_PROFILER
    _GLOBAL_PROFILER = profiler
    return previous


@contextlib.contextmanager
def use_profiler(profiler: CampaignProfiler):
    """Temporarily install ``profiler``; closes it (tracemalloc) on exit."""
    previous = set_profiler(profiler)
    try:
        yield profiler
    finally:
        set_profiler(previous)
        profiler.close()


# ---------------------------------------------------------------------------
# Flamegraph exports (pure functions over recorded spans)
# ---------------------------------------------------------------------------

def _span_forest(spans):
    """``(roots, children)`` from finished spans, deterministic order.

    Children sort by start time (unique under a ticking clock; span_id
    breaks wall-clock ties), so traversal order is reproducible.
    """
    by_id = {s.span_id: s for s in spans}
    children: dict = {s.span_id: [] for s in spans}
    roots = []
    for span in spans:
        if span.parent_id is not None and span.parent_id in by_id:
            children[span.parent_id].append(span)
        else:
            roots.append(span)
    key = lambda s: (s.start_s, s.span_id)  # noqa: E731 - tiny sort key
    roots.sort(key=key)
    for kids in children.values():
        kids.sort(key=key)
    return roots, children


def _self_seconds(span, children) -> float:
    child_s = sum(c.duration_s for c in children[span.span_id])
    return max(span.duration_s - child_s, 0.0)


def collapsed_stacks(spans, *, scale: float = 1.0) -> str:
    """Collapsed-stack flamegraph text (``stack;frames weight`` lines).

    Each span contributes its *self* time (duration minus children) to
    its full stack path; identical paths aggregate.  Weights are
    integers — ``scale`` converts span time units to counts (use 1.0
    with a unit-tick :class:`~repro.obs.trace.VirtualClock`, ``1e6``
    for wall-clock seconds -> microseconds).  Lines sort
    lexicographically, so output is deterministic for deterministic
    spans.  Render with any ``flamegraph.pl``-compatible tool or paste
    into speedscope.
    """
    roots, children = _span_forest(spans)
    weights: dict = {}

    def visit(span, path):
        path = path + (span.name,)
        weight = int(round(_self_seconds(span, children) * scale))
        if weight > 0:
            key = ";".join(path)
            weights[key] = weights.get(key, 0) + weight
        for child in children[span.span_id]:
            visit(child, path)

    for root in roots:
        visit(root, ())
    lines = [f"{path} {weights[path]}" for path in sorted(weights)]
    return "\n".join(lines) + ("\n" if lines else "")


def speedscope_document(spans, *, name: str = "pab-campaign",
                        unit: str = "none") -> dict:
    """A speedscope-compatible evented profile from finished spans.

    Open/close events come from a deterministic tree traversal (never a
    raw timestamp sort), so the event stream is well-nested even when a
    wall clock hands sibling spans identical timestamps.  With a
    virtual clock the document is byte-stable across runs; its
    per-frame totals equal :meth:`Tracer.stage_totals` by construction
    (asserted in ``tests/obs/test_profiler.py``).

    ``unit`` should be ``"none"`` for virtual-clock ticks and
    ``"seconds"`` for wall-clock spans.
    """
    roots, children = _span_forest(spans)
    frame_index: dict = {}
    frames: list = []
    events: list = []

    def frame_of(span_name: str) -> int:
        if span_name not in frame_index:
            frame_index[span_name] = len(frames)
            frames.append({"name": span_name})
        return frame_index[span_name]

    def visit(span, lo: float, hi: float):
        # Clamp into the parent's interval: defensive against clock
        # skew; a no-op for well-nested virtual-clock spans.
        start = min(max(span.start_s, lo), hi)
        end = min(max(span.end_s, start), hi)
        idx = frame_of(span.name)
        events.append({"type": "O", "frame": idx, "at": start})
        for child in children[span.span_id]:
            visit(child, start, end)
        events.append({"type": "C", "frame": idx, "at": end})

    start_value = min((s.start_s for s in spans), default=0.0)
    end_value = max((s.end_s for s in spans), default=0.0)
    for root in roots:
        visit(root, start_value, end_value)
    return {
        "$schema": "https://www.speedscope.app/file-format-schema.json",
        "exporter": "repro.obs.profiler",
        "name": name,
        "activeProfileIndex": 0,
        "shared": {"frames": frames},
        "profiles": [{
            "type": "evented",
            "name": name,
            "unit": unit,
            "startValue": start_value,
            "endValue": end_value,
            "events": events,
        }],
    }


def speedscope_stage_totals(doc: dict) -> dict:
    """``{frame name: total}`` from a speedscope evented document.

    Re-derives per-stage totals from the exported events (not from the
    spans that built them) so tests can assert that the flamegraph
    agrees with the tracer's own :meth:`stage_totals`.
    """
    frames = doc["shared"]["frames"]
    totals: dict = {}
    open_at: dict = {}
    for event in doc["profiles"][0]["events"]:
        name = frames[event["frame"]]["name"]
        if event["type"] == "O":
            open_at.setdefault(name, []).append(event["at"])
        else:
            start = open_at[name].pop()
            totals[name] = totals.get(name, 0.0) + (event["at"] - start)
    return totals


def write_flamegraphs(base, spans, *, scale: float = 1.0,
                      name: str = "pab-campaign",
                      unit: str = "none") -> dict:
    """Write ``BASE.collapsed.txt`` + ``BASE.speedscope.json``.

    Returns ``{"collapsed": path, "speedscope": path}``.  Both files
    are byte-deterministic for deterministic spans (sorted keys,
    compact separators, trailing newline).
    """
    base = pathlib.Path(base)
    base.parent.mkdir(parents=True, exist_ok=True)
    collapsed = base.with_name(base.name + ".collapsed.txt")
    collapsed.write_text(collapsed_stacks(spans, scale=scale))
    speedscope = base.with_name(base.name + ".speedscope.json")
    doc = speedscope_document(spans, name=name, unit=unit)
    speedscope.write_text(
        json.dumps(doc, sort_keys=True, separators=(",", ":")) + "\n"
    )
    return {"collapsed": collapsed, "speedscope": speedscope}


# ---------------------------------------------------------------------------
# Measured stage attribution (wall + CPU dual pass)
# ---------------------------------------------------------------------------

def profile_stage_costs(run, *, repeats: int = 5, stages=None) -> dict:
    """Per-stage wall *and* CPU seconds for a repeatable workload.

    ``run(tracer)`` must execute the workload under the given tracer
    (installing it however the workload requires) and must be
    deterministic in structure — it is invoked twice on fresh tracers,
    once with a wall clock (``perf_counter``) and once with a CPU clock
    (``time.thread_time``), and the two passes' stages are joined by
    name.  Returns ``{stage: {"count", "wall_s", "cpu_s",
    "cpu_wall_ratio", "fraction"}}`` where ``fraction`` is of the
    selected stages' summed wall time.

    ``stages`` restricts the report (and the fraction denominator) to
    the named spans — pass ``BackscatterLink.STAGES`` to avoid double
    counting parents against their children; omitted, every recorded
    span name is reported.

    The CPU/wall ratio per *stage* complements the per-worker GIL
    proxy: a stage near 1.0 burns CPU the whole time (python or numpy
    compute); far below 1.0 it sleeps or waits.
    """
    from time import thread_time

    from repro.obs.trace import Tracer

    wall_tracer = Tracer(clock=perf_counter)
    for _ in range(repeats):
        run(wall_tracer)
    cpu_tracer = Tracer(clock=thread_time)
    for _ in range(repeats):
        run(cpu_tracer)
    wall = wall_tracer.stage_totals()
    cpu = cpu_tracer.stage_totals()
    names = list(stages) if stages is not None else list(wall)
    total_wall = sum(
        wall.get(n, {}).get("total_s", 0.0) for n in names
    ) or 1.0
    out = {}
    for stage in names:
        entry = wall.get(stage, {"count": 0, "total_s": 0.0})
        wall_s = entry["total_s"] / repeats
        cpu_s = cpu.get(stage, {}).get("total_s", 0.0) / repeats
        out[stage] = {
            "count": entry["count"] / repeats,
            "wall_s": wall_s,
            "cpu_s": cpu_s,
            "cpu_wall_ratio": (cpu_s / wall_s) if wall_s else 0.0,
            "fraction": entry["total_s"] / total_wall,
        }
    return out
