"""Campaign diff engine: align two campaign artifacts, attribute drift.

The observability stack can already *record* a campaign three ways —
a schema-1 JSONL telemetry stream, a fleet-report JSON document, and
BENCH/profile record files — but comparing two campaigns meant eyeballing
byte digests.  This module loads any two artifacts of the same kind,
aligns them round-by-round and stage-by-stage, and produces a
structured drift report that *attributes* deltas:

* to a **node** (per-node delivery-ratio deltas),
* to a **failure-taxonomy class** (fault-injector and post-mortem
  counts; each class carries its failing stage via
  :data:`repro.faults.injectors.FAULT_FAILING_STAGES`),
* to a **stage** (profiler stage fractions when both sides carry
  ``profile`` events or bench stage tables),
* and to an **energy bucket** (final SoC classified against the
  supercap hysteresis thresholds).

The report is a JSON-ready dict with every float rounded to six
decimals and every mapping key stringified, so
:func:`drift_to_json` renders byte-identical output for identical
inputs — the property the CI drift gate's determinism check relies
on.  Thresholded gating (:class:`DiffThresholds`,
:func:`diff_campaigns` ``gate`` section) turns the report into a CI
verdict: ``repro diff A B --gate`` exits nonzero iff ``drifted``.
"""

from __future__ import annotations

import json
import math
import pathlib
from dataclasses import asdict, dataclass

from repro.obs.stream import StreamAggregator

__all__ = [
    "SCHEMA_VERSION",
    "DiffThresholds",
    "load_artifact",
    "diff_campaigns",
    "drift_to_json",
    "render_drift",
]

#: Version of the drift-report document schema.
SCHEMA_VERSION = 1


def _round6(value) -> float:
    return round(float(value), 6)


def _finite(value) -> bool:
    try:
        return math.isfinite(float(value))
    except (TypeError, ValueError):
        return False


@dataclass(frozen=True)
class DiffThresholds:
    """Gate thresholds for :func:`diff_campaigns`.

    Defaults are deliberately loose enough that re-running a seeded
    campaign bit-for-bit passes with zero margin consumed, and tight
    enough that a single misbehaving node in a small fleet trips the
    gate.
    """

    delivery_ratio: float = 0.02      # fleet delivery-ratio drift
    node_delivery_ratio: float = 0.10  # any single node's drift
    stage_fraction: float = 0.10      # profiler stage-share drift
    taxonomy_count: int = 5           # fault/postmortem count drift
    soc_v: float = 0.15               # any node's final SoC drift
    burn_rate: float = 1.0            # any objective's burn drift
    anomaly_count: int = 5            # detector-hit count drift
    #: Supercap hysteresis bounds used for energy-bucket classification
    #: (charged ≥ ``soc_charged_v`` > marginal ≥ ``soc_brownout_v`` >
    #: browned_out).
    soc_charged_v: float = 2.5
    soc_brownout_v: float = 2.1


#: Energy buckets, healthiest first (ordering used by reports/tables).
ENERGY_BUCKETS = ("charged", "marginal", "browned_out")


def _energy_bucket(soc_v: float, thresholds: DiffThresholds) -> str:
    if soc_v >= thresholds.soc_charged_v:
        return "charged"
    if soc_v >= thresholds.soc_brownout_v:
        return "marginal"
    return "browned_out"


def _fault_stage(name: str) -> str:
    from repro.faults.injectors import FAULT_FAILING_STAGES

    return FAULT_FAILING_STAGES.get(name, "unknown")


# -- artifact loading ---------------------------------------------------------------------


def load_artifact(path) -> dict:
    """Load one campaign artifact into a comparable summary dict.

    Sniffing order: a whole-file JSON dict with ``records`` is a
    BENCH/profile document (the last record is summarized); one with
    ``network``/``nodes`` is a fleet report; anything else is fed
    line-by-line as a schema-1 JSONL stream.  Raises ``ValueError``
    for files that are none of the three.
    """
    path = pathlib.Path(path)
    text = path.read_text()
    if not text.strip():
        raise ValueError(f"{path}: empty artifact")
    doc = None
    try:
        doc = json.loads(text)
    except ValueError:
        doc = None
    if isinstance(doc, dict) and "records" in doc:
        return _summarize_bench(doc, path)
    if isinstance(doc, dict) and ("network" in doc or "nodes" in doc):
        return _summarize_report(doc, path)
    agg = StreamAggregator()
    try:
        agg.feed_file(path)
    except ValueError as exc:
        raise ValueError(f"{path}: not a campaign artifact ({exc})") from exc
    if agg.segments == 0 and not agg.rounds_observed():
        raise ValueError(f"{path}: no stream events found")
    return _summarize_stream(agg, path)


def _summarize_stream(agg: StreamAggregator, path) -> dict:
    """Reduce an aggregated stream to the comparable summary shape."""
    per_node: dict = {}     # addr -> [delivered, polled]
    round_delivery: dict = {}
    soc_final: dict = {}
    soc_min: dict = {}
    for rec in agg.round_log:
        rnd = int(rec["t"])
        polled = delivered = 0
        for addr in sorted(rec["outcomes"]):
            info = rec["outcomes"][addr]
            if info.get("polled"):
                polled += 1
                node = per_node.setdefault(addr, [0, 0])
                node[1] += 1
                if info.get("delivered"):
                    delivered += 1
                    node[0] += 1
            soc = info.get("soc_v")
            if soc is not None:
                soc_final[addr] = float(soc)
                soc_min[addr] = min(soc_min.get(addr, float(soc)), float(soc))
        if polled:
            round_delivery[rnd] = delivered / polled
    faults: dict = {}
    fault_nodes: dict = {}
    for event in agg.event_log().events:
        if str(event.kind) != "fault":
            continue
        detail = dict(event.detail)
        name = str(detail.get("injector", "unknown"))
        faults[name] = faults.get(name, 0) + 1
        per = fault_nodes.setdefault(name, {})
        per[int(event.node)] = per.get(int(event.node), 0) + 1
    failures: dict = {}
    for pm in agg.postmortems:
        cls = str(pm.get("failure", "unknown"))
        failures[cls] = failures.get(cls, 0) + 1
    stage_fractions = _mean_stage_fractions(agg.profiles)
    delivered = sum(v[0] for v in per_node.values())
    polled = sum(v[1] for v in per_node.values())
    return {
        "kind": "stream",
        "path": str(path),
        "rounds": agg.rounds_observed(),
        "delivery_ratio": (delivered / polled) if polled else None,
        "per_node_delivery": {
            str(a): (v[0] / v[1]) if v[1] else 0.0
            for a, v in sorted(per_node.items())
        },
        "round_delivery": {str(r): v for r, v in sorted(round_delivery.items())},
        "faults": dict(sorted(faults.items())),
        "fault_nodes": {
            name: {str(a): n for a, n in sorted(per.items())}
            for name, per in sorted(fault_nodes.items())
        },
        "failures": dict(sorted(failures.items())),
        "soc_final": {str(a): v for a, v in sorted(soc_final.items())},
        "soc_min": {str(a): v for a, v in sorted(soc_min.items())},
        "burn": {
            k: v for k, v in sorted(agg.final_burn().items()) if _finite(v)
        },
        "stage_fractions": stage_fractions,
        "anomalies": dict(sorted(agg.anomaly_counts().items())),
    }


def _mean_stage_fractions(profiles: list) -> dict:
    """Mean per-stage wall-time share over a stream's profile events."""
    totals: dict = {}
    n = 0
    for snapshot in profiles:
        stages = snapshot.get("stages") or {}
        round_total = sum(s.get("total_s", 0.0) for s in stages.values())
        if round_total <= 0.0:
            continue
        n += 1
        for name in stages:
            share = stages[name].get("total_s", 0.0) / round_total
            totals[name] = totals.get(name, 0.0) + share
    return {name: totals[name] / n for name in sorted(totals)} if n else {}


def _summarize_report(doc: dict, path) -> dict:
    """Summary for a fleet-report JSON document (``repro fleet-report
    --report-out``): aggregate comparison only, no round alignment."""
    nodes = doc.get("nodes", {})
    soc_final = {}
    for addr, summary in (doc.get("energy") or {}).items():
        soc = summary.get("soc_v", summary.get("final_soc_v"))
        if soc is not None:
            soc_final[str(addr)] = float(soc)
    burn = {}
    for objective, entry in (doc.get("slo") or {}).items():
        if isinstance(entry, dict) and _finite(entry.get("burn_rate")):
            burn[str(objective)] = float(entry["burn_rate"])
    return {
        "kind": "report",
        "path": str(path),
        "rounds": int(doc.get("rounds", 0)),
        "delivery_ratio": (doc.get("network") or {}).get("delivery_ratio"),
        "per_node_delivery": {
            str(a): float(info.get("delivery_ratio", 0.0))
            for a, info in sorted(nodes.items(), key=lambda kv: int(kv[0]))
        },
        "round_delivery": {},
        "faults": {},
        "fault_nodes": {},
        "failures": {},
        "soc_final": soc_final,
        "soc_min": {},
        "burn": burn,
        "stage_fractions": {},
        "anomalies": {},
    }


def _summarize_bench(doc: dict, path) -> dict:
    """Summary for a BENCH/profile record document (last record)."""
    records = doc.get("records") or []
    if not records:
        raise ValueError(f"{path}: record document has no records")
    record = records[-1]
    fractions = {
        name: float(entry.get("fraction", 0.0))
        for name, entry in sorted((record.get("stages") or {}).items())
    }
    return {
        "kind": "bench",
        "path": str(path),
        "rounds": int(record.get("rounds", 0)),
        "delivery_ratio": record.get("delivery_ratio"),
        "per_node_delivery": {},
        "round_delivery": {},
        "faults": {},
        "fault_nodes": {},
        "failures": {},
        "soc_final": {},
        "soc_min": {},
        "burn": {},
        "stage_fractions": fractions,
        "anomalies": {},
    }


# -- diffing ------------------------------------------------------------------------------


def _delta_map(a: dict, b: dict) -> dict:
    """``{key: {a, b, delta}}`` over the union of two numeric maps.

    A key absent on one side contributes 0 to the delta but keeps
    ``None`` in its slot, so "missing" and "zero" stay
    distinguishable in the report.
    """
    out = {}
    for key in sorted(set(a) | set(b)):
        va, vb = a.get(key), b.get(key)
        if not (_finite(va) or _finite(vb)):
            continue
        fa = float(va) if _finite(va) else 0.0
        fb = float(vb) if _finite(vb) else 0.0
        out[str(key)] = {
            "a": _round6(va) if _finite(va) else None,
            "b": _round6(vb) if _finite(vb) else None,
            "delta": _round6(fb - fa),
        }
    return out


def _bucket_counts(soc_final: dict, thresholds: DiffThresholds) -> dict:
    counts = {bucket: 0 for bucket in ENERGY_BUCKETS}
    for soc in soc_final.values():
        counts[_energy_bucket(float(soc), thresholds)] += 1
    return counts


def _round_divergence(a: dict, b: dict, tolerance: float = 1e-9) -> dict:
    """Round-by-round alignment of two per-round delivery maps."""
    rounds = sorted(set(a) | set(b), key=int)
    diverged = []
    for rnd in rounds:
        va, vb = a.get(rnd), b.get(rnd)
        if va is None or vb is None or abs(float(va) - float(vb)) > tolerance:
            diverged.append(int(rnd))
    return {
        "count": len(diverged),
        "first": diverged[0] if diverged else -1,
        "last": diverged[-1] if diverged else -1,
    }


def diff_campaigns(a_path, b_path, *, thresholds: DiffThresholds | None = None) -> dict:
    """Diff two campaign artifacts; returns the drift-report dict.

    Both artifacts must summarize to the same kind (stream vs stream,
    report vs report, bench vs bench) — cross-kind comparisons would
    silently compare incommensurable numbers, so they raise.
    """
    thresholds = thresholds if thresholds is not None else DiffThresholds()
    a = load_artifact(a_path)
    b = load_artifact(b_path)
    if a["kind"] != b["kind"]:
        raise ValueError(
            f"cannot diff {a['kind']} artifact against {b['kind']} artifact"
        )

    taxonomy = {}
    for cls, entry in _delta_map(a["faults"], b["faults"]).items():
        taxonomy[cls] = {**entry, "stage": _fault_stage(cls)}
    deltas = {
        "delivery_ratio": _delta_map(
            {"fleet": a["delivery_ratio"]}, {"fleet": b["delivery_ratio"]}
        ).get("fleet"),
        "per_node_delivery": _delta_map(
            a["per_node_delivery"], b["per_node_delivery"]
        ),
        "taxonomy": taxonomy,
        "failures": _delta_map(a["failures"], b["failures"]),
        "stage_fractions": _delta_map(
            a["stage_fractions"], b["stage_fractions"]
        ),
        "soc_final": _delta_map(a["soc_final"], b["soc_final"]),
        "energy_buckets": _delta_map(
            _bucket_counts(a["soc_final"], thresholds),
            _bucket_counts(b["soc_final"], thresholds),
        ),
        "burn": _delta_map(a["burn"], b["burn"]),
        "anomalies": _delta_map(a["anomalies"], b["anomalies"]),
    }
    report = {
        "schema": SCHEMA_VERSION,
        "kind": a["kind"],
        "a": {"path": a["path"], "rounds": a["rounds"]},
        "b": {"path": b["path"], "rounds": b["rounds"]},
        "deltas": deltas,
        "rounds_diverged": _round_divergence(
            a["round_delivery"], b["round_delivery"]
        ),
        "attribution": _attribute(a, b, deltas),
    }
    report["gate"] = _gate(report, thresholds)
    return report


def _attribute(a: dict, b: dict, deltas: dict) -> list:
    """Ranked drift attribution: taxonomy class, then nodes, then stage.

    Entries are ordered most-suspect first; ties break
    lexicographically so the report is deterministic.
    """
    out = []
    taxonomy = deltas["taxonomy"]
    top_class = None
    if taxonomy:
        top_class = max(
            sorted(taxonomy),
            key=lambda cls: abs(taxonomy[cls]["delta"]),
        )
        if taxonomy[top_class]["delta"] == 0:
            top_class = None
    if top_class is not None:
        out.append({
            "kind": "taxonomy",
            "target": top_class,
            "delta": taxonomy[top_class]["delta"],
            "stage": taxonomy[top_class]["stage"],
        })
    per_node = deltas["per_node_delivery"]
    suspects = sorted(
        (node for node in per_node if per_node[node]["delta"] != 0),
        key=lambda node: (-abs(per_node[node]["delta"]), int(node)),
    )
    for node in suspects[:5]:
        # The node's dominant taxonomy-count change names the class
        # (and therefore the stage) behind its delivery delta.
        node_class = None
        best = 0
        for cls in sorted(set(a["fault_nodes"]) | set(b["fault_nodes"])):
            delta = abs(
                b["fault_nodes"].get(cls, {}).get(node, 0)
                - a["fault_nodes"].get(cls, {}).get(node, 0)
            )
            if delta > best:
                best = delta
                node_class = cls
        entry = {
            "kind": "node",
            "target": f"node {node}",
            "delta": per_node[node]["delta"],
        }
        if node_class is not None:
            entry["taxonomy"] = node_class
            entry["stage"] = _fault_stage(node_class)
        out.append(entry)
    fractions = deltas["stage_fractions"]
    if fractions:
        hot = max(
            sorted(fractions), key=lambda s: abs(fractions[s]["delta"])
        )
        if fractions[hot]["delta"] != 0:
            out.append({
                "kind": "stage",
                "target": hot,
                "delta": fractions[hot]["delta"],
            })
    return out


def _gate(report: dict, thresholds: DiffThresholds) -> dict:
    """Apply thresholds; returns the ``gate`` section of the report."""
    deltas = report["deltas"]
    failures = []
    if report["a"]["rounds"] != report["b"]["rounds"]:
        failures.append(
            f"round count differs: {report['a']['rounds']} vs "
            f"{report['b']['rounds']}"
        )
    fleet = deltas["delivery_ratio"]
    if fleet is not None and abs(fleet["delta"]) > thresholds.delivery_ratio:
        failures.append(
            f"fleet delivery ratio drifted {fleet['delta']:+.4f} "
            f"(threshold {thresholds.delivery_ratio})"
        )
    for node, entry in deltas["per_node_delivery"].items():
        if abs(entry["delta"]) > thresholds.node_delivery_ratio:
            failures.append(
                f"node {node} delivery drifted {entry['delta']:+.4f} "
                f"(threshold {thresholds.node_delivery_ratio})"
            )
    for cls, entry in deltas["taxonomy"].items():
        if abs(entry["delta"]) >= thresholds.taxonomy_count:
            failures.append(
                f"taxonomy class {cls} ({entry['stage']}) drifted "
                f"{entry['delta']:+.0f} events "
                f"(threshold {thresholds.taxonomy_count})"
            )
    for cls, entry in deltas["failures"].items():
        if abs(entry["delta"]) >= thresholds.taxonomy_count:
            failures.append(
                f"failure class {cls} drifted {entry['delta']:+.0f} "
                f"post-mortems (threshold {thresholds.taxonomy_count})"
            )
    for stage, entry in deltas["stage_fractions"].items():
        if abs(entry["delta"]) > thresholds.stage_fraction:
            failures.append(
                f"stage {stage} fraction drifted {entry['delta']:+.4f} "
                f"(threshold {thresholds.stage_fraction})"
            )
    for node, entry in deltas["soc_final"].items():
        if abs(entry["delta"]) > thresholds.soc_v:
            failures.append(
                f"node {node} final SoC drifted {entry['delta']:+.3f} V "
                f"(threshold {thresholds.soc_v})"
            )
    for objective, entry in deltas["burn"].items():
        if abs(entry["delta"]) > thresholds.burn_rate:
            failures.append(
                f"SLO {objective} burn rate drifted {entry['delta']:+.2f} "
                f"(threshold {thresholds.burn_rate})"
            )
    anomaly_delta = sum(
        entry["delta"] for entry in deltas["anomalies"].values()
    )
    if abs(anomaly_delta) >= thresholds.anomaly_count:
        failures.append(
            f"anomaly count drifted {anomaly_delta:+.0f} "
            f"(threshold {thresholds.anomaly_count})"
        )
    return {
        "thresholds": {
            k: v for k, v in sorted(asdict(thresholds).items())
        },
        "failures": failures,
        "drifted": bool(failures),
    }


# -- rendering ----------------------------------------------------------------------------


def drift_to_json(report: dict) -> str:
    """Canonical (byte-stable) JSON rendering of a drift report."""
    return json.dumps(report, sort_keys=True, indent=2) + "\n"


def render_drift(report: dict) -> str:
    """Human-readable multi-table rendering for the CLI."""
    lines = []
    a, b = report["a"], report["b"]
    lines.append(
        f"campaign diff ({report['kind']}): A={a['path']} ({a['rounds']} "
        f"rounds)  B={b['path']} ({b['rounds']} rounds)"
    )
    deltas = report["deltas"]
    fleet = deltas["delivery_ratio"]
    if fleet is not None:
        lines.append(
            f"fleet delivery: {_cell(fleet['a'])} -> {_cell(fleet['b'])} "
            f"(delta {fleet['delta']:+.4f})"
        )
    diverged = report["rounds_diverged"]
    if diverged["count"]:
        lines.append(
            f"rounds diverged: {diverged['count']} "
            f"(first {diverged['first']}, last {diverged['last']})"
        )
    for title, key, fmt in (
        ("per-node delivery", "per_node_delivery", "+.4f"),
        ("failure taxonomy", "taxonomy", "+.0f"),
        ("post-mortem classes", "failures", "+.0f"),
        ("stage fractions", "stage_fractions", "+.4f"),
        ("final SoC (V)", "soc_final", "+.3f"),
        ("energy buckets", "energy_buckets", "+.0f"),
        ("SLO burn", "burn", "+.2f"),
        ("anomalies", "anomalies", "+.0f"),
    ):
        table = {
            k: v for k, v in deltas[key].items() if v["delta"] != 0
        }
        if not table:
            continue
        lines.append(f"-- {title} --")
        for k in sorted(table, key=lambda key: (-abs(table[key]["delta"]), key)):
            entry = table[k]
            stage = f"  [{entry['stage']}]" if "stage" in entry else ""
            lines.append(
                f"  {k:<28s} {_cell(entry['a']):>10s} -> "
                f"{_cell(entry['b']):>10s}  "
                f"delta {format(entry['delta'], fmt)}{stage}"
            )
    if report["attribution"]:
        lines.append("-- attribution (most suspect first) --")
        for i, entry in enumerate(report["attribution"], start=1):
            extra = ""
            if "taxonomy" in entry:
                extra = f"  via {entry['taxonomy']}"
            if "stage" in entry:
                extra += f" @ {entry['stage']}"
            lines.append(
                f"  {i}. {entry['kind']:<9s} {entry['target']:<24s} "
                f"delta {entry['delta']:+g}{extra}"
            )
    gate = report["gate"]
    if gate["failures"]:
        lines.append("-- gate: DRIFTED --")
        for failure in gate["failures"]:
            lines.append(f"  FAIL {failure}")
    else:
        lines.append("gate: clean (no thresholded drift)")
    return "\n".join(lines)


def _cell(value) -> str:
    if value is None:
        return "-"
    return f"{value:.4f}" if isinstance(value, float) else str(value)
