"""Metrics registry: counters, gauges, fixed-bucket histograms.

The quantitative side of the observability layer: where spans answer
"where did the time go in *this* transaction", metrics answer "how many
polls / retries / CRC failures, and what does the SNR distribution look
like" across a whole campaign.

Deliberately Prometheus-shaped (instrument types, label sets, text
exposition via :func:`repro.obs.export.metrics_to_prometheus`) but with
zero dependencies and no background machinery: instruments are plain
objects owned by a :class:`MetricsRegistry`, and multi-reader runs
combine with :meth:`MetricsRegistry.merge` the same way
:meth:`~repro.net.mac.MacStats.merge` combines MAC counters.

Determinism: registries iterate in sorted ``(name, labels)`` order, so
every exporter's output is reproducible for a reproducible workload.
"""

from __future__ import annotations

from dataclasses import dataclass, field


#: Default histogram buckets for second-valued latencies (upper bounds).
LATENCY_BUCKETS_S = (
    0.0001, 0.0005, 0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0
)

#: Buckets for receiver SNR observations [dB].
SNR_DB_BUCKETS = (-10.0, -5.0, 0.0, 2.0, 4.0, 6.0, 8.0, 10.0, 15.0, 20.0, 30.0)

#: Buckets for bit-error-rate observations.
BER_BUCKETS = (1e-5, 1e-4, 1e-3, 1e-2, 0.05, 0.1, 0.2, 0.5)

#: Buckets for supercap state-of-charge observations [V] — knees at the
#: LDO dropout (2.1 V), the power-up threshold (2.5 V), and the rating.
SOC_VOLTS_BUCKETS = (0.5, 1.0, 1.5, 2.0, 2.1, 2.5, 3.0, 3.5, 4.0, 5.0, 5.5)


def _label_key(labels: dict) -> tuple:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


@dataclass
class Counter:
    """Monotonically increasing count."""

    name: str
    labels: tuple = ()
    value: float = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount


@dataclass
class Gauge:
    """Point-in-time value (last write wins)."""

    name: str
    labels: tuple = ()
    value: float = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


@dataclass
class Histogram:
    """Fixed-bucket histogram with cumulative-count exposition.

    ``buckets`` holds ascending upper bounds; observations above the
    last bound land in the implicit ``+Inf`` bucket.  NaN observations
    are counted (in ``count``) but excluded from ``sum`` and buckets —
    a failed decode's ``nan`` BER must not poison the aggregate.
    """

    name: str
    buckets: tuple = LATENCY_BUCKETS_S
    labels: tuple = ()
    bucket_counts: list = field(default_factory=list)
    sum: float = 0.0
    count: int = 0
    nan_count: int = 0

    def __post_init__(self) -> None:
        bounds = tuple(float(b) for b in self.buckets)
        if not bounds:
            raise ValueError("need at least one bucket bound")
        if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ValueError("bucket bounds must be strictly ascending")
        self.buckets = bounds
        if not self.bucket_counts:
            self.bucket_counts = [0] * (len(bounds) + 1)

    def observe(self, value: float) -> None:
        self.count += 1
        if value != value:  # nan
            self.nan_count += 1
            return
        self.sum += value
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                self.bucket_counts[i] += 1
                return
        self.bucket_counts[-1] += 1

    def cumulative(self) -> list:
        """``(upper_bound, cumulative_count)`` pairs, ``+Inf`` last."""
        out = []
        running = 0
        for bound, n in zip(self.buckets, self.bucket_counts):
            running += n
            out.append((bound, running))
        out.append((float("inf"), running + self.bucket_counts[-1]))
        return out

    @property
    def mean(self) -> float:
        finite = self.count - self.nan_count
        return self.sum / finite if finite else float("nan")


class MetricsRegistry:
    """Get-or-create home for instruments, keyed by name + labels.

    >>> reg = MetricsRegistry()
    >>> reg.counter("pab_polls_total", node=3).inc()
    >>> reg.value("pab_polls_total", node=3)
    1.0

    Re-requesting an instrument with the same name and labels returns
    the same object; requesting an existing name as a different
    instrument type raises.
    """

    def __init__(self) -> None:
        self._metrics: dict = {}

    # -- instrument accessors ---------------------------------------------------------

    def _get(self, cls, name: str, labels: dict, **kwargs):
        key = (name, _label_key(labels))
        existing = self._metrics.get(key)
        if existing is not None:
            if not isinstance(existing, cls):
                raise TypeError(
                    f"{name} already registered as {type(existing).__name__}"
                )
            return existing
        metric = cls(name=name, labels=key[1], **kwargs)
        self._metrics[key] = metric
        return metric

    def counter(self, name: str, /, **labels) -> Counter:
        return self._get(Counter, name, labels)

    def gauge(self, name: str, /, **labels) -> Gauge:
        return self._get(Gauge, name, labels)

    def histogram(self, name: str, /, buckets=None, **labels) -> Histogram:
        if buckets is not None:
            return self._get(Histogram, name, labels, buckets=tuple(buckets))
        return self._get(Histogram, name, labels)

    # -- introspection ----------------------------------------------------------------

    def __iter__(self):
        """Instruments in sorted ``(name, labels)`` order (deterministic)."""
        return iter(self._metrics[k] for k in sorted(self._metrics))

    def __len__(self) -> int:
        return len(self._metrics)

    def value(self, name: str, /, **labels) -> float:
        """Current value of a counter/gauge (KeyError if absent)."""
        metric = self._metrics[(name, _label_key(labels))]
        return metric.value

    # -- checkpointing ----------------------------------------------------------------

    def snapshot_state(self) -> dict:
        """JSON-ready dump of every instrument (sorted, deterministic)."""
        items = []
        for key in sorted(self._metrics):
            metric = self._metrics[key]
            name, labels = key
            entry = {"name": name, "labels": [list(pair) for pair in labels]}
            if isinstance(metric, Counter):
                entry["type"] = "counter"
                entry["value"] = metric.value
            elif isinstance(metric, Gauge):
                entry["type"] = "gauge"
                entry["value"] = metric.value
            elif isinstance(metric, Histogram):
                entry["type"] = "histogram"
                entry["buckets"] = list(metric.buckets)
                entry["bucket_counts"] = list(metric.bucket_counts)
                entry["sum"] = metric.sum
                entry["count"] = metric.count
                entry["nan_count"] = metric.nan_count
            else:  # pragma: no cover - no other instrument types exist
                raise TypeError(f"unknown instrument type {type(metric).__name__}")
            items.append(entry)
        return {"instruments": items}

    def restore_state(self, state: dict) -> None:
        """Inverse of :meth:`snapshot_state` (replaces current contents)."""
        self._metrics.clear()
        for entry in state["instruments"]:
            labels = dict(tuple(pair) for pair in entry["labels"])
            kind = entry["type"]
            if kind == "counter":
                self._get(Counter, entry["name"], labels).value = float(entry["value"])
            elif kind == "gauge":
                self._get(Gauge, entry["name"], labels).value = float(entry["value"])
            elif kind == "histogram":
                h = self._get(
                    Histogram, entry["name"], labels, buckets=tuple(entry["buckets"])
                )
                h.bucket_counts = [int(n) for n in entry["bucket_counts"]]
                h.sum = float(entry["sum"])
                h.count = int(entry["count"])
                h.nan_count = int(entry["nan_count"])
            else:
                raise ValueError(f"unknown instrument type {kind!r} in snapshot")

    # -- aggregation ------------------------------------------------------------------

    def merge(self, *others: "MetricsRegistry") -> "MetricsRegistry":
        """A new registry combining this one with ``others``.

        Counters and histograms sum (histograms must agree on bucket
        bounds); gauges are point-in-time, so the first operand that
        defines a gauge wins.  Operands are left untouched — the same
        contract as :meth:`repro.net.mac.MacStats.merge`.
        """
        merged = MetricsRegistry()
        for source in (self, *others):
            for key, metric in source._metrics.items():
                name, labels = key
                if isinstance(metric, Counter):
                    merged._get(Counter, name, dict(labels)).inc(metric.value)
                elif isinstance(metric, Gauge):
                    if key not in merged._metrics:
                        merged._get(Gauge, name, dict(labels)).set(metric.value)
                elif isinstance(metric, Histogram):
                    target = merged._get(
                        Histogram, name, dict(labels), buckets=metric.buckets
                    )
                    if target.buckets != metric.buckets:
                        raise ValueError(
                            f"bucket mismatch merging histogram {name}"
                        )
                    for i, n in enumerate(metric.bucket_counts):
                        target.bucket_counts[i] += n
                    target.sum += metric.sum
                    target.count += metric.count
                    target.nan_count += metric.nan_count
        return merged

    def absorb(self, *others: "MetricsRegistry") -> None:
        """Fold ``others`` into this registry in place.

        Counters and histograms accumulate exactly as in :meth:`merge`;
        gauges are *last-write-wins* — each operand's gauge overwrites
        the current value, in operand order.  This is the merge the
        parallel reader uses to replay per-node staging registries:
        replaying them in sorted node order reproduces what sequential
        execution would have written, including the final gauge values.
        """
        for source in others:
            for key, metric in source._metrics.items():
                name, labels = key
                if isinstance(metric, Counter):
                    self._get(Counter, name, dict(labels)).inc(metric.value)
                elif isinstance(metric, Gauge):
                    self._get(Gauge, name, dict(labels)).set(metric.value)
                elif isinstance(metric, Histogram):
                    target = self._get(
                        Histogram, name, dict(labels), buckets=metric.buckets
                    )
                    if target.buckets != metric.buckets:
                        raise ValueError(
                            f"bucket mismatch absorbing histogram {name}"
                        )
                    for i, n in enumerate(metric.bucket_counts):
                        target.bucket_counts[i] += n
                    target.sum += metric.sum
                    target.count += metric.count
                    target.nan_count += metric.nan_count


def set_build_info(registry: "MetricsRegistry", *, version: str | None = None,
                   schema: int | None = None) -> Gauge:
    """Register the ``pab_build_info`` gauge (value 1, identity labels).

    The Prometheus build-info convention: a constant gauge whose labels
    carry the code version and the telemetry stream-schema version, so
    every scraped or streamed snapshot is attributable to the exact
    code + contract that produced it.  Defaults come from
    ``repro.__version__`` and
    :data:`repro.obs.stream.SCHEMA_VERSION`.
    """
    if version is None:
        from repro import __version__ as version
    if schema is None:
        from repro.obs.stream import SCHEMA_VERSION as schema
    gauge = registry.gauge(
        "pab_build_info", version=str(version), schema=str(schema)
    )
    gauge.set(1.0)
    return gauge
