"""Streaming telemetry bus: incremental campaign observability.

Everything built so far — spans, metrics, the fault
:class:`~repro.faults.events.EventLog`, energy ledgers, SLO burn — is
batch-shaped: it accumulates in memory and is exported after the
campaign ends.  This module adds the live half: a deterministic,
disabled-by-default :class:`TelemetryBus` that producers publish to
*incrementally*, and composable sinks that consume the stream — a
rotating JSONL writer (:class:`JsonlStreamSink`), the bounded
ring-buffer flight recorder (:class:`repro.obs.recorder.FlightRecorder`),
a stdlib-only Prometheus snapshot endpoint
(:class:`MetricsSnapshotServer`), and the :class:`StreamAggregator`
behind ``repro tail``.

Event contract (version :data:`SCHEMA_VERSION`)
-----------------------------------------------

Each event is one JSON object per line, sorted keys, compact
separators::

    {"data":{...},"kind":"round","node":-1,"schema":1,"seq":42,
     "source":"reader","t":17.0}

``schema``
    The stream schema version (this module's :data:`SCHEMA_VERSION`).
    Consumers must reject majors they don't understand.
``seq``
    Monotonic per-stream sequence number.  Appending to an existing
    stream file (``repro resume --stream-out``) continues the
    numbering (:meth:`JsonlStreamSink.last_seq`).
``t``
    The producer's virtual clock (polling rounds for the reader
    stack).  Never a wall clock, so streams are byte-reproducible.
``node``
    Node address the event concerns; ``-1`` for fleet-wide events.
``kind`` / ``source`` / ``data``
    See the table below.  ``data`` payloads are JSON-ready dicts;
    non-finite floats are emitted as Python's ``NaN``/``Infinity``
    tokens (the stdlib ``json`` round-trips them exactly, which the
    streamed == batch guarantee depends on).

=================  =========  ==================================================
kind               source     data payload
=================  =========  ==================================================
``stream_start``   cli/bus    version, schema, campaign metadata; appears once
                              per stream segment (again after a resume)
``event``          log        one :meth:`~repro.faults.events.Event.to_dict` —
                              faults, retries, state transitions, worker
                              restarts/crashes, shard quarantines
``span``           tracer     one finished span
                              (:func:`repro.obs.export.span_to_dict`)
``metrics``        reader     ``{"values": {"name{labels}": value}}`` —
                              counters/gauges that changed this round, as
                              *absolute* values (idempotent to replay)
``soc``            ledger     one ledger round record (SoC volts, harvested /
                              consumed joules, sustainability)
``slo``            slo        per-objective burn rate / budget remaining /
                              compliance after the round
``round``          reader     the reader's round record: delivery outcomes per
                              node, SLO burn, cumulative MAC counters
``postmortem``     obs        one :class:`~repro.obs.postmortem.DecodePostmortem`
``checkpoint``     reader     checkpoint file written (path, round)
``pool_rebuild``   fleet      the engine replaced a watchdog-tainted pool
``profile``        profiler   one per-round profiler snapshot (stage deltas,
                              worker busy/CPU samples, memory high-water) from
                              :meth:`repro.obs.profiler.CampaignProfiler.on_round`
``anomaly``        analytics  one online-detector hit (series, node, stage,
                              detector, severity, score) from
                              :class:`repro.obs.analytics.AnomalyMonitor`
=================  =========  ==================================================

Determinism: the reader publishes only from merge-side code paths (the
shared event log, the per-round observer) in sorted-address order, so
sequential and ``parallel=N`` campaigns produce byte-identical
streams.  Replaying a stream through :class:`StreamAggregator` is
*idempotent* — events are keyed (log seq, round number, (node, round))
with last-write-wins — so a stream appended across a crash/resume
boundary still reduces to exactly the batch end state.
"""

from __future__ import annotations

import contextlib
import json
import pathlib
import time


#: Version of the stream event schema documented above.  Bump the
#: major on breaking payload changes; consumers reject unknown majors.
SCHEMA_VERSION = 1

#: Event kinds the stack publishes (free-form kinds are also allowed;
#: consumers must ignore kinds they don't understand).
EVENT_KINDS = (
    "stream_start", "event", "span", "metrics", "soc", "slo", "round",
    "postmortem", "checkpoint", "pool_rebuild", "profile", "anomaly",
)


def event_to_line(event: dict) -> str:
    """The canonical one-line JSON rendering of a stream event."""
    return json.dumps(event, sort_keys=True, separators=(",", ":"))


def event_from_line(line: str) -> dict:
    """Inverse of :func:`event_to_line` (exact round-trip, NaN included)."""
    return json.loads(line)


class TelemetryBus:
    """Fan-out point between telemetry producers and stream sinks.

    Mirrors the tracer/probe pattern: a process-global instance exists
    but is **disabled by default**, so the hot path pays one attribute
    check and nothing else.  When enabled, :meth:`publish` stamps each
    event with the schema version and a monotonic sequence number and
    hands it to every sink's ``emit`` immediately (the flight recorder
    must be current even if the process dies before the next flush);
    buffered sinks write out on :meth:`flush`, which producers call at
    their natural batch boundary (the reader: once per polling round).

    Parameters
    ----------
    enabled:
        When False, :meth:`publish` returns ``None`` without building
        anything.
    sinks:
        Initial sink objects: anything with ``emit(event)`` and
        ``flush()`` (``close()`` is optional).
    """

    def __init__(self, *, enabled: bool = True, sinks=()) -> None:
        self.enabled = bool(enabled)
        self.sinks = list(sinks)
        #: Next sequence number to assign; set it before the first
        #: publish to continue an existing stream file's numbering.
        self.seq = 0
        #: Wall-clock seconds spent in each :meth:`flush` call — the
        #: per-round flush latencies the soak gate asserts on.
        self.flush_latencies: list = []

    # -- wiring -----------------------------------------------------------------------

    def add_sink(self, sink):
        """Attach a sink; returns it (for chaining)."""
        self.sinks.append(sink)
        return sink

    def recorders(self) -> list:
        """Attached sinks that look like flight recorders (duck-typed:
        they expose ``snapshot()`` and ``dump_jsonl(path)``)."""
        return [
            s for s in self.sinks
            if hasattr(s, "snapshot") and hasattr(s, "dump_jsonl")
        ]

    # -- publishing -------------------------------------------------------------------

    def publish(self, kind: str, *, t: float = 0.0, node: int = -1,
                source: str = "", data: dict | None = None) -> dict | None:
        """Stamp and dispatch one event; returns it (None when disabled)."""
        if not self.enabled:
            return None
        event = {
            "schema": SCHEMA_VERSION,
            "seq": self.seq,
            "t": float(t),
            "node": int(node),
            "kind": str(kind),
            "source": str(source),
            "data": data if data is not None else {},
        }
        self.seq += 1
        for sink in self.sinks:
            sink.emit(event)
        return event

    def flush(self) -> float:
        """Flush every sink; returns (and records) the seconds spent."""
        start = time.perf_counter()
        for sink in self.sinks:
            sink.flush()
        elapsed = time.perf_counter() - start
        self.flush_latencies.append(elapsed)
        return elapsed

    def flush_stats(self) -> dict:
        """``{"count", "p50_s", "p99_s", "max_s"}`` over recorded flushes."""
        lat = sorted(self.flush_latencies)
        if not lat:
            return {"count": 0, "p50_s": 0.0, "p99_s": 0.0, "max_s": 0.0}

        def pct(q: float) -> float:
            # Linear interpolation between closest ranks (numpy's
            # default quantile method): exact at the sample points, and
            # p99 over small counts no longer degenerates to the max
            # the way nearest-rank did.
            pos = q * (len(lat) - 1)
            lo = int(pos)
            hi = min(lo + 1, len(lat) - 1)
            return lat[lo] + (pos - lo) * (lat[hi] - lat[lo])

        return {
            "count": len(lat),
            "p50_s": pct(0.50),
            "p99_s": pct(0.99),
            "max_s": lat[-1],
        }

    def close(self) -> None:
        """Flush, then close every sink that supports closing."""
        if self.enabled:
            self.flush()
        for sink in self.sinks:
            closer = getattr(sink, "close", None)
            if closer is not None:
                closer()


# ---------------------------------------------------------------------------
# Process-global bus (disabled by default, like the tracer and probes)
# ---------------------------------------------------------------------------

_GLOBAL_BUS = TelemetryBus(enabled=False)


def get_bus() -> TelemetryBus:
    """The process-global telemetry bus (a disabled one until installed)."""
    return _GLOBAL_BUS


def set_bus(bus: TelemetryBus) -> TelemetryBus:
    """Install ``bus`` globally; returns the previous one."""
    global _GLOBAL_BUS
    previous = _GLOBAL_BUS
    _GLOBAL_BUS = bus
    return previous


@contextlib.contextmanager
def use_bus(bus: TelemetryBus):
    """Temporarily install ``bus`` as the global bus."""
    previous = set_bus(bus)
    try:
        yield bus
    finally:
        set_bus(previous)


# ---------------------------------------------------------------------------
# Sinks
# ---------------------------------------------------------------------------

class MemorySink:
    """Keep every event in a list (tests and in-process consumers)."""

    def __init__(self) -> None:
        self.events: list = []

    def emit(self, event: dict) -> None:
        self.events.append(event)

    def flush(self) -> None:  # pragma: no cover - nothing buffered
        pass


class JsonlStreamSink:
    """Append-mode JSONL stream writer with size-based rotation.

    Events buffer in memory between :meth:`flush` calls (one syscall
    batch per polling round, not per event).  The file is opened in
    append mode on every flush, so a resumed campaign (``repro resume
    --stream-out FILE``) extends the existing stream instead of
    truncating it — pair with :meth:`last_seq` to continue the bus's
    sequence numbering across the boundary.

    Rotation: when ``max_bytes`` is set and the file exceeds it after
    a flush, the file is rotated to ``FILE.1`` (existing ``FILE.N``
    shift up; at most ``max_files`` rotated generations are kept) and
    the next flush starts a fresh ``FILE``.
    """

    def __init__(self, path, *, max_bytes: int | None = None,
                 max_files: int = 3) -> None:
        if max_bytes is not None and max_bytes <= 0:
            raise ValueError("max_bytes must be positive when given")
        if max_files < 1:
            raise ValueError("max_files must be >= 1")
        self.path = pathlib.Path(path)
        self.max_bytes = max_bytes
        self.max_files = int(max_files)
        self._pending: list[str] = []

    def emit(self, event: dict) -> None:
        self._pending.append(event_to_line(event))

    def flush(self) -> None:
        if not self._pending:
            return
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with self.path.open("a") as fh:
            fh.write("\n".join(self._pending) + "\n")
        self._pending.clear()
        if (
            self.max_bytes is not None
            and self.path.stat().st_size >= self.max_bytes
        ):
            self._rotate()

    def _rotate(self) -> None:
        oldest = self.path.with_name(f"{self.path.name}.{self.max_files}")
        if oldest.exists():
            oldest.unlink()
        for i in range(self.max_files - 1, 0, -1):
            src = self.path.with_name(f"{self.path.name}.{i}")
            if src.exists():
                src.rename(self.path.with_name(f"{self.path.name}.{i + 1}"))
        self.path.rename(self.path.with_name(f"{self.path.name}.1"))

    def close(self) -> None:
        self.flush()

    @staticmethod
    def last_seq(path) -> int | None:
        """The last event's ``seq`` in an existing stream file, or
        ``None`` (missing/empty file).  Feed ``last_seq + 1`` to
        :attr:`TelemetryBus.seq` before resuming a streamed campaign so
        the appended segment continues the numbering."""
        p = pathlib.Path(path)
        if not p.exists():
            return None
        last = None
        with p.open() as fh:
            for line in fh:
                if line.strip():
                    last = line
        if last is None:
            return None
        try:
            return int(json.loads(last)["seq"])
        except (ValueError, KeyError, TypeError):
            return None


class MetricsSnapshotServer:
    """Serve a registry's Prometheus exposition over stdlib HTTP.

    ``GET /metrics`` renders
    :func:`repro.obs.export.metrics_to_prometheus` at request time;
    ``GET /healthz`` answers ``ok``.  The server runs on a daemon
    thread; ``port=0`` binds an ephemeral port (read :attr:`port` after
    :meth:`start`).  The registry is read while the campaign mutates
    it — a scrape that races a write is retried once and answers 503 if
    the registry will not settle; campaign determinism is untouched
    either way (scrapes never write).
    """

    def __init__(self, registry, *, port: int = 0,
                 host: str = "127.0.0.1") -> None:
        self.registry = registry
        self.host = host
        self.port = int(port)
        self._httpd = None
        self._thread = None

    def start(self) -> int:
        """Bind and serve in the background; returns the bound port."""
        import http.server
        import threading

        from repro.obs.export import metrics_to_prometheus

        registry = self.registry

        class Handler(http.server.BaseHTTPRequestHandler):
            def do_GET(self):  # noqa: N802 - stdlib API name
                if self.path == "/healthz":
                    body = b"ok\n"
                    ctype = "text/plain; charset=utf-8"
                elif self.path in ("/metrics", "/"):
                    try:
                        text = metrics_to_prometheus(registry)
                    except RuntimeError:
                        try:  # registry mutated mid-iteration; retry once
                            text = metrics_to_prometheus(registry)
                        except RuntimeError:
                            self.send_response(503)
                            self.end_headers()
                            return
                    body = text.encode()
                    ctype = "text/plain; version=0.0.4; charset=utf-8"
                else:
                    self.send_response(404)
                    self.end_headers()
                    return
                self.send_response(200)
                self.send_header("Content-Type", ctype)
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def log_message(self, *args):  # noqa: D102 - silence stderr
                pass

        self._httpd = http.server.ThreadingHTTPServer(
            (self.host, self.port), Handler
        )
        self.port = self._httpd.server_address[1]
        self._thread = threading.Thread(
            target=self._httpd.serve_forever, daemon=True,
            name="pab-metrics-server",
        )
        self._thread.start()
        return self.port

    def stop(self) -> None:
        """Shut the server down (idempotent)."""
        if self._httpd is not None:
            self._httpd.shutdown()
            self._httpd.server_close()
            self._httpd = None
            self._thread = None

    def __enter__(self):
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.stop()


# ---------------------------------------------------------------------------
# Stream consumption (repro tail)
# ---------------------------------------------------------------------------

class _ReplayLedger:
    """Duck-typed stand-in for an EnergyLedger: just ``round_history``."""

    def __init__(self) -> None:
        self.round_history: list = []


class StreamAggregator:
    """Reduce a telemetry stream back to the batch campaign state.

    Feed events (parsed dicts) in file order; the aggregator rebuilds
    the reader's round log, the fault event log, and per-node energy
    round histories — exactly the inputs
    :func:`repro.obs.timeline.build_timeline` consumes — so a streamed
    campaign's timeline and SLO numbers reproduce the batch ones
    byte-for-byte.

    Reduction is idempotent: ``event`` kinds key on the log sequence
    number, ``round`` kinds on the round number, ``soc`` kinds on
    ``(node, round)``, all last-write-wins.  A stream appended across a
    kill/resume boundary replays the overlap (the rounds between the
    restored checkpoint and the crash) twice with identical payloads,
    so the reduced state is unchanged — no special-casing needed.
    """

    def __init__(self, *, metrics=None) -> None:
        self.segments = 0          # stream_start events seen
        self.schema: int | None = None
        self._events: dict = {}    # log seq -> Event
        self._rounds: dict = {}    # round number -> round-log record
        self._energy: dict = {}    # (node, round) -> ledger round record
        self._slo: dict = {}       # round number -> slo sample
        self._profiles: dict = {}  # round number -> profiler snapshot
        self._anomalies: dict = {} # (round, series, node, detector) -> envelope
        self.metrics_values: dict = {}  # "name{labels}" -> latest value
        self.postmortems: list = []
        self.checkpoints: list = []
        self.spans: list = []
        #: Envelope kinds this consumer does not understand, counted
        #: per kind.  Unknown kinds are skipped, never fatal: a schema-1
        #: producer is allowed to add kinds (as ``anomaly`` was added
        #: after ``profile``), and an older consumer must degrade to
        #: ignoring them.  Mirrored into
        #: ``pab_stream_unknown_kinds_total{kind=...}`` when the
        #: aggregator was built with a metrics registry.
        self.unknown_kinds: dict = {}
        self.metrics = metrics

    # -- ingestion --------------------------------------------------------------------

    def feed(self, event: dict) -> dict:
        """Reduce one stream event; returns it (for chaining)."""
        schema = int(event.get("schema", 0))
        if schema > SCHEMA_VERSION:
            raise ValueError(
                f"stream schema {schema} is newer than supported "
                f"({SCHEMA_VERSION}); upgrade the consumer"
            )
        if self.schema is None:
            self.schema = schema
        kind = event.get("kind")
        data = event.get("data", {})
        if kind == "stream_start":
            self.segments += 1
        elif kind == "event":
            from repro.faults.events import Event

            parsed = Event.from_dict(data)
            self._events[parsed.seq] = parsed
        elif kind == "round":
            record = {
                "t": float(data["t"]),
                "outcomes": {
                    int(addr): info
                    for addr, info in data.get("outcomes", {}).items()
                },
            }
            if "burn" in data:
                record["burn"] = data["burn"]
            if "mac" in data:
                record["mac"] = {
                    int(addr): sample
                    for addr, sample in data["mac"].items()
                }
            self._rounds[int(record["t"])] = record
        elif kind == "soc":
            self._energy[(int(event.get("node", -1)), int(float(data["t"])))] = data
        elif kind == "slo":
            self._slo[int(float(event.get("t", 0.0)))] = data
        elif kind == "metrics":
            self.metrics_values.update(data.get("values", {}))
        elif kind == "postmortem":
            self.postmortems.append(data)
        elif kind == "checkpoint":
            self.checkpoints.append(data)
        elif kind == "span":
            self.spans.append(data)
        elif kind == "profile":
            # Round-keyed, last-write-wins: idempotent across a
            # crash/resume overlap like every other reduction here.
            self._profiles[int(data.get("round", event.get("t", 0)))] = data
        elif kind == "anomaly":
            # Keyed on the detection's identity rather than the
            # envelope seq: a resumed stream re-emits the overlap's
            # detections under fresh seq numbers, and last-write-wins
            # on (round, series, node, detector) keeps the reduction
            # idempotent like every other kind here.
            key = (
                int(data.get("round", event.get("t", -1))),
                str(data.get("series", "")),
                int(data.get("node", event.get("node", -1))),
                str(data.get("detector", "")),
            )
            self._anomalies[key] = event
        elif kind in EVENT_KINDS:
            pass    # known kind with no reduced state (pool_rebuild)
        elif kind is not None:
            # Forward compatibility: skip-and-count kinds from newer
            # producers instead of treating schema-1's kind set as
            # closed.
            self.unknown_kinds[kind] = self.unknown_kinds.get(kind, 0) + 1
            if self.metrics is not None:
                self.metrics.counter(
                    "pab_stream_unknown_kinds_total", kind=kind
                ).inc()
        return event

    def feed_line(self, line: str) -> dict | None:
        """Parse and :meth:`feed` one JSONL line (skips blanks)."""
        line = line.strip()
        if not line:
            return None
        return self.feed(event_from_line(line))

    def feed_file(self, path) -> int:
        """Feed every line of a stream file; returns events consumed."""
        n = 0
        with pathlib.Path(path).open() as fh:
            for line in fh:
                if self.feed_line(line) is not None:
                    n += 1
        return n

    # -- reduced state ----------------------------------------------------------------

    @property
    def round_log(self) -> list:
        """Round-log records in round order (the reader's shape)."""
        return [self._rounds[r] for r in sorted(self._rounds)]

    def event_log(self):
        """The reduced fault :class:`~repro.faults.events.EventLog`."""
        from repro.faults.events import EventLog

        log = EventLog()
        log.events = [self._events[s] for s in sorted(self._events)]
        return log

    def energy_ledgers(self) -> dict:
        """``{node: ledger-like}`` with per-round histories rebuilt."""
        out: dict = {}
        for (node, rnd) in sorted(self._energy):
            out.setdefault(node, _ReplayLedger()).round_history.append(
                self._energy[(node, rnd)]
            )
        return out

    def timeline_rows(self) -> list:
        """The campaign timeline, byte-identical to the batch build."""
        from repro.obs.timeline import build_timeline

        return build_timeline(
            self.round_log, log=self.event_log(),
            ledgers=self.energy_ledgers(),
        )

    def final_burn(self) -> dict:
        """The last round's per-objective SLO burn rates ({} if none)."""
        if not self._rounds:
            return {}
        return dict(self._rounds[max(self._rounds)].get("burn", {}))

    def final_slo(self) -> dict:
        """The last published ``slo`` sample ({} if none streamed)."""
        if not self._slo:
            return {}
        return dict(self._slo[max(self._slo)])

    def rounds_observed(self) -> int:
        return len(self._rounds)

    @property
    def profiles(self) -> list:
        """Profiler round snapshots in round order ([] if none streamed)."""
        return [self._profiles[r] for r in sorted(self._profiles)]

    def hot_stage(self, rnd: int) -> tuple | None:
        """``(stage, fraction_of_round)`` from a round's profile event.

        The stage with the largest span total in round ``rnd``'s
        profiler snapshot (ties break to the lexicographically first
        name, so the answer is deterministic), or ``None`` when the
        stream carries no stage attribution for that round.

        When the snapshot contains ``link.*`` stages, only those
        compete (and supply the fraction denominator): the wrapper
        spans (``reader.poll_round``, ``mac.poll``) enclose every link
        stage, so the raw maximum would always name the outermost
        wrapper instead of where the time actually goes.
        """
        profile = self._profiles.get(rnd)
        if not profile:
            return None
        stages = profile.get("stages") or {}
        link_stages = {
            name: entry for name, entry in stages.items()
            if name.startswith("link.")
        }
        pool = link_stages or stages
        if not pool:
            return None
        top = max(
            sorted(pool), key=lambda name: pool[name].get("total_s", 0.0)
        )
        total = sum(e.get("total_s", 0.0) for e in pool.values()) or 1.0
        return top, pool[top].get("total_s", 0.0) / total

    def delivery_totals(self) -> dict:
        """Cumulative polled/delivered counts over the whole stream."""
        polled = delivered = 0
        for record in self._rounds.values():
            for info in record["outcomes"].values():
                polled += int(bool(info.get("polled", False)))
                delivered += int(bool(info.get("delivered", False)))
        return {"polled": polled, "delivered": delivered}

    def round_line(self, rnd: int) -> str:
        """One-line live rendering of a round (the ``repro tail`` view)."""
        record = self._rounds[rnd]
        outcomes = record["outcomes"]
        polled = sum(1 for i in outcomes.values() if i.get("polled"))
        delivered = sum(1 for i in outcomes.values() if i.get("delivered"))
        parts = [f"round {rnd:>4d}", f"delivered {delivered}/{polled}"]
        socs = [
            self._energy[(node, rnd)]["soc_v"]
            for node in sorted(outcomes)
            if (node, rnd) in self._energy
        ]
        if socs:
            parts.append(f"soc_min {min(socs):.2f}V")
        burn = record.get("burn", {})
        if burn:
            parts.append(
                "burn " + " ".join(
                    f"{obj[:5]}={_fmt_burn(burn[obj])}"
                    for obj in sorted(burn)
                )
            )
        churn = sum(
            1 for e in self._events.values()
            if str(e.kind) == "state" and int(e.t) == rnd
        )
        if churn:
            parts.append(f"churn {churn}")
        hot = self.hot_stage(rnd)
        if hot is not None:
            name, fraction = hot
            parts.append(f"hot {name.split('.')[-1]} {fraction:.0%}")
        return "  ".join(parts)

    @property
    def anomalies(self) -> list:
        """Anomaly envelopes ordered (round, series, node, detector)."""
        return [self._anomalies[k] for k in sorted(self._anomalies)]

    def anomalies_for_round(self, rnd: int) -> list:
        """The round's anomaly envelopes, same ordering as above."""
        return [
            self._anomalies[k]
            for k in sorted(self._anomalies)
            if k[0] == int(rnd)
        ]

    def anomaly_counts(self) -> dict:
        """``{severity: count}`` over every reduced anomaly."""
        out: dict = {}
        for event in self._anomalies.values():
            sev = event.get("data", {}).get("severity", "warn")
            out[sev] = out.get(sev, 0) + 1
        return out

    @staticmethod
    def anomaly_line(event: dict) -> str:
        """One-line highlighted rendering of an anomaly envelope.

        The ``!!`` prefix is the highlight — it greps cleanly and
        survives pipes where ANSI color would not.
        """
        data = event.get("data", {})
        node = int(data.get("node", event.get("node", -1)))
        where = f"node {node}" if node >= 0 else "fleet"
        stage = data.get("stage", "")
        series = data.get("series", "?")
        return (
            f"!! {data.get('severity', 'warn'):<8s} "
            f"round {int(data.get('round', event.get('t', -1))):>4d}  "
            f"{where}  {series}"
            + (f" [{stage}]" if stage else "")
            + f"  {data.get('detector', '?')}"
            f" score={_fmt_burn(data.get('score'))}"
            f" value={_fmt_burn(data.get('value'))}"
            f" expected={_fmt_burn(data.get('expected'))}"
        )


def _fmt_burn(value) -> str:
    try:
        value = float(value)
    except (TypeError, ValueError):
        return str(value)
    if value != value:
        return "-"
    return f"{value:.2f}"
