"""Deployment planning: coverage maps and channel assignment.

A downstream user's first question is "will my deployment work?" — can a
node at position X power up from the projector at position Y, and with
what uplink SNR margin?  This module answers it with the same physics the
link simulation uses, evaluated on a grid:

* :func:`powerup_coverage` — where in the tank a battery-free node can
  cold-start (the harvesting envelope, Fig. 9 generalised to 2-D),
* :func:`snr_coverage` — the predicted uplink SNR at each grid point,
* :class:`DeploymentPlan` — channel assignment for a set of node
  positions against a channel plan, with per-node feasibility checks.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.acoustics.channel import AcousticChannel
from repro.acoustics.geometry import Position, Tank
from repro.core.link import BackscatterLink
from repro.core.projector import Projector
from repro.net.fdma import ChannelPlan
from repro.node.energy import PowerUpSimulator
from repro.node.node import PABNode


@dataclass(frozen=True)
class CoverageMap:
    """A scalar field sampled over the tank's horizontal plane.

    Attributes
    ----------
    x_coords, y_coords:
        Grid axes [m].
    values:
        Array (len(y), len(x)) of the sampled quantity.
    depth_m:
        The z plane sampled.
    quantity:
        Label ("powerup", "snr_db").
    """

    x_coords: np.ndarray
    y_coords: np.ndarray
    values: np.ndarray
    depth_m: float
    quantity: str

    @property
    def coverage_fraction(self) -> float:
        """Fraction of finite, truthy samples (powered / decodable)."""
        finite = np.isfinite(self.values)
        if not np.any(finite):
            return 0.0
        return float(np.mean(self.values[finite] > 0))

    def value_at(self, x: float, y: float) -> float:
        """Nearest-sample lookup."""
        i = int(np.argmin(np.abs(self.y_coords - y)))
        j = int(np.argmin(np.abs(self.x_coords - x)))
        return float(self.values[i, j])


def _grid(tank: Tank, resolution_m: float, margin_m: float):
    xs = np.arange(margin_m, tank.length - margin_m + 1e-9, resolution_m)
    ys = np.arange(margin_m, tank.width - margin_m + 1e-9, resolution_m)
    return xs, ys


def powerup_coverage(
    tank: Tank,
    projector: Projector,
    *,
    depth_m: float | None = None,
    resolution_m: float = 0.5,
    margin_m: float = 0.2,
    node_factory=None,
) -> CoverageMap:
    """Grid of power-up feasibility (1.0 = cold start possible).

    Uses the incoherent channel gain (the energy-budget convention) and
    the node's harvesting chain at its own channel frequency.
    """
    if node_factory is None:
        node_factory = lambda: PABNode(address=1)  # noqa: E731
    node = node_factory()
    f = node.channel_frequency_hz
    sim = PowerUpSimulator(node.active_mode.harvester)
    depth = depth_m if depth_m is not None else tank.depth / 2.0
    xs, ys = _grid(tank, resolution_m, margin_m)
    values = np.zeros((len(ys), len(xs)))
    p_pos = Position(*projector_position_of(projector, tank))
    for i, y in enumerate(ys):
        for j, x in enumerate(xs):
            target = Position(float(x), float(y), depth)
            if target.distance_to(p_pos) < 1e-6:
                values[i, j] = 1.0
                continue
            channel = AcousticChannel(
                tank, p_pos, target, sample_rate=96_000.0, frequency_hz=f,
            )
            p_node = projector.source_pressure_pa * channel.incoherent_gain()
            values[i, j] = 1.0 if sim.can_power_up(p_node, f) else 0.0
    return CoverageMap(
        x_coords=xs, y_coords=ys, values=values, depth_m=depth,
        quantity="powerup",
    )


def snr_coverage(
    tank: Tank,
    projector: Projector,
    hydrophone_position: Position,
    *,
    depth_m: float | None = None,
    resolution_m: float = 0.5,
    margin_m: float = 0.2,
    node_factory=None,
) -> CoverageMap:
    """Grid of predicted uplink SNR [dB] from the link budget."""
    if node_factory is None:
        node_factory = lambda: PABNode(address=1)  # noqa: E731
    depth = depth_m if depth_m is not None else tank.depth / 2.0
    xs, ys = _grid(tank, resolution_m, margin_m)
    values = np.full((len(ys), len(xs)), np.nan)
    p_pos = Position(*projector_position_of(projector, tank))
    for i, y in enumerate(ys):
        for j, x in enumerate(xs):
            target = Position(float(x), float(y), depth)
            if (
                target.distance_to(p_pos) < 1e-6
                or target.distance_to(hydrophone_position) < 1e-6
            ):
                continue
            node = node_factory()
            link = BackscatterLink(
                tank, projector, p_pos, node, target, hydrophone_position,
            )
            values[i, j] = link.budget().predicted_snr_db
    return CoverageMap(
        x_coords=xs, y_coords=ys, values=values, depth_m=depth,
        quantity="snr_db",
    )


def projector_position_of(projector: Projector, tank: Tank) -> tuple:
    """The projector's position: attribute if present, else a corner."""
    position = getattr(projector, "position", None)
    if position is not None:
        return position.as_tuple()
    return (0.3, tank.width / 2.0, tank.depth / 2.0)


@dataclass
class DeploymentPlan:
    """Channel assignment + feasibility for a set of node placements.

    Parameters
    ----------
    tank:
        Deployment geometry.
    projector:
        The downlink source (position per
        :func:`projector_position_of`).
    channel_plan:
        Available FDMA channels.
    """

    tank: Tank
    projector: Projector
    channel_plan: ChannelPlan

    def plan(self, placements: dict) -> list[dict]:
        """Assign channels to ``{address: Position}`` and check feasibility.

        Channels are handed out in frequency order; each node's power-up
        feasibility is evaluated at its assigned channel.  Returns one
        report dict per node.
        """
        if len(placements) > len(self.channel_plan.frequencies_hz):
            raise ValueError(
                "more nodes than channels: "
                f"{len(placements)} > {len(self.channel_plan.frequencies_hz)}"
            )
        p_pos = Position(*projector_position_of(self.projector, self.tank))
        reports = []
        for index, (address, position) in enumerate(sorted(placements.items())):
            channel = self.channel_plan.assign(address, index)
            node = PABNode(
                address=address, channel_frequencies_hz=(channel.frequency_hz,)
            )
            sim = PowerUpSimulator(node.active_mode.harvester)
            acoustic = AcousticChannel(
                self.tank, p_pos, position,
                sample_rate=96_000.0, frequency_hz=channel.frequency_hz,
            )
            p_node = (
                self.projector.transducer.transmit_pressure(
                    self.projector.drive_voltage_v, channel.frequency_hz
                )
                * acoustic.incoherent_gain()
            )
            reports.append(
                {
                    "address": address,
                    "channel_hz": channel.frequency_hz,
                    "incident_pa": float(p_node),
                    "can_power_up": sim.can_power_up(
                        float(p_node), channel.frequency_hz
                    ),
                }
            )
        return reports
