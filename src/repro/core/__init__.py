"""End-to-end PAB system: the paper's primary contribution.

Composes the substrates (acoustics, piezo, circuits, dsp, node, net)
into the complete system: projector, battery-free backscatter nodes with
recto-piezo tuning, hydrophone receiver, single-link and multi-node
waveform simulations, and the experiment harness that regenerates the
paper's figures.
"""

from repro.rectopiezo import RectoPiezoBank, RectoPiezoMode
from repro.core.projector import Projector, MultiToneDownlink
from repro.core.hydrophone import Hydrophone
from repro.core.link import BackscatterLink, LinkResult, LinkBudget
from repro.core.network import PABNetwork, ConcurrentResult
from repro.core.deployment import (
    CoverageMap,
    DeploymentPlan,
    powerup_coverage,
    snr_coverage,
)
from repro.core.session import MonitoringSession, SessionReport
from repro.core.experiment import (
    ExperimentTable,
    ber_snr_sweep,
    snr_vs_bitrate_sweep,
    powerup_range_sweep,
)

__all__ = [
    "RectoPiezoBank",
    "RectoPiezoMode",
    "Projector",
    "MultiToneDownlink",
    "Hydrophone",
    "BackscatterLink",
    "LinkResult",
    "LinkBudget",
    "PABNetwork",
    "ConcurrentResult",
    "CoverageMap",
    "DeploymentPlan",
    "powerup_coverage",
    "snr_coverage",
    "MonitoringSession",
    "SessionReport",
    "ExperimentTable",
    "ber_snr_sweep",
    "snr_vs_bitrate_sweep",
    "powerup_range_sweep",
]
