"""The hydrophone receiver.

The paper records with an H2a hydrophone (-180 dB re 1V/uPa) into a PC
sound card and decodes offline in MATLAB (Sec. 5.1b).  Here the
:class:`Hydrophone` converts pressure waveforms to voltage and hosts one
:class:`~repro.dsp.demod.BackscatterDemodulator` per active channel —
"The decoder identifies the different transmitted frequencies on the
downlink using FFT and peak detection" is mirrored by
:meth:`detect_carriers`.
"""

from __future__ import annotations

import numpy as np

from repro.constants import HYDROPHONE_SENSITIVITY_DB
from repro.dsp.demod import BackscatterDemodulator, DemodResult
from repro.dsp.packets import DEFAULT_FORMAT, PacketFormat
from repro.obs.probe import get_probes
from repro.perf.cache import get_cache


class Hydrophone:
    """Pressure-to-voltage conversion plus the receive DSP bench.

    Parameters
    ----------
    sensitivity_db:
        Receive sensitivity [dB re 1 V/uPa].
    sample_rate:
        Recording sample rate [Hz].
    """

    def __init__(
        self,
        sample_rate: float,
        sensitivity_db: float = HYDROPHONE_SENSITIVITY_DB,
    ) -> None:
        if sample_rate <= 0:
            raise ValueError("sample rate must be positive")
        self.sample_rate = sample_rate
        self.sensitivity_db = sensitivity_db

    @property
    def sensitivity_v_per_pa(self) -> float:
        """Linear sensitivity [V/Pa]."""
        return 10.0 ** (self.sensitivity_db / 20.0) * 1e6

    def record(self, pressure_waveform) -> np.ndarray:
        """Convert a pressure waveform [Pa] to the recorded voltage [V]."""
        return np.asarray(pressure_waveform, dtype=float) * self.sensitivity_v_per_pa

    def detect_carriers(
        self,
        recording,
        *,
        min_frequency_hz: float = 5_000.0,
        max_frequency_hz: float = 30_000.0,
        threshold_fraction: float = 0.1,
    ) -> list[float]:
        """FFT peak detection of active downlink carriers (Sec. 5.1b)."""
        x = np.asarray(recording, dtype=float)
        if x.ndim != 1 or len(x) < 64:
            raise ValueError("recording too short for carrier detection")
        spectrum = np.abs(np.fft.rfft(x * np.hanning(len(x))))
        freqs = np.fft.rfftfreq(len(x), 1.0 / self.sample_rate)
        band = (freqs >= min_frequency_hz) & (freqs <= max_frequency_hz)
        # Peaks must be prominent against the whole recording, not merely
        # the strongest leakage inside the search band.
        global_max = float(spectrum.max())
        spectrum = np.where(band, spectrum, 0.0)
        if global_max <= 0 or spectrum.max() <= 0:
            return []
        floor = threshold_fraction * global_max
        carriers: list[float] = []
        remaining = spectrum.copy()
        # Greedy peak picking with a 500 Hz exclusion zone per peak.
        while remaining.max() > floor:
            idx = int(np.argmax(remaining))
            carriers.append(float(freqs[idx]))
            exclusion = np.abs(freqs - freqs[idx]) < 500.0
            remaining[exclusion] = 0.0
        return sorted(carriers)

    def demodulator(
        self,
        carrier_hz: float,
        bitrate: float,
        *,
        packet_format: PacketFormat = DEFAULT_FORMAT,
        detection_threshold: float = 0.5,
    ) -> BackscatterDemodulator:
        """A demodulator bound to this hydrophone's sample rate.

        Demodulators are stateless (pure configuration), so identical
        requests share one memoized instance instead of re-validating
        and re-deriving per decode.
        """
        key = (
            float(carrier_hz),
            float(bitrate),
            float(self.sample_rate),
            packet_format,
            float(detection_threshold),
        )
        return get_cache("demodulators", maxsize=64).get_or_compute(
            key,
            lambda: BackscatterDemodulator(
                carrier_hz,
                bitrate,
                self.sample_rate,
                packet_format=packet_format,
                detection_threshold=detection_threshold,
            ),
        )

    def demodulate(
        self,
        recording,
        carrier_hz: float,
        bitrate: float,
        *,
        packet_format: PacketFormat = DEFAULT_FORMAT,
        detection_threshold: float = 0.5,
    ) -> DemodResult:
        """One-call decode of a recording on one channel.

        When signal probes are enabled the decode publishes a
        ``hydrophone.demodulate`` tap: the (decimated) recording plus
        the decode outcome — CRC status, SNR, CFO, preamble-detection
        metric, and the demodulator's failure reason if any.
        """
        dem = self.demodulator(
            carrier_hz,
            bitrate,
            packet_format=packet_format,
            detection_threshold=detection_threshold,
        )
        result = dem.demodulate(recording)
        probes = get_probes()
        if probes.wants("hydrophone.demodulate"):
            detection = result.detection
            probes.capture(
                "hydrophone.demodulate", "decode",
                waveform=np.asarray(recording, dtype=float),
                sample_rate=self.sample_rate,
                carrier_hz=float(carrier_hz), bitrate=float(bitrate),
                crc_ok=result.success, snr_db=result.snr_db,
                cfo_hz=result.cfo_hz,
                detection_metric=(
                    detection.metric if detection is not None else float("nan")
                ),
                detection_threshold=float(detection_threshold),
                chips=len(result.chip_amplitudes),
                error=result.error or "",
            )
        return result
