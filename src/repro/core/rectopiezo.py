"""Re-export of :mod:`repro.rectopiezo` under the core namespace.

The implementation lives at the package top level so that
:mod:`repro.node.node` can use it without importing the rest of
:mod:`repro.core` (which itself depends on the node).
"""

from repro.rectopiezo import RectoPiezoBank, RectoPiezoMode

__all__ = ["RectoPiezoBank", "RectoPiezoMode"]
