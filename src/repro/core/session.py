"""Long-horizon monitoring sessions: energy and communication coupled.

The paper's vision is long-term ocean monitoring (Sec. 1): a projector
periodically polls battery-free sensors for readings.  Over such a
session the node's supercapacitor is a dynamic reservoir — it drains
while the node decodes and backscatters, and recharges while the
carrier illuminates it between polls.  Whether a polling schedule is
*sustainable* depends on that balance, not just on the instantaneous
power-up check.

:class:`MonitoringSession` simulates this timeline in the envelope
domain (the same engine as the Fig. 9 experiments), using the waveform
engine's airtime model for each exchange:

* cold start from an empty capacitor,
* per-poll: decode energy + backscatter energy drawn from the cap,
* between polls: recharge from the carrier (or none, if the projector
  duty-cycles off),
* brownout and recovery when a poll overdraws the reservoir.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.circuits.harvester import EnergyHarvester
from repro.circuits.regulator import LowDropoutRegulator
from repro.circuits.storage import Supercapacitor
from repro.constants import POWER_UP_THRESHOLD_V
from repro.dsp.packets import PacketFormat
from repro.dsp.pwm import PWMCode
from repro.node.power import NodePowerModel, PowerState


@dataclass(frozen=True)
class PollOutcome:
    """One poll in the session timeline.

    Attributes
    ----------
    time_s:
        Session time at the start of the poll.
    delivered:
        Whether the node completed the reply without browning out.
    cap_voltage_before_v, cap_voltage_after_v:
        Supercapacitor state around the poll.
    """

    time_s: float
    delivered: bool
    cap_voltage_before_v: float
    cap_voltage_after_v: float


@dataclass
class SessionReport:
    """Outcome of a monitoring session.

    Attributes
    ----------
    polls:
        Per-poll outcomes.
    cold_start_s:
        Time to first power-up (inf if never).
    brownouts:
        Number of polls that collapsed the rail.
    energy_trace:
        (time_s, cap_voltage_v) samples.
    """

    polls: list = field(default_factory=list)
    cold_start_s: float = float("inf")
    brownouts: int = 0
    energy_trace: list = field(default_factory=list)

    @property
    def delivery_ratio(self) -> float:
        if not self.polls:
            return 0.0
        return sum(p.delivered for p in self.polls) / len(self.polls)

    @property
    def readings_delivered(self) -> int:
        return sum(p.delivered for p in self.polls)


class MonitoringSession:
    """Simulate a periodic polling schedule against the energy budget.

    Parameters
    ----------
    harvester:
        The node's harvesting chain.
    incident_pressure_pa:
        Carrier pressure at the node while the projector is on.
    poll_interval_s:
        Time between poll starts.
    bitrate:
        Uplink bitrate [bit/s].
    payload_bytes:
        Sensor payload per reply.
    carrier_duty:
        Fraction of the inter-poll gap the projector keeps the carrier
        on for recharging (1.0 = always on; 0 = off between polls).
    """

    #: Envelope-domain integration step [s].
    DT_S = 2e-3

    def __init__(
        self,
        harvester: EnergyHarvester,
        incident_pressure_pa: float,
        *,
        poll_interval_s: float = 10.0,
        bitrate: float = 1_000.0,
        payload_bytes: int = 4,
        carrier_duty: float = 1.0,
        capacitor: Supercapacitor | None = None,
        power_model: NodePowerModel | None = None,
    ) -> None:
        if incident_pressure_pa < 0:
            raise ValueError("pressure must be non-negative")
        if poll_interval_s <= 0:
            raise ValueError("poll interval must be positive")
        if not 0.0 <= carrier_duty <= 1.0:
            raise ValueError("carrier duty must be in [0, 1]")
        if bitrate <= 0 or payload_bytes < 0:
            raise ValueError("bitrate/payload invalid")
        self.harvester = harvester
        self.pressure = incident_pressure_pa
        self.poll_interval_s = poll_interval_s
        self.bitrate = bitrate
        self.payload_bytes = payload_bytes
        self.carrier_duty = carrier_duty
        self.capacitor = capacitor if capacitor is not None else Supercapacitor()
        self.power_model = power_model if power_model is not None else NodePowerModel()
        self.regulator = LowDropoutRegulator()
        self._frequency = harvester.design_frequency_hz

    # -- airtime model --------------------------------------------------------------

    def poll_durations(self) -> tuple[float, float]:
        """(decode_s, backscatter_s) airtime of one poll."""
        code = PWMCode()
        query_bits = 9 + 16 + 16 + 16
        mean_symbol = (code.symbol_duration(0) + code.symbol_duration(1)) / 2.0
        decode_s = query_bits * mean_symbol
        reply_bits = PacketFormat().overhead_bits() + 8 * self.payload_bytes
        backscatter_s = reply_bits / self.bitrate
        return decode_s, backscatter_s

    # -- the session -----------------------------------------------------------------

    def run(self, duration_s: float) -> SessionReport:
        """Simulate ``duration_s`` of the schedule."""
        if duration_s <= 0:
            raise ValueError("duration must be positive")
        report = SessionReport()
        v_oc, r_out = self.harvester.charging_source(self.pressure, self._frequency)
        decode_s, backscatter_s = self.poll_durations()
        dt = self.DT_S
        time_s = 0.0
        powered = False
        next_poll = 0.0
        trace_stride = max(int(0.25 / dt), 1)
        step = 0

        while time_s < duration_s:
            if not powered:
                # Cold start: everything to the cap.
                self.capacitor.charge_from_source(dt, v_oc, r_out)
                if self.capacitor.voltage_v >= POWER_UP_THRESHOLD_V:
                    powered = True
                    if report.cold_start_s == float("inf"):
                        report.cold_start_s = time_s
            elif time_s >= next_poll:
                outcome = self._run_poll(
                    time_s, v_oc, r_out, decode_s, backscatter_s
                )
                report.polls.append(outcome)
                if not outcome.delivered:
                    report.brownouts += 1
                    powered = self.capacitor.voltage_v >= POWER_UP_THRESHOLD_V
                time_s += decode_s + backscatter_s
                next_poll = time_s + self.poll_interval_s
                continue
            else:
                # Idle between polls: harvest (per duty) against idle draw.
                i_idle = self.power_model.current_a(PowerState.IDLE)
                if self.carrier_duty >= 1.0 or (
                    (time_s - next_poll + self.poll_interval_s)
                    % self.poll_interval_s
                    < self.carrier_duty * self.poll_interval_s
                ):
                    self.capacitor.charge_from_source(
                        dt, v_oc, r_out, i_load_a=i_idle
                    )
                else:
                    self.capacitor.step(dt, i_load_a=i_idle)
                if self.capacitor.voltage_v < self.regulator.minimum_input_v:
                    powered = False
            if step % trace_stride == 0:
                report.energy_trace.append((time_s, self.capacitor.voltage_v))
            step += 1
            time_s += dt
        return report

    def _run_poll(
        self, time_s, v_oc, r_out, decode_s, backscatter_s
    ) -> PollOutcome:
        v_before = self.capacitor.voltage_v
        dt = self.DT_S
        ok = True
        for phase, duration in (
            (PowerState.DECODING, decode_s),
            (PowerState.SENSING, 0.02),
            (PowerState.BACKSCATTER, backscatter_s),
        ):
            i_load = self.power_model.current_a(phase, bitrate=self.bitrate)
            steps = max(int(duration / dt), 1)
            for _ in range(steps):
                self.capacitor.charge_from_source(
                    dt, v_oc, r_out, i_load_a=i_load
                )
                if self.capacitor.voltage_v < self.regulator.minimum_input_v:
                    ok = False
                    break
            if not ok:
                break
        return PollOutcome(
            time_s=time_s,
            delivered=ok,
            cap_voltage_before_v=v_before,
            cap_voltage_after_v=self.capacitor.voltage_v,
        )
