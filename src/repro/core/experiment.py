"""Experiment harness: the sweeps behind the paper's figures.

Each function regenerates the data series of one evaluation figure; the
benchmark suite calls these and prints the same rows the paper plots.
:class:`ExperimentTable` is a small row container with aligned text and
CSV output for the bench reports.
"""

from __future__ import annotations

import io
from dataclasses import dataclass, field

import numpy as np

from repro.acoustics.channel import AcousticChannel
from repro.acoustics.geometry import Position, Tank
from repro.dsp.fm0 import fm0_encode, fm0_ml_decode
from repro.node.energy import PowerUpSimulator


@dataclass
class ExperimentTable:
    """Rows of an experiment report.

    Attributes
    ----------
    title:
        Table caption (e.g. ``"Fig. 7: BER vs SNR"``).
    columns:
        Column names.
    rows:
        Row tuples, one per data point.
    """

    title: str
    columns: tuple
    rows: list = field(default_factory=list)

    def add_row(self, *values) -> None:
        """Append a data point; must match the column count."""
        if len(values) != len(self.columns):
            raise ValueError("row width does not match columns")
        self.rows.append(tuple(values))

    def column(self, name: str) -> list:
        """All values of one column."""
        if name not in self.columns:
            raise KeyError(name)
        idx = self.columns.index(name)
        return [r[idx] for r in self.rows]

    def to_text(self) -> str:
        """Aligned plain-text rendering."""
        out = io.StringIO()
        out.write(f"\n=== {self.title} ===\n")
        widths = [
            max(len(str(c)), max((len(_fmt(r[i])) for r in self.rows), default=0))
            for i, c in enumerate(self.columns)
        ]
        header = "  ".join(str(c).ljust(w) for c, w in zip(self.columns, widths))
        out.write(header + "\n")
        out.write("-" * len(header) + "\n")
        for row in self.rows:
            out.write(
                "  ".join(_fmt(v).ljust(w) for v, w in zip(row, widths)) + "\n"
            )
        return out.getvalue()

    def to_csv(self) -> str:
        """CSV rendering."""
        lines = [",".join(str(c) for c in self.columns)]
        lines += [",".join(_fmt(v) for v in row) for row in self.rows]
        return "\n".join(lines) + "\n"


def _fmt(value) -> str:
    if isinstance(value, float):
        if value != value:  # nan
            return "nan"
        if value == float("inf"):
            return "inf"
        if abs(value) >= 1000 or (abs(value) < 0.01 and value != 0):
            return f"{value:.3e}"
        return f"{value:.3f}"
    return str(value)


# ---------------------------------------------------------------------------
# Fig. 7: BER vs SNR
# ---------------------------------------------------------------------------

def ber_snr_sweep(
    snr_values_db,
    *,
    bits_per_point: int = 20_000,
    seed: int = 0,
    ber_floor: float = 1e-5,
) -> ExperimentTable:
    """Monte-Carlo BER of the ML FM0 decoder across chip SNRs.

    Operates at the post-matched-filter chip level (the waveform chain
    reduces to exactly this after the demodulator's integrate-and-dump),
    which makes 1e-5 BER resolution tractable.  The paper clamps its BER
    floor at 1e-5 because packets are shorter than 1e5 bits; the same
    floor applies here via ``ber_floor``.
    """
    rng = np.random.default_rng(seed)
    table = ExperimentTable(
        title="Fig. 7: BER vs SNR (FM0 ML decoding)",
        columns=("snr_db", "ber", "bits"),
    )
    for snr_db_val in snr_values_db:
        snr_lin = 10.0 ** (float(snr_db_val) / 10.0)
        sigma = 1.0 / np.sqrt(snr_lin)
        errors = 0
        total = 0
        block = 2_000
        while total < bits_per_point:
            n = min(block, bits_per_point - total)
            bits = rng.integers(0, 2, n)
            chips = fm0_encode(bits) * 2.0 - 1.0
            noisy = chips + rng.normal(0.0, sigma, len(chips))
            decoded = fm0_ml_decode(noisy)
            errors += int(np.sum(decoded != bits))
            total += n
        ber = max(errors / total, ber_floor if errors == 0 else errors / total)
        table.add_row(float(snr_db_val), float(ber), total)
    return table


# ---------------------------------------------------------------------------
# Fig. 8: SNR vs backscatter bitrate
# ---------------------------------------------------------------------------

def snr_vs_bitrate_sweep(
    link_factory,
    bitrates,
    query_factory,
    *,
    trials: int = 3,
) -> ExperimentTable:
    """Waveform-level SNR at each backscatter bitrate (paper Fig. 8).

    ``link_factory(bitrate, trial)`` must return a fresh
    :class:`~repro.core.link.BackscatterLink` whose node is configured at
    the bitrate; ``query_factory()`` returns the query to run.
    """
    table = ExperimentTable(
        title="Fig. 8: SNR vs backscatter bitrate",
        columns=("bitrate_bps", "snr_db_mean", "snr_db_std", "trials"),
    )
    for bitrate in bitrates:
        snrs = []
        for trial in range(trials):
            link = link_factory(float(bitrate), trial)
            result = link.run_query(query_factory())
            if result.demod is not None and np.isfinite(result.snr_db):
                snrs.append(result.snr_db)
        if snrs:
            table.add_row(
                float(bitrate), float(np.mean(snrs)), float(np.std(snrs)), len(snrs)
            )
        else:
            table.add_row(float(bitrate), float("nan"), float("nan"), 0)
    return table


# ---------------------------------------------------------------------------
# Fig. 9: maximum power-up distance vs transmit voltage
# ---------------------------------------------------------------------------

def powerup_range_sweep(
    tank: Tank,
    voltages,
    *,
    node_factory,
    projector_factory,
    axis_positions,
    max_order: int = 2,
    frequency_hz: float | None = None,
) -> ExperimentTable:
    """Maximum distance at which a node powers up, per drive voltage.

    ``axis_positions(distance) -> (projector_pos, node_pos)`` places the
    endpoints for a given separation inside the tank;
    ``projector_factory(voltage)`` and ``node_factory()`` build the
    hardware.  The search walks distances outward until power-up fails
    (clamped at the tank's extent, as in the paper: "we do not report
    beyond 5 m for Pool A and 10 m for Pool B").
    """
    table = ExperimentTable(
        title=f"Fig. 9: power-up range vs drive voltage ({tank.name})",
        columns=("voltage_v", "max_distance_m", "clamped"),
    )
    probe = np.arange(0.25, tank.diagonal, 0.25)
    for voltage in voltages:
        projector = projector_factory(float(voltage))
        node = node_factory()
        f = frequency_hz if frequency_hz is not None else projector.carrier_hz
        sim = PowerUpSimulator(node.active_mode.harvester)
        best = 0.0
        clamped = True
        for dist in probe:
            try:
                p_pos, n_pos = axis_positions(float(dist))
            except ValueError:
                # Ran out of tank: the sweep is clamped by geometry, as
                # the paper notes for both pools.
                break
            channel = AcousticChannel(
                tank, p_pos, n_pos,
                sample_rate=96_000.0, frequency_hz=f, max_order=max_order,
            )
            # Energy budget uses the incoherent gain: harvesting
            # integrates power over the reverberant field.
            p_node = projector.source_pressure_pa * channel.incoherent_gain()
            if sim.can_power_up(p_node, f):
                best = float(dist)
            else:
                clamped = False
        table.add_row(float(voltage), best, clamped and best > 0.0)
    return table
