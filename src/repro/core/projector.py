"""The acoustic projector (downlink transmitter).

The paper's transmitter is one of the in-house transducers driven by a
power amplifier from a PC audio jack (Sec. 5.1a).  Here a
:class:`Projector` converts a drive voltage and a query into the source
pressure waveform at 1 m, PWM-modulated onto the carrier; the
:class:`MultiToneDownlink` superimposes several projectors' outputs for
the concurrent-access experiments ("We create an audio file for the
projector which transmits a downlink signal at both frequencies",
Sec. 6.3).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

import math

from repro.dsp.pwm import PWMCode, pwm_encode
from repro.dsp.waveforms import amplitude_modulated_carrier, tone
from repro.net.messages import Query
from repro.node.firmware import DOWNLINK_FORMAT
from repro.perf.cache import get_cache
from repro.piezo.directivity import DirectivityPattern
from repro.piezo.transducer import Transducer


@dataclass
class Projector:
    """A projector on one carrier.

    Parameters
    ----------
    transducer:
        The projecting transducer (the paper used the same in-house
        cylinders as the nodes).
    drive_voltage_v:
        Peak drive voltage from the power amplifier.
    carrier_hz:
        Downlink carrier frequency.
    pwm_code:
        Downlink timing parameters.
    directivity:
        Horizontal beam pattern (omnidirectional by default, like the
        paper's radially vibrating cylinder).
    heading_rad:
        Boresight azimuth when the pattern is directional.
    """

    transducer: Transducer
    drive_voltage_v: float
    carrier_hz: float
    pwm_code: PWMCode = None
    directivity: DirectivityPattern = None
    heading_rad: float = 0.0

    def __post_init__(self) -> None:
        if self.drive_voltage_v < 0:
            raise ValueError("drive voltage must be non-negative")
        if self.carrier_hz <= 0:
            raise ValueError("carrier must be positive")
        if self.pwm_code is None:
            self.pwm_code = PWMCode()
        if self.directivity is None:
            self.directivity = DirectivityPattern(kind="omni")

    @property
    def source_pressure_pa(self) -> float:
        """Carrier-on pressure amplitude at 1 m [Pa]."""
        return float(
            self.transducer.transmit_pressure(self.drive_voltage_v, self.carrier_hz)
        )

    def source_level_db(self) -> float:
        """Source level [dB re 1 uPa @ 1 m]."""
        return self.transducer.source_level_db(self.drive_voltage_v, self.carrier_hz)

    def gain_towards(self, azimuth_rad: float) -> float:
        """Amplitude gain of the beam pattern towards an azimuth."""
        off_axis = (azimuth_rad - self.heading_rad + math.pi) % (
            2.0 * math.pi
        ) - math.pi
        return float(self.directivity.gain(abs(off_axis)))

    def query_waveform(self, query: Query, sample_rate: float) -> np.ndarray:
        """Source pressure waveform of a PWM downlink query [Pa @ 1 m].

        The unit-pressure modulated carrier is memoized per
        ``(query bits, PWM code, carrier, rate)`` — a polling campaign
        repeats the same few queries, and PWM expansion + carrier
        synthesis dominates the projector's cost.  The drive level is
        applied outside the cache so projectors at different voltages
        share templates.
        """
        bits = query.to_packet().to_bits(DOWNLINK_FORMAT)
        key = (
            bits.tobytes(),
            self.pwm_code,
            float(self.carrier_hz),
            float(sample_rate),
        )

        def compute() -> np.ndarray:
            envelope = pwm_encode(bits, self.pwm_code, sample_rate)
            return amplitude_modulated_carrier(
                envelope, self.carrier_hz, sample_rate
            )

        template = get_cache("pwm_templates", maxsize=512).get_or_compute(
            key, compute
        )
        return self.source_pressure_pa * template

    def carrier_waveform(self, duration_s: float, sample_rate: float) -> np.ndarray:
        """Continuous-wave source pressure (the uplink illumination) [Pa @ 1 m]."""
        return tone(
            self.carrier_hz,
            duration_s,
            sample_rate,
            amplitude=self.source_pressure_pa,
        )

    def query_then_carrier(
        self, query: Query, uplink_duration_s: float, sample_rate: float
    ) -> tuple[np.ndarray, int]:
        """Full downlink: query frame followed by CW for the backscatter reply.

        Returns ``(waveform, uplink_start_sample)`` — the node starts
        backscattering once the query ends and the carrier resumes.
        """
        if uplink_duration_s < 0:
            raise ValueError("uplink duration must be non-negative")
        frame = self.query_waveform(query, sample_rate)
        carrier = self.carrier_waveform(uplink_duration_s, sample_rate)
        return np.concatenate([frame, carrier]), len(frame)


class MultiToneDownlink:
    """Several projectors summed into one downlink waveform.

    Used by the FDMA experiments: one physical projector plays an audio
    file containing all channel carriers, which is equivalent to summing
    independent projectors (the transducer is linear at these levels).
    """

    def __init__(self, projectors) -> None:
        self.projectors = list(projectors)
        if not self.projectors:
            raise ValueError("need at least one projector")
        carriers = [p.carrier_hz for p in self.projectors]
        if len(set(carriers)) != len(carriers):
            raise ValueError("projector carriers must be distinct")

    def queries_then_carrier(
        self, queries, uplink_duration_s: float, sample_rate: float
    ) -> tuple[np.ndarray, int]:
        """Each projector sends its query, then all hold CW together.

        Queries are padded to the longest frame so the uplink carriers
        start simultaneously on every channel.
        Returns ``(waveform, uplink_start_sample)``.
        """
        if len(queries) != len(self.projectors):
            raise ValueError("need one query per projector")
        frames = [
            p.query_waveform(q, sample_rate)
            for p, q in zip(self.projectors, queries)
        ]
        longest = max(len(f) for f in frames)
        total_uplink = int(round(uplink_duration_s * sample_rate))
        combined = np.zeros(longest + total_uplink)
        for projector, frame in zip(self.projectors, frames):
            padded_start = longest - len(frame)
            combined[padded_start : padded_start + len(frame)] += frame
            carrier = projector.carrier_waveform(uplink_duration_s, sample_rate)
            combined[longest : longest + len(carrier)] += carrier
        return combined, longest
