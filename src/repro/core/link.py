"""Waveform-level simulation of one projector -> node -> hydrophone link.

This is the heart of the reproduction: a sample-accurate simulation of
the paper's physical loop.

1. The projector emits a PWM query followed by a continuous carrier.
2. The waveform propagates through the tank (multipath image-source
   channel) to the node.
3. The node harvests (power-up check), envelope-detects and decodes the
   query, executes the command, and backscatters its FM0 response by
   switching its reflection coefficient while the carrier illuminates it.
4. The reflected waveform propagates to the hydrophone, where it adds to
   the direct projector arrival and ambient noise.
5. The hydrophone's DSP chain decodes the response.

The reflection is applied to the *analytic* incident signal so that both
the magnitude and phase of the complex reflection coefficient act on the
carrier, multipath distortion included.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.fft
from scipy.signal import hilbert

from repro.acoustics.channel import AcousticChannel
from repro.acoustics.geometry import Position, Tank
from repro.acoustics.noise import AmbientNoiseModel
from repro.dsp.demod import DemodResult
from repro.dsp.filters import butter_bandpass, envelope_detect
from repro.dsp.metrics import bit_error_rate
from repro.dsp.spectral import band_snr_db
from repro.core.hydrophone import Hydrophone
from repro.core.projector import Projector
from repro.net.messages import Query, Response
from repro.node.node import PABNode
from repro.obs.probe import get_probes
from repro.obs.trace import get_tracer
from repro.perf.cache import LRUCache, cache_enabled
from repro.piezo.transducer import Transducer


def reradiation_response(
    transducer: Transducer,
    n_samples: int,
    carrier_hz: float,
    sample_rate: float,
) -> np.ndarray:
    """The rfft-bin gain vector of the transducer's re-radiation filter.

    A pure function of (transducer, length, carrier, rate), split out of
    :func:`apply_reradiation_filter` so callers that filter many
    same-length waveforms — the leg memo and the batched fleet engine —
    can compute it once per length instead of once per waveform.
    """
    freqs = np.fft.rfftfreq(n_samples, 1.0 / sample_rate)
    response = np.ones_like(freqs)
    positive = freqs > 0
    response[positive] = transducer.response(freqs[positive])
    at_carrier = float(transducer.response(carrier_hz))
    if at_carrier > 0:
        response = np.minimum(response / at_carrier, 1.0)
    return response


def apply_reradiation_filter(
    waveform,
    transducer: Transducer,
    carrier_hz: float,
    sample_rate: float,
    *,
    response: np.ndarray | None = None,
) -> np.ndarray:
    """Filter a backscattered waveform through the transducer's resonance.

    The re-radiated wave physically passes through the resonator, so
    modulation sidebands beyond the mechanical bandwidth are attenuated —
    the reason "the SNR significantly drops for bitrates higher than
    3 kbps ... the efficiency of the recto-piezo reduces as the frequency
    moves from its resonance" (Sec. 6.1b).  The response is normalised to
    unity at the carrier so the (already applied) reflection coefficient
    is not double-counted.

    ``response`` may carry a precomputed :func:`reradiation_response`
    for this exact length; passing it changes nothing numerically.

    The transform runs through :mod:`scipy.fft` (pypocketfft), which is
    bit-identical to ``np.fft`` but ~1.7x faster at the awkward
    (often prime) mixture lengths this filter sees.
    """
    x = np.asarray(waveform, dtype=float)
    if len(x) == 0:
        return x.copy()
    spectrum = scipy.fft.rfft(x)
    if response is None:
        response = reradiation_response(
            transducer, len(x), carrier_hz, sample_rate
        )
    return scipy.fft.irfft(spectrum * response, n=len(x))


@dataclass
class LinkBudget:
    """Narrowband link budget summary (fast, no waveforms).

    Attributes
    ----------
    source_pressure_pa:
        Projector pressure at 1 m.
    incident_pressure_pa:
        Pressure amplitude at the node.
    modulation_depth:
        |Gamma_r - Gamma_a| at the carrier.
    uplink_pressure_pa:
        Backscatter modulation amplitude at the hydrophone.
    noise_rms_pa:
        In-band ambient noise RMS at the hydrophone.
    predicted_snr_db:
        Rough post-matched-filter SNR prediction.
    """

    source_pressure_pa: float
    incident_pressure_pa: float
    modulation_depth: float
    uplink_pressure_pa: float
    noise_rms_pa: float
    predicted_snr_db: float

    @classmethod
    def empty(cls) -> "LinkBudget":
        """An all-zero budget for fabricated (fault-injected) results."""
        return cls(
            source_pressure_pa=0.0,
            incident_pressure_pa=0.0,
            modulation_depth=0.0,
            uplink_pressure_pa=0.0,
            noise_rms_pa=0.0,
            predicted_snr_db=float("-inf"),
        )


@dataclass
class LinkResult:
    """Everything one query/response exchange produced.

    Attributes
    ----------
    powered_up:
        Whether the node could power up from the downlink.
    query_decoded:
        Whether the node recovered the query.
    response:
        The node's response (ground truth), if any.
    demod:
        The hydrophone's decode result, if the exchange got that far.
    ber:
        Bit error rate of the uplink frame (vs the true transmitted
        bits); ``nan`` when no frame was detected.
    snr_db:
        Receiver SNR estimate.
    budget:
        The narrowband link budget for this geometry.
    """

    powered_up: bool
    query_decoded: bool
    response: Response | None
    demod: DemodResult | None
    ber: float
    snr_db: float
    budget: LinkBudget
    fault: str | None = None
    #: Autopsy of a failed exchange (assembled only when signal probes
    #: are enabled; see :mod:`repro.obs.postmortem`).
    postmortem: object | None = None

    @property
    def success(self) -> bool:
        """Whether the reader got a CRC-clean reply."""
        return self.demod is not None and self.demod.success

    @classmethod
    def faulted(cls, fault: str, *, powered_up: bool = False) -> "LinkResult":
        """A physically-shaped failure fabricated by a fault injector.

        Hook for :mod:`repro.faults`: injectors wrapping a
        :class:`BackscatterLink` can return results that look exactly
        like a real failed exchange (``success`` is ``False``, no
        demod) while carrying the injected-fault label for diagnosis.
        """
        return cls(
            powered_up=powered_up,
            query_decoded=False,
            response=None,
            demod=None,
            ber=float("nan"),
            snr_db=float("nan"),
            budget=LinkBudget.empty(),
            fault=fault,
        )


class BackscatterLink:
    """A single PAB link inside a tank.

    Parameters
    ----------
    tank:
        Geometry/boundaries.
    projector, projector_position:
        The downlink source.
    node, node_position:
        The battery-free node.
    hydrophone_position:
        Receiver location; the :class:`Hydrophone` itself is created
        internally at the link's sample rate.
    noise:
        Ambient noise at the hydrophone (flat 60 dB tank floor default).
    sample_rate:
        Simulation rate [Hz].
    max_order:
        Image-source reflection order.
    tracer:
        Optional :class:`~repro.obs.trace.Tracer`; when omitted the
        process-global tracer is consulted per transaction (disabled by
        default, so the hot path pays only no-op span checks).  Spans
        cover the five stages of an exchange: ``link.pwm_synthesis``,
        ``link.downlink_propagation``, ``link.node``,
        ``link.uplink_propagation``, ``link.hydrophone_dsp``.
    metrics:
        Optional :class:`~repro.obs.metrics.MetricsRegistry`; records
        transaction/CRC counters and SNR/BER histograms.
    probes:
        Optional :class:`~repro.obs.probe.ProbeRegistry`; when omitted
        the process-global registry is consulted (disabled by default,
        so the hot path pays one enabled check per stage).  Enabled
        probes capture intermediate waveforms and stage diagnostics,
        and a failed exchange is autopsied into a
        :class:`~repro.obs.postmortem.DecodePostmortem` (filed in the
        registry, attached to the result and the active span).
    """

    #: The five per-exchange stage span names, in pipeline order.
    STAGES = (
        "link.pwm_synthesis",
        "link.downlink_propagation",
        "link.node",
        "link.uplink_propagation",
        "link.hydrophone_dsp",
    )

    #: Guard time appended after the expected reply [s].
    UPLINK_MARGIN_S = 0.05

    #: Preamble-correlation threshold for the uplink decoder.  Multipath
    #: and the reradiation filter round the chip edges, so the normalised
    #: correlation peaks below the clean-signal value; the CRC guards
    #: against false detections.
    DETECTION_THRESHOLD = 0.12

    def __init__(
        self,
        tank: Tank,
        projector: Projector,
        projector_position: Position,
        node: PABNode,
        node_position: Position,
        hydrophone_position: Position,
        *,
        noise: AmbientNoiseModel | None = None,
        sample_rate: float = 96_000.0,
        max_order: int = 2,
        node_velocity_mps: float = 0.0,
        tracer=None,
        metrics=None,
        probes=None,
    ) -> None:
        self.tank = tank
        self.projector = projector
        self.node = node
        self.sample_rate = sample_rate
        self.node_velocity_mps = node_velocity_mps
        self.tracer = tracer
        self.metrics = metrics
        self.probes = probes
        self.noise = (
            noise
            if noise is not None
            else AmbientNoiseModel(spectrum="flat", flat_level_db=60.0, seed=0)
        )
        f = projector.carrier_hz
        # Horizontal beam-pattern gains of the projector towards each
        # endpoint (unity for the default omni cylinder).
        import math as _math

        self.beam_gain_node = projector.gain_towards(
            _math.atan2(
                node_position.y - projector_position.y,
                node_position.x - projector_position.x,
            )
        )
        self.beam_gain_hydrophone = projector.gain_towards(
            _math.atan2(
                hydrophone_position.y - projector_position.y,
                hydrophone_position.x - projector_position.x,
            )
        )
        self.ch_projector_node = AcousticChannel(
            tank, projector_position, node_position,
            sample_rate=sample_rate, frequency_hz=f, max_order=max_order,
        )
        self.ch_node_hydrophone = AcousticChannel(
            tank, node_position, hydrophone_position,
            sample_rate=sample_rate, frequency_hz=f, max_order=max_order,
        )
        self.ch_projector_hydrophone = AcousticChannel(
            tank, projector_position, hydrophone_position,
            sample_rate=sample_rate, frequency_hz=f, max_order=max_order,
        )
        self.hydrophone = Hydrophone(sample_rate)
        # Per-link memo for the deterministic waveform legs of an
        # exchange (see _run_stages_cached).  A polling campaign repeats
        # the same few query/response shapes, so the expensive synthesis
        # and propagation convolutions hit after the first round.  The
        # size accommodates the split carrier/uplink entries plus the
        # handful of reply payloads a drifting sensor cycles through.
        self._leg_memo = LRUCache("link_legs", maxsize=16)
        # Demodulations precomputed by the batched fleet engine's
        # prepass, keyed (uplink leg key, noise stream position); see
        # repro.perf.batch.  Always empty outside batch mode.
        self._batch_hints: dict = {}

    # -- checkpointing ---------------------------------------------------------------

    def snapshot_state(self) -> dict:
        """JSON-ready mutable state: the noise RNG stream and the node.

        Geometry, channels, and the leg memo are deterministic functions
        of construction parameters (the memo is a pure cache), so only
        the stochastic noise stream and the node's books need saving.
        """
        return {
            "noise": self.noise.snapshot_state(),
            "node": self.node.snapshot_state(),
        }

    def restore_state(self, state: dict) -> None:
        """Inverse of :meth:`snapshot_state`.

        Pending batch hints are dropped: they were computed for the
        timeline being replaced.  (Their noise-token keys would refuse
        to match a diverged stream anyway — this just frees the memory.)
        """
        self.noise.restore_state(state["noise"])
        self.node.restore_state(state["node"])
        self._batch_hints.clear()

    def _noise_token(self):
        """A hashable token for the ambient-noise RNG's exact position.

        The batched prepass keys its precomputed demodulations by this
        token so a hint is consumed only when the live exchange is about
        to draw the very same noise samples the prepass drew (a retry,
        an injected fault, or a mid-round reconfiguration makes the
        streams diverge, and the hint is then simply ignored).
        """
        state = self.noise.snapshot_state()["rng"]

        def _hashable(value):
            if isinstance(value, dict):
                return tuple(
                    (k, _hashable(v)) for k, v in sorted(value.items())
                )
            return value

        return _hashable(state)

    # -- diagnostics ----------------------------------------------------------------------

    def channel_report(self) -> dict:
        """Multipath statistics of each leg (delay spread, coherence, K).

        The quantities that explain receiver behaviour at this geometry:
        delay spread in chips predicts inter-chip interference, and the
        coherence bandwidth predicts how frequency-selective the channels
        are relative to the recto-piezo bandwidth.
        """
        from repro.acoustics.stats import channel_stats

        report = {}
        for name, channel in (
            ("projector_to_node", self.ch_projector_node),
            ("node_to_hydrophone", self.ch_node_hydrophone),
            ("projector_to_hydrophone", self.ch_projector_hydrophone),
        ):
            stats = channel_stats(self.tank, channel.source, channel.receiver)
            report[name] = {
                "rms_delay_spread_s": stats.rms_delay_spread_s,
                "delay_spread_chips": stats.delay_spread_chips(self.node.bitrate),
                "coherence_bandwidth_hz": stats.coherence_bandwidth_hz,
                "k_factor_db": stats.k_factor_db,
                "n_paths": stats.n_paths,
            }
        return report

    # -- narrowband budget -------------------------------------------------------------

    def budget(self) -> LinkBudget:
        """Analytic link budget at the carrier."""
        f = self.projector.carrier_hz
        p_src = self.projector.source_pressure_pa
        p_node = (
            p_src * self.beam_gain_node * self.ch_projector_node.magnitude_gain(f)
        )
        depth = self.node.bank.modulation_depth(
            self.node.firmware.config.resonance_mode, f
        )
        p_up = p_node * depth * self.ch_node_hydrophone.magnitude_gain(f)
        chip_rate = 2.0 * self.node.bitrate
        noise_rms = self.noise.band_pressure_rms(
            max(f - chip_rate, 10.0), f + chip_rate
        )
        # The modulation toggles by p_up around its mean: matched-filter
        # amplitude is p_up/2 per chip; noise power in the chip band.
        signal_power = (p_up / 2.0) ** 2 / 2.0
        noise_power = max(noise_rms**2, 1e-30)
        snr = 10.0 * np.log10(max(signal_power / noise_power, 1e-30))
        return LinkBudget(
            source_pressure_pa=p_src,
            incident_pressure_pa=p_node,
            modulation_depth=depth,
            uplink_pressure_pa=p_up,
            noise_rms_pa=noise_rms,
            predicted_snr_db=float(snr),
        )

    # -- waveform helpers ---------------------------------------------------------------

    def _node_band(self) -> tuple[float, float]:
        """The node's receive band around its channel."""
        f0 = self.node.channel_frequency_hz
        half = max(self.node.transducer.bandwidth_hz, 1_000.0)
        return f0 - half, f0 + half

    def _node_incident(self, tx_waveform) -> np.ndarray:
        """Incident pressure waveform at the node [Pa]."""
        return (
            self.beam_gain_node
            * self.ch_projector_node.apply(tx_waveform, include_noise=False).waveform
        )

    def _node_selective(self, incident) -> np.ndarray:
        """Incident waveform as the node's resonant element senses it."""
        lo, hi = self._node_band()
        hi = min(hi, self.sample_rate / 2.0 - 1.0)
        lo = max(lo, 1.0)
        return butter_bandpass(incident, lo, hi, self.sample_rate, order=2)

    def _reradiation_response(self, n_samples: int) -> np.ndarray:
        """Memoized re-radiation gain vector for one waveform length.

        The vector is a pure function of the (fixed) transducer, carrier,
        and rate, so the memo is keyed by length alone; with caching
        globally disabled it is recomputed per call, exactly as before.
        """
        return self._leg_memo.get_or_compute(
            ("rerad_response", n_samples),
            lambda: reradiation_response(
                self.node.transducer,
                n_samples,
                self.projector.carrier_hz,
                self.sample_rate,
            ),
        )

    def _gamma_trajectory(
        self, n_samples: int, chips, uplink_start_at_node: int, bitrate: float
    ) -> np.ndarray:
        """Per-sample complex reflection gain over an uplink waveform."""
        gamma_a, _gamma_r, trajectory = self.node.reflection_trajectory(
            chips, self.projector.carrier_hz
        )
        chip_rate = 2.0 * bitrate
        spc = self.sample_rate / chip_rate
        gamma_t = np.full(n_samples, complex(gamma_a))
        for k, g in enumerate(trajectory):
            a = uplink_start_at_node + int(round(k * spc))
            b = uplink_start_at_node + int(round((k + 1) * spc))
            if a >= n_samples:
                break
            gamma_t[a : min(b, n_samples)] = g
        return gamma_t

    def _backscatter_waveform(
        self,
        incident,
        chips,
        uplink_start_at_node: int,
        *,
        analytic=None,
        bitrate: float | None = None,
    ) -> np.ndarray:
        """Reflected pressure (at 1 m from the node) given incident waveform.

        The reflection coefficient trajectory multiplies the analytic
        incident signal; outside the reply the node idles in the
        absorptive state, whose (static) reflection carries no modulation
        and is dropped — only the *difference* between states matters to
        the decoder, and the constant term merely adds to the carrier.

        ``analytic`` may carry a precomputed ``hilbert(incident)`` (the
        carrier-leg memo and the batched engine reuse it across reply
        payloads); supplying it changes nothing numerically.
        """
        gamma_t = self._gamma_trajectory(
            len(incident),
            chips,
            uplink_start_at_node,
            self.node.bitrate if bitrate is None else bitrate,
        )
        if analytic is None:
            analytic = hilbert(np.asarray(incident, dtype=float))
        reflected = np.real(gamma_t * analytic)
        reflected = apply_reradiation_filter(
            reflected,
            self.node.transducer,
            self.projector.carrier_hz,
            self.sample_rate,
            response=self._reradiation_response(len(reflected)),
        )
        if self.node_velocity_mps:
            # A drifting node Doppler-dilates its reflection (the direct
            # carrier is unaffected).  One-way Doppler is applied here;
            # the downlink leg's shift is second-order for the envelope.
            from repro.acoustics.doppler import apply_doppler

            moved = apply_doppler(
                reflected, self.node_velocity_mps, self.sample_rate
            )
            if len(moved) < len(reflected):
                moved = np.pad(moved, (0, len(reflected) - len(moved)))
            reflected = moved[: len(reflected)]
        return reflected

    def _carrier_leg(
        self, query: Query, n_chips: int, bitrate: float
    ) -> tuple[np.ndarray, np.ndarray, int, int]:
        """The reply-payload-independent half of the uplink leg.

        Everything here depends only on the query, the reply *length*,
        and the bitrate — not on which chips the node actually sends:
        the transmit waveform, its propagation to the node (as the
        analytic signal the reflection modulates) and to the hydrophone
        (the direct carrier), and the timing offsets.  Splitting this
        out of the uplink memo means a node whose sensor reading drifts
        between rounds only recomputes the cheap chip-dependent tail,
        not the hilbert transform and two channel convolutions.

        Returns ``(analytic, direct, reply_start, analysis_start)``.
        """
        fs = self.sample_rate
        chip_rate = 2.0 * bitrate
        uplink_s = n_chips / chip_rate + self.UPLINK_MARGIN_S
        tx, uplink_start = self.projector.query_then_carrier(query, uplink_s, fs)
        incident = self._node_incident(tx)
        delay_pn = int(round(self.ch_projector_node.direct_path.delay_s * fs))
        reply_start = (
            uplink_start + delay_pn + int(self.UPLINK_MARGIN_S / 2 * fs)
        )
        analytic = hilbert(np.asarray(incident, dtype=float))
        direct = (
            self.beam_gain_hydrophone
            * self.ch_projector_hydrophone.apply(tx, include_noise=False).waveform
        )
        delay_ph = int(
            round(self.ch_projector_hydrophone.direct_path.delay_s * fs)
        )
        analysis_start = (
            uplink_start + delay_ph + int(0.3 * self.UPLINK_MARGIN_S * fs)
        )
        return analytic, direct, reply_start, analysis_start

    def _finish_uplink_leg(
        self,
        leg: tuple[np.ndarray, np.ndarray, int, int],
        chips,
        bitrate: float,
    ) -> tuple[np.ndarray, int]:
        """The chip-dependent tail of the uplink leg.

        Modulates the memoized analytic incident with this reply's
        reflection trajectory, re-radiates it, propagates it to the
        hydrophone, and mixes it with the direct carrier — the same
        operations, in the same order, on the same inputs as the
        original single-shot leg computation, so the resulting quiet
        mixture is byte-identical.
        """
        analytic, direct, reply_start, analysis_start = leg
        reflected = self._backscatter_waveform(
            analytic, chips, reply_start, analytic=analytic, bitrate=bitrate
        )
        uplink = self.ch_node_hydrophone.apply(
            reflected, include_noise=False
        ).waveform
        n = max(len(direct), len(uplink))
        mixture = np.zeros(n)
        mixture[: len(direct)] += direct
        mixture[: len(uplink)] += uplink
        return mixture, analysis_start

    # -- the exchange ----------------------------------------------------------------------

    def transact(self, query: Query) -> LinkResult:
        """Alias for :meth:`run_query`.

        This is the hook the MAC/reader stack and the fault injectors
        in :mod:`repro.faults` wrap: anything shaped
        ``transact(query) -> LinkResult`` is a valid transport.
        """
        return self.run_query(query)

    def _tracer(self):
        """The link's tracer, falling back to the process-global one."""
        return self.tracer if self.tracer is not None else get_tracer()

    def _probes(self):
        """The link's probe registry, falling back to the global one."""
        return self.probes if self.probes is not None else get_probes()

    def _observe(self, result: LinkResult) -> None:
        """Record the exchange outcome into the metrics registry."""
        mr = self.metrics
        if mr is None:
            return
        from repro.obs.metrics import BER_BUCKETS, SNR_DB_BUCKETS

        mr.counter("pab_link_transactions_total").inc()
        if result.powered_up:
            mr.counter("pab_link_powerups_total").inc()
        if result.query_decoded:
            mr.counter("pab_link_query_decodes_total").inc()
        if result.success:
            mr.counter("pab_link_successes_total").inc()
        elif result.demod is not None:
            mr.counter("pab_link_crc_failures_total").inc()
        if result.demod is not None:
            mr.histogram("pab_link_snr_db", buckets=SNR_DB_BUCKETS).observe(
                result.snr_db
            )
            mr.histogram("pab_link_ber", buckets=BER_BUCKETS).observe(result.ber)

    def run_query(self, query: Query) -> LinkResult:
        """Simulate one full query/response exchange.

        The exchange is traced as a ``link.transact`` root span with the
        five pipeline stages (:attr:`STAGES`) as children; a stage the
        exchange revisits (PWM synthesis runs once for the node-decode
        leg and once for the full transmission) simply emits another
        span with the same name, and per-stage reports aggregate by
        name.

        When signal probes are enabled the stages additionally publish
        waveform taps, and a failed exchange is autopsied into a
        :class:`~repro.obs.postmortem.DecodePostmortem` attached to the
        returned result, the probe registry, and the root span.
        """
        tracer = self._tracer()
        probes = self._probes()
        if probes.enabled:
            txn = probes.begin_transaction()
        with tracer.span("link.transact", destination=int(query.destination)) as root:
            result = self._run_stages(query, tracer, probes)
            if probes.enabled and not result.success:
                from repro.obs.postmortem import DecodePostmortem

                pm = DecodePostmortem.from_link(result, probes, txn=txn)
                result.postmortem = pm
                probes.record_postmortem(pm)
                root.set(
                    postmortem_verdict=pm.verdict,
                    failing_stage=pm.failing_stage,
                )
        self._observe(result)
        return result

    def _memo_active(self, tracer, probes) -> bool:
        """Whether the leg memo may shortcut waveform synthesis.

        Only when nothing observes the intermediate signals: tracing
        wants true per-stage timings, probes want the actual waveforms, and
        an energy ledger wants real firmware dwell times.  The memo
        never changes outputs — the gates protect observability, not
        correctness.
        """
        return (
            cache_enabled()
            and not tracer.enabled
            and not probes.enabled
            and self.node.firmware.ledger is None
        )

    def _run_stages_cached(self, query: Query) -> LinkResult:
        """The exchange with memoized deterministic legs.

        Every waveform between the projector and the hydrophone is a
        pure function of (query, reply chips, node config) except the
        ambient noise, which is added after the memoized pre-noise
        mixture is retrieved.  Node firmware still executes for real
        where it mutates state — power-up, command handling, and reply
        framing — and the noise stream advances exactly once per
        exchange, as in the uncached path, so a cached campaign is
        byte-identical to an uncached one.
        """
        fs = self.sample_rate
        f = self.projector.carrier_hz
        mode = self.node.firmware.config.resonance_mode
        bitrate = self.node.bitrate
        budget = self._leg_memo.get_or_compute(
            ("budget", mode, bitrate), self.budget
        )

        powered = self.node.try_power_up(budget.incident_pressure_pa, f)
        if not powered:
            return LinkResult(
                powered_up=False, query_decoded=False, response=None,
                demod=None, ber=float("nan"), snr_db=float("nan"), budget=budget,
            )

        def compute_query_env() -> np.ndarray:
            query_wave = self.projector.query_waveform(query, fs)
            incident_query = self._node_incident(query_wave)
            return envelope_detect(self._node_selective(incident_query), f, fs)

        env = self._leg_memo.get_or_compute(
            ("downlink", query, mode), compute_query_env
        )
        # The PWM decode is pure DSP on the memoized envelope (the node
        # is powered and unledgered here, and the PWM code is fixed at
        # construction), so its result is memoized under the same key.
        decoded_query = self._leg_memo.get_or_compute(
            ("downlink_decode", query, mode),
            lambda: self.node.receive_query(env, fs),
        )
        if decoded_query is None:
            return LinkResult(
                powered_up=True, query_decoded=False, response=None,
                demod=None, ber=float("nan"), snr_db=float("nan"), budget=budget,
            )

        response = self.node.respond(decoded_query)
        if response is None:
            return LinkResult(
                powered_up=True, query_decoded=True, response=None,
                demod=None, ber=float("nan"), snr_db=float("nan"),
                budget=budget,
            )
        chips = self.node.uplink_chips(response)
        # Re-read after respond(): SET_BITRATE / SET_RESONANCE_MODE take
        # effect mid-exchange, and the reply already ships under the new
        # setting (the uncached path reads both inside the uplink stage),
        # so the uplink leg must be keyed by the post-command values.
        bitrate = self.node.bitrate
        mode = self.node.firmware.config.resonance_mode

        uplink_key = ("uplink", query, chips.tobytes(), bitrate, mode)
        quiet_mixture, analysis_start = self._leg_memo.get_or_compute(
            uplink_key,
            lambda: self._finish_uplink_leg(
                self._leg_memo.get_or_compute(
                    ("carrier", query, len(chips), bitrate),
                    lambda: self._carrier_leg(query, len(chips), bitrate),
                ),
                chips,
                bitrate,
            ),
        )
        self.node.firmware.response_sent()

        uplink_format = self.node.firmware.config.uplink_format
        demod = None
        hint = self._batch_hints.pop(
            (uplink_key, self._noise_token()), None
        ) if self._batch_hints else None
        if hint is not None:
            # The batched prepass already ran this exact exchange tail:
            # same quiet mixture, same noise-stream position.  Reuse its
            # demodulation verbatim and advance the noise RNG to where
            # drawing the samples would have left it — byte-identical to
            # the inline path, which the prepass computed with the same
            # primitives on the same inputs.
            noise_after, demod = hint
            self.noise.restore_state(noise_after)
        else:
            mixture = quiet_mixture + self.noise.generate(
                len(quiet_mixture), fs
            )
            recording = self.hydrophone.record(mixture)
            demod = self.hydrophone.demodulate(
                recording[analysis_start:],
                f,
                bitrate,
                packet_format=uplink_format,
                detection_threshold=self.DETECTION_THRESHOLD,
            )
        true_bits = response.to_packet().to_bits(uplink_format)
        ber = (
            bit_error_rate(demod.bits, true_bits)
            if len(demod.bits)
            else float("nan")
        )
        return LinkResult(
            powered_up=True,
            query_decoded=True,
            response=response,
            demod=demod,
            ber=ber,
            snr_db=demod.snr_db,
            budget=budget,
        )

    def _run_stages(self, query: Query, tracer, probes) -> LinkResult:
        if self._memo_active(tracer, probes):
            return self._run_stages_cached(query)
        fs = self.sample_rate
        f = self.projector.carrier_hz
        budget = self.budget()

        # 1. Power-up check from the downlink illumination.
        with tracer.span("link.node", phase="power_up") as sp:
            powered = self.node.try_power_up(budget.incident_pressure_pa, f)
            sp.set(powered_up=powered)
        if probes.wants("link.node"):
            probes.capture(
                "link.node", "power_up",
                incident_pressure_pa=budget.incident_pressure_pa,
                powered=powered,
                predicted_snr_db=budget.predicted_snr_db,
            )
        if not powered:
            return LinkResult(
                powered_up=False, query_decoded=False, response=None,
                demod=None, ber=float("nan"), snr_db=float("nan"), budget=budget,
            )

        # 2. Node-side query decode (waveform level).
        with tracer.span("link.pwm_synthesis", segment="query") as sp:
            query_wave = self.projector.query_waveform(query, fs)
            sp.set(samples=len(query_wave))
        if probes.wants("link.pwm_synthesis"):
            probes.capture(
                "link.pwm_synthesis", "query_waveform",
                waveform=query_wave, sample_rate=fs, segment="query",
            )
        with tracer.span(
            "link.downlink_propagation", segment="query", samples=len(query_wave)
        ):
            incident_query = self._node_incident(query_wave)
        if probes.wants("link.downlink_propagation"):
            lo, hi = self._node_band()
            probes.capture(
                "link.downlink_propagation", "incident_query",
                waveform=incident_query, sample_rate=fs, segment="query",
                band_snr_db=band_snr_db(incident_query, fs, lo, hi),
            )
        with tracer.span("link.node", phase="decode_query") as sp:
            env = envelope_detect(
                self._node_selective(incident_query), f, fs
            )
            decoded_query = self.node.receive_query(env, fs)
            sp.set(decoded=decoded_query is not None)
        if probes.wants("link.node"):
            probes.capture(
                "link.node", "query_envelope",
                waveform=env, sample_rate=fs,
                decoded=decoded_query is not None,
            )
        if decoded_query is None:
            return LinkResult(
                powered_up=True, query_decoded=False, response=None,
                demod=None, ber=float("nan"), snr_db=float("nan"), budget=budget,
            )

        # 3. Execute the command; build the reply.
        with tracer.span("link.node", phase="respond") as sp:
            response = self.node.respond(decoded_query)
            if response is None:
                return LinkResult(
                    powered_up=True, query_decoded=True, response=None,
                    demod=None, ber=float("nan"), snr_db=float("nan"),
                    budget=budget,
                )
            chips = self.node.uplink_chips(response)
            sp.set(chips=len(chips))
        if probes.wants("link.node"):
            probes.capture(
                "link.node", "uplink_chips",
                waveform=np.asarray(chips, dtype=float),
                chips=len(chips),
            )
        chip_rate = 2.0 * self.node.bitrate
        uplink_s = len(chips) / chip_rate + self.UPLINK_MARGIN_S

        # 4. Full transmission and physical propagation.
        with tracer.span("link.pwm_synthesis", segment="query_then_carrier") as sp:
            tx, uplink_start = self.projector.query_then_carrier(
                query, uplink_s, fs
            )
            sp.set(samples=len(tx))
        if probes.wants("link.pwm_synthesis"):
            probes.capture(
                "link.pwm_synthesis", "tx_waveform",
                waveform=tx, sample_rate=fs, segment="query_then_carrier",
                uplink_start=int(uplink_start),
            )
        with tracer.span(
            "link.downlink_propagation", segment="carrier", samples=len(tx)
        ):
            incident = self._node_incident(tx)
        if probes.wants("link.downlink_propagation"):
            lo, hi = self._node_band()
            probes.capture(
                "link.downlink_propagation", "incident_carrier",
                waveform=incident, sample_rate=fs, segment="carrier",
                band_snr_db=band_snr_db(incident, fs, lo, hi),
            )
        with tracer.span("link.node", phase="backscatter", chips=len(chips)):
            delay_pn = int(round(self.ch_projector_node.direct_path.delay_s * fs))
            # The node waits half the margin after the query before replying.
            reply_start = (
                uplink_start + delay_pn + int(self.UPLINK_MARGIN_S / 2 * fs)
            )
            reflected = self._backscatter_waveform(incident, chips, reply_start)
            self.node.firmware.response_sent()
        if probes.wants("link.node"):
            probes.capture(
                "link.node", "backscatter_reflected",
                waveform=reflected, sample_rate=fs,
                reply_start=int(reply_start), chips=len(chips),
            )

        # 5. Hydrophone mixture: direct + backscatter + noise.
        with tracer.span("link.uplink_propagation", samples=len(tx)):
            direct = self.beam_gain_hydrophone * self.ch_projector_hydrophone.apply(
                tx, include_noise=False
            ).waveform
            uplink = self.ch_node_hydrophone.apply(
                reflected, include_noise=False
            ).waveform
            n = max(len(direct), len(uplink))
            mixture = np.zeros(n)
            mixture[: len(direct)] += direct
            mixture[: len(uplink)] += uplink
            mixture += self.noise.generate(n, fs)
        if probes.wants("link.uplink_propagation"):
            chip_band = (
                max(f - chip_rate, 10.0),
                min(f + chip_rate, fs / 2.0 - 1.0),
            )
            probes.capture(
                "link.uplink_propagation", "hydrophone_mixture",
                waveform=mixture, sample_rate=fs,
                band_snr_db=band_snr_db(mixture, fs, *chip_band),
                uplink_rms_pa=float(np.sqrt(np.mean(uplink**2)))
                if len(uplink) else 0.0,
                direct_rms_pa=float(np.sqrt(np.mean(direct**2)))
                if len(direct) else 0.0,
            )

        # 6. Receiver decode: skip the query portion of the recording (the
        # PWM edges would confuse the modulation extractor), as the
        # paper's offline decoder does by segmenting on the FFT energy.
        with tracer.span("link.hydrophone_dsp", samples=len(mixture)) as sp:
            recording = self.hydrophone.record(mixture)
            # Analyse from after the carrier's turn-on edge has settled at
            # the hydrophone (the edge is a huge amplitude step that would
            # dominate the modulation-axis estimate) but before the node's
            # reply begins at margin/2.
            delay_ph = int(
                round(self.ch_projector_hydrophone.direct_path.delay_s * fs)
            )
            analysis_start = (
                uplink_start + delay_ph + int(0.3 * self.UPLINK_MARGIN_S * fs)
            )
            uplink_format = self.node.firmware.config.uplink_format
            demod = self.hydrophone.demodulate(
                recording[analysis_start:],
                f,
                self.node.bitrate,
                packet_format=uplink_format,
                detection_threshold=self.DETECTION_THRESHOLD,
            )

            true_bits = response.to_packet().to_bits(uplink_format)
            ber = (
                bit_error_rate(demod.bits, true_bits)
                if len(demod.bits)
                else float("nan")
            )
            sp.set(crc_ok=demod.success, snr_db=demod.snr_db)
        if probes.wants("link.hydrophone_dsp"):
            probes.capture(
                "link.hydrophone_dsp", "analysis_segment",
                analysis_start=int(analysis_start),
                samples=len(recording) - int(analysis_start),
                crc_ok=demod.success, snr_db=demod.snr_db, ber=ber,
                predicted_snr_db=budget.predicted_snr_db,
                error=demod.error or "",
            )
        return LinkResult(
            powered_up=True,
            query_decoded=True,
            response=response,
            demod=demod,
            ber=ber,
            snr_db=demod.snr_db,
            budget=budget,
        )

    def measure_uplink_snr(self, query: Query) -> float:
        """SNR of the uplink with ground-truth timing and bits (Fig. 8).

        Mirrors the paper's measurement methodology (Sec. 6.1a): the
        transmitted sequence is known to the experimenter, the channel is
        estimated against it, and the residual is the noise.  Using the
        true reply timing decouples the SNR metric from packet-detection
        failures at extreme bitrates.
        """
        fs = self.sample_rate
        f = self.projector.carrier_hz
        self.node.force_power(True)
        response = self.node.respond(query)
        if response is None:
            raise ValueError("query produced no response")
        chips = self.node.uplink_chips(response)
        chip_rate = 2.0 * self.node.bitrate
        uplink_s = len(chips) / chip_rate + self.UPLINK_MARGIN_S
        tx, uplink_start = self.projector.query_then_carrier(query, uplink_s, fs)
        incident = self._node_incident(tx)
        delay_pn = int(round(self.ch_projector_node.direct_path.delay_s * fs))
        reply_start = uplink_start + delay_pn + int(self.UPLINK_MARGIN_S / 2 * fs)
        reflected = self._backscatter_waveform(incident, chips, reply_start)
        self.node.firmware.response_sent()
        direct = self.ch_projector_hydrophone.apply(tx, include_noise=False).waveform
        uplink = self.ch_node_hydrophone.apply(reflected, include_noise=False).waveform
        n = max(len(direct), len(uplink))
        mixture = np.zeros(n)
        mixture[: len(direct)] += direct
        mixture[: len(uplink)] += uplink
        mixture += self.noise.generate(n, fs)
        recording = self.hydrophone.record(mixture)
        delay_ph = int(round(self.ch_projector_hydrophone.direct_path.delay_s * fs))
        analysis_start = (
            uplink_start + delay_ph + int(0.3 * self.UPLINK_MARGIN_S * fs)
        )
        fmt = self.node.firmware.config.uplink_format
        dem = self.hydrophone.demodulator(f, self.node.bitrate, packet_format=fmt)
        baseband, _cfo = dem.to_baseband(recording[analysis_start:])
        modulation = dem.extract_modulation(baseband)
        delay_nh = int(round(self.ch_node_hydrophone.direct_path.delay_s * fs))
        true_start = reply_start + delay_nh - analysis_start
        amps = dem.chip_matched_filter(modulation, max(true_start, 0))
        from repro.dsp.fm0 import fm0_expected_chips
        from repro.dsp.metrics import snr_db as snr_db_fn

        true_bits = response.to_packet().to_bits(fmt)
        true_chips = fm0_expected_chips(true_bits)
        m = min(len(true_chips), len(amps))
        if m < 8:
            return float("nan")
        rx = amps[:m] - np.mean(amps[:m])
        rx = dem.equalize_chips(rx, true_chips[: min(2 * len(fmt.preamble), m)])
        return snr_db_fn(rx, true_chips[:m])

    # -- the Fig. 2 demonstration --------------------------------------------------------

    def switching_demo(
        self,
        *,
        silence_s: float = 0.5,
        carrier_only_s: float = 0.6,
        switching_s: float = 1.2,
        switch_rate_hz: float = 10.0,
    ) -> dict:
        """Reproduce the Fig. 2 experiment.

        Silence, then the projector turns on a continuous carrier, then
        the node toggles reflective/absorptive at ``switch_rate_hz``.
        Returns the demodulated (downconverted + low-passed) envelope and
        its timebase, plus the segment boundaries.
        """
        fs = self.sample_rate
        f = self.projector.carrier_hz
        n_sil = int(silence_s * fs)
        carrier = self.projector.carrier_waveform(
            carrier_only_s + switching_s, fs
        )
        tx = np.concatenate([np.zeros(n_sil), carrier])
        incident = self._node_incident(tx)
        # Build the switching chip train (one chip per half switching period).
        n_toggles = int(switching_s * switch_rate_hz * 2.0)
        chips = np.arange(n_toggles) % 2
        switch_chip_rate = 2.0 * switch_rate_hz
        spc = fs / switch_chip_rate
        start = n_sil + int(carrier_only_s * fs)
        gamma_a, _g, trajectory = self.node.reflection_trajectory(chips, f)
        gamma_t = np.full(len(incident), complex(gamma_a))
        for k, g in enumerate(trajectory):
            a = start + int(round(k * spc))
            b = start + int(round((k + 1) * spc))
            if a >= len(incident):
                break
            gamma_t[a : min(b, len(incident))] = g
        reflected = np.real(gamma_t * hilbert(incident))
        direct = self.beam_gain_hydrophone * self.ch_projector_hydrophone.apply(
            tx, include_noise=False
        ).waveform
        uplink = self.ch_node_hydrophone.apply(reflected, include_noise=False).waveform
        n = max(len(direct), len(uplink))
        mixture = np.zeros(n)
        mixture[: len(direct)] += direct
        mixture[: len(uplink)] += uplink
        mixture += self.noise.generate(n, fs)
        envelope = envelope_detect(mixture, f, fs, cutoff_hz=8.0 * switch_rate_hz)
        return {
            "time_s": np.arange(len(envelope)) / fs,
            "envelope_pa": envelope,
            "carrier_on_s": silence_s,
            "backscatter_on_s": silence_s + carrier_only_s,
            "switch_rate_hz": switch_rate_hz,
        }
