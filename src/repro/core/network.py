"""Multi-node PAB network with concurrent transmissions (Sec. 3.3, 6.3).

Simulates the paper's FDMA experiments: a multi-tone downlink powers
several recto-piezo nodes at once, all of them reply simultaneously, and
— because backscatter is frequency-agnostic — every node modulates every
carrier.  The hydrophone then separates the collisions with the 2x2
zero-forcing decoder of Sec. 3.3.2.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.signal import hilbert

from repro.acoustics.channel import AcousticChannel
from repro.acoustics.geometry import Position, Tank
from repro.acoustics.noise import AmbientNoiseModel
from repro.core.hydrophone import Hydrophone
from repro.core.projector import MultiToneDownlink, Projector
from repro.dsp.demod import BackscatterDemodulator
from repro.dsp.filters import butter_bandpass, envelope_detect
from repro.dsp.fm0 import fm0_expected_chips, fm0_ml_decode
from repro.dsp.metrics import sinr_db
from repro.dsp.mimo import (
    estimate_channel_matrix,
    mimo_equalize,
    zero_forcing_decode,
)
from repro.dsp.packets import FramingError, Packet
from repro.net.messages import Query, Response
from repro.node.node import PABNode


@dataclass
class NodeOutcome:
    """Per-node result of a concurrent round.

    Attributes
    ----------
    address:
        The node's address.
    response:
        Ground-truth response the node transmitted (None if it never
        powered up or decoded its query).
    packet:
        The packet the receiver recovered after collision decoding
        (None on failure).
    sinr_before_db, sinr_after_db:
        SINR of this node's stream before and after zero-forcing
        projection — the Fig. 10 quantities.
    """

    address: int
    response: Response | None
    packet: Packet | None
    sinr_before_db: float
    sinr_after_db: float

    @property
    def success(self) -> bool:
        return self.packet is not None


@dataclass
class ConcurrentResult:
    """Everything a concurrent round produced.

    Attributes
    ----------
    outcomes:
        Per-node outcomes, in node order.
    condition_number:
        cond(H) of the estimated collision channel.
    """

    outcomes: list
    condition_number: float

    @property
    def all_decoded(self) -> bool:
        return all(o.success for o in self.outcomes)


class PABNetwork:
    """A tank with one multi-tone projector, N nodes, and one hydrophone.

    Parameters
    ----------
    tank:
        Geometry.
    projector_transducer_factory:
        Callable returning a projector transducer (one per carrier).
    projector_position, hydrophone_position:
        Fixed infrastructure locations.
    drive_voltage_v:
        Per-carrier drive amplitude.
    sample_rate, max_order, noise:
        Simulation parameters.
    """

    UPLINK_MARGIN_S = 0.02

    def __init__(
        self,
        tank: Tank,
        projector_position: Position,
        hydrophone_position: Position,
        *,
        projector_transducer_factory,
        drive_voltage_v: float = 60.0,
        sample_rate: float = 96_000.0,
        max_order: int = 2,
        noise: AmbientNoiseModel | None = None,
    ) -> None:
        self.tank = tank
        self.projector_position = projector_position
        self.hydrophone_position = hydrophone_position
        self.transducer_factory = projector_transducer_factory
        self.drive_voltage_v = drive_voltage_v
        self.sample_rate = sample_rate
        self.max_order = max_order
        self.noise = (
            noise
            if noise is not None
            else AmbientNoiseModel(spectrum="flat", flat_level_db=60.0, seed=0)
        )
        self.hydrophone = Hydrophone(sample_rate)
        self._nodes: list[tuple[PABNode, Position]] = []

    def add_node(self, node: PABNode, position: Position) -> None:
        """Register a node at a position."""
        self.tank.validate_position(position, "node position")
        if any(n.address == node.address for n, _ in self._nodes):
            raise ValueError(f"duplicate node address {node.address}")
        self._nodes.append((node, position))

    @property
    def nodes(self) -> list[PABNode]:
        return [n for n, _ in self._nodes]

    # -- channels -------------------------------------------------------------------------

    def _channel(self, a: Position, b: Position, f: float) -> AcousticChannel:
        return AcousticChannel(
            self.tank, a, b,
            sample_rate=self.sample_rate, frequency_hz=f, max_order=self.max_order,
        )

    # -- the concurrent round ---------------------------------------------------------------

    def run_concurrent_round(self, queries: list[Query]) -> ConcurrentResult:
        """All nodes queried and replying simultaneously.

        ``queries`` must align with the registered nodes (one each) and
        all nodes must share a bitrate for chip-aligned collision
        decoding.
        """
        if len(queries) != len(self._nodes):
            raise ValueError("need exactly one query per node")
        if not self._nodes:
            raise ValueError("no nodes registered")
        bitrates = {n.bitrate for n, _ in self._nodes}
        if len(bitrates) != 1:
            raise ValueError("concurrent nodes must share a bitrate")
        bitrate = bitrates.pop()
        fs = self.sample_rate
        chip_rate = 2.0 * bitrate
        carriers = [n.channel_frequency_hz for n, _ in self._nodes]
        if len(set(carriers)) != len(carriers):
            raise ValueError("nodes must occupy distinct channels")

        projectors = [
            Projector(
                transducer=self.transducer_factory(),
                drive_voltage_v=self.drive_voltage_v,
                carrier_hz=f,
            )
            for f in carriers
        ]
        downlink = MultiToneDownlink(projectors)

        # Ground-truth node behaviour: decode own query, build reply.
        responses: list[Response | None] = []
        chip_seqs: list[np.ndarray | None] = []
        for (node, pos), query, projector in zip(self._nodes, queries, projectors):
            f = node.channel_frequency_hz
            ch = self._channel(self.projector_position, pos, f)
            p_node = projector.source_pressure_pa * ch.magnitude_gain(f)
            response = None
            if node.try_power_up(p_node, f):
                q_wave = projector.query_waveform(query, fs)
                incident = ch.apply(q_wave, include_noise=False).waveform
                half_bw = max(node.transducer.bandwidth_hz, 1_000.0)
                selective = butter_bandpass(
                    incident,
                    max(f - half_bw, 1.0),
                    min(f + half_bw, fs / 2 - 1.0),
                    fs,
                    order=2,
                )
                rx_query = node.receive_query(
                    envelope_detect(selective, f, fs), fs
                )
                if rx_query is not None:
                    response = node.respond(rx_query)
            responses.append(response)
            chip_seqs.append(
                node.uplink_chips(response) if response is not None else None
            )

        active = [i for i, c in enumerate(chip_seqs) if c is not None]
        longest_chips = max((len(chip_seqs[i]) for i in active), default=0)
        uplink_s = longest_chips / chip_rate + self.UPLINK_MARGIN_S

        tx, uplink_start = downlink.queries_then_carrier(queries, uplink_s, fs)

        # Physical backscatter: every node modulates every carrier.
        mixture = None
        for i, (node, pos) in enumerate(self._nodes):
            if chip_seqs[i] is None:
                continue
            ch_in = self._channel(self.projector_position, pos, carriers[i])
            incident = ch_in.apply(tx, include_noise=False).waveform
            delay = int(round(ch_in.direct_path.delay_s * fs))
            reply_start = uplink_start + delay + int(self.UPLINK_MARGIN_S / 2 * fs)
            reflected = np.zeros(len(incident))
            for f_j in carriers:
                half = max(node.transducer.bandwidth_hz, 1_000.0) * 2.0
                component = butter_bandpass(
                    incident,
                    max(f_j - half, 1.0),
                    min(f_j + half, fs / 2 - 1.0),
                    fs,
                    order=2,
                )
                gamma_a, _gr, trajectory = self._trajectory_at(
                    node, chip_seqs[i], f_j
                )
                gamma_t = np.full(len(component), complex(gamma_a))
                spc = fs / chip_rate
                for k, g in enumerate(trajectory):
                    a = reply_start + int(round(k * spc))
                    b = reply_start + int(round((k + 1) * spc))
                    if a >= len(component):
                        break
                    gamma_t[a : min(b, len(component))] = g
                reflected += np.real(gamma_t * hilbert(component))
            ch_out = self._channel(pos, self.hydrophone_position, carriers[i])
            contribution = ch_out.apply(reflected, include_noise=False).waveform
            if mixture is None:
                mixture = np.zeros(
                    max(len(contribution), len(tx) + int(0.05 * fs))
                )
            if len(contribution) > len(mixture):
                mixture = np.pad(mixture, (0, len(contribution) - len(mixture)))
            mixture[: len(contribution)] += contribution
        ch_direct = self._channel(
            self.projector_position, self.hydrophone_position, carriers[0]
        )
        direct = ch_direct.apply(tx, include_noise=False).waveform
        if mixture is None:
            mixture = np.zeros(len(direct))
        if len(direct) > len(mixture):
            mixture = np.pad(mixture, (0, len(direct) - len(mixture)))
        mixture[: len(direct)] += direct
        mixture += self.noise.generate(len(mixture), fs)

        # Ground-truth chip timing at the hydrophone (the paper's analysis
        # also works with known transmissions; per-node path-delay
        # differences are well under a chip).
        reply_starts = []
        for i, (node, pos) in enumerate(self._nodes):
            if chip_seqs[i] is None:
                continue
            d_in = self._channel(self.projector_position, pos, carriers[i])
            d_out = self._channel(pos, self.hydrophone_position, carriers[i])
            delay = int(round((d_in.direct_path.delay_s + d_out.direct_path.delay_s) * fs))
            reply_starts.append(
                uplink_start + delay + int(self.UPLINK_MARGIN_S / 2 * fs)
            )
        chip_start = int(np.mean(reply_starts)) if reply_starts else uplink_start

        return self._decode_collisions(
            mixture, carriers, bitrate, uplink_start, responses, chip_start
        )

    def _trajectory_at(self, node: PABNode, chips, frequency_hz: float):
        """Reflection trajectory of a node evaluated at any carrier."""
        gamma_a, gamma_r = node.bank.reflection_states(
            node.firmware.config.resonance_mode, frequency_hz
        )
        chips = np.asarray(chips)
        return gamma_a, gamma_r, np.where(chips.astype(bool), gamma_r, gamma_a)

    # -- receiver side -------------------------------------------------------------------------

    @staticmethod
    def _complex_chips(baseband, start: int, samples_per_chip: float) -> np.ndarray:
        """Integrate-and-dump complex chip amplitudes from ``start``."""
        x = np.asarray(baseband)
        n_chips = int((len(x) - start) / samples_per_chip)
        if n_chips <= 0:
            return np.zeros(0, dtype=complex)
        out = np.empty(n_chips, dtype=complex)
        for k in range(n_chips):
            a = start + int(round(k * samples_per_chip))
            b = start + int(round((k + 1) * samples_per_chip))
            out[k] = np.mean(x[a:b]) if b > a else 0.0
        return out

    def _decode_collisions(
        self, mixture, carriers, bitrate, uplink_start, responses, chip_start
    ) -> ConcurrentResult:
        fs = self.sample_rate
        chip_rate = 2.0 * bitrate
        recording = self.hydrophone.record(mixture)
        analysis_start = uplink_start + int(0.3 * self.UPLINK_MARGIN_S * fs)
        analysis = recording[analysis_start:]
        start = max(chip_start - analysis_start, 0)
        outcomes: list[NodeOutcome] = []

        # Per-channel complex baseband and complex chip streams.  The two
        # nodes' modulations arrive with different carrier phases, so a
        # real-axis projection cannot represent both; the collision
        # decoder works on complex chips with a complex channel matrix.
        demods: list[BackscatterDemodulator] = []
        chip_streams = []
        for i, f in enumerate(carriers):
            node = self._nodes[i][0]
            dem = BackscatterDemodulator(
                f, bitrate, fs,
                packet_format=node.firmware.config.uplink_format,
                detection_threshold=0.35,
            )
            demods.append(dem)
            baseband, _cfo = dem.to_baseband(analysis)
            centred = np.asarray(baseband) - np.mean(baseband)
            amps = self._complex_chips(centred, start, fs / chip_rate)
            chip_streams.append(amps - np.mean(amps))
        n_chips = min(len(c) for c in chip_streams)
        y = np.vstack([c[:n_chips] for c in chip_streams])

        # Training: each node's known preamble chips.
        training = []
        for i, (node, _pos) in enumerate(self._nodes):
            pre = node.firmware.config.uplink_format.preamble
            training.append(fm0_expected_chips(pre))
        train_len = min(min(len(t) for t in training), n_chips)
        x_train = np.vstack([t[:train_len] for t in training])

        try:
            h = estimate_channel_matrix(y[:, :train_len], x_train)
            condition = float(np.linalg.cond(h))
        except (ValueError, np.linalg.LinAlgError):
            condition = float("inf")
        try:
            # The joint MIMO equaliser subsumes zero-forcing and also
            # removes inter-chip interference from tank reverberation.
            separated = mimo_equalize(y, x_train, taps=9)
        except (ValueError, np.linalg.LinAlgError):
            separated = y

        for i, (node, _pos) in enumerate(self._nodes):
            response = responses[i]
            packet = None
            sinr_before = float("nan")
            sinr_after = float("nan")
            if response is not None:
                fmt = node.firmware.config.uplink_format
                true_bits = response.to_packet().to_bits(fmt)
                true_chips = fm0_expected_chips(true_bits)
                ref_len = min(len(true_chips), n_chips)
                sinr_before = sinr_db(y[i, :ref_len], true_chips[:ref_len])
                sinr_after = sinr_db(separated[i, :ref_len], true_chips[:ref_len])
                stream = separated[i, : 2 * (ref_len // 2)]
                if np.iscomplexobj(stream):
                    # Rotate the stream onto the real axis before the
                    # (real-valued) FM0 Viterbi decoder.
                    second = np.mean(stream**2)
                    if abs(second) > 1e-30:
                        stream = np.real(
                            stream * np.exp(-0.5j * np.angle(second))
                        )
                    else:
                        stream = np.real(stream)
                bits = fm0_ml_decode(stream)
                try:
                    packet = Packet.from_bits(bits, fmt)
                except FramingError:
                    packet = None
            outcomes.append(
                NodeOutcome(
                    address=int(node.address),
                    response=response,
                    packet=packet,
                    sinr_before_db=sinr_before,
                    sinr_after_db=sinr_after,
                )
            )
        return ConcurrentResult(outcomes=outcomes, condition_number=condition)
