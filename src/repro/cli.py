"""Command-line interface: ``python -m repro <command>``.

Lets a user drive the reproduction without writing code:

* ``demo``     — run the quickstart link exchange and print the outcome.
* ``fig3``     — print the recto-piezo tuning curves.
* ``fig7``     — print the BER-SNR table.
* ``fig8``     — print the SNR-vs-bitrate table (waveform level; slower).
* ``fig9``     — print the power-up-range tables for both pools.
* ``fig11``    — print the node power budget.
* ``envs``     — list deployment-environment presets with derived numbers.
"""

from __future__ import annotations

import argparse
import math
import sys

import numpy as np


def _cmd_demo(args) -> int:
    from repro.acoustics import POOL_A, Position
    from repro.core import BackscatterLink, Projector
    from repro.net.messages import Command, Query
    from repro.node.node import PABNode
    from repro.piezo import Transducer

    transducer = Transducer.from_cylinder_design()
    f = transducer.resonance_hz
    projector = Projector(
        transducer=transducer, drive_voltage_v=args.drive, carrier_hz=f
    )
    node = PABNode(address=7, channel_frequencies_hz=(f,), bitrate=args.bitrate)
    link = BackscatterLink(
        POOL_A, projector, Position(0.5, 1.5, 0.6),
        node, Position(0.5 + args.distance, 1.5, 0.6), Position(1.0, 0.8, 0.6),
    )
    result = link.run_query(Query(destination=7, command=Command.PING))
    print(f"powered up:    {result.powered_up}")
    print(f"query decoded: {result.query_decoded}")
    print(f"reply decoded: {result.success}")
    if result.success:
        print(f"SNR: {result.snr_db:.1f} dB   BER: {result.ber:.4f}")
    return 0 if result.success else 1


def _cmd_fig3(args) -> int:
    from repro.circuits import EnergyHarvester
    from repro.core.experiment import ExperimentTable
    from repro.piezo import Transducer

    transducer = Transducer.from_cylinder_design()
    h15 = EnergyHarvester(transducer, design_frequency_hz=15_000.0)
    h18 = EnergyHarvester(transducer, design_frequency_hz=18_000.0)
    pressure = h15.calibrate_pressure_for_peak(4.0)
    freqs = np.linspace(11_000.0, 21_000.0, 41)
    table = ExperimentTable(
        title="Fig. 3: recto-piezo rectified voltage",
        columns=("frequency_hz", "15k_match_v", "18k_match_v"),
    )
    for f, a, b in zip(
        freqs,
        h15.rectified_voltage_curve(freqs, pressure),
        h18.rectified_voltage_curve(freqs, pressure),
    ):
        table.add_row(float(f), float(a), float(b))
    print(table.to_text())
    return 0


def _cmd_fig7(args) -> int:
    from repro.core.experiment import ber_snr_sweep

    table = ber_snr_sweep(
        np.arange(-2.0, 15.0, 1.0), bits_per_point=args.bits
    )
    print(table.to_text())
    return 0


def _cmd_fig8(args) -> int:
    from repro.acoustics import POOL_A, Position
    from repro.core import BackscatterLink, Projector
    from repro.core.experiment import ExperimentTable
    from repro.net.messages import Command, Query
    from repro.node.node import PABNode
    from repro.piezo import Transducer

    transducer = Transducer.from_cylinder_design()
    f = transducer.resonance_hz
    table = ExperimentTable(
        title="Fig. 8: SNR vs backscatter bitrate",
        columns=("bitrate_bps", "snr_db"),
    )
    for bitrate in (100.0, 400.0, 1_000.0, 2_000.0, 3_000.0, 5_000.0):
        projector = Projector(
            transducer=transducer, drive_voltage_v=50.0, carrier_hz=f
        )
        node = PABNode(address=7, channel_frequencies_hz=(f,), bitrate=bitrate)
        link = BackscatterLink(
            POOL_A, projector, Position(0.5, 1.5, 0.6),
            node, Position(1.3, 1.5, 0.6), Position(1.0, 0.9, 0.6),
        )
        snr = link.measure_uplink_snr(Query(destination=7, command=Command.PING))
        table.add_row(bitrate, float(snr))
    print(table.to_text())
    return 0


def _cmd_fig9(args) -> int:
    from repro.acoustics import POOL_A, POOL_B, Position
    from repro.core import Projector
    from repro.core.experiment import powerup_range_sweep
    from repro.node.node import PABNode
    from repro.piezo import Transducer

    f = Transducer.from_cylinder_design().resonance_hz

    def projector_factory(voltage):
        return Projector(
            transducer=Transducer.from_cylinder_design(),
            drive_voltage_v=voltage,
            carrier_hz=f,
        )

    def node_factory():
        return PABNode(address=1, channel_frequencies_hz=(f,))

    def diagonal(tank, margin=0.2):
        span = math.hypot(tank.length - 2 * margin, tank.width - 2 * margin)
        ux = (tank.length - 2 * margin) / span
        uy = (tank.width - 2 * margin) / span

        def axis(dist):
            if dist > span:
                raise ValueError("outside")
            return (
                Position(margin, margin, tank.depth / 2),
                Position(margin + dist * ux, margin + dist * uy, tank.depth / 2),
            )

        return axis

    def corridor(tank, margin=0.2):
        def axis(dist):
            if margin + dist > tank.length - margin:
                raise ValueError("outside")
            return (
                Position(margin, tank.width / 2, tank.depth / 2),
                Position(margin + dist, tank.width / 2, tank.depth / 2),
            )

        return axis

    voltages = [25.0, 50.0, 100.0, 150.0, 200.0, 250.0, 300.0, 350.0]
    for tank, axis in ((POOL_A, diagonal(POOL_A)), (POOL_B, corridor(POOL_B))):
        table = powerup_range_sweep(
            tank, voltages,
            node_factory=node_factory,
            projector_factory=projector_factory,
            axis_positions=axis,
        )
        print(table.to_text())
    return 0


def _cmd_fig11(args) -> int:
    from repro.core.experiment import ExperimentTable
    from repro.node import NodePowerModel

    model = NodePowerModel()
    sweep = model.fig11_sweep([100.0, 500.0, 1_000.0, 2_000.0, 3_000.0])
    table = ExperimentTable(
        title="Fig. 11: node power consumption",
        columns=("mode", "power_uw"),
    )
    for mode, value in sweep.items():
        label = mode if isinstance(mode, str) else f"{mode:.0f} bps"
        table.add_row(label, value * 1e6)
    print(table.to_text())
    return 0


def _cmd_coverage(args) -> int:
    from repro.acoustics import POOL_A, POOL_B
    from repro.core import Projector
    from repro.core.deployment import powerup_coverage
    from repro.piezo import Transducer

    tank = POOL_B if args.tank.lower() == "b" else POOL_A
    transducer = Transducer.from_cylinder_design()
    projector = Projector(
        transducer=transducer,
        drive_voltage_v=args.drive,
        carrier_hz=transducer.resonance_hz,
    )
    coverage = powerup_coverage(tank, projector, resolution_m=args.resolution)
    print(
        f"Power-up coverage of {tank.name} at {args.drive:.0f} V "
        f"({coverage.coverage_fraction:.0%}):"
    )
    for i in range(len(coverage.y_coords) - 1, -1, -1):
        print(
            "".join(
                "#" if coverage.values[i, j] > 0 else "."
                for j in range(len(coverage.x_coords))
            )
        )
    return 0


def _cmd_envs(args) -> int:
    from repro.acoustics.environments import ENVIRONMENTS
    from repro.core.experiment import ExperimentTable

    table = ExperimentTable(
        title="Deployment environment presets",
        columns=("name", "sound_speed_mps", "absorption_db_per_km_15khz",
                 "noise_psd_db_15khz"),
    )
    for factory in ENVIRONMENTS.values():
        env = factory()
        table.add_row(
            env.name,
            env.sound_speed_mps,
            env.absorption_db_per_km(15_000.0),
            env.noise.psd_db(15_000.0),
        )
    print(table.to_text())
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Piezo-Acoustic Backscatter reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    demo = sub.add_parser("demo", help="run one link exchange")
    demo.add_argument("--distance", type=float, default=1.0)
    demo.add_argument("--drive", type=float, default=50.0)
    demo.add_argument("--bitrate", type=float, default=1_000.0)
    demo.set_defaults(func=_cmd_demo)

    fig3 = sub.add_parser("fig3", help="recto-piezo tuning curves")
    fig3.set_defaults(func=_cmd_fig3)

    fig7 = sub.add_parser("fig7", help="BER vs SNR table")
    fig7.add_argument("--bits", type=int, default=20_000)
    fig7.set_defaults(func=_cmd_fig7)

    fig8 = sub.add_parser("fig8", help="SNR vs bitrate table")
    fig8.set_defaults(func=_cmd_fig8)

    fig9 = sub.add_parser("fig9", help="power-up range tables")
    fig9.set_defaults(func=_cmd_fig9)

    fig11 = sub.add_parser("fig11", help="node power budget")
    fig11.set_defaults(func=_cmd_fig11)

    envs = sub.add_parser("envs", help="deployment environment presets")
    envs.set_defaults(func=_cmd_envs)

    coverage = sub.add_parser("coverage", help="power-up coverage map")
    coverage.add_argument("--tank", choices=["a", "b", "A", "B"], default="a")
    coverage.add_argument("--drive", type=float, default=150.0)
    coverage.add_argument("--resolution", type=float, default=0.5)
    coverage.set_defaults(func=_cmd_coverage)

    return parser


def main(argv=None) -> int:
    """CLI entry point."""
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
