"""Command-line interface: ``python -m repro <command>``.

Lets a user drive the reproduction without writing code:

* ``demo``     — run the quickstart link exchange and print the outcome.
* ``trace``    — run one traced exchange and emit the JSONL span trace.
* ``probe``    — run one probed exchange; dump taps (``.npz``) and any
  decode post-mortem (JSONL).
* ``postmortem`` — render decode post-mortems from a JSONL dump.
* ``energy``   — run one node's ledgered energy simulation; print the
  joule books and duty cycle, dump the SoC time series with ``--out``.
* ``fleet-report`` — run a seeded multi-node chaos campaign with energy
  ledgers + SLO tracking; print energy balances, duty cycles, and the
  SLO burn-rate table; dump the campaign timeline as CSV/JSONL.
  ``--checkpoint-every``/``--checkpoint-dir`` write periodic campaign
  checkpoints; ``--kill-at ROUND:NODE`` arms a fatal worker kill
  (exit code 3, the crash-drill half of the kill-resume proof).
* ``resume`` — restore a ``fleet-report`` checkpoint and run the
  campaign to completion; the report/digest is byte-identical to an
  uninterrupted run.  ``--stream-out`` appends the resumed rounds to
  the interrupted run's telemetry stream.
* ``tail`` — render a ``--stream-out`` telemetry stream: one line per
  round (delivery, SoC, SLO burn, health churn), live with
  ``--follow``; rebuilds the exact campaign timeline from the stream.
* ``bench``    — sequential vs cached vs parallel campaign benchmark
  with the perf-regression gate (``--compare``).
* ``profile``  — deterministic campaign profiler: per-stage wall/CPU
  attribution, per-worker busy/idle + GIL proxy, cache time-saved,
  tracemalloc high-water, and byte-deterministic collapsed-stack /
  speedscope flamegraphs (``--flame-out``).
* ``fig3``     — print the recto-piezo tuning curves.
* ``fig7``     — print the BER-SNR table.
* ``fig8``     — print the SNR-vs-bitrate table (waveform level; slower).
* ``fig9``     — print the power-up-range tables for both pools.
* ``fig11``    — print the node power budget.
* ``envs``     — list deployment-environment presets with derived numbers.
* ``coverage`` — ASCII power-up coverage map of a tank.

Output discipline: diagnostic/status lines go through a
``logging``-backed writer (:func:`_emit`) controlled by the global
``-v``/``--log-level`` flags; tables and machine-readable artifacts
(CSV via ``--out``, the JSONL trace) always go to stdout or their file
regardless of log level.
"""

from __future__ import annotations

import argparse
import json
import logging
import math
import pathlib
import sys

import numpy as np

#: Logger behind every human-facing status line the CLI prints.
_LOG = logging.getLogger("repro.cli")

_LEVELS = {
    "debug": logging.DEBUG,
    "info": logging.INFO,
    "warning": logging.WARNING,
    "error": logging.ERROR,
}


def _emit(message: str = "") -> None:
    """A user-facing status line, routed through logging (INFO)."""
    _LOG.info("%s", message)


def _debug(message: str) -> None:
    _LOG.debug("%s", message)


def _table(text: str) -> None:
    """A table / primary artifact: always to stdout, whatever the level."""
    sys.stdout.write(text if text.endswith("\n") else text + "\n")


def _configure_logging(args) -> None:
    """Wire the ``repro`` logger to stdout at the requested level.

    ``-v`` lowers the threshold to DEBUG; ``--log-level`` sets it
    explicitly (``-v`` wins when both are given).  Handlers are
    replaced, not appended, so repeated ``main()`` calls (tests) don't
    multiply output.
    """
    level = _LEVELS[args.log_level]
    if args.verbose:
        level = logging.DEBUG
    root = logging.getLogger("repro")
    for handler in list(root.handlers):
        root.removeHandler(handler)
    handler = logging.StreamHandler(sys.stdout)
    handler.setFormatter(logging.Formatter("%(message)s"))
    root.addHandler(handler)
    root.setLevel(level)
    root.propagate = False


def _ensure_parent(path) -> pathlib.Path:
    """Create an output path's missing parent directories.

    ``repro fig7 --out results/new_dir/fig7.csv`` should make the
    directory, not die on ``FileNotFoundError``.
    """
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    return path


def _write_table(args, table, *, suffix: str | None = None) -> None:
    """Print a table; mirror it as CSV when ``--out`` was given.

    ``suffix`` disambiguates commands that emit several tables (fig9's
    two pools): it is inserted before the extension.
    """
    _table(table.to_text())
    out = getattr(args, "out", None)
    if not out:
        return
    from repro.obs.export import write_csv

    path = pathlib.Path(out)
    if suffix:
        path = path.with_name(f"{path.stem}_{suffix}{path.suffix or '.csv'}")
    write_csv(_ensure_parent(path), table.columns, table.rows)
    _emit(f"wrote {path}")


def _demo_link(distance: float, drive: float, bitrate: float,
               tracer=None, metrics=None, noise_db: float | None = None):
    """The canonical single-node Pool-A link the demo/trace commands run.

    ``noise_db`` overrides the ambient-noise floor (flat spectrum,
    seeded) — the ``probe`` command uses it to demonstrate decode
    failures on demand.
    """
    from repro.acoustics import POOL_A, Position
    from repro.acoustics.noise import AmbientNoiseModel
    from repro.core import BackscatterLink, Projector
    from repro.node.node import PABNode
    from repro.piezo import Transducer

    transducer = Transducer.from_cylinder_design()
    f = transducer.resonance_hz
    projector = Projector(
        transducer=transducer, drive_voltage_v=drive, carrier_hz=f
    )
    node = PABNode(address=7, channel_frequencies_hz=(f,), bitrate=bitrate)
    noise = None
    if noise_db is not None:
        noise = AmbientNoiseModel(spectrum="flat", flat_level_db=noise_db, seed=0)
    return BackscatterLink(
        POOL_A, projector, Position(0.5, 1.5, 0.6),
        node, Position(0.5 + distance, 1.5, 0.6), Position(1.0, 0.8, 0.6),
        tracer=tracer, metrics=metrics, noise=noise,
    )


def _cmd_demo(args) -> int:
    from repro.net.messages import Command, Query

    link = _demo_link(args.distance, args.drive, args.bitrate)
    result = link.run_query(Query(destination=7, command=Command.PING))
    _emit(f"powered up:    {result.powered_up}")
    _emit(f"query decoded: {result.query_decoded}")
    _emit(f"reply decoded: {result.success}")
    if result.success:
        _emit(f"SNR: {result.snr_db:.1f} dB   BER: {result.ber:.4f}")
    return 0 if result.success else 1


def _cmd_trace(args) -> int:
    """One traced link exchange; JSONL spans to stdout or ``--out``."""
    from repro.net.messages import Command, Query
    from repro.obs import (
        MetricsRegistry, Tracer, metrics_to_prometheus, spans_to_jsonl,
        stage_table, use_tracer, write_spans_jsonl,
    )

    tracer = Tracer()
    metrics = MetricsRegistry()
    link = _demo_link(
        args.distance, args.drive, args.bitrate, tracer=tracer, metrics=metrics
    )
    # Install globally too so node-firmware and MAC spans nest under
    # the link's stages.
    with use_tracer(tracer):
        result = link.transact(Query(destination=7, command=Command.PING))
    if args.out:
        path = write_spans_jsonl(_ensure_parent(args.out), tracer.spans)
        _emit(f"wrote {len(tracer.spans)} spans to {path}")
    else:
        _table(spans_to_jsonl(tracer.spans))
    _emit("")
    _emit(f"reply decoded: {result.success}")
    _table(stage_table(tracer).to_text())
    if args.metrics_out:
        _ensure_parent(args.metrics_out).write_text(metrics_to_prometheus(metrics))
        _emit(f"wrote metrics exposition to {args.metrics_out}")
    return 0 if result.success else 1


def _cmd_probe(args) -> int:
    """One probed exchange: signal taps to ``.npz``, autopsy to JSONL."""
    from repro.net.messages import Command, Query
    from repro.obs import ProbeRegistry, use_probes, write_postmortems_jsonl

    probes = ProbeRegistry(max_samples=args.max_samples)
    link = _demo_link(
        args.distance, args.drive, args.bitrate, noise_db=args.noise_db
    )
    with use_probes(probes):
        result = link.transact(Query(destination=7, command=Command.PING))
    _emit(f"reply decoded: {result.success}")
    _emit(f"captured {len(probes.taps)} taps:")
    for tap in probes.taps:
        _emit(
            f"  {tap.stage}/{tap.name}: {tap.samples} samples "
            f"(decimation {tap.decimation})"
        )
    if args.out:
        path = probes.to_npz(args.out)
        _emit(f"wrote taps to {path}")
    if result.postmortem is not None:
        _table(result.postmortem.render())
    if args.postmortem_out:
        path = write_postmortems_jsonl(args.postmortem_out, probes.postmortems)
        _emit(f"wrote {len(probes.postmortems)} post-mortem(s) to {path}")
    return 0 if result.success else 1


def _cmd_postmortem(args) -> int:
    """Render decode post-mortems from a JSONL dump."""
    from repro.obs import load_postmortems_jsonl

    postmortems = load_postmortems_jsonl(args.path)
    if not postmortems:
        _emit(f"no post-mortems in {args.path}")
        return 1
    for i, pm in enumerate(postmortems):
        if i:
            _table("")
        _table(pm.render())
    return 0


def _cmd_energy(args) -> int:
    """One node's energy life under polling, with the ledger attached."""
    from repro.circuits import EnergyHarvester
    from repro.core.experiment import ExperimentTable
    from repro.obs import NodeEnergyHarness
    from repro.obs.export import write_csv
    from repro.obs.timeline import soc_rows
    from repro.piezo import Transducer

    transducer = Transducer.from_cylinder_design()
    f = transducer.resonance_hz
    harvester = EnergyHarvester(transducer, design_frequency_hz=f)
    v_oc, r_out = harvester.charging_source(args.pressure, f)
    _emit(
        f"charging source at {args.pressure:g} Pa: "
        f"{v_oc:.2f} V open-circuit, {r_out:.0f} ohm"
    )
    harness = NodeEnergyHarness(
        args.node,
        v_oc_v=v_oc,
        r_out_ohm=r_out,
        poll_period_s=args.poll_period,
        bitrate=args.bitrate,
        initial_voltage_v=args.start_voltage,
    )
    for r in range(args.rounds):
        harness.on_poll_round(float(r), polled=True, success=True)
    summary = harness.summary()
    error_pct = 100.0 * abs(summary["error_fraction"])
    table = ExperimentTable(
        title=f"Energy ledger: node {args.node}, {args.rounds} rounds",
        columns=("quantity", "value"),
    )
    table.add_row("harvested_j", summary["harvested_j"])
    table.add_row("consumed_j", summary["consumed_j"])
    table.add_row("leaked_j", summary["leaked_j"])
    table.add_row("clamped_j", summary["clamped_j"])
    table.add_row("stored_delta_j", summary["stored_delta_j"])
    table.add_row("conservation_error_pct", error_pct)
    table.add_row("soc_v", summary["soc_v"])
    table.add_row("min_voltage_v", summary["min_voltage_v"])
    table.add_row("brownout_margin_v", summary["brownout_margin_v"])
    table.add_row("brownouts", summary["brownouts"])
    _table(table.to_text())
    duty = ExperimentTable(
        title="Duty cycle by power state",
        columns=("state", "fraction"),
    )
    for state, fraction in summary["duty_cycle"].items():
        duty.add_row(state, fraction)
    _table(duty.to_text())
    if args.out:
        path = write_csv(
            _ensure_parent(args.out),
            ("node", "t_s", "soc_v"),
            soc_rows({args.node: harness}),
        )
        _emit(f"wrote SoC time series to {path}")
    return 0 if error_pct < 1.0 else 1


def _build_chaos_fleet(n_nodes: int, seed: int, log, inject_noise=None):
    """Seeded stub transports + injectors + energy harnesses for
    ``fleet-report``: a deterministic miniature of a deployed fleet
    (clean nodes, a noisy patch, brownouts, a flaky transport, and one
    energy-starved node).

    ``inject_noise`` is an optional ``(node, start, duration)`` extra
    fault schedule: that node's transport gets an additional seeded
    noise burst on top of its role injector — the knob the drift gate
    and the docs' worked example use to produce a divergent campaign
    with a known stage/taxonomy signature.
    """
    from repro.faults import (
        BrownoutInjector,
        NoiseBurstInjector,
        TransportExceptionInjector,
    )
    from repro.net import Command, Response
    from repro.obs import NodeEnergyHarness

    class _StubResult:
        def __init__(self, packet):
            self.success = True
            self.demod = type("Demod", (), {})()
            self.demod.packet = packet
            self.demod.success = True

    def stub(address):
        def transact(query):
            if query.command is Command.READ_TEMPERATURE:
                raw = int((18.0 + address) * 100.0 + 10_000)
                data = bytes([(raw >> 8) & 0xFF, raw & 0xFF])
                response = Response(
                    source=address, command=query.command, data=data
                )
            else:
                response = Response(source=address, command=query.command)
            return _StubResult(response.to_packet())

        return transact

    transports = {}
    harnesses = {}
    for addr in range(1, n_nodes + 1):
        inner = stub(addr)
        role = addr % 4
        if role == 1:
            inner = NoiseBurstInjector(
                inner, start=3 + addr, duration=5, node=addr, log=log,
                seed=seed + addr,
            )
        elif role == 2:
            inner = BrownoutInjector(
                inner, at=2 + addr % 3, dark_for=16, node=addr, log=log,
                seed=seed + addr,
            )
        elif role == 3:
            inner = TransportExceptionInjector(
                inner, at=(4, 9 + addr), node=addr, log=log, seed=seed + addr
            )
        if inject_noise is not None and addr == int(inject_noise[0]):
            inner = NoiseBurstInjector(
                inner, start=int(inject_noise[1]),
                duration=int(inject_noise[2]), node=addr, log=log,
                seed=seed + 7000 + addr,
            )
        transports[addr] = inner
        # Harvest diversity: most nodes comfortable, the last one
        # energy-starved (equilibrium below the LDO dropout) so the
        # energy objective actually burns budget.
        v_oc = 1.9 if addr == n_nodes else 3.4 + 0.15 * (addr % 5)
        harnesses[addr] = NodeEnergyHarness(
            addr, v_oc_v=v_oc, r_out_ohm=4.0e3, initial_voltage_v=3.0
        )
    return transports, harnesses


def _parse_kill_at(spec: str) -> tuple[int, int]:
    """``ROUND:NODE`` -> ``(round, node)``; the node accepts ``0x`` hex."""
    round_s, sep, node_s = spec.partition(":")
    try:
        if not sep:
            raise ValueError
        return int(round_s), int(node_s, 0)
    except ValueError:
        raise ValueError(
            f"bad --kill-at spec {spec!r}; expected ROUND:NODE"
        ) from None


def _parse_inject_noise(spec: str) -> tuple[int, int, int]:
    """``NODE:START:DURATION`` -> ``(node, start_round, duration)``."""
    try:
        node_s, start_s, duration_s = spec.split(":")
        return int(node_s, 0), int(start_s), int(duration_s)
    except ValueError:
        raise ValueError(
            f"bad --inject-noise spec {spec!r}; expected NODE:START:DURATION"
        ) from None


def _make_chaos_reader(nodes: int, seed: int, window: int, inject_noise=None):
    """The seeded campaign stack ``fleet-report`` runs.

    Factored out so ``repro resume`` can rebuild the exact same fleet
    from a checkpoint's campaign metadata before restoring state.
    Returns ``(reader, log, metrics, harnesses)``; the fleet is *not*
    configured here (the configure polls' effects live inside a
    checkpoint, so resume must not replay them).

    The reader carries an :class:`~repro.obs.analytics.AnomalyMonitor`
    (as ``reader.analytics``): every chaos campaign watches its own
    per-round series and streams ``anomaly`` envelopes.  Detector
    state checkpoints with the rest of the campaign, so resumed runs
    flag the identical anomaly sequence.
    """
    from repro.faults import EventLog
    from repro.net import HealthPolicy, ReaderController, RetryPolicy
    from repro.obs import (
        AnomalyMonitor, MetricsRegistry, SLOTracker, set_build_info,
    )

    log = EventLog()
    transports, harnesses = _build_chaos_fleet(
        nodes, seed, log, inject_noise=inject_noise
    )
    slo = SLOTracker(window=window)
    metrics = MetricsRegistry()
    # Registered here (not per-command) so every execution mode --
    # fleet-report, resume, parallel -- carries the identical
    # pab_build_info sample and campaign digests stay byte-identical.
    set_build_info(metrics)
    reader = ReaderController(
        transports,
        retry_policy=RetryPolicy(
            max_retries=1, base_backoff_s=0.1, jitter=0.25, seed=seed
        ),
        health_policy=HealthPolicy(
            degrade_after=2, quarantine_after=4, recover_after=2,
            probe_backoff_rounds=2,
        ),
        log=log,
        metrics=metrics,
        ledgers=harnesses,
        slo=slo,
        analytics=AnomalyMonitor(),
    )
    return reader, log, metrics, harnesses


def _cmd_fleet_report(args) -> int:
    """Chaos campaign with ledgers + SLO tracking; fleet health report.

    With ``--stream-out`` the campaign publishes its telemetry
    incrementally to a JSONL stream (plus an in-memory flight
    recorder, dumped next to the checkpoints on a fatal abort); the
    stream replays through ``repro tail`` to the exact end-of-run
    timeline and SLO numbers.  ``--serve-port`` additionally serves
    live Prometheus snapshots of the campaign metrics over HTTP.
    """
    bus = None
    prev_bus = None
    if args.stream_out:
        from repro.obs.recorder import FlightRecorder
        from repro.obs.stream import (
            JsonlStreamSink, TelemetryBus, get_bus, set_bus,
        )

        stream_path = _ensure_parent(args.stream_out)
        # A fresh campaign owns its stream file; only `repro resume`
        # appends to an existing one.
        stream_path.unlink(missing_ok=True)
        bus = TelemetryBus(
            sinks=[JsonlStreamSink(stream_path), FlightRecorder()]
        )
        prev_bus = get_bus()
        set_bus(bus)
    try:
        return _run_fleet_report(args, bus)
    finally:
        if bus is not None:
            from repro.obs.stream import set_bus

            set_bus(prev_bus)
            bus.close()
            stats = bus.flush_stats()
            _emit(
                f"wrote telemetry stream to {args.stream_out} "
                f"({bus.seq} events, p99 flush {stats['p99_s'] * 1e3:.2f} ms)"
            )


def _run_fleet_report(args, bus) -> int:
    from repro.core.experiment import ExperimentTable
    from repro.net import Command
    from repro.obs import metrics_to_prometheus
    from repro.obs.timeline import (
        build_timeline, render_timeline, write_timeline_csv,
        write_timeline_jsonl,
    )
    from repro.resilience import (
        CampaignAbort, campaign_digest, install_worker_crash,
        latest_checkpoint,
    )

    if args.checkpoint_every and not args.checkpoint_dir:
        _emit("--checkpoint-every requires --checkpoint-dir")
        return 2
    inject_noise = None
    if args.inject_noise:
        try:
            inject_noise = _parse_inject_noise(args.inject_noise)
        except ValueError as exc:
            _emit(str(exc))
            return 2
        _emit(
            f"injecting extra noise burst: node {inject_noise[0]}, "
            f"rounds {inject_noise[1]}..{inject_noise[1] + inject_noise[2] - 1}"
        )
    reader, log, metrics, harnesses = _make_chaos_reader(
        args.nodes, args.seed, args.window, inject_noise=inject_noise
    )
    for addr in sorted(reader.nodes):
        reader.set_bitrate(addr, 2_000.0)
    if args.kill_at:
        try:
            kill_round, kill_node = _parse_kill_at(args.kill_at)
        except ValueError as exc:
            _emit(str(exc))
            return 2
        install_worker_crash(
            reader, kill_node, rounds=(kill_round,), fatal=True
        )
        _emit(f"armed fatal worker kill at round {kill_round}, node {kill_node}")
    _emit(
        f"{args.nodes} nodes configured; running {args.rounds} chaos rounds "
        f"(seed {args.seed})"
    )
    campaign_meta = {
        "builder": "chaos-fleet",
        "params": {
            "nodes": args.nodes, "seed": args.seed, "window": args.window,
        },
        "command": "READ_TEMPERATURE",
        "rounds": args.rounds,
    }
    if inject_noise is not None:
        # Only present when used: fault-free campaign metadata (and
        # the checkpoints carrying it) stays byte-identical to
        # pre-inject-noise builds.
        campaign_meta["params"]["inject_noise"] = list(inject_noise)
    if bus is not None:
        from repro import __version__

        bus.publish(
            "stream_start", source="cli",
            data={"campaign": campaign_meta, "version": __version__},
        )
        bus.flush()
    server = None
    if args.serve_port is not None:
        from repro.obs.stream import MetricsSnapshotServer

        server = MetricsSnapshotServer(metrics, port=args.serve_port)
        port = server.start()
        _emit(f"metrics snapshot endpoint: http://127.0.0.1:{port}/metrics")
    try:
        report = reader.run_campaign(
            Command.READ_TEMPERATURE,
            rounds=args.rounds,
            checkpoint_every=args.checkpoint_every,
            checkpoint_dir=args.checkpoint_dir,
            campaign=campaign_meta,
        )
    except CampaignAbort as exc:
        _emit(f"campaign aborted: {exc}")
        if reader.last_recorder_dump is not None:
            _emit(f"flight recorder dumped to {reader.last_recorder_dump}")
        if args.checkpoint_dir:
            latest = latest_checkpoint(args.checkpoint_dir)
            if latest is not None:
                _emit(f"latest checkpoint: {latest}")
            else:
                _emit("no checkpoint was written before the crash")
        return 3
    finally:
        if server is not None:
            server.stop()

    balance = ExperimentTable(
        title="Per-node energy balance",
        columns=("node", "harvested_j", "consumed_j", "leaked_j",
                 "clamped_j", "error_pct", "soc_v", "margin_v", "brownouts"),
    )
    worst_error = 0.0
    for addr, summary in report["energy"].items():
        error_pct = 100.0 * abs(summary["error_fraction"])
        worst_error = max(worst_error, error_pct)
        balance.add_row(
            addr, summary["harvested_j"], summary["consumed_j"],
            summary["leaked_j"], summary["clamped_j"], error_pct,
            summary["soc_v"], summary["brownout_margin_v"],
            summary["brownouts"],
        )
    _table(balance.to_text())

    duty = ExperimentTable(
        title="Duty cycle by power state",
        columns=("node", "cold", "idle", "decoding", "backscatter", "sensing"),
    )
    for addr, summary in report["energy"].items():
        cycle = summary["duty_cycle"]
        duty.add_row(
            addr, cycle.get("cold", 0.0), cycle.get("idle", 0.0),
            cycle.get("decoding", 0.0), cycle.get("backscatter", 0.0),
            cycle.get("sensing", 0.0),
        )
    _table(duty.to_text())

    slo_table = ExperimentTable(
        title="SLO error budgets and burn rates",
        columns=("scope", "objective", "target", "compliance",
                 "budget_remaining", "burn_rate"),
    )
    slo_report = report["slo"]
    for objective, entry in slo_report["fleet"].items():
        slo_table.add_row(
            "fleet", objective, entry["target"], entry["compliance"],
            entry["budget_remaining"], entry["burn_rate"],
        )
    for node_entry in slo_report["nodes"]:
        for objective in sorted(k for k in node_entry if k != "node"):
            entry = node_entry[objective]
            slo_table.add_row(
                str(node_entry["node"]), objective, entry["target"],
                entry["compliance"], entry["budget_remaining"],
                entry["burn_rate"],
            )
    _table(slo_table.to_text())

    rows = build_timeline(reader.round_log, log=log, ledgers=harnesses)
    if args.show_timeline:
        _table(render_timeline(rows, max_rows=args.show_timeline))
    if args.timeline_out:
        path = write_timeline_csv(_ensure_parent(args.timeline_out), rows)
        _emit(f"wrote timeline CSV to {path}")
    if args.timeline_jsonl:
        path = write_timeline_jsonl(_ensure_parent(args.timeline_jsonl), rows)
        _emit(f"wrote timeline JSONL to {path}")
    if args.metrics_out:
        _ensure_parent(args.metrics_out).write_text(
            metrics_to_prometheus(metrics)
        )
        _emit(f"wrote metrics exposition to {args.metrics_out}")
    if args.report_out:
        # Canonical rendering (sorted keys) so two identical campaigns
        # produce byte-identical report files for `repro diff`.
        _ensure_parent(args.report_out).write_text(
            json.dumps(report, sort_keys=True, indent=2) + "\n"
        )
        _emit(f"wrote fleet report JSON to {args.report_out}")
    if args.digest_out:
        digest = campaign_digest(report, log, metrics)
        _ensure_parent(args.digest_out).write_text(digest + "\n")
        _emit(f"wrote campaign digest to {args.digest_out}")
    anomalies = reader.analytics.summary() if reader.analytics else {}
    if anomalies.get("total"):
        _emit(
            f"anomalies: {anomalies['total']} "
            f"(warn {anomalies.get('warn', 0)}, "
            f"critical {anomalies.get('critical', 0)}) — "
            "inspect with 'repro tail'"
        )
    _emit(
        f"campaign: {report['rounds']} rounds, "
        f"delivery {report['network']['delivery_ratio']:.2f}, "
        f"{report['events']} events, "
        f"worst conservation error {worst_error:.3g}%"
    )
    return 0 if worst_error < 1.0 else 1


def _cmd_resume(args) -> int:
    """Resume an interrupted ``fleet-report`` campaign from a checkpoint.

    Rebuilds the fleet from the checkpoint's campaign metadata (same
    builder, same seed), restores the snapshot — the configure polls
    are *not* replayed; their effects are part of the state — and runs
    the remaining rounds.  The resulting report and digest are
    byte-identical to an uninterrupted run.
    """
    bus = None
    prev_bus = None
    if args.stream_out:
        from repro.obs.recorder import FlightRecorder
        from repro.obs.stream import (
            JsonlStreamSink, TelemetryBus, get_bus, set_bus,
        )

        stream_path = _ensure_parent(args.stream_out)
        # Append to the interrupted campaign's stream, continuing its
        # sequence numbers: overlapping rounds (between the checkpoint
        # and the crash) replay byte-identically, so the aggregator's
        # last-write-wins reduction dedups them without special cases.
        bus = TelemetryBus(
            sinks=[JsonlStreamSink(stream_path), FlightRecorder()]
        )
        last = JsonlStreamSink.last_seq(stream_path)
        if last is not None:
            bus.seq = last + 1
        prev_bus = get_bus()
        set_bus(bus)
    try:
        return _run_resume(args, bus)
    finally:
        if bus is not None:
            from repro.obs.stream import set_bus

            set_bus(prev_bus)
            bus.close()
            _emit(
                f"appended telemetry stream to {args.stream_out} "
                f"(next seq {bus.seq})"
            )


def _run_resume(args, bus) -> int:
    from repro.net import Command
    from repro.resilience import (
        CheckpointError, campaign_digest, read_checkpoint,
    )

    try:
        doc = read_checkpoint(args.checkpoint)
    except CheckpointError as exc:
        _emit(f"FAIL: {exc}")
        return 1
    campaign = doc.get("campaign") or {}
    if campaign.get("builder") != "chaos-fleet":
        _emit(
            "FAIL: checkpoint carries no chaos-fleet campaign metadata; "
            "only fleet-report checkpoints can be resumed"
        )
        return 1
    params = campaign["params"]
    rounds = args.rounds if args.rounds is not None else int(campaign["rounds"])
    inject = params.get("inject_noise")
    reader, log, metrics, _harnesses = _make_chaos_reader(
        int(params["nodes"]), int(params["seed"]), int(params["window"]),
        inject_noise=tuple(inject) if inject else None,
    )
    try:
        command = Command[campaign.get("command", "READ_TEMPERATURE")]
    except KeyError:
        _emit(f"FAIL: checkpoint names unknown command {campaign.get('command')!r}")
        return 1
    _emit(
        f"resuming {params['nodes']}-node campaign (seed {params['seed']}) "
        f"from round {doc['round']} to round {rounds}"
    )
    if bus is not None:
        from repro import __version__

        bus.publish(
            "stream_start", source="cli",
            data={
                "campaign": campaign, "version": __version__,
                "resumed_from_round": int(doc["round"]),
            },
        )
        bus.flush()
    report = reader.run_campaign(command, rounds=rounds, resume_from=doc)
    digest = campaign_digest(report, log, metrics)
    _emit(f"campaign digest: {digest}")
    if args.digest_out:
        _ensure_parent(args.digest_out).write_text(digest + "\n")
        _emit(f"wrote campaign digest to {args.digest_out}")
    _emit(
        f"campaign: {report['rounds']} rounds, "
        f"delivery {report['network']['delivery_ratio']:.2f}, "
        f"{report['events']} events"
    )
    return 0


def _cmd_tail(args) -> int:
    """Render a telemetry stream: live monitor and offline replay.

    Feeds the stream through :class:`~repro.obs.stream.StreamAggregator`
    and prints one line per completed round (delivery, minimum SoC, SLO
    burn, health-state churn).  ``anomaly`` envelopes render as
    highlighted ``!!`` one-liners under their round; with
    ``--fail-on-anomaly`` the command exits 4 if any were seen — the
    scripted-soak contract.  ``--follow`` keeps polling the file for
    new events until none arrive for ``--idle-timeout`` seconds — the
    live view of a campaign running in another process.  The summary
    (and ``--timeline-out``/``--timeline-jsonl``) is rebuilt purely
    from the stream, byte-identical to the producing campaign's batch
    outputs; re-fed lines (a resumed campaign's overlap) reduce
    idempotently.
    """
    import time

    from repro.obs.stream import SCHEMA_VERSION, StreamAggregator
    from repro.obs.timeline import write_timeline_csv, write_timeline_jsonl

    path = pathlib.Path(args.path)
    if not path.exists() and not args.follow:
        _emit(f"FAIL: stream file {path} not found")
        return 1
    agg = StreamAggregator()
    shown: set = set()
    shown_anomalies: set = set()

    def show_anomalies(rnd) -> None:
        for event in agg.anomalies_for_round(rnd):
            data = event.get("data", {})
            key = (
                rnd, data.get("series"), data.get("node"),
                data.get("detector"),
            )
            if key not in shown_anomalies:
                shown_anomalies.add(key)
                _table(agg.anomaly_line(event))

    def drain() -> int:
        if not path.exists():
            return 0
        try:
            fed = agg.feed_file(path)
        except ValueError as exc:
            raise SystemExit(f"unreadable stream {path}: {exc}") from None
        for rnd in sorted(int(rec["t"]) for rec in agg.round_log):
            if rnd not in shown:
                shown.add(rnd)
                _table(agg.round_line(rnd))
            show_anomalies(rnd)
        return fed

    last_total = drain()
    if args.follow:
        idle_since = time.monotonic()
        while time.monotonic() - idle_since < args.idle_timeout:
            time.sleep(args.interval)
            total = drain()
            if total != last_total:
                last_total = total
                idle_since = time.monotonic()
    if not shown:
        _emit(f"no round events in {path} (schema <= {SCHEMA_VERSION})")
        return 1
    totals = agg.delivery_totals()
    summary = (
        f"stream: {agg.rounds_observed()} rounds, "
        f"delivered {totals['delivered']}/{totals['polled']}"
    )
    burn = agg.final_burn()
    if burn:
        summary += ", final burn " + " ".join(
            f"{obj}={value:.3g}" for obj, value in sorted(burn.items())
        )
    anomaly_counts = agg.anomaly_counts()
    if anomaly_counts:
        summary += ", anomalies " + " ".join(
            f"{severity}={count}"
            for severity, count in sorted(anomaly_counts.items())
        )
    _table(summary)
    if agg.unknown_kinds:
        _emit(
            "skipped unknown envelope kinds: " + " ".join(
                f"{kind}={count}"
                for kind, count in sorted(agg.unknown_kinds.items())
            )
        )
    if args.timeline_out or args.timeline_jsonl:
        rows = agg.timeline_rows()
        if args.timeline_out:
            out = write_timeline_csv(_ensure_parent(args.timeline_out), rows)
            _emit(f"wrote replayed timeline CSV to {out}")
        if args.timeline_jsonl:
            out = write_timeline_jsonl(
                _ensure_parent(args.timeline_jsonl), rows
            )
            _emit(f"wrote replayed timeline JSONL to {out}")
    if args.fail_on_anomaly and anomaly_counts:
        _emit(
            f"FAIL: {sum(anomaly_counts.values())} anomaly envelope(s) "
            "in stream (--fail-on-anomaly)"
        )
        return 4
    return 0


def _cmd_diff(args) -> int:
    """Diff two campaign artifacts and attribute any drift.

    Artifacts may be telemetry streams (``--stream-out`` JSONL),
    fleet-report JSON documents (``--report-out``), or BENCH/profile
    record files — both sides must be the same kind.  Prints the drift
    tables and attribution; ``--out`` additionally writes the
    machine-readable drift report (canonical JSON, byte-identical for
    identical inputs).  Exit codes: 0 clean (or informational run), 1
    thresholded drift with ``--gate``, 2 unreadable/mismatched
    artifacts.
    """
    from repro.obs.diff import DiffThresholds, diff_campaigns, drift_to_json, render_drift

    thresholds = DiffThresholds(
        delivery_ratio=args.delivery_threshold,
        node_delivery_ratio=args.node_threshold,
        stage_fraction=args.stage_threshold,
        taxonomy_count=args.taxonomy_threshold,
        soc_v=args.soc_threshold,
        burn_rate=args.burn_threshold,
        anomaly_count=args.anomaly_threshold,
    )
    try:
        report = diff_campaigns(args.a, args.b, thresholds=thresholds)
    except (OSError, ValueError) as exc:
        _emit(f"FAIL: {exc}")
        return 2
    _table(render_drift(report))
    if args.out:
        _ensure_parent(args.out).write_text(drift_to_json(report))
        _emit(f"wrote drift report JSON to {args.out}")
    if args.gate and report["gate"]["drifted"]:
        _emit(
            f"FAIL: drift gate tripped "
            f"({len(report['gate']['failures'])} threshold violation(s))"
        )
        return 1
    return 0


#: Stage name -> (module, class, method) patched by ``bench --inject``.
_INJECT_TARGETS = {
    "link.pwm_synthesis": ("repro.core.projector", "Projector", "query_waveform"),
    "link.downlink_propagation": ("repro.acoustics.channel", "AcousticChannel", "apply"),
    "link.node": ("repro.circuits.schmitt", "SchmittTrigger", "process"),
    "link.uplink_propagation": ("repro.acoustics.channel", "AcousticChannel", "apply"),
    "link.hydrophone_dsp": ("repro.dsp.demod", "BackscatterDemodulator", "demodulate"),
}


def _apply_injection(spec: str):
    """Patch a stage entry point with an artificial delay.

    ``spec`` is ``stage:seconds`` with ``stage`` one of
    :data:`_INJECT_TARGETS`.  Returns ``(cls, attr, original)`` so the
    caller can restore the method (tests invoke ``main()`` in-process).
    """
    import importlib
    import time as _time

    stage, _, rest = spec.partition(":")
    if stage not in _INJECT_TARGETS or not rest:
        raise ValueError(
            f"bad --inject spec {spec!r}; expected STAGE:SECONDS with "
            f"STAGE in {sorted(_INJECT_TARGETS)}"
        )
    seconds = float(rest)
    mod_name, cls_name, attr = _INJECT_TARGETS[stage]
    cls = getattr(importlib.import_module(mod_name), cls_name)
    original = getattr(cls, attr)

    def slowed(self, *a, **kw):
        _time.sleep(seconds)
        return original(self, *a, **kw)

    setattr(cls, attr, slowed)
    return cls, attr, original


def _build_bench_fleet(nodes: int, seed: int, bitrate: float):
    """``{addr: link.run_query}`` over real waveform links.

    Every node gets its own geometry (distinct channel impulse
    responses, so the geometry cache is exercised honestly) and its own
    seeded noise model, so a rebuilt fleet with the same seed replays
    the exact same noise regardless of execution mode.
    """
    from repro.acoustics import POOL_A, Position
    from repro.acoustics.noise import AmbientNoiseModel
    from repro.core import BackscatterLink, Projector
    from repro.node.node import PABNode
    from repro.piezo import Transducer

    transducer = Transducer.from_cylinder_design()
    f = transducer.resonance_hz
    transports = {}
    for i in range(nodes):
        addr = 0x10 + i
        projector = Projector(
            transducer=transducer, drive_voltage_v=60.0, carrier_hz=f
        )
        node = PABNode(address=addr, channel_frequencies_hz=(f,), bitrate=bitrate)
        # Nodes fill a rank of 70 along x (0.8 m .. 3.56 m, inside the
        # 4.0 m tank), then wrap to parallel ranks offset in y and, past
        # five ranks, in z.  Fleets of <= 70 nodes keep the exact
        # positions (and therefore digests) of the historical single-row
        # layout.
        rank, col = divmod(i, 70)
        link = BackscatterLink(
            POOL_A, projector, Position(0.5, 1.5, 0.6),
            node,
            Position(
                0.8 + 0.04 * col,
                1.5 + 0.25 * (rank % 5),
                0.6 + 0.05 * (rank // 5),
            ),
            Position(1.0, 0.8, 0.6),
            noise=AmbientNoiseModel(
                spectrum="flat", flat_level_db=35.0, seed=1000 * seed + addr
            ),
        )
        transports[addr] = link.run_query
    return transports


def _bench_campaign(nodes: int, rounds: int, seed: int, bitrate: float,
                    parallel: int, kill_at: tuple[int, int] | None = None,
                    transports=None, reader_sink: list | None = None):
    """One timed campaign on a fresh fleet; returns ``(seconds, digest)``.

    The digest (:func:`repro.resilience.campaign_digest`) covers the
    campaign report, the event log, and the metrics exposition, so two
    modes agree only if they are byte-identical in every observable
    output.  ``kill_at=(round, node)`` arms a contained (non-fatal)
    worker crash: the supervisor restarts the worker, and the digest
    check then proves the containment telemetry is identical across
    execution modes.

    ``transports`` supplies a pre-built fleet instead of a fresh one —
    the profiler passes one in to keep the links (and their weakly
    registered per-link leg-memo caches) alive across its
    ``cache_stats()`` snapshots.  ``reader_sink`` (a list) receives the
    reader so callers can read engine attribution after the run.

    The bench pins a steady-state health policy (thresholds that no
    run of this length can reach) so the timed workload is a fixed mix
    of poll exchanges at the configured bitrate.  Under the default
    adaptive policy roughly half of a large fleet walks down the
    bitrate ladder over a long campaign, so the measured mix — and
    therefore the regression gate's baseline — would drift with noise
    seeds and campaign length instead of with the code under test.
    Adaptive-policy behaviour (downgrades, quarantine, probing) is
    exercised and digest-checked by the chaos suite and
    ``tests/perf/test_batch.py`` instead.
    """
    import time

    from repro.faults import EventLog
    from repro.net import Command, ReaderController, RetryPolicy
    from repro.net.health import HealthPolicy
    from repro.obs import MetricsRegistry
    from repro.resilience import campaign_digest, install_worker_crash

    log = EventLog()
    metrics = MetricsRegistry()
    if transports is None:
        transports = _build_bench_fleet(nodes, seed, bitrate)
    reader = ReaderController(
        transports,
        retry_policy=RetryPolicy(
            max_retries=1, base_backoff_s=0.0, jitter=0.0, seed=seed
        ),
        health_policy=HealthPolicy(
            degrade_after=10**6, quarantine_after=10**6 + 1
        ),
        log=log,
        metrics=metrics,
        parallel=parallel,
    )
    if kill_at is not None:
        kill_round, kill_node = kill_at
        install_worker_crash(reader, kill_node, rounds=(kill_round,), crashes=1)
    if reader_sink is not None:
        reader_sink.append(reader)
    start = time.perf_counter()
    report = reader.run_campaign(Command.READ_PH, rounds=rounds)
    elapsed = time.perf_counter() - start
    return elapsed, campaign_digest(report, log, metrics), report


def _bench_stage_breakdown(seed: int, bitrate: float, repeats: int = 5) -> dict:
    """Per-stage wall-clock fractions from traced, uncached exchanges.

    One untraced warmup exchange first (FFT plans, import tails), then
    ``repeats`` traced ones aggregated — single-exchange fractions
    wobble by tens of percent on loaded runners.
    """
    from repro.core.link import BackscatterLink
    from repro.net.messages import Command, Query
    from repro.obs import Tracer, use_tracer
    from repro.perf import caching_disabled

    tracer = Tracer()
    transports = _build_bench_fleet(1, seed, bitrate)
    (addr, transact), = transports.items()
    query = Query(destination=addr, command=Command.READ_PH)
    with caching_disabled():
        transact(query)
        with use_tracer(tracer):
            for _ in range(repeats):
                transact(query)
    totals = tracer.stage_totals()
    stage_s = {
        name: totals.get(name, {}).get("total_s", 0.0)
        for name in BackscatterLink.STAGES
    }
    whole = sum(stage_s.values()) or 1.0
    return {
        name: {"total_s": t, "fraction": t / whole}
        for name, t in stage_s.items()
    }


def _baseline_modes(baseline: dict) -> list[tuple[str, str]]:
    """``(mode-name, speedup-key)`` pairs a baseline record carries.

    Old baselines predate the batched engine and only recorded the
    thread-pool speedup under ``speedup_total``; naming the mode in
    every gate line keeps a mixed-history ``BENCH_perf.json`` readable.
    """
    modes = []
    if baseline.get("speedup_total") is not None:
        modes.append((f"threads x{baseline.get('parallel')}", "speedup_total"))
    if baseline.get("speedup_batch") is not None:
        modes.append(("batch", "speedup_batch"))
    return modes


def _bench_gate(current: dict, baseline: dict, threshold: float) -> list[str]:
    """Regression verdicts for ``current`` vs ``baseline`` (empty = pass).

    A stage regresses when its wall-clock *fraction* grows by more than
    ``threshold`` relative plus a 5-point absolute floor (small stages
    jitter); the end-to-end speedup of each mode the baseline recorded
    (threads, batch) regresses when it drops more than ``threshold``
    below the baseline's.  Every verdict names the mode it gates.
    """
    failures = []
    for name, base in baseline.get("stages", {}).items():
        cur = current["stages"].get(name)
        if cur is None:
            continue
        limit = base["fraction"] * (1.0 + threshold) + 0.05
        if cur["fraction"] > limit:
            failures.append(
                f"stage {name}: fraction {cur['fraction']:.3f} > "
                f"allowed {limit:.3f} (baseline {base['fraction']:.3f})"
            )
    # Smoke campaigns are six mostly-cold transactions; their end-to-end
    # speedup hovers near 1x and swings with runner load, so only the
    # stage fractions gate smoke runs.
    if not baseline.get("smoke"):
        for mode, key in _baseline_modes(baseline):
            base_speedup = baseline.get(key)
            cur_speedup = current.get(key)
            if not base_speedup or cur_speedup is None:
                continue
            floor = base_speedup * (1.0 - threshold)
            if cur_speedup < floor:
                failures.append(
                    f"{mode}: speedup {cur_speedup:.2f}x < "
                    f"allowed {floor:.2f}x (baseline {base_speedup:.2f}x)"
                )
    return failures


def _load_bench_baseline(path, smoke: bool):
    """The latest gate-matching record in a ``BENCH_perf.json`` baseline.

    Returns ``(record, None)`` on success or ``(None, reason)`` — one
    clear line instead of a traceback for every way the baseline file
    can be missing or wrong.
    """
    path = pathlib.Path(path)
    if not path.exists():
        return None, f"baseline {path} not found"
    try:
        data = json.loads(path.read_text())
    except ValueError:
        return None, f"baseline {path} is not valid JSON"
    if not isinstance(data, dict) or not isinstance(data.get("records"), list):
        return None, f"baseline {path} has no 'records' list"
    matching = [
        r for r in data["records"]
        if isinstance(r, dict) and r.get("smoke") == smoke
    ]
    if not matching:
        return None, f"no baseline record with smoke={smoke} in {path}"
    record = matching[-1]
    if record.get("schema") != 1:
        return None, (
            f"baseline record schema {record.get('schema')!r} in {path} "
            "is not supported (expected 1)"
        )
    return record, None


def _cmd_bench(args) -> int:
    """Sequential vs cached vs parallel campaign benchmark + perf gate."""
    from repro.core.experiment import ExperimentTable
    from repro.perf import cache_stats, caching_disabled, clear_all_caches

    import os

    nodes = args.nodes if args.nodes is not None else (2 if args.smoke else 10)
    rounds = args.rounds if args.rounds is not None else (3 if args.smoke else 20)
    if args.parallel is None:
        # Thread width beyond the core count only buys GIL thrash on
        # this CPU-bound workload.
        args.parallel = max(1, min(4, os.cpu_count() or 1))
    kill_at = None
    if args.kill_at:
        try:
            kill_at = _parse_kill_at(args.kill_at)
        except ValueError as exc:
            _emit(str(exc))
            return 2
        _emit(
            f"armed contained worker crash at round {kill_at[0]}, "
            f"node {kill_at[1]} (all modes)"
        )
    restore = None
    if args.inject:
        try:
            restore = _apply_injection(args.inject)
        except ValueError as exc:
            _emit(str(exc))
            return 2
        _emit(f"injected slowdown: {args.inject}")
    try:
        _emit(
            f"bench: {nodes} nodes x {rounds} rounds, seed {args.seed}, "
            f"parallel width {args.parallel}"
        )
        clear_all_caches()
        with caching_disabled():
            seq_s, seq_digest, _ = _bench_campaign(
                nodes, rounds, args.seed, args.bitrate, parallel=0,
                kill_at=kill_at,
            )
        _emit(f"sequential (no caches): {seq_s:.2f} s")
        clear_all_caches()
        cached_s, cached_digest, _ = _bench_campaign(
            nodes, rounds, args.seed, args.bitrate, parallel=0,
            kill_at=kill_at,
        )
        _emit(f"cached:                 {cached_s:.2f} s")
        clear_all_caches()
        par_s, par_digest, report = _bench_campaign(
            nodes, rounds, args.seed, args.bitrate, parallel=args.parallel,
            kill_at=kill_at,
        )
        _emit(f"cached + threads:       {par_s:.2f} s")
        clear_all_caches()
        batch_sink: list = []
        batch_s, batch_digest, _ = _bench_campaign(
            nodes, rounds, args.seed, args.bitrate, parallel="batch",
            kill_at=kill_at, reader_sink=batch_sink,
        )
        _emit(f"cached + batch:         {batch_s:.2f} s")
        engine = getattr(batch_sink[0], "_batch_engine", None)
        batch_stats = engine.stats.as_dict() if engine is not None else {}
        identical = (
            seq_digest == cached_digest == par_digest == batch_digest
        )
        stats = cache_stats()
        stages = _bench_stage_breakdown(args.seed, args.bitrate)
    finally:
        if restore is not None:
            cls, attr, original = restore
            setattr(cls, attr, original)

    record = {
        "schema": 1,
        "smoke": bool(args.smoke),
        "nodes": nodes,
        "rounds": rounds,
        "seed": args.seed,
        "bitrate": args.bitrate,
        "parallel": args.parallel,
        "sequential_s": round(seq_s, 4),
        "cached_s": round(cached_s, 4),
        "parallel_s": round(par_s, 4),
        "batch_s": round(batch_s, 4),
        "speedup_cached": round(seq_s / cached_s, 3),
        "speedup_total": round(seq_s / par_s, 3),
        "speedup_batch": round(seq_s / batch_s, 3),
        "batch": batch_stats,
        "identical": identical,
        "digest": seq_digest,
        "delivery_ratio": round(report["network"]["delivery_ratio"], 4),
        "stages": {
            name: {
                "total_s": round(entry["total_s"], 5),
                "fraction": round(entry["fraction"], 4),
            }
            for name, entry in stages.items()
        },
        "caches": {
            name: {"hits": s.hits, "misses": s.misses}
            for name, s in sorted(stats.items())
        },
    }

    table = ExperimentTable(
        title="Benchmark summary",
        columns=("mode", "wall_s", "speedup"),
    )
    table.add_row("sequential", record["sequential_s"], 1.0)
    table.add_row("cached", record["cached_s"], record["speedup_cached"])
    table.add_row("cached+threads", record["parallel_s"], record["speedup_total"])
    table.add_row("cached+batch", record["batch_s"], record["speedup_batch"])
    _table(table.to_text())
    breakdown = ExperimentTable(
        title="Per-stage breakdown (one uncached traced exchange)",
        columns=("stage", "total_s", "fraction"),
    )
    for name, entry in record["stages"].items():
        breakdown.add_row(name, entry["total_s"], entry["fraction"])
    _table(breakdown.to_text())

    if not identical:
        _emit("FAIL: execution modes disagree — reports are not byte-identical")
        return 1

    status = 0
    if args.compare:
        baseline, problem = _load_bench_baseline(args.compare, record["smoke"])
        if problem is not None:
            _emit(f"FAIL: {problem}")
            return 1
        failures = _bench_gate(record, baseline, args.fail_threshold)
        for failure in failures:
            _emit(f"REGRESSION: {failure}")
        if failures:
            status = 1
        else:
            gated = ", ".join(
                f"{mode} {record[key]:.2f}x"
                for mode, key in _baseline_modes(baseline)
                if record.get(key) is not None
            ) or "stage fractions only"
            _emit(
                f"perf gate passed vs baseline ({gated}, "
                f"threshold {args.fail_threshold:.0%})"
            )

    if args.out:
        path = _ensure_parent(args.out)
        history = {"records": []}
        if path.exists():
            try:
                history = json.loads(path.read_text())
            except ValueError:
                _emit(f"FAIL: existing {path} is not valid JSON; not appending")
                return 1
            if not isinstance(history, dict):
                _emit(f"FAIL: existing {path} is not a records object; not appending")
                return 1
        history.setdefault("records", []).append(record)
        path.write_text(json.dumps(history, indent=2, sort_keys=True) + "\n")
        _emit(f"appended record to {path}")
    if args.trend_out:
        path = _ensure_parent(args.trend_out)
        header = (
            "smoke,nodes,rounds,seed,parallel,sequential_s,cached_s,"
            "parallel_s,batch_s,speedup_cached,speedup_total,speedup_batch,"
            + ",".join(f"frac_{n.split('.')[-1]}" for n in record["stages"])
        )
        row = ",".join(
            str(v) for v in (
                int(record["smoke"]), nodes, rounds, args.seed, args.parallel,
                record["sequential_s"], record["cached_s"],
                record["parallel_s"], record["batch_s"],
                record["speedup_cached"], record["speedup_total"],
                record["speedup_batch"],
            )
        ) + "," + ",".join(
            str(e["fraction"]) for e in record["stages"].values()
        )
        if path.exists():
            existing = path.read_text()
            first = existing.splitlines()[0] if existing.strip() else ""
            if first != header:
                _emit(
                    f"FAIL: trend file {path} has a mismatched header "
                    "(stale column layout?); not appending"
                )
                return 1
            path.write_text(existing.rstrip("\n") + "\n" + row + "\n")
        else:
            path.write_text(header + "\n" + row + "\n")
        _emit(f"appended trend row to {path}")
    return status


def _delta_cache_stats(before: dict, after: dict) -> dict:
    """Per-cache counter deltas between two ``cache_stats()`` snapshots.

    The process-global cache counters are cumulative, so a profile
    pass's hit/miss accounting must subtract whatever earlier passes
    (or earlier CLI work in the same process) already recorded.
    """
    from repro.perf.cache import CacheStats

    out = {}
    for name, s in after.items():
        prev = before.get(name)
        out[name] = CacheStats(
            name=name,
            hits=s.hits - (prev.hits if prev else 0),
            misses=s.misses - (prev.misses if prev else 0),
            evictions=s.evictions - (prev.evictions if prev else 0),
            entries=s.entries,
            maxsize=s.maxsize,
        )
    return out


def _cmd_profile(args) -> int:
    """Deterministic campaign profiler (see docs/PERFORMANCE.md).

    Four passes over the same seeded fleet:

    1. a sequential campaign under a unit-tick virtual clock — the
       byte-deterministic flamegraph exports and per-round tracemalloc
       marks;
    2. a dual traced exchange pass (wall clock, then CPU clock) — the
       measured per-stage wall/CPU attribution;
    3. a cached sequential campaign with miss-cost timing — the
       per-cache time-saved estimates;
    4. the same campaign on the thread pool — per-worker busy/idle,
       queue wait, and the CPU/wall GIL-contention proxy.
    """
    import os

    from repro.core.experiment import ExperimentTable
    from repro.core.link import BackscatterLink
    from repro.net.messages import Command, Query
    from repro.obs import (
        CampaignProfiler,
        Tracer,
        VirtualClock,
        profile_stage_costs,
        speedscope_document,
        speedscope_stage_totals,
        use_profiler,
        use_tracer,
        write_flamegraphs,
    )
    from repro.perf import cache_stats, caching_disabled, clear_all_caches

    nodes = args.nodes if args.nodes is not None else (2 if args.smoke else 10)
    rounds = args.rounds if args.rounds is not None else (3 if args.smoke else 20)
    repeats = args.repeats if args.repeats is not None else (2 if args.smoke else 5)
    if args.parallel is None:
        args.parallel = max(1, min(4, os.cpu_count() or 1))
    _emit(
        f"profile: {nodes} nodes x {rounds} rounds, seed {args.seed}, "
        f"parallel width {args.parallel}"
    )

    # Pass 1 — deterministic attribution: the campaign under a unit-tick
    # VirtualClock.  Span timestamps are integers fixed by the seed, so
    # the flamegraph files are byte-identical across runs; per-round
    # tracemalloc marks ride on the profiler's merge-side snapshots.
    clear_all_caches()
    tracer = Tracer(clock=VirtualClock(tick=1.0))
    flame_profiler = CampaignProfiler(memory=True)
    _emit("pass 1/5: virtual-clock campaign (flamegraph + memory)")
    with use_tracer(tracer), use_profiler(flame_profiler):
        _bench_campaign(
            nodes, rounds, args.seed, args.bitrate, parallel=0
        )
    doc = speedscope_document(
        tracer.spans, name=f"pab {nodes}x{rounds} seed {args.seed}"
    )
    flame_totals = speedscope_stage_totals(doc)
    tick_totals = tracer.stage_totals()
    agreement = max(
        (
            abs(flame_totals.get(name, 0.0) - entry["total_s"])
            / entry["total_s"]
            for name, entry in tick_totals.items()
            if entry["total_s"]
        ),
        default=0.0,
    )
    if agreement > 0.01:
        _emit(
            f"FAIL: flamegraph totals diverge from the span tracer's "
            f"by {agreement:.1%} (>1%)"
        )
        return 1
    memory = flame_profiler.memory_report()
    flame_paths = None
    if args.flame_out:
        flame_paths = write_flamegraphs(
            _ensure_parent(args.flame_out), tracer.spans,
            name=f"pab {nodes}x{rounds} seed {args.seed}", unit="none",
        )
        _emit(
            f"wrote {flame_paths['collapsed']} and {flame_paths['speedscope']}"
        )

    # Pass 2 — measured per-stage wall *and* CPU seconds: the same
    # seeded exchange traced once per repeat under a perf_counter
    # tracer, then under a thread_time tracer (identical structure, so
    # the passes join by stage name).
    _emit(f"pass 2/5: measured stage costs ({repeats} traced exchanges x2)")
    warm = _build_bench_fleet(1, args.seed, args.bitrate)
    ((warm_addr, warm_transact),) = warm.items()
    with caching_disabled():
        warm_transact(Query(destination=warm_addr, command=Command.READ_PH))

    def run_exchange(pass_tracer) -> None:
        transports = _build_bench_fleet(1, args.seed, args.bitrate)
        ((addr, transact),) = transports.items()
        query = Query(destination=addr, command=Command.READ_PH)
        with caching_disabled(), use_tracer(pass_tracer):
            transact(query)

    measured = profile_stage_costs(
        run_exchange, repeats=repeats, stages=BackscatterLink.STAGES
    )

    # Pass 3 — cached sequential campaign with per-cache miss costs.
    # The fleet is built *here* and kept referenced until after the
    # stats snapshot: per-link leg-memo caches are weakly registered,
    # so letting the links die would silently drop their counters.
    clear_all_caches()
    seq_transports = _build_bench_fleet(nodes, args.seed, args.bitrate)
    stats_before = cache_stats()
    seq_profiler = CampaignProfiler()
    _emit("pass 3/5: cached sequential campaign (cache savings)")
    with use_profiler(seq_profiler):
        seq_s, seq_digest, _ = _bench_campaign(
            nodes, rounds, args.seed, args.bitrate, parallel=0,
            transports=seq_transports,
        )
    caches = seq_profiler.cache_report(
        _delta_cache_stats(stats_before, cache_stats())
    )
    del seq_transports

    # Pass 4 — the same campaign on the thread pool: per-worker
    # busy/idle, queue wait, and the CPU/wall GIL proxy.
    clear_all_caches()
    par_profiler = CampaignProfiler()
    _emit(f"pass 4/5: threaded campaign (width {args.parallel})")
    with use_profiler(par_profiler):
        par_s, par_digest, _ = _bench_campaign(
            nodes, rounds, args.seed, args.bitrate, parallel=args.parallel
        )
    workers = par_profiler.worker_report()
    busy_total = sum(w["busy_s"] for w in workers.values())
    gil_ratio = (
        sum(w["cpu_s"] for w in workers.values()) / busy_total
        if busy_total else 0.0
    )

    # Pass 5 — the same campaign through the batched PHY engine:
    # window/plan/group attribution from the engine's own counters.
    clear_all_caches()
    _emit("pass 5/5: batched campaign (engine attribution)")
    batch_sink: list = []
    batch_s, batch_digest, _ = _bench_campaign(
        nodes, rounds, args.seed, args.bitrate, parallel="batch",
        reader_sink=batch_sink,
    )
    engine = getattr(batch_sink[0], "_batch_engine", None)
    batch_stats = engine.stats.as_dict() if engine is not None else {}

    if seq_digest != par_digest or seq_digest != batch_digest:
        _emit("FAIL: sequential, threaded and batched campaigns disagree "
              "— reports are not byte-identical")
        return 1

    hot = max(sorted(measured), key=lambda name: measured[name]["fraction"])
    verdict = {
        "hot_stage": hot,
        "hot_fraction": round(measured[hot]["fraction"], 4),
        "hot_cpu_wall_ratio": round(measured[hot]["cpu_wall_ratio"], 3),
        "worker_gil_ratio": round(gil_ratio, 3),
        "gil_bound": gil_ratio < 0.8,
    }

    summary = ExperimentTable(
        title="Profile summary (cached campaign)",
        columns=("mode", "wall_s", "speedup"),
    )
    summary.add_row("sequential", round(seq_s, 4), 1.0)
    summary.add_row(
        f"threads x{args.parallel}", round(par_s, 4),
        round(seq_s / par_s, 3),
    )
    summary.add_row("batch", round(batch_s, 4), round(seq_s / batch_s, 3))
    _table(summary.to_text())

    stage_tbl = ExperimentTable(
        title="Per-stage attribution (measured, uncached)",
        columns=("stage", "wall_s", "cpu_s", "cpu/wall", "fraction"),
    )
    for name, entry in measured.items():
        stage_tbl.add_row(
            name, entry["wall_s"], entry["cpu_s"],
            entry["cpu_wall_ratio"], entry["fraction"],
        )
    _table(stage_tbl.to_text())

    worker_tbl = ExperimentTable(
        title="Worker attribution (parallel campaign)",
        columns=("worker", "units", "busy_s", "queue_wait_s",
                 "utilization", "cpu/wall"),
    )
    for name, w in workers.items():
        worker_tbl.add_row(
            name, w["units"], w["busy_s"], w["queue_wait_s"],
            w["utilization"], w["gil_ratio"],
        )
    _table(worker_tbl.to_text())

    cache_tbl = ExperimentTable(
        title="Cache savings (cached sequential campaign)",
        columns=("cache", "hits", "misses", "miss_cost_s", "saved_s"),
    )
    for name, entry in caches.items():
        cache_tbl.add_row(
            name, entry["hits"], entry["misses"],
            entry["miss_cost_s"], entry["saved_s"],
        )
    _table(cache_tbl.to_text())

    if batch_stats:
        batch_tbl = ExperimentTable(
            title="Batched engine attribution (batch campaign)",
            columns=("counter", "value"),
        )
        for key in (
            "windows", "rounds", "planned", "env_batched",
            "carriers_batched", "tails_batched", "tails_inline",
            "demods_precomputed",
        ):
            batch_tbl.add_row(key, batch_stats.get(key, 0))
        for stage, count in sorted(batch_stats.get("groups", {}).items()):
            batch_tbl.add_row(f"groups.{stage}", count)
        _table(batch_tbl.to_text())

    _emit(
        f"memory high-water: {memory['peak_b'] / 1e6:.1f} MB over "
        f"{memory['rounds']} rounds (tracemalloc)"
    )
    _emit(
        f"hot stage: {hot} ({verdict['hot_fraction']:.0%} of transaction "
        f"wall, cpu/wall {verdict['hot_cpu_wall_ratio']:.2f})"
    )
    _emit(
        f"parallel workers: mean cpu/wall {gil_ratio:.2f} -> "
        + ("GIL-bound (threads wait on the interpreter lock)"
           if verdict["gil_bound"]
           else "compute-bound (threads run mostly unblocked)")
    )

    if args.out:
        record = {
            "schema": 1,
            "benchmark": "profile",
            "smoke": bool(args.smoke),
            "nodes": nodes,
            "rounds": rounds,
            "seed": args.seed,
            "bitrate": args.bitrate,
            "parallel": args.parallel,
            "repeats": repeats,
            "cached_s": round(seq_s, 4),
            "parallel_s": round(par_s, 4),
            "batch_s": round(batch_s, 4),
            "speedup_parallel": round(seq_s / par_s, 3),
            "speedup_batch": round(seq_s / batch_s, 3),
            "batch": batch_stats,
            "identical": True,
            "digest": seq_digest,
            "flame_agreement": round(agreement, 6),
            "stages": {
                name: {
                    "wall_s": round(entry["wall_s"], 5),
                    "cpu_s": round(entry["cpu_s"], 5),
                    "cpu_wall_ratio": round(entry["cpu_wall_ratio"], 3),
                    "fraction": round(entry["fraction"], 4),
                }
                for name, entry in measured.items()
            },
            "stage_ticks": {
                name: {"count": entry["count"], "ticks": entry["total_s"]}
                for name, entry in sorted(tick_totals.items())
            },
            "workers": {
                name: {
                    "units": w["units"],
                    "busy_s": round(w["busy_s"], 4),
                    "queue_wait_s": round(w["queue_wait_s"], 4),
                    "utilization": round(w["utilization"], 3),
                    "gil_ratio": round(w["gil_ratio"], 3),
                }
                for name, w in workers.items()
            },
            "caches": {
                name: {
                    "hits": entry["hits"],
                    "misses": entry["misses"],
                    "miss_cost_s": round(entry["miss_cost_s"], 6),
                    "saved_s": round(entry["saved_s"], 4),
                }
                for name, entry in caches.items()
            },
            "memory": {
                "peak_b": memory["peak_b"],
                "final_b": memory["final_b"],
                "rounds": memory["rounds"],
            },
            "verdict": verdict,
        }
        path = _ensure_parent(args.out)
        history = {"records": []}
        if path.exists():
            try:
                history = json.loads(path.read_text())
            except ValueError:
                _emit(f"FAIL: existing {path} is not valid JSON; not appending")
                return 1
            if not isinstance(history, dict):
                _emit(
                    f"FAIL: existing {path} is not a records object; "
                    "not appending"
                )
                return 1
        history.setdefault("records", []).append(record)
        path.write_text(json.dumps(history, indent=2, sort_keys=True) + "\n")
        _emit(f"appended profile record to {path}")
    return 0


def _cmd_fig3(args) -> int:
    from repro.circuits import EnergyHarvester
    from repro.core.experiment import ExperimentTable
    from repro.piezo import Transducer

    transducer = Transducer.from_cylinder_design()
    h15 = EnergyHarvester(transducer, design_frequency_hz=15_000.0)
    h18 = EnergyHarvester(transducer, design_frequency_hz=18_000.0)
    pressure = h15.calibrate_pressure_for_peak(4.0)
    freqs = np.linspace(11_000.0, 21_000.0, 41)
    table = ExperimentTable(
        title="Fig. 3: recto-piezo rectified voltage",
        columns=("frequency_hz", "15k_match_v", "18k_match_v"),
    )
    for f, a, b in zip(
        freqs,
        h15.rectified_voltage_curve(freqs, pressure),
        h18.rectified_voltage_curve(freqs, pressure),
    ):
        table.add_row(float(f), float(a), float(b))
    _write_table(args, table)
    return 0


def _cmd_fig7(args) -> int:
    from repro.core.experiment import ber_snr_sweep

    table = ber_snr_sweep(
        np.arange(-2.0, 15.0, 1.0), bits_per_point=args.bits
    )
    _write_table(args, table)
    return 0


def _cmd_fig8(args) -> int:
    from repro.acoustics import POOL_A, Position
    from repro.core import BackscatterLink, Projector
    from repro.core.experiment import ExperimentTable
    from repro.net.messages import Command, Query
    from repro.node.node import PABNode
    from repro.piezo import Transducer

    transducer = Transducer.from_cylinder_design()
    f = transducer.resonance_hz
    table = ExperimentTable(
        title="Fig. 8: SNR vs backscatter bitrate",
        columns=("bitrate_bps", "snr_db"),
    )
    for bitrate in (100.0, 400.0, 1_000.0, 2_000.0, 3_000.0, 5_000.0):
        _debug(f"fig8: measuring bitrate {bitrate:g} bps")
        projector = Projector(
            transducer=transducer, drive_voltage_v=50.0, carrier_hz=f
        )
        node = PABNode(address=7, channel_frequencies_hz=(f,), bitrate=bitrate)
        link = BackscatterLink(
            POOL_A, projector, Position(0.5, 1.5, 0.6),
            node, Position(1.3, 1.5, 0.6), Position(1.0, 0.9, 0.6),
        )
        snr = link.measure_uplink_snr(Query(destination=7, command=Command.PING))
        table.add_row(bitrate, float(snr))
    _write_table(args, table)
    return 0


def _cmd_fig9(args) -> int:
    from repro.acoustics import POOL_A, POOL_B, Position
    from repro.core import Projector
    from repro.core.experiment import powerup_range_sweep
    from repro.node.node import PABNode
    from repro.piezo import Transducer

    f = Transducer.from_cylinder_design().resonance_hz

    def projector_factory(voltage):
        return Projector(
            transducer=Transducer.from_cylinder_design(),
            drive_voltage_v=voltage,
            carrier_hz=f,
        )

    def node_factory():
        return PABNode(address=1, channel_frequencies_hz=(f,))

    def diagonal(tank, margin=0.2):
        span = math.hypot(tank.length - 2 * margin, tank.width - 2 * margin)
        ux = (tank.length - 2 * margin) / span
        uy = (tank.width - 2 * margin) / span

        def axis(dist):
            if dist > span:
                raise ValueError("outside")
            return (
                Position(margin, margin, tank.depth / 2),
                Position(margin + dist * ux, margin + dist * uy, tank.depth / 2),
            )

        return axis

    def corridor(tank, margin=0.2):
        def axis(dist):
            if margin + dist > tank.length - margin:
                raise ValueError("outside")
            return (
                Position(margin, tank.width / 2, tank.depth / 2),
                Position(margin + dist, tank.width / 2, tank.depth / 2),
            )

        return axis

    voltages = [25.0, 50.0, 100.0, 150.0, 200.0, 250.0, 300.0, 350.0]
    for tank, axis in ((POOL_A, diagonal(POOL_A)), (POOL_B, corridor(POOL_B))):
        table = powerup_range_sweep(
            tank, voltages,
            node_factory=node_factory,
            projector_factory=projector_factory,
            axis_positions=axis,
        )
        _write_table(args, table, suffix=tank.name.lower().replace(" ", "_"))
    return 0


def _cmd_fig11(args) -> int:
    from repro.core.experiment import ExperimentTable
    from repro.node import NodePowerModel

    model = NodePowerModel()
    sweep = model.fig11_sweep([100.0, 500.0, 1_000.0, 2_000.0, 3_000.0])
    table = ExperimentTable(
        title="Fig. 11: node power consumption",
        columns=("mode", "power_uw"),
    )
    for mode, value in sweep.items():
        label = mode if isinstance(mode, str) else f"{mode:.0f} bps"
        table.add_row(label, value * 1e6)
    _write_table(args, table)
    return 0


def _cmd_coverage(args) -> int:
    from repro.acoustics import POOL_A, POOL_B
    from repro.core import Projector
    from repro.core.deployment import powerup_coverage
    from repro.piezo import Transducer

    tank = POOL_B if args.tank.lower() == "b" else POOL_A
    transducer = Transducer.from_cylinder_design()
    projector = Projector(
        transducer=transducer,
        drive_voltage_v=args.drive,
        carrier_hz=transducer.resonance_hz,
    )
    coverage = powerup_coverage(tank, projector, resolution_m=args.resolution)
    _emit(
        f"Power-up coverage of {tank.name} at {args.drive:.0f} V "
        f"({coverage.coverage_fraction:.0%}):"
    )
    _table(
        "\n".join(
            "".join(
                "#" if coverage.values[i, j] > 0 else "."
                for j in range(len(coverage.x_coords))
            )
            for i in range(len(coverage.y_coords) - 1, -1, -1)
        )
    )
    return 0


def _cmd_envs(args) -> int:
    from repro.acoustics.environments import ENVIRONMENTS
    from repro.core.experiment import ExperimentTable

    table = ExperimentTable(
        title="Deployment environment presets",
        columns=("name", "sound_speed_mps", "absorption_db_per_km_15khz",
                 "noise_psd_db_15khz"),
    )
    for factory in ENVIRONMENTS.values():
        env = factory()
        table.add_row(
            env.name,
            env.sound_speed_mps,
            env.absorption_db_per_km(15_000.0),
            env.noise.psd_db(15_000.0),
        )
    _write_table(args, table)
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Piezo-Acoustic Backscatter reproduction toolkit",
    )
    parser.add_argument(
        "-v", "--verbose", action="store_true",
        help="debug-level status output (overrides --log-level)",
    )
    parser.add_argument(
        "--log-level", choices=sorted(_LEVELS), default="info",
        help="status-line verbosity (tables/artifacts always print)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    demo = sub.add_parser("demo", help="run one link exchange")
    demo.add_argument("--distance", type=float, default=1.0)
    demo.add_argument("--drive", type=float, default=50.0)
    demo.add_argument("--bitrate", type=float, default=1_000.0)
    demo.set_defaults(func=_cmd_demo)

    trace = sub.add_parser(
        "trace", help="run one traced exchange, emit the JSONL span trace"
    )
    trace.add_argument("--distance", type=float, default=1.0)
    trace.add_argument("--drive", type=float, default=50.0)
    trace.add_argument("--bitrate", type=float, default=1_000.0)
    trace.add_argument(
        "--out", default=None, help="write the JSONL trace here (default: stdout)"
    )
    trace.add_argument(
        "--metrics-out", default=None,
        help="also write a Prometheus text exposition of the run's metrics",
    )
    trace.set_defaults(func=_cmd_trace)

    probe = sub.add_parser(
        "probe", help="run one probed exchange, dump signal taps"
    )
    probe.add_argument("--distance", type=float, default=1.0)
    probe.add_argument("--drive", type=float, default=50.0)
    probe.add_argument("--bitrate", type=float, default=1_000.0)
    probe.add_argument(
        "--noise-db", type=float, default=None,
        help="override the ambient noise floor [dB re 1 uPa^2/Hz] "
        "(high values force a decode failure)",
    )
    probe.add_argument(
        "--max-samples", type=int, default=4096,
        help="per-tap waveform length cap before decimation",
    )
    probe.add_argument(
        "--out", default=None, help="write the raw taps here as .npz"
    )
    probe.add_argument(
        "--postmortem-out", default=None,
        help="write decode post-mortems here as JSONL",
    )
    probe.set_defaults(func=_cmd_probe)

    postmortem = sub.add_parser(
        "postmortem", help="render decode post-mortems from a JSONL dump"
    )
    postmortem.add_argument("path", help="post-mortem JSONL file to render")
    postmortem.set_defaults(func=_cmd_postmortem)

    energy = sub.add_parser(
        "energy", help="one node's ledgered energy simulation"
    )
    energy.add_argument("--node", type=int, default=7)
    energy.add_argument(
        "--pressure", type=float, default=600.0,
        help="incident acoustic pressure at the node [Pa]",
    )
    energy.add_argument("--rounds", type=int, default=30)
    energy.add_argument("--poll-period", type=float, default=1.0)
    energy.add_argument("--bitrate", type=float, default=1_000.0)
    energy.add_argument(
        "--start-voltage", type=float, default=0.0,
        help="initial supercap voltage [V] (0 = true cold start)",
    )
    energy.add_argument(
        "--out", default=None,
        help="write the SoC time series here as CSV",
    )
    energy.set_defaults(func=_cmd_energy)

    fleet = sub.add_parser(
        "fleet-report",
        help="chaos campaign with energy ledgers + SLO tracking",
    )
    fleet.add_argument("--nodes", type=int, default=10)
    fleet.add_argument("--rounds", type=int, default=40)
    fleet.add_argument("--seed", type=int, default=2019)
    fleet.add_argument(
        "--window", type=int, default=20,
        help="rolling window (rounds) for SLO burn rates",
    )
    fleet.add_argument(
        "--show-timeline", type=int, default=0, metavar="N",
        help="also print the first N timeline rows",
    )
    fleet.add_argument(
        "--timeline-out", default=None,
        help="write the campaign timeline here as CSV",
    )
    fleet.add_argument(
        "--timeline-jsonl", default=None,
        help="write the campaign timeline here as JSONL",
    )
    fleet.add_argument(
        "--metrics-out", default=None,
        help="write a Prometheus text exposition of the campaign metrics",
    )
    fleet.add_argument(
        "--checkpoint-every", type=int, default=0, metavar="K",
        help="write a campaign checkpoint after every K-th round",
    )
    fleet.add_argument(
        "--checkpoint-dir", default=None,
        help="directory for checkpoint-NNNNNN.json files",
    )
    fleet.add_argument(
        "--kill-at", default=None, metavar="ROUND:NODE",
        help="crash the campaign (fatally) when NODE's worker runs in "
             "ROUND; exits 3, leaving checkpoints for 'repro resume'",
    )
    fleet.add_argument(
        "--inject-noise", default=None, metavar="NODE:START:DURATION",
        help="add an extra seeded noise burst on NODE for DURATION "
             "rounds starting at START (drift-gate self-test fault "
             "schedule)",
    )
    fleet.add_argument(
        "--report-out", default=None, metavar="FILE.json",
        help="write the fleet report as canonical JSON (diffable with "
             "'repro diff')",
    )
    fleet.add_argument(
        "--digest-out", default=None,
        help="write the campaign digest (report+events+metrics sha256) here",
    )
    fleet.add_argument(
        "--stream-out", default=None, metavar="FILE.jsonl",
        help="stream campaign telemetry incrementally to this JSONL "
             "file (replay/monitor it with 'repro tail')",
    )
    fleet.add_argument(
        "--serve-port", type=int, default=None, metavar="PORT",
        help="serve live Prometheus metric snapshots on this port "
             "during the campaign (0 = any free port)",
    )
    fleet.set_defaults(func=_cmd_fleet_report)

    resume = sub.add_parser(
        "resume",
        help="resume an interrupted fleet-report campaign from a checkpoint",
    )
    resume.add_argument("checkpoint", help="checkpoint-NNNNNN.json to restore")
    resume.add_argument(
        "--rounds", type=int, default=None,
        help="total campaign rounds (default: the checkpoint's campaign plan)",
    )
    resume.add_argument(
        "--digest-out", default=None,
        help="write the campaign digest here (for kill-resume drills)",
    )
    resume.add_argument(
        "--stream-out", default=None, metavar="FILE.jsonl",
        help="append the resumed rounds' telemetry to this JSONL "
             "stream (sequence numbers continue the interrupted run's)",
    )
    resume.set_defaults(func=_cmd_resume)

    tail = sub.add_parser(
        "tail",
        help="render a campaign telemetry stream (live with --follow)",
    )
    tail.add_argument("path", help="stream JSONL file (from --stream-out)")
    tail.add_argument(
        "--follow", action="store_true",
        help="keep polling the file for new events (live monitor)",
    )
    tail.add_argument(
        "--interval", type=float, default=0.5,
        help="seconds between polls with --follow",
    )
    tail.add_argument(
        "--idle-timeout", type=float, default=10.0,
        help="stop following after this many quiet seconds",
    )
    tail.add_argument(
        "--timeline-out", default=None,
        help="write the replayed campaign timeline here as CSV",
    )
    tail.add_argument(
        "--timeline-jsonl", default=None,
        help="write the replayed campaign timeline here as JSONL",
    )
    tail.add_argument(
        "--fail-on-anomaly", action="store_true",
        help="exit 4 if the stream carries any anomaly envelopes "
             "(for scripted soak gates)",
    )
    tail.set_defaults(func=_cmd_tail)

    diff = sub.add_parser(
        "diff",
        help="diff two campaign artifacts and attribute drift "
             "(stage/node/taxonomy/energy)",
    )
    diff.add_argument("a", help="baseline artifact (stream JSONL, "
                                "fleet report JSON, or BENCH/profile file)")
    diff.add_argument("b", help="candidate artifact (same kind as A)")
    diff.add_argument(
        "--gate", action="store_true",
        help="exit 1 if any thresholded drift is detected",
    )
    diff.add_argument(
        "--out", default=None, metavar="FILE.json",
        help="write the machine-readable drift report here",
    )
    diff.add_argument("--delivery-threshold", type=float, default=0.02,
                      help="fleet delivery-ratio drift tolerance")
    diff.add_argument("--node-threshold", type=float, default=0.10,
                      help="per-node delivery-ratio drift tolerance")
    diff.add_argument("--stage-threshold", type=float, default=0.10,
                      help="profiler stage-fraction drift tolerance")
    diff.add_argument("--taxonomy-threshold", type=int, default=5,
                      help="fault/post-mortem count drift tolerance")
    diff.add_argument("--soc-threshold", type=float, default=0.15,
                      help="per-node final-SoC drift tolerance (volts)")
    diff.add_argument("--burn-threshold", type=float, default=1.0,
                      help="SLO burn-rate drift tolerance")
    diff.add_argument("--anomaly-threshold", type=int, default=5,
                      help="anomaly-count drift tolerance")
    diff.set_defaults(func=_cmd_diff)

    bench = sub.add_parser(
        "bench",
        help="sequential vs cached vs parallel campaign benchmark",
    )
    bench.add_argument("--nodes", type=int, default=None,
                       help="fleet size (default 10, or 2 with --smoke)")
    bench.add_argument("--rounds", type=int, default=None,
                       help="polling rounds (default 20, or 3 with --smoke)")
    bench.add_argument("--seed", type=int, default=2019)
    bench.add_argument("--bitrate", type=float, default=2_000.0)
    bench.add_argument("--parallel", type=int, default=None,
                       help="parallel reader width for the third mode "
                            "(default: min(4, cpu count))")
    bench.add_argument("--smoke", action="store_true",
                       help="small fleet/campaign for CI smoke runs")
    bench.add_argument("--out", default=None,
                       help="append the run record to this BENCH_perf.json")
    bench.add_argument("--trend-out", default=None,
                       help="append a CSV row to this perf-trend file")
    bench.add_argument("--compare", default=None,
                       help="gate against the latest matching record in "
                            "this BENCH_perf.json")
    bench.add_argument("--fail-threshold", type=float, default=0.25,
                       help="relative regression tolerance for the gate")
    bench.add_argument("--inject", default=None, metavar="STAGE:SECONDS",
                       help="artificially slow one stage (gate self-test)")
    bench.add_argument("--kill-at", default=None, metavar="ROUND:NODE",
                       help="crash NODE's worker (contained, supervisor-"
                            "restarted) in ROUND in every mode; the digest "
                            "check then proves containment is deterministic")
    bench.set_defaults(func=_cmd_bench)

    profile = sub.add_parser(
        "profile",
        help="deterministic campaign profiler: stage/worker attribution "
             "+ flamegraph export",
    )
    profile.add_argument("--nodes", type=int, default=None,
                         help="fleet size (default 10, or 2 with --smoke)")
    profile.add_argument("--rounds", type=int, default=None,
                         help="polling rounds (default 20, or 3 with --smoke)")
    profile.add_argument("--seed", type=int, default=2019)
    profile.add_argument("--bitrate", type=float, default=2_000.0)
    profile.add_argument("--parallel", type=int, default=None,
                         help="worker width for the parallel attribution "
                              "pass (default: min(4, cpu count))")
    profile.add_argument("--repeats", type=int, default=None,
                         help="traced exchanges per measured stage pass "
                              "(default 5, or 2 with --smoke)")
    profile.add_argument("--flame-out", default=None, metavar="BASE",
                         help="write BASE.collapsed.txt + "
                              "BASE.speedscope.json flamegraphs "
                              "(byte-deterministic per seed)")
    profile.add_argument("--out", default=None,
                         help="append the profile record to this JSON "
                              "history (BENCH_perf.json-shaped; keep it a "
                              "separate file so the bench gate's baseline "
                              "lookup stays unpolluted)")
    profile.add_argument("--smoke", action="store_true",
                         help="small fleet/campaign for CI smoke runs")
    profile.set_defaults(func=_cmd_profile)

    fig3 = sub.add_parser("fig3", help="recto-piezo tuning curves")
    fig3.set_defaults(func=_cmd_fig3)

    fig7 = sub.add_parser("fig7", help="BER vs SNR table")
    fig7.add_argument("--bits", type=int, default=20_000)
    fig7.set_defaults(func=_cmd_fig7)

    fig8 = sub.add_parser("fig8", help="SNR vs bitrate table")
    fig8.set_defaults(func=_cmd_fig8)

    fig9 = sub.add_parser("fig9", help="power-up range tables")
    fig9.set_defaults(func=_cmd_fig9)

    fig11 = sub.add_parser("fig11", help="node power budget")
    fig11.set_defaults(func=_cmd_fig11)

    envs = sub.add_parser("envs", help="deployment environment presets")
    envs.set_defaults(func=_cmd_envs)

    coverage = sub.add_parser("coverage", help="power-up coverage map")
    coverage.add_argument("--tank", choices=["a", "b", "A", "B"], default="a")
    coverage.add_argument("--drive", type=float, default=150.0)
    coverage.add_argument("--resolution", type=float, default=0.5)
    coverage.set_defaults(func=_cmd_coverage)

    # Every table-emitting command mirrors to CSV with --out.
    for table_cmd in (fig3, fig7, fig8, fig9, fig11, envs):
        table_cmd.add_argument(
            "--out", default=None,
            help="also write the table as CSV to this path",
        )

    return parser


def main(argv=None) -> int:
    """CLI entry point."""
    args = build_parser().parse_args(argv)
    _configure_logging(args)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
