"""Low-dropout regulator model (paper Fig. 5: LP5900, 1.8 V output).

The LDO turns the raw supercapacitor voltage into the clean 1.8 V rail
that drives the MCU and peripherals.  Behavioural features that matter to
the system: the dropout voltage (the rail collapses when the cap sags),
the quiescent current (a fixed tax on the harvested energy, which the
paper identifies as a contributor to idle power in Sec. 6.4), and the
input current needed to support a given load.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.constants import LDO_OUTPUT_V, LDO_QUIESCENT_A


@dataclass(frozen=True)
class LowDropoutRegulator:
    """An LDO with dropout and quiescent-current behaviour.

    Parameters
    ----------
    output_v:
        Nominal regulated output [V].
    dropout_v:
        Minimum headroom between input and output [V].
    quiescent_a:
        Ground-pin current drawn whenever the part is alive [A].
    undervoltage_lockout_v:
        Input level below which the part shuts off entirely.
    """

    output_v: float = LDO_OUTPUT_V
    dropout_v: float = 0.12
    quiescent_a: float = LDO_QUIESCENT_A
    undervoltage_lockout_v: float = 1.0

    def __post_init__(self) -> None:
        if self.output_v <= 0:
            raise ValueError("output voltage must be positive")
        if self.dropout_v < 0 or self.quiescent_a < 0:
            raise ValueError("dropout and quiescent current must be non-negative")

    @property
    def minimum_input_v(self) -> float:
        """Smallest input that holds full regulation [V]."""
        return self.output_v + self.dropout_v

    def is_regulating(self, input_v: float) -> bool:
        """Whether the output rail is at its nominal value."""
        return input_v >= self.minimum_input_v

    def output_voltage(self, input_v: float) -> float:
        """Rail voltage for a given input [V].

        In dropout the pass element saturates and the output follows the
        input minus the dropout; below the UVLO the output is zero.
        """
        if input_v < self.undervoltage_lockout_v:
            return 0.0
        if input_v >= self.minimum_input_v:
            return self.output_v
        return max(input_v - self.dropout_v, 0.0)

    def input_current(self, load_current_a: float, input_v: float) -> float:
        """Current drawn from the storage cap to support a load [A].

        An LDO is a linear series element: input current = load current +
        quiescent current (when alive).
        """
        if load_current_a < 0:
            raise ValueError("load current must be non-negative")
        if input_v < self.undervoltage_lockout_v:
            return 0.0
        return load_current_a + self.quiescent_a

    def power_loss(self, load_current_a: float, input_v: float) -> float:
        """Power dissipated inside the LDO [W]."""
        i_in = self.input_current(load_current_a, input_v)
        v_out = self.output_voltage(input_v)
        return max(input_v * i_in - v_out * load_current_a, 0.0)
