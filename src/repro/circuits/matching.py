"""L-section impedance matching network design — the recto-piezo mechanism.

The paper's recto-piezo (Sec. 3.3.1) tunes a node's *electrical* resonance
by choosing the two-element matching network between the piezoelectric
transducer and the rectifier.  At the design frequency the network
transforms the rectifier's input resistance into the complex conjugate of
the transducer's source impedance, so all available power is harvested;
away from the design frequency the transformation degrades, and the
harvested voltage falls off — producing the tuned-channel curves of Fig. 3.

Two canonical L-section topologies are supported (load = rectifier side,
source = transducer side):

* ``"shunt-load"`` — susceptance across the load, reactance in series
  toward the source.  Exact when ``R_load >= R_source``.
* ``"series-load"`` — reactance in series with the load, susceptance in
  shunt toward the source.  Exact when
  ``R_load <= (R_s^2 + X_s^2) / R_s``.

Because the piezo source is strongly reactive (|X_s| large), the
series-load topology is almost always feasible; the designer picks
whichever topology admits an exact solution.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.circuits.elements import (
    capacitor_impedance,
    inductor_impedance,
)
from repro.constants import TWO_PI


@dataclass(frozen=True)
class MatchComponent:
    """One reactive element of the network.

    ``kind`` is ``"L"`` or ``"C"``; ``value`` is henries or farads.
    """

    kind: str
    value: float

    def __post_init__(self) -> None:
        if self.kind not in ("L", "C"):
            raise ValueError("kind must be 'L' or 'C'")
        if self.value <= 0:
            raise ValueError("component value must be positive")

    def impedance(self, frequency_hz):
        """Impedance at a frequency [ohm]."""
        if self.kind == "L":
            return inductor_impedance(self.value, frequency_hz)
        return capacitor_impedance(self.value, frequency_hz)


def _component_from_reactance(x: float, frequency_hz: float) -> MatchComponent:
    """An L or C realising series reactance ``x`` at ``frequency_hz``."""
    w = TWO_PI * frequency_hz
    if x > 0:
        return MatchComponent("L", x / w)
    if x < 0:
        return MatchComponent("C", -1.0 / (w * x))
    raise ValueError("zero reactance requires no component")


def _component_from_susceptance(b: float, frequency_hz: float) -> MatchComponent:
    """An L or C realising shunt susceptance ``b`` at ``frequency_hz``."""
    w = TWO_PI * frequency_hz
    if b > 0:
        return MatchComponent("C", b / w)
    if b < 0:
        return MatchComponent("L", -1.0 / (w * b))
    raise ValueError("zero susceptance requires no component")


@dataclass(frozen=True)
class MatchingNetwork:
    """A designed two-element L-section.

    Attributes
    ----------
    topology:
        ``"shunt-load"`` or ``"series-load"``.
    series_component, shunt_component:
        The two elements.
    design_frequency_hz:
        Frequency the match was solved at (the recto-piezo channel).
    """

    topology: str
    series_component: MatchComponent
    shunt_component: MatchComponent
    design_frequency_hz: float

    def input_impedance(self, frequency_hz, z_load):
        """Impedance seen from the source side when terminated by ``z_load``."""
        z_se = self.series_component.impedance(frequency_hz)
        z_sh = self.shunt_component.impedance(frequency_hz)
        z_load = np.asarray(z_load, dtype=complex)
        if self.topology == "shunt-load":
            z_par = z_sh * z_load / (z_sh + z_load)
            result = z_se + z_par
        else:  # series-load
            z_ser = z_load + z_se
            result = z_sh * z_ser / (z_sh + z_ser)
        if np.isscalar(frequency_hz) and z_load.ndim == 0:
            return complex(result)
        return result

    def load_voltage_fraction(self, frequency_hz, z_load, z_source):
        """Complex ratio V_load / V_source_emf through the network.

        Used to compute the AC amplitude that actually reaches the
        rectifier terminals for a given transducer open-circuit voltage.
        """
        z_se = self.series_component.impedance(frequency_hz)
        z_sh = self.shunt_component.impedance(frequency_hz)
        z_load = np.asarray(z_load, dtype=complex)
        z_source = np.asarray(z_source, dtype=complex)
        if self.topology == "shunt-load":
            z_par = z_sh * z_load / (z_sh + z_load)
            v_mid = z_par / (z_source + z_se + z_par)
            return v_mid  # the load sits directly across the parallel node
        z_ser = z_load + z_se
        z_par = z_sh * z_ser / (z_sh + z_ser)
        v_node = z_par / (z_source + z_par)
        return v_node * z_load / z_ser


def enumerate_l_matches(
    z_source: complex,
    r_load: float,
    frequency_hz: float,
) -> list[MatchingNetwork]:
    """All exact two-element L-sections matching ``r_load`` to ``conj(z_source)``.

    Each topology admits two sign branches (high-pass-like and
    low-pass-like); up to four distinct networks exist.  Branches whose
    required reactance degenerates to zero are realised with a vanishingly
    small element.
    """
    if frequency_hz <= 0:
        raise ValueError("frequency must be positive")
    if r_load <= 0:
        raise ValueError("load resistance must be positive")
    r_s = float(np.real(z_source))
    x_s = float(np.imag(z_source))
    if r_s <= 0:
        raise ValueError("source must have positive resistance")

    networks: list[MatchingNetwork] = []

    if r_load >= r_s:
        # shunt-load topology: B across R_load, series X toward source.
        q = math.sqrt(max(r_load / r_s - 1.0, 0.0))
        if q == 0.0:
            q = 1e-12  # degenerate equal-resistance case
        for sign in (1.0, -1.0):
            b1 = sign * q / r_load
            x2 = -x_s + sign * q * r_s
            if x2 == 0.0:
                x2 = 1e-9
            networks.append(
                MatchingNetwork(
                    topology="shunt-load",
                    series_component=_component_from_reactance(x2, frequency_hz),
                    shunt_component=_component_from_susceptance(b1, frequency_hz),
                    design_frequency_hz=frequency_hz,
                )
            )

    g_t = r_s / (r_s**2 + x_s**2)
    if r_load <= 1.0 / g_t:
        # series-load topology: X in series with R_load, shunt B at source.
        b_t = x_s / (r_s**2 + x_s**2)
        x1_mag = math.sqrt(max(r_load / g_t - r_load**2, 0.0))
        for sign in (1.0, -1.0):
            x1 = sign * x1_mag
            b2 = b_t + x1 / (r_load**2 + x1**2)
            if x1 == 0.0:
                x1 = 1e-9
            if b2 == 0.0:
                b2 = 1e-12
            networks.append(
                MatchingNetwork(
                    topology="series-load",
                    series_component=_component_from_reactance(x1, frequency_hz),
                    shunt_component=_component_from_susceptance(b2, frequency_hz),
                    design_frequency_hz=frequency_hz,
                )
            )

    if not networks:
        raise ValueError(
            "no exact two-element match: "
            f"r_load={r_load:.1f} outside both topology ranges for z_source={z_source}"
        )
    return networks


def design_l_match(
    z_source: complex,
    r_load: float,
    frequency_hz: float,
    *,
    z_source_fn=None,
    probe_span_hz: float = 8_000.0,
) -> MatchingNetwork:
    """Design an L-section so the source sees conj(z_source) at ``frequency_hz``.

    Parameters
    ----------
    z_source:
        Complex source impedance at the design frequency (the transducer's
        BVD impedance there).
    r_load:
        Real load resistance (the rectifier's effective input resistance).
    z_source_fn:
        Optional callable ``f -> Z_s(f)``.  When given, all feasible sign
        branches are evaluated and the *most frequency-selective* one is
        returned: the branch with the least off-channel voltage transfer
        across ``probe_span_hz``.  This is the branch a recto-piezo
        designer wants — different channels should not leak into each
        other (paper Sec. 3.3.1).  When omitted, the first feasible branch
        is returned.

    Raises
    ------
    ValueError
        If neither topology admits an exact two-element solution.
    """
    candidates = enumerate_l_matches(z_source, r_load, frequency_hz)
    if z_source_fn is None:
        return candidates[0]

    probe = np.linspace(
        max(frequency_hz - probe_span_hz / 2.0, 100.0),
        frequency_hz + probe_span_hz / 2.0,
        41,
    )
    off_channel = np.abs(probe - frequency_hz) > probe_span_hz / 16.0

    def leakage(net: MatchingNetwork) -> float:
        v = np.array(
            [
                abs(net.load_voltage_fraction(float(f), r_load, z_source_fn(float(f))))
                for f in probe
            ]
        )
        on = abs(
            net.load_voltage_fraction(frequency_hz, r_load, z_source)
        )
        return float(np.sum(v[off_channel] ** 2)) / max(on**2, 1e-30)

    return min(candidates, key=leakage)
