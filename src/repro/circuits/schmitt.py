"""Schmitt trigger + level shifter for downlink decoding (paper Fig. 5e).

The node decodes the projector's PWM downlink with simple envelope
detection: the envelope of the rectified carrier is squared up by a
Schmitt trigger (TXB0302 in the paper), whose hysteresis rejects small
noise wiggles, and the resulting edge stream feeds the MCU timer.

The model converts an analog envelope waveform into a clean binary
waveform given the two thresholds.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class SchmittTrigger:
    """Hysteretic comparator.

    Parameters
    ----------
    high_threshold_v:
        Rising-edge trip point [V].
    low_threshold_v:
        Falling-edge trip point [V]; must be below the high threshold.
    output_high_v, output_low_v:
        Output rail levels after the level shifter.
    """

    high_threshold_v: float
    low_threshold_v: float
    output_high_v: float = 1.8
    output_low_v: float = 0.0

    def __post_init__(self) -> None:
        if self.low_threshold_v >= self.high_threshold_v:
            raise ValueError("low threshold must be below high threshold")

    @property
    def hysteresis_v(self) -> float:
        """Width of the hysteresis band [V]."""
        return self.high_threshold_v - self.low_threshold_v

    def process(self, waveform, initial_state: bool = False) -> np.ndarray:
        """Slice an analog waveform into output levels.

        Vectorised two-threshold hysteresis: samples above the high
        threshold force state 1, samples below the low threshold force
        state 0, and samples in between hold the previous state.
        """
        x = np.asarray(waveform, dtype=float)
        if x.ndim != 1:
            raise ValueError("waveform must be one-dimensional")
        if len(x) == 0:
            return np.zeros(0)
        # +1 where forced high, -1 where forced low, 0 where holding.
        force = np.zeros(len(x), dtype=np.int8)
        force[x >= self.high_threshold_v] = 1
        force[x <= self.low_threshold_v] = -1
        # Propagate the last non-zero "force" forward: each sample looks
        # up the most recent forcing sample's value (a running-maximum
        # over forcing indices), so the hold behaviour needs no Python
        # loop over pulses.
        idx = np.nonzero(force)[0]
        if len(idx) == 0:
            state = np.full(len(x), bool(initial_state))
        else:
            last = np.zeros(len(x), dtype=np.intp)
            last[idx] = idx
            np.maximum.accumulate(last, out=last)
            state = force[last] > 0
            # Before the first forcing sample: hold the initial state.
            state[: idx[0]] = initial_state
        return np.where(state, self.output_high_v, self.output_low_v)

    def edges(self, waveform, sample_rate: float, initial_state: bool = False):
        """Edge times of the sliced waveform.

        Returns ``(times_s, polarities)`` where polarity +1 is a rising
        edge and -1 a falling edge.  The MCU firmware consumes falling
        edges to measure PWM pulse widths (Sec. 4.2.2).
        """
        if sample_rate <= 0:
            raise ValueError("sample rate must be positive")
        out = self.process(waveform, initial_state)
        high = out > (self.output_high_v + self.output_low_v) / 2.0
        diff = np.diff(high.astype(np.int8))
        edge_idx = np.nonzero(diff)[0] + 1
        times = edge_idx / sample_rate
        polarities = diff[edge_idx - 1]
        if len(high) and bool(high[0]) != initial_state:
            # The waveform starts mid-pulse: the transition happened at (or
            # before) sample zero, so report it there.
            times = np.concatenate([[0.0], times])
            polarities = np.concatenate(
                [[1 if high[0] else -1], polarities]
            )
        return times, polarities
