"""Supercapacitor energy storage (paper Fig. 5d: 1000 uF).

The rectified DC charge is stored in a supercapacitor that powers the LDO
and MCU.  The model is the standard first-order ODE

    C * dV/dt = I_in - I_load - V / R_leak

integrated explicitly at the energy engine's time step.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.constants import SUPERCAP_FARADS


@dataclass
class Supercapacitor:
    """A leaky storage capacitor with charge/discharge bookkeeping.

    Parameters
    ----------
    capacitance_f:
        Capacitance [F].
    leakage_resistance_ohm:
        Self-discharge leakage path [ohm].
    max_voltage_v:
        Rated voltage; charging clamps here.
    initial_voltage_v:
        Starting voltage [V].
    """

    capacitance_f: float = SUPERCAP_FARADS
    leakage_resistance_ohm: float = 2e6
    max_voltage_v: float = 5.5
    initial_voltage_v: float = 0.0
    voltage_v: float = field(init=False)

    def __post_init__(self) -> None:
        if self.capacitance_f <= 0:
            raise ValueError("capacitance must be positive")
        if self.leakage_resistance_ohm <= 0:
            raise ValueError("leakage resistance must be positive")
        if self.max_voltage_v <= 0:
            raise ValueError("max voltage must be positive")
        if not 0.0 <= self.initial_voltage_v <= self.max_voltage_v:
            raise ValueError("initial voltage out of range")
        self.voltage_v = self.initial_voltage_v

    @property
    def energy_j(self) -> float:
        """Stored energy, C*V^2/2 [J]."""
        return 0.5 * self.capacitance_f * self.voltage_v**2

    def reset(self, voltage_v: float = 0.0) -> None:
        """Return to a known state."""
        if not 0.0 <= voltage_v <= self.max_voltage_v:
            raise ValueError("voltage out of range")
        self.voltage_v = voltage_v

    def step(self, dt_s: float, i_in_a: float = 0.0, i_load_a: float = 0.0) -> float:
        """Advance the ODE by ``dt_s`` and return the new voltage [V].

        ``i_in_a`` is the charging current from the rectifier; ``i_load_a``
        the draw of the regulator/MCU chain.  The voltage never goes
        negative and never exceeds the rating.
        """
        if dt_s <= 0:
            raise ValueError("time step must be positive")
        if i_in_a < 0 or i_load_a < 0:
            raise ValueError("currents must be non-negative")
        i_leak = self.voltage_v / self.leakage_resistance_ohm
        dv = (i_in_a - i_load_a - i_leak) * dt_s / self.capacitance_f
        self.voltage_v = min(max(self.voltage_v + dv, 0.0), self.max_voltage_v)
        return self.voltage_v

    def charge_from_source(
        self,
        dt_s: float,
        source_voltage_v: float,
        source_resistance_ohm: float,
        i_load_a: float = 0.0,
    ) -> float:
        """Advance one step charging from a Thevenin source (the rectifier).

        Current in = max(0, (V_src - V_cap) / R_src): the rectifier diodes
        block reverse flow when the capacitor sits above the rectifier's
        open-circuit voltage.
        """
        if source_resistance_ohm <= 0:
            raise ValueError("source resistance must be positive")
        i_in = max(0.0, (source_voltage_v - self.voltage_v) / source_resistance_ohm)
        return self.step(dt_s, i_in_a=i_in, i_load_a=i_load_a)

    def time_to_reach(
        self,
        target_v: float,
        source_voltage_v: float,
        source_resistance_ohm: float,
        *,
        dt_s: float = 1e-3,
        timeout_s: float = 600.0,
    ) -> float | None:
        """Simulated time to charge to ``target_v``, or ``None`` if unreachable.

        Leaves the capacitor at its final state.
        """
        if target_v <= self.voltage_v:
            return 0.0
        t = 0.0
        while t < timeout_s:
            prev = self.voltage_v
            self.charge_from_source(dt_s, source_voltage_v, source_resistance_ohm)
            t += dt_s
            if self.voltage_v >= target_v:
                return t
            if self.voltage_v <= prev + 1e-15:
                return None  # reached equilibrium below target
        return None
