"""Supercapacitor energy storage (paper Fig. 5d: 1000 uF).

The rectified DC charge is stored in a supercapacitor that powers the LDO
and MCU.  The model is the standard first-order ODE

    C * dV/dt = I_in - I_load - V / R_leak

integrated explicitly at the energy engine's time step.

Every step also keeps joule-level books: input, load, leakage, and the
energy discarded when charging clamps at ``max_voltage_v`` (previously a
silent loss).  Flows are evaluated at the step's midpoint voltage, which
makes the discrete accounting exact — ``harvested == stored + consumed
+ leaked + clamped`` holds to float precision, the invariant the
:class:`~repro.obs.ledger.EnergyLedger` conservation check relies on.
An optional ``observer`` callable receives each step's flows, which is
how a ledger taps the capacitor without the capacitor knowing about the
observability layer.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.constants import SUPERCAP_FARADS


@dataclass
class Supercapacitor:
    """A leaky storage capacitor with charge/discharge bookkeeping.

    Parameters
    ----------
    capacitance_f:
        Capacitance [F].
    leakage_resistance_ohm:
        Self-discharge leakage path [ohm].
    max_voltage_v:
        Rated voltage; charging clamps here.
    initial_voltage_v:
        Starting voltage [V].
    """

    capacitance_f: float = SUPERCAP_FARADS
    leakage_resistance_ohm: float = 2e6
    max_voltage_v: float = 5.5
    initial_voltage_v: float = 0.0
    voltage_v: float = field(init=False)
    #: Cumulative joule books (see :meth:`energy_balance`).
    harvested_j: float = field(init=False, default=0.0)
    consumed_j: float = field(init=False, default=0.0)
    leaked_j: float = field(init=False, default=0.0)
    clamped_j: float = field(init=False, default=0.0)
    #: Energy added/removed by fiat via :meth:`reset` (can be negative).
    adjusted_j: float = field(init=False, default=0.0)
    #: Optional per-step flow hook: called as
    #: ``observer(dt_s, voltage_v, e_in_j, e_load_j, e_leak_j, e_clamp_j)``
    #: after every step.  ``None`` (the default) costs one ``is None``
    #: check — the disabled-ledger hot path.
    observer: object = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if self.capacitance_f <= 0:
            raise ValueError("capacitance must be positive")
        if self.leakage_resistance_ohm <= 0:
            raise ValueError("leakage resistance must be positive")
        if self.max_voltage_v <= 0:
            raise ValueError("max voltage must be positive")
        if not 0.0 <= self.initial_voltage_v <= self.max_voltage_v:
            raise ValueError("initial voltage out of range")
        self.voltage_v = self.initial_voltage_v

    @property
    def energy_j(self) -> float:
        """Stored energy, C*V^2/2 [J]."""
        return 0.5 * self.capacitance_f * self.voltage_v**2

    def reset(self, voltage_v: float = 0.0) -> None:
        """Return to a known voltage.

        The instantaneous energy jump is booked under ``adjusted_j`` so
        the conservation check still balances across resets (a cold
        start zeroes the cap; a brownout drill restarts it at the LDO
        dropout voltage — neither is a physical flow).
        """
        if not 0.0 <= voltage_v <= self.max_voltage_v:
            raise ValueError("voltage out of range")
        before = self.energy_j
        self.voltage_v = voltage_v
        self.adjusted_j += self.energy_j - before

    def energy_balance(self) -> dict:
        """The joule books plus their conservation error.

        ``error_j`` is ``harvested + adjusted - (stored - initial) -
        consumed - leaked - clamped``; with midpoint-voltage flow
        accounting it stays at float-precision zero.
        """
        stored_delta = self.energy_j - 0.5 * self.capacitance_f * self.initial_voltage_v**2
        error = (
            self.harvested_j + self.adjusted_j
            - stored_delta - self.consumed_j - self.leaked_j - self.clamped_j
        )
        return {
            "harvested_j": self.harvested_j,
            "consumed_j": self.consumed_j,
            "leaked_j": self.leaked_j,
            "clamped_j": self.clamped_j,
            "adjusted_j": self.adjusted_j,
            "stored_delta_j": stored_delta,
            "error_j": error,
        }

    def snapshot_state(self) -> dict:
        """JSON-ready mutable state (voltage plus the joule books)."""
        return {
            "voltage_v": self.voltage_v,
            "harvested_j": self.harvested_j,
            "consumed_j": self.consumed_j,
            "leaked_j": self.leaked_j,
            "clamped_j": self.clamped_j,
            "adjusted_j": self.adjusted_j,
        }

    def restore_state(self, state: dict) -> None:
        """Inverse of :meth:`snapshot_state` (no adjustment is booked)."""
        self.voltage_v = state["voltage_v"]
        self.harvested_j = state["harvested_j"]
        self.consumed_j = state["consumed_j"]
        self.leaked_j = state["leaked_j"]
        self.clamped_j = state["clamped_j"]
        self.adjusted_j = state["adjusted_j"]

    def step(self, dt_s: float, i_in_a: float = 0.0, i_load_a: float = 0.0) -> float:
        """Advance the ODE by ``dt_s`` and return the new voltage [V].

        ``i_in_a`` is the charging current from the rectifier; ``i_load_a``
        the draw of the regulator/MCU chain.  The voltage never goes
        negative and never exceeds the rating; the clamp's discarded
        energy is booked in ``clamped_j`` instead of vanishing.
        """
        if dt_s <= 0:
            raise ValueError("time step must be positive")
        if i_in_a < 0 or i_load_a < 0:
            raise ValueError("currents must be non-negative")
        v0 = self.voltage_v
        i_leak = v0 / self.leakage_resistance_ohm
        dv = (i_in_a - i_load_a - i_leak) * dt_s / self.capacitance_f
        v1 = min(max(v0 + dv, 0.0), self.max_voltage_v)
        self.voltage_v = v1
        # Midpoint-voltage flows: exact for the unclamped explicit-Euler
        # step, so any residual is the clamp's doing.
        v_mid = 0.5 * (v0 + v1)
        e_in = i_in_a * v_mid * dt_s
        e_load = i_load_a * v_mid * dt_s
        e_leak = i_leak * v_mid * dt_s
        e_stored = 0.5 * self.capacitance_f * (v1 * v1 - v0 * v0)
        residual = e_in - e_load - e_leak - e_stored
        e_clamp = 0.0
        if residual > 0.0:
            # Overcharge clamp at max_voltage_v discarded this much.
            e_clamp = residual
        elif residual < 0.0:
            # Floor clamp at 0 V: the load demanded more than the cap
            # held — only the available energy was actually consumed.
            e_load += residual
        self.harvested_j += e_in
        self.consumed_j += e_load
        self.leaked_j += e_leak
        self.clamped_j += e_clamp
        if self.observer is not None:
            self.observer(dt_s, v1, e_in, e_load, e_leak, e_clamp)
        return v1

    def charge_from_source(
        self,
        dt_s: float,
        source_voltage_v: float,
        source_resistance_ohm: float,
        i_load_a: float = 0.0,
    ) -> float:
        """Advance one step charging from a Thevenin source (the rectifier).

        Current in = max(0, (V_src - V_cap) / R_src): the rectifier diodes
        block reverse flow when the capacitor sits above the rectifier's
        open-circuit voltage.
        """
        if source_resistance_ohm <= 0:
            raise ValueError("source resistance must be positive")
        i_in = max(0.0, (source_voltage_v - self.voltage_v) / source_resistance_ohm)
        return self.step(dt_s, i_in_a=i_in, i_load_a=i_load_a)

    def time_to_reach(
        self,
        target_v: float,
        source_voltage_v: float,
        source_resistance_ohm: float,
        *,
        dt_s: float = 1e-3,
        timeout_s: float = 600.0,
        record: list | None = None,
    ) -> float | None:
        """Simulated time to charge to ``target_v``, or ``None`` if unreachable.

        Leaves the capacitor at its final state.  When ``record`` is a
        list, the per-step voltage trajectory is appended to it (the
        energy engine publishes this as a supercap-SoC probe tap).
        """
        if target_v <= self.voltage_v:
            return 0.0
        t = 0.0
        while t < timeout_s:
            prev = self.voltage_v
            self.charge_from_source(dt_s, source_voltage_v, source_resistance_ohm)
            t += dt_s
            if record is not None:
                record.append(self.voltage_v)
            if self.voltage_v >= target_v:
                return t
            if self.voltage_v <= prev + 1e-15:
                return None  # reached equilibrium below target
        return None
