"""End-to-end energy harvesting chain: incident pressure -> rectified DC.

This composes the transducer (piezo/BVD), the recto-piezo matching
network, and the multi-stage rectifier into the measurement the paper
plots in Fig. 3: rectified voltage as a function of the downlink transmit
frequency.  The same chain supplies the charging model used by the
power-up range experiment (Fig. 9).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.circuits.elements import mismatch_power_fraction
from repro.circuits.matching import (
    MatchingNetwork,
    design_l_match,
    enumerate_l_matches,
)
from repro.circuits.rectifier import MultiStageRectifier
from repro.piezo.transducer import Transducer


@dataclass(frozen=True)
class HarvestOperatingPoint:
    """Everything the chain computes for one (frequency, pressure) input.

    Attributes
    ----------
    frequency_hz, incident_pressure_pa:
        The stimulus.
    open_circuit_v:
        Transducer open-circuit voltage amplitude [V].
    rectifier_input_peak_v:
        AC amplitude at the rectifier terminals [V].
    rectified_voltage_v:
        Unloaded DC output of the rectifier [V] — the Fig. 3 y-axis.
    delivered_power_w:
        AC power delivered into the matching+rectifier load [W].
    dc_power_w:
        DC-side power after conversion efficiency [W].
    match_fraction:
        1 - |Gamma|^2 of the source/load interface (1 at the recto-piezo
        design frequency, falling off-channel).
    """

    frequency_hz: float
    incident_pressure_pa: float
    open_circuit_v: float
    rectifier_input_peak_v: float
    rectified_voltage_v: float
    delivered_power_w: float
    dc_power_w: float
    match_fraction: float


class EnergyHarvester:
    """The absorptive-state harvesting chain of a PAB node.

    Parameters
    ----------
    transducer:
        The node's piezo transducer.
    rectifier:
        The multi-stage rectifier model.
    matching_network:
        A pre-designed network; if ``None``, one is designed at
        ``design_frequency_hz`` (defaults to the transducer resonance) —
        this *is* the recto-piezo tuning step.
    design_frequency_hz:
        The recto-piezo channel frequency.
    """

    def __init__(
        self,
        transducer: Transducer,
        rectifier: MultiStageRectifier | None = None,
        *,
        matching_network: MatchingNetwork | None = None,
        design_frequency_hz: float | None = None,
    ) -> None:
        self.transducer = transducer
        self.rectifier = rectifier if rectifier is not None else MultiStageRectifier()
        if design_frequency_hz is None:
            design_frequency_hz = transducer.resonance_hz
        if design_frequency_hz <= 0:
            raise ValueError("design frequency must be positive")
        self.design_frequency_hz = design_frequency_hz
        if matching_network is None:
            matching_network = self._select_network(design_frequency_hz)
        self.matching_network = matching_network

    def _select_network(self, design_frequency_hz: float) -> MatchingNetwork:
        """Pick the most channel-selective L-match branch.

        All exact branches deliver the same power *at* the design
        frequency; a recto-piezo additionally wants minimal response on
        the other channels (Sec. 3.3.1, "complementary" responses in
        Fig. 3).  Each branch is scored by the physical uplink quantity —
        the rectifier-terminal voltage including the transducer's
        mechanical bandpass — integrated off-channel.
        """
        candidates = enumerate_l_matches(
            self.transducer.impedance(design_frequency_hz),
            self.rectifier.input_resistance_ohm,
            design_frequency_hz,
        )
        if len(candidates) == 1:
            return candidates[0]
        probe = np.linspace(
            max(design_frequency_hz - 5_000.0, 100.0),
            design_frequency_hz + 5_000.0,
            41,
        )
        off = np.abs(probe - design_frequency_hz) > 500.0
        r_l = self.rectifier.input_resistance_ohm

        def v_at(net: MatchingNetwork, f: float) -> float:
            v_oc = float(self.transducer.open_circuit_voltage(1.0, f))
            return v_oc * abs(
                net.load_voltage_fraction(f, r_l, self.transducer.impedance(f))
            )

        def leakage(net: MatchingNetwork) -> float:
            on = v_at(net, design_frequency_hz)
            off_energy = sum(v_at(net, float(f)) ** 2 for f in probe[off])
            return off_energy / max(on**2, 1e-30)

        return min(candidates, key=leakage)

    # -- core chain --------------------------------------------------------------

    def load_impedance(self, frequency_hz):
        """Impedance the transducer sees in the absorptive state [ohm]."""
        return self.matching_network.input_impedance(
            frequency_hz, self.rectifier.input_resistance_ohm
        )

    def operating_point(
        self, incident_pressure_pa: float, frequency_hz: float
    ) -> HarvestOperatingPoint:
        """Evaluate the full chain at one stimulus.

        The transducer's open-circuit voltage (already weighted by the
        mechanical resonance — the "geometric bandpass" of the paper's
        footnote 5) drives the matching network + rectifier load through
        the BVD source impedance; direct circuit analysis then yields the
        AC amplitude at the rectifier and the delivered power.  The
        electrical tuning of the recto-piezo and the mechanical bandpass
        therefore compose exactly as in the paper.
        """
        if incident_pressure_pa < 0:
            raise ValueError("pressure must be non-negative")
        z_s = self.transducer.impedance(frequency_hz)
        v_oc = float(
            self.transducer.open_circuit_voltage(incident_pressure_pa, frequency_hz)
        )
        z_in = self.load_impedance(frequency_hz)
        match = float(mismatch_power_fraction(z_in, z_s))
        v_rect = v_oc * abs(
            self.matching_network.load_voltage_fraction(
                frequency_hz, self.rectifier.input_resistance_ohm, z_s
            )
        )
        p_del = (v_rect**2 / 2.0) / self.rectifier.input_resistance_ohm
        v_dc = self.rectifier.open_circuit_voltage(v_rect)
        p_dc = self.rectifier.efficiency * p_del if v_rect > (
            self.rectifier.diode_drop_v
        ) else 0.0
        return HarvestOperatingPoint(
            frequency_hz=frequency_hz,
            incident_pressure_pa=incident_pressure_pa,
            open_circuit_v=v_oc,
            rectifier_input_peak_v=v_rect,
            rectified_voltage_v=v_dc,
            delivered_power_w=p_del,
            dc_power_w=p_dc,
            match_fraction=match,
        )

    def rectified_voltage(
        self, incident_pressure_pa: float, frequency_hz: float
    ) -> float:
        """Unloaded rectified DC voltage [V] — one Fig. 3 data point."""
        return self.operating_point(incident_pressure_pa, frequency_hz).rectified_voltage_v

    def rectified_voltage_curve(
        self, frequencies_hz, incident_pressure_pa: float
    ) -> np.ndarray:
        """Fig. 3 sweep: rectified voltage across downlink frequencies."""
        return np.array(
            [
                self.rectified_voltage(incident_pressure_pa, float(f))
                for f in np.asarray(frequencies_hz, dtype=float)
            ]
        )

    def usable_band(
        self,
        incident_pressure_pa: float,
        threshold_v: float,
        *,
        span_hz: float = 8_000.0,
        points: int = 401,
    ) -> tuple[float, float] | None:
        """Frequency band where the rectified voltage clears ``threshold_v``.

        Returns ``(f_low, f_high)`` or ``None`` if the node cannot power
        up anywhere near the design channel at this pressure.
        """
        f0 = self.design_frequency_hz
        freqs = np.linspace(max(f0 - span_hz / 2, 100.0), f0 + span_hz / 2, points)
        volts = self.rectified_voltage_curve(freqs, incident_pressure_pa)
        above = volts >= threshold_v
        if not np.any(above):
            return None
        # Return the contiguous above-threshold region containing (or
        # nearest to) the design channel — a detuned side lobe at another
        # frequency is not this node's operating band.
        idx = np.nonzero(above)[0]
        runs: list[tuple[int, int]] = []
        start = idx[0]
        prev = idx[0]
        for i in idx[1:]:
            if i != prev + 1:
                runs.append((start, prev))
                start = i
            prev = i
        runs.append((start, prev))
        centre = int(np.argmin(np.abs(freqs - f0)))
        best = min(
            runs,
            key=lambda r: 0 if r[0] <= centre <= r[1] else min(
                abs(centre - r[0]), abs(centre - r[1])
            ),
        )
        return float(freqs[best[0]]), float(freqs[best[1]])

    def calibrate_pressure_for_peak(
        self, target_voltage_v: float, *, tolerance: float = 1e-3
    ) -> float:
        """Incident pressure [Pa] that yields ``target_voltage_v`` rectified
        at the design frequency.

        Used to anchor experiments to the paper's measured operating points
        (e.g. Fig. 3's 4 V peak) without hard-coding pressures.
        """
        if target_voltage_v <= 0:
            raise ValueError("target voltage must be positive")
        lo, hi = 1e-3, 1e7
        f0 = self.design_frequency_hz
        if self.rectified_voltage(hi, f0) < target_voltage_v:
            raise ValueError("target voltage unreachable")
        while hi / lo > 1.0 + tolerance:
            mid = (lo * hi) ** 0.5
            if self.rectified_voltage(mid, f0) < target_voltage_v:
                lo = mid
            else:
                hi = mid
        return (lo * hi) ** 0.5

    def charging_source(
        self, incident_pressure_pa: float, frequency_hz: float
    ) -> tuple[float, float]:
        """Thevenin equivalent ``(v_oc_dc, r_out)`` of the rectifier output.

        Used by the supercapacitor charge simulation.
        """
        op = self.operating_point(incident_pressure_pa, frequency_hz)
        return op.rectified_voltage_v, self.rectifier.output_resistance_ohm
