"""Stage-by-stage transient simulation of the Dickson-style rectifier.

The behavioural model in :mod:`repro.circuits.rectifier` summarises the
multiplier with its open-circuit voltage and output resistance.  This
module simulates the actual ladder — pump capacitors, diode drops, and a
storage node per stage — through time, which serves two purposes:

* it *validates* the behavioural summary (the transient converges to
  ``~2 N (V_peak - V_d)`` with the expected stage-by-stage profile), and
* it exposes the cold-start dynamics the summary cannot: how long the
  ladder takes to pump up from empty, which adds to the supercapacitor
  charging time at low drive.

The simulation uses an event-free fixed-step model at a fraction of the
carrier period, with ideal-threshold diodes (conduct when forward
voltage exceeds ``v_diode``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.constants import DIODE_DROP_V, TWO_PI


@dataclass(frozen=True)
class DicksonResult:
    """Transient simulation output.

    Attributes
    ----------
    time_s:
        Sample times.
    stage_voltages:
        Array (n_steps, stages) of per-stage storage-node voltages.
    output_v:
        Final-stage voltage over time (the DC output).
    settled_v:
        Output voltage at the end of the run.
    settling_time_s:
        First time the output is within 5% of its final value.
    """

    time_s: np.ndarray
    stage_voltages: np.ndarray
    output_v: np.ndarray
    settled_v: float
    settling_time_s: float


class DicksonLadder:
    """An n-stage voltage-doubler ladder.

    Parameters
    ----------
    stages:
        Number of doubler stages.
    pump_capacitance_f, storage_capacitance_f:
        Per-stage capacitors [F].
    v_diode:
        Diode forward threshold [V].
    load_resistance_ohm:
        DC load at the output node (None = open circuit).
    """

    def __init__(
        self,
        stages: int = 3,
        *,
        pump_capacitance_f: float = 100e-9,
        storage_capacitance_f: float = 1e-6,
        v_diode: float = DIODE_DROP_V,
        load_resistance_ohm: float | None = None,
    ) -> None:
        if stages < 1:
            raise ValueError("need at least one stage")
        if pump_capacitance_f <= 0 or storage_capacitance_f <= 0:
            raise ValueError("capacitances must be positive")
        if v_diode < 0:
            raise ValueError("diode drop must be non-negative")
        if load_resistance_ohm is not None and load_resistance_ohm <= 0:
            raise ValueError("load resistance must be positive")
        self.stages = stages
        self.c_pump = pump_capacitance_f
        self.c_store = storage_capacitance_f
        self.v_diode = v_diode
        self.r_load = load_resistance_ohm

    def simulate(
        self,
        v_ac_peak: float,
        frequency_hz: float,
        duration_s: float,
        *,
        steps_per_cycle: int = 40,
    ) -> DicksonResult:
        """Run the transient from an empty ladder.

        A simplified charge-transfer model: each half cycle, every diode
        whose forward voltage exceeds the threshold equalises its
        endpoints through a charge share weighted by the capacitances
        (diode resistance assumed small versus the half-cycle).
        """
        if v_ac_peak < 0:
            raise ValueError("drive amplitude must be non-negative")
        if frequency_hz <= 0 or duration_s <= 0:
            raise ValueError("frequency and duration must be positive")
        if steps_per_cycle < 8:
            raise ValueError("need at least 8 steps per cycle")
        dt = 1.0 / (frequency_hz * steps_per_cycle)
        n_steps = int(duration_s / dt)
        # State: storage-node voltage per stage.
        v_store = np.zeros(self.stages)
        times = np.empty(n_steps)
        history = np.empty((n_steps, self.stages))
        share = self.c_pump / (self.c_pump + self.c_store)

        for k in range(n_steps):
            t = k * dt
            drive = v_ac_peak * np.sin(TWO_PI * frequency_hz * t)
            # Stage i's pump node swings with the drive on top of the
            # previous stage's DC: v_in_i = v_store[i-1] + drive (doubler
            # topology with alternating phases folded into |drive|).
            prev = 0.0
            for i in range(self.stages):
                v_pump = prev + abs(drive)
                forward = v_pump - v_store[i] - self.v_diode
                if forward > 0:
                    v_store[i] += share * forward
                prev = v_store[i]
            if self.r_load is not None:
                i_load = v_store[-1] / self.r_load
                v_store[-1] = max(
                    v_store[-1] - i_load * dt / self.c_store, 0.0
                )
            times[k] = t
            history[k] = v_store

        output = history[:, -1]
        settled = float(output[-1])
        within = np.abs(output - settled) <= 0.05 * max(abs(settled), 1e-12)
        idx = np.argmax(within) if np.any(within) else n_steps - 1
        # Require it to *stay* within the band.
        for j in range(len(within)):
            if within[j] and np.all(within[j:]):
                idx = j
                break
        return DicksonResult(
            time_s=times,
            stage_voltages=history,
            output_v=output,
            settled_v=settled,
            settling_time_s=float(times[idx]),
        )

    def predicted_open_circuit_v(self, v_ac_peak: float) -> float:
        """The behavioural model's prediction for cross-checking."""
        per_stage = max(v_ac_peak - self.v_diode, 0.0)
        return self.stages * per_stage
