"""Elementary impedance algebra used across the front-end models."""

from __future__ import annotations

import numpy as np

from repro.constants import TWO_PI


def inductor_impedance(inductance_h: float, frequency_hz):
    """Impedance of an ideal inductor, j*w*L [ohm]."""
    if inductance_h < 0:
        raise ValueError("inductance must be non-negative")
    w = TWO_PI * np.asarray(frequency_hz, dtype=float)
    z = 1j * w * inductance_h
    return complex(z) if np.isscalar(frequency_hz) else z


def capacitor_impedance(capacitance_f: float, frequency_hz):
    """Impedance of an ideal capacitor, 1/(j*w*C) [ohm]."""
    if capacitance_f <= 0:
        raise ValueError("capacitance must be positive")
    w = TWO_PI * np.asarray(frequency_hz, dtype=float)
    if np.any(w <= 0):
        raise ValueError("frequency must be positive")
    z = 1.0 / (1j * w * capacitance_f)
    return complex(z) if np.isscalar(frequency_hz) else z


def series(*impedances):
    """Series combination of impedances."""
    if not impedances:
        raise ValueError("need at least one impedance")
    total = impedances[0]
    for z in impedances[1:]:
        total = total + z
    return total


def parallel(*impedances):
    """Parallel combination of impedances."""
    if not impedances:
        raise ValueError("need at least one impedance")
    inv = 0.0
    for z in impedances:
        inv = inv + 1.0 / np.asarray(z, dtype=complex)
    result = 1.0 / inv
    if all(np.isscalar(z) for z in impedances):
        return complex(result)
    return result


def reflection_coefficient(z_load, z_source):
    """Power-wave reflection coefficient (paper Eq. 2 / Kurokawa 1965).

    Gamma = (Z_L - Z_s*) / (Z_L + Z_s).  Zero at conjugate match; unit
    magnitude for a short, open, or purely reactive load.
    """
    z_l = np.asarray(z_load, dtype=complex)
    z_s = np.asarray(z_source, dtype=complex)
    gamma = (z_l - np.conjugate(z_s)) / (z_l + z_s)
    if np.isscalar(z_load) and np.isscalar(z_source):
        return complex(gamma)
    return gamma


def mismatch_power_fraction(z_load, z_source):
    """Fraction of the available power delivered to the load: 1 - |Gamma|^2."""
    gamma = reflection_coefficient(z_load, z_source)
    frac = 1.0 - np.abs(gamma) ** 2
    frac = np.clip(frac, 0.0, 1.0)
    if np.isscalar(z_load) and np.isscalar(z_source):
        return float(frac)
    return frac
