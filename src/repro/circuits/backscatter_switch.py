"""The backscatter switch (paper Fig. 5a).

Two series transistors connect the transducer terminals to ground.  When
the MCU drives their gates, the terminals are shorted (reflective state);
when the gates are released, the transducer sees the matching network and
rectifier (absorptive state).  The model maps switch state to the load
impedance presented to the piezo, from which the reflection coefficient of
paper Eq. 2 follows.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from repro.circuits.matching import MatchingNetwork


class SwitchState(enum.Enum):
    """The two reflective states of backscatter modulation."""

    ABSORB = 0  # transistors off: energy flows into the harvesting chain
    REFLECT = 1  # transistors on: terminals shorted, wave fully reflected


@dataclass
class BackscatterSwitch:
    """Maps switch state to the load impedance at the piezo terminals.

    Parameters
    ----------
    matching_network:
        The recto-piezo matching network in the absorb path.
    rectifier_input_ohm:
        Effective input resistance of the rectifier terminating the
        network.
    on_resistance_ohm:
        Residual resistance of the shorting transistors (two in series).
    """

    matching_network: MatchingNetwork
    rectifier_input_ohm: float
    on_resistance_ohm: float = 2.0

    def __post_init__(self) -> None:
        if self.rectifier_input_ohm <= 0:
            raise ValueError("rectifier input resistance must be positive")
        if self.on_resistance_ohm < 0:
            raise ValueError("on resistance must be non-negative")

    def load_impedance(self, state: SwitchState, frequency_hz):
        """Impedance the piezo sees in a given state [ohm]."""
        if state is SwitchState.REFLECT:
            if np.isscalar(frequency_hz):
                return complex(self.on_resistance_ohm)
            return np.full(
                np.shape(frequency_hz), complex(self.on_resistance_ohm)
            )
        return self.matching_network.input_impedance(
            frequency_hz, self.rectifier_input_ohm
        )

    def chip_impedances(self, chips, frequency_hz: float) -> np.ndarray:
        """Vector of load impedances for a binary chip sequence.

        ``chips`` is an array of 0/1 where 1 means REFLECT.
        """
        chips = np.asarray(chips)
        z_reflect = self.load_impedance(SwitchState.REFLECT, frequency_hz)
        z_absorb = self.load_impedance(SwitchState.ABSORB, frequency_hz)
        return np.where(chips.astype(bool), z_reflect, z_absorb)
