"""Analog front-end substrate for the battery-free PAB node.

Behavioural circuit models for every block of the paper's Fig. 5 PCB:
impedance elements and L-match design (the recto-piezo mechanism),
multi-stage rectifier, supercapacitor storage, LDO regulator, Schmitt
trigger downlink slicer, and the backscatter switch.
"""

from repro.circuits.elements import (
    capacitor_impedance,
    inductor_impedance,
    parallel,
    series,
    reflection_coefficient,
    mismatch_power_fraction,
)
from repro.circuits.matching import (
    MatchingNetwork,
    MatchComponent,
    design_l_match,
)
from repro.circuits.rectifier import MultiStageRectifier
from repro.circuits.storage import Supercapacitor
from repro.circuits.regulator import LowDropoutRegulator
from repro.circuits.schmitt import SchmittTrigger
from repro.circuits.backscatter_switch import BackscatterSwitch, SwitchState
from repro.circuits.harvester import EnergyHarvester, HarvestOperatingPoint

__all__ = [
    "capacitor_impedance",
    "inductor_impedance",
    "parallel",
    "series",
    "reflection_coefficient",
    "mismatch_power_fraction",
    "MatchingNetwork",
    "MatchComponent",
    "design_l_match",
    "MultiStageRectifier",
    "Supercapacitor",
    "LowDropoutRegulator",
    "SchmittTrigger",
    "BackscatterSwitch",
    "SwitchState",
    "EnergyHarvester",
    "HarvestOperatingPoint",
]
