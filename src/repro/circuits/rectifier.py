"""Multi-stage voltage-multiplier rectifier (paper Fig. 5c).

The node converts the AC voltage from the matching network into DC with a
multi-stage (Dickson / Cockcroft-Walton style) rectifier that *passively
amplifies* the voltage — each doubler stage contributes up to
``2 * (V_peak - V_diode)`` of DC output.  This behavioural model captures:

* the diode threshold: below ``V_diode`` input peak, no output at all
  (the reason a minimum incident pressure is needed to cold-start),
* open-circuit DC output ``2 * N * (V_peak - V_diode)``,
* an output series resistance so the voltage droops under load,
* an effective AC input resistance used for matching design — the paper
  measured this with an impedance analyzer and matched to it; here it is
  a constructor parameter with a representative default,
* a conversion efficiency for power bookkeeping.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.constants import DIODE_DROP_V, RECTIFIER_STAGES


@dataclass(frozen=True)
class MultiStageRectifier:
    """Behavioural model of an n-stage voltage multiplier.

    Parameters
    ----------
    stages:
        Number of doubler stages.
    diode_drop_v:
        Forward drop of each diode [V] (Schottky ~0.2 V).
    input_resistance_ohm:
        Effective AC input resistance near the operating point [ohm];
        this is the quantity the matching network is designed against.
    output_resistance_ohm:
        Thevenin output resistance of the DC port [ohm].
    efficiency:
        AC-to-DC power conversion efficiency in (0, 1].
    """

    stages: int = RECTIFIER_STAGES
    diode_drop_v: float = DIODE_DROP_V
    input_resistance_ohm: float = 2_000.0
    output_resistance_ohm: float = 5_000.0
    efficiency: float = 0.6

    def __post_init__(self) -> None:
        if self.stages < 1:
            raise ValueError("need at least one stage")
        if self.diode_drop_v < 0:
            raise ValueError("diode drop must be non-negative")
        if self.input_resistance_ohm <= 0 or self.output_resistance_ohm < 0:
            raise ValueError("resistances must be positive/non-negative")
        if not 0.0 < self.efficiency <= 1.0:
            raise ValueError("efficiency must be in (0, 1]")

    # -- DC transfer -----------------------------------------------------------

    def open_circuit_voltage(self, v_ac_peak):
        """Unloaded DC output for an AC input peak amplitude [V]."""
        v = np.asarray(v_ac_peak, dtype=float)
        out = 2.0 * self.stages * np.maximum(v - self.diode_drop_v, 0.0)
        return float(out) if np.isscalar(v_ac_peak) else out

    def loaded_voltage(self, v_ac_peak, i_load_a):
        """DC output under a load current draw [V] (floored at zero)."""
        if np.any(np.asarray(i_load_a) < 0):
            raise ValueError("load current must be non-negative")
        voc = self.open_circuit_voltage(v_ac_peak)
        out = np.maximum(
            np.asarray(voc) - np.asarray(i_load_a) * self.output_resistance_ohm, 0.0
        )
        if np.isscalar(v_ac_peak) and np.isscalar(i_load_a):
            return float(out)
        return out

    def minimum_input_peak(self) -> float:
        """Smallest AC peak that produces any DC output [V]."""
        return self.diode_drop_v

    def input_peak_for_output(self, v_dc: float) -> float:
        """AC peak needed to sustain an unloaded DC output of ``v_dc`` [V]."""
        if v_dc < 0:
            raise ValueError("DC voltage must be non-negative")
        return v_dc / (2.0 * self.stages) + self.diode_drop_v

    # -- power bookkeeping -------------------------------------------------------

    def input_power(self, v_ac_peak: float) -> float:
        """AC power absorbed at the input port [W] (V_rms^2 / R_in)."""
        return (v_ac_peak**2 / 2.0) / self.input_resistance_ohm

    def output_power_available(self, v_ac_peak: float) -> float:
        """DC power available after conversion losses [W]."""
        if v_ac_peak <= self.diode_drop_v:
            return 0.0
        return self.efficiency * self.input_power(v_ac_peak)
