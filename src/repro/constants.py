"""Physical constants and shared component values for the PAB reproduction.

Values that come straight out of the paper (Jang & Adib, SIGCOMM 2019) are
annotated with the section they appear in so the calibration provenance is
auditable.  Everything else is a standard physical constant or a datasheet
number for the named part.
"""

from __future__ import annotations

import math

# ---------------------------------------------------------------------------
# Water / acoustics
# ---------------------------------------------------------------------------

#: Density of fresh water at ~20 C [kg/m^3].
WATER_DENSITY = 998.0

#: Density of sea water [kg/m^3].
SEAWATER_DENSITY = 1025.0

#: Nominal sound speed used when no environment profile is given [m/s].
NOMINAL_SOUND_SPEED = 1481.0

#: Characteristic acoustic impedance of water [Pa*s/m] (rho * c).
WATER_ACOUSTIC_IMPEDANCE = WATER_DENSITY * NOMINAL_SOUND_SPEED

#: Reference pressure for underwater acoustics [Pa] (1 micropascal).
REFERENCE_PRESSURE_UPA = 1e-6

#: Reference distance for source levels [m].
REFERENCE_DISTANCE = 1.0

# ---------------------------------------------------------------------------
# Paper-level system parameters
# ---------------------------------------------------------------------------

#: Default downlink carrier frequency [Hz] (paper Sec. 3.2 experiments).
DEFAULT_CARRIER_HZ = 15_000.0

#: Second recto-piezo channel used in the FDMA experiments [Hz] (Sec. 3.3).
SECOND_CARRIER_HZ = 18_000.0

#: In-air resonance of the purchased Steminc cylinder [Hz] (Sec. 4.1).
CYLINDER_IN_AIR_RESONANCE_HZ = 17_000.0

#: Cylinder geometry from Sec. 4.1 [m].
CYLINDER_RADIUS_M = 0.025
CYLINDER_LENGTH_M = 0.04

#: Minimum rectified voltage for the node to power up [V] (Fig. 3).
POWER_UP_THRESHOLD_V = 2.5

#: Peak rectified voltage observed at resonance in Fig. 3 [V].
PEAK_RECTIFIED_V = 4.0

#: Usable harvesting band around 15 kHz resonance [Hz] (Fig. 3: 13.6-16.4 kHz).
HARVEST_BANDWIDTH_HZ = 2_800.0

#: Supercapacitor on the node [F] (Sec. 4.2.1: 1000 uF).
SUPERCAP_FARADS = 1000e-6

#: LDO output rail [V] (LP5900, Sec. 4.2.1).
LDO_OUTPUT_V = 1.8

#: LDO quiescent current [A] (Sec. 6.4: ~25 uA at load).
LDO_QUIESCENT_A = 25e-6

#: MCU active-mode current [A] (MSP430G2553 datasheet / Sec. 6.4: <230 uA).
MCU_ACTIVE_A = 230e-6

#: MCU low-power-mode (LPM3) current [A] (Sec. 4.2.2: 0.5 uA).
MCU_LPM3_A = 0.5e-6

#: MCU crystal frequency [Hz] (Sec. 4.2.2: 32.8 kHz watch crystal).
MCU_CRYSTAL_HZ = 32_768.0

#: Idle power the paper measured, higher than datasheet (Sec. 6.4) [W].
MEASURED_IDLE_POWER_W = 124e-6

#: Approximate backscatter-mode power from Fig. 11 [W].
MEASURED_BACKSCATTER_POWER_W = 500e-6

#: Hydrophone receive sensitivity [dB re 1 V/uPa] (H2a, Sec. 5.1).
HYDROPHONE_SENSITIVITY_DB = -180.0

#: Maximum single-link bitrate demonstrated [bit/s] (abstract / Fig. 8).
MAX_DEMONSTRATED_BITRATE = 3_000.0

#: Maximum power-up range demonstrated [m] (abstract / Fig. 9, Pool B).
MAX_DEMONSTRATED_RANGE_M = 10.0

# ---------------------------------------------------------------------------
# Tank geometries (Sec. 5.1(d))
# ---------------------------------------------------------------------------

#: Pool A: enclosed tank, 3 m x 4 m cross-section, 1.3 m deep.
POOL_A_DIMENSIONS = (4.0, 3.0, 1.3)

#: Pool B: enclosed tank, 1.2 m x 10 m cross-section, 1.0 m deep.
POOL_B_DIMENSIONS = (10.0, 1.2, 1.0)

# ---------------------------------------------------------------------------
# Electronics defaults
# ---------------------------------------------------------------------------

#: Schottky diode forward drop used in the rectifier model [V].
DIODE_DROP_V = 0.20

#: Number of rectifier multiplier stages (passive voltage amplification).
RECTIFIER_STAGES = 3

#: Default sample rate for passband waveform simulation [Hz].
DEFAULT_SAMPLE_RATE = 96_000.0

#: Speed of sound used to convert tank dimensions to delays, see acoustics.
TWO_PI = 2.0 * math.pi
