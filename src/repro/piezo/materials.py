"""Piezoelectric ceramic material constants.

A small database of the hard and soft PZT compositions used for underwater
projectors and hydrophones.  Values are nominal manufacturer figures (Navy
Type I = PZT-4, Navy Type II = PZT-5A); they parameterise the cylinder
design equations in :mod:`repro.piezo.cylinder`.

Units follow the usual transducer-engineering conventions:

* ``d31``, ``d33`` — piezoelectric charge constants [C/N] (= [m/V]).
* ``epsilon_r`` — relative permittivity at constant stress.
* ``s11_e`` — elastic compliance at constant field [1/Pa].
* ``k31``, ``k33`` — electromechanical coupling coefficients.
* ``q_mechanical`` — in-air mechanical quality factor.
* ``density`` — [kg/m^3].
"""

from __future__ import annotations

from dataclasses import dataclass

#: Vacuum permittivity [F/m].
EPSILON_0 = 8.8541878128e-12


@dataclass(frozen=True)
class PiezoMaterial:
    """Constants of one piezoceramic composition."""

    name: str
    d31: float
    d33: float
    epsilon_r: float
    s11_e: float
    k31: float
    k33: float
    q_mechanical: float
    density: float

    def __post_init__(self) -> None:
        if self.density <= 0 or self.s11_e <= 0:
            raise ValueError("density and compliance must be positive")
        for k in (self.k31, self.k33):
            if not 0.0 < k < 1.0:
                raise ValueError("coupling coefficients must be in (0, 1)")
        if self.q_mechanical <= 0:
            raise ValueError("mechanical Q must be positive")

    @property
    def epsilon_t(self) -> float:
        """Absolute permittivity at constant stress [F/m]."""
        return self.epsilon_r * EPSILON_0

    @property
    def bar_sound_speed(self) -> float:
        """Longitudinal thin-bar sound speed 1/sqrt(rho * s11) [m/s].

        This sets the radial-mode resonance of a thin-walled cylinder:
        f_r = c_bar / (2 * pi * a) for mean radius a.
        """
        return (self.density * self.s11_e) ** -0.5


#: Navy Type I ("hard") PZT — high power handling, typical projector choice.
PZT4 = PiezoMaterial(
    name="PZT-4",
    d31=-123e-12,
    d33=289e-12,
    epsilon_r=1300.0,
    s11_e=12.3e-12,
    k31=0.33,
    k33=0.70,
    q_mechanical=500.0,
    density=7500.0,
)

#: Navy Type II ("soft") PZT — higher sensitivity, typical receiver choice.
PZT5A = PiezoMaterial(
    name="PZT-5A",
    d31=-171e-12,
    d33=374e-12,
    epsilon_r=1700.0,
    s11_e=16.4e-12,
    k31=0.34,
    k33=0.705,
    q_mechanical=75.0,
    density=7750.0,
)

#: Lookup table by name.
MATERIALS: dict[str, PiezoMaterial] = {m.name: m for m in (PZT4, PZT5A)}
