"""The complete transducer: BVD electrical model + electroacoustic conversion.

A :class:`Transducer` is what projectors, hydrophones, and backscatter
nodes all share.  It combines:

* the BVD terminal impedance (what the matching network and rectifier see),
* a transmit voltage response (volts at the terminals -> pascals at 1 m),
* an open-circuit receive sensitivity (pascals incident -> open-circuit
  volts),
* the backscatter reflection coefficient of paper Eq. 2,

with the universal resonance curve of the BVD motional branch applied to
every electro-mechanical conversion, which is what gives PAB its bandpass
character (Fig. 3).

Calibration constants default to values representative of low-cost potted
cylinders in the paper's band (TVR ~ 140 dB re uPa*m/V) and are fitted so
the end-to-end system reproduces the paper's operating points: with the
default OCV of -178 dB re V/uPa, a node needs ~310 Pa incident to power
up (2.5 V rectified), which reproduces Fig. 9's range-voltage curve
(~1.5 m at 50 V drive, ~10 m at 300-350 V in the corridor pool) and
Fig. 3's ~4 V rectified peak about a metre from a 50-60 V projector.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.piezo.bvd import ButterworthVanDyke
from repro.piezo.cylinder import CylinderDesign, design_cylinder_transducer


def db_re_upa_m_per_v(tvr_db: float) -> float:
    """Convert a TVR in dB re 1 uPa*m/V to linear Pa*m/V."""
    return 10.0 ** (tvr_db / 20.0) * 1e-6


def db_re_v_per_upa(ocv_db: float) -> float:
    """Convert a receive sensitivity in dB re 1 V/uPa to linear V/Pa."""
    return 10.0 ** (ocv_db / 20.0) * 1e6


@dataclass
class Transducer:
    """An underwater piezo transducer usable as projector, receiver, or tag.

    Parameters
    ----------
    bvd:
        Electrical equivalent circuit.
    tvr_db:
        Transmit voltage response at resonance [dB re 1 uPa*m/V].
    ocv_db:
        Open-circuit receive sensitivity at resonance [dB re 1 V/uPa].
    backscatter_loss:
        Multiplicative pressure loss of the reflection process (< 1; the
        paper notes the backscattered wave is weaker than the incident one
        because the process is lossy).
    name:
        Label for reports.
    """

    bvd: ButterworthVanDyke
    tvr_db: float = 140.0
    ocv_db: float = -178.0
    backscatter_loss: float = 0.7
    name: str = "transducer"
    design: CylinderDesign | None = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if not 0.0 < self.backscatter_loss <= 1.0:
            raise ValueError("backscatter_loss must be in (0, 1]")

    # -- constructors ---------------------------------------------------------

    @classmethod
    def from_cylinder_design(
        cls, design: CylinderDesign | None = None, **kwargs
    ) -> "Transducer":
        """Build from a cylinder design (defaults to the paper's part)."""
        if design is None:
            design = design_cylinder_transducer()
        return cls(bvd=design.to_bvd(), design=design, **kwargs)

    # -- basic properties -----------------------------------------------------

    @property
    def resonance_hz(self) -> float:
        """In-water series resonance [Hz]."""
        return self.bvd.series_resonance_hz

    @property
    def bandwidth_hz(self) -> float:
        """-3 dB mechanical bandwidth [Hz]."""
        return self.bvd.bandwidth_hz

    def impedance(self, frequency_hz):
        """Electrical source impedance Z_s(f) [ohm]."""
        return self.bvd.impedance(frequency_hz)

    def response(self, frequency_hz):
        """Normalised mechanical resonance response in [0, 1]."""
        return self.bvd.resonance_response(frequency_hz)

    # -- electroacoustic conversion --------------------------------------------

    def transmit_pressure_per_volt(self, frequency_hz):
        """Source pressure at 1 m per volt of drive [Pa*m/V]."""
        peak = db_re_upa_m_per_v(self.tvr_db)
        return peak * self.response(frequency_hz)

    def transmit_pressure(self, voltage_v, frequency_hz):
        """Source pressure amplitude at 1 m for a drive amplitude [Pa]."""
        return np.asarray(voltage_v) * self.transmit_pressure_per_volt(frequency_hz)

    def source_level_db(self, voltage_v: float, frequency_hz: float) -> float:
        """Source level [dB re 1 uPa @ 1 m] for a drive amplitude.

        Uses RMS pressure of a sine with the given peak drive voltage.
        """
        p_peak = float(self.transmit_pressure(voltage_v, frequency_hz))
        p_rms = p_peak / math.sqrt(2.0)
        if p_rms <= 0:
            return float("-inf")
        return 20.0 * math.log10(p_rms / 1e-6)

    def open_circuit_voltage_per_pascal(self, frequency_hz):
        """Open-circuit receive sensitivity [V/Pa] at a frequency."""
        peak = db_re_v_per_upa(self.ocv_db)
        return peak * self.response(frequency_hz)

    def open_circuit_voltage(self, pressure_pa, frequency_hz):
        """Open-circuit voltage for an incident pressure amplitude [V]."""
        return np.asarray(pressure_pa) * self.open_circuit_voltage_per_pascal(
            frequency_hz
        )

    def available_power_w(self, pressure_pa: float, frequency_hz: float) -> float:
        """Maximum electrical power extractable from an incident tone [W].

        For a sinusoidal open-circuit amplitude ``V`` and source impedance
        ``Z_s``, the available power into a conjugate-matched load is
        ``V_rms^2 / (4 * Re(Z_s))``.
        """
        v_peak = float(self.open_circuit_voltage(pressure_pa, frequency_hz))
        r_s = float(np.real(self.impedance(frequency_hz)))
        if r_s <= 0:
            return 0.0
        return (v_peak**2 / 2.0) / (4.0 * r_s)

    # -- backscatter ------------------------------------------------------------

    def reflection_coefficient(self, load_impedance, frequency_hz):
        """Paper Eq. 2: Gamma = (Z_L - Z_s*) / (Z_L + Z_s) (complex)."""
        z_s = self.impedance(frequency_hz)
        z_l = load_impedance
        return (z_l - np.conjugate(z_s)) / (z_l + z_s)

    def reflected_pressure(
        self, incident_pa, load_impedance, frequency_hz
    ):
        """Backscattered pressure amplitude for an incident amplitude [Pa].

        The reflection coefficient of Eq. 2 is weighted by the mechanical
        resonance response (off-resonance the device barely couples to the
        wave at all, so neither state reflects much extra energy) and by
        the fixed backscatter loss.
        """
        gamma = self.reflection_coefficient(load_impedance, frequency_hz)
        eta = self.response(frequency_hz)
        return np.asarray(incident_pa) * gamma * eta * self.backscatter_loss

    def modulation_depth(
        self, load_impedance_absorb, frequency_hz, load_impedance_reflect=0.0
    ) -> float:
        """|Gamma_reflect - Gamma_absorb| * eta * loss — the uplink signal amplitude
        per unit incident pressure.

        Backscatter decoders see the *difference* between the two states,
        so this is the quantity that sets uplink SNR.
        """
        g_r = self.reflection_coefficient(load_impedance_reflect, frequency_hz)
        g_a = self.reflection_coefficient(load_impedance_absorb, frequency_hz)
        eta = float(self.response(frequency_hz))
        return float(abs(g_r - g_a)) * eta * self.backscatter_loss
