"""Transducer directivity patterns.

The paper's cylinder "vibrates radially making it omnidirectional in the
horizontal plane" (Sec. 4.1), with footnote 9 noting that "the efficiency
and directionality of each design depend on various parameters including
the type of piezoelectric material, shape of the transducer ...".  This
module provides the standard far-field patterns needed to model those
choices:

* :func:`line_source_pattern` — the vertical directivity of a finite
  cylinder (a uniform line source of its length),
* :func:`piston_pattern` — the classic baffled circular piston (a disk
  transducer), the canonical *directional* alternative,
* :class:`DirectivityPattern` — gain lookup + directivity index.

Patterns return *amplitude* (pressure) gain relative to the on-axis
response; angles are in radians.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np
from scipy.special import j1

from repro.constants import NOMINAL_SOUND_SPEED


def wavelength_m(frequency_hz: float, sound_speed: float = NOMINAL_SOUND_SPEED) -> float:
    """Acoustic wavelength [m]."""
    if frequency_hz <= 0 or sound_speed <= 0:
        raise ValueError("frequency and sound speed must be positive")
    return sound_speed / frequency_hz


def line_source_pattern(
    angle_rad,
    length_m: float,
    frequency_hz: float,
    sound_speed: float = NOMINAL_SOUND_SPEED,
):
    """Uniform line source: sinc pattern in the plane containing the axis.

    ``angle_rad`` is measured from broadside (the horizontal plane for a
    vertical cylinder).  At 15 kHz a 4 cm cylinder is much shorter than
    the 10 cm wavelength, so the paper's part is nearly omnidirectional
    vertically too — this function quantifies exactly how nearly.
    """
    if length_m <= 0:
        raise ValueError("length must be positive")
    lam = wavelength_m(frequency_hz, sound_speed)
    theta = np.asarray(angle_rad, dtype=float)
    x = math.pi * length_m / lam * np.sin(theta)
    pattern = np.sinc(x / math.pi)  # np.sinc is sin(pi t)/(pi t)
    out = np.abs(pattern)
    return float(out) if np.isscalar(angle_rad) else out


def piston_pattern(
    angle_rad,
    radius_m: float,
    frequency_hz: float,
    sound_speed: float = NOMINAL_SOUND_SPEED,
):
    """Baffled circular piston: 2 J1(ka sin t) / (ka sin t)."""
    if radius_m <= 0:
        raise ValueError("radius must be positive")
    lam = wavelength_m(frequency_hz, sound_speed)
    ka = 2.0 * math.pi * radius_m / lam
    theta = np.asarray(angle_rad, dtype=float)
    x = ka * np.sin(theta)
    with np.errstate(divide="ignore", invalid="ignore"):
        pattern = np.where(np.abs(x) < 1e-9, 1.0, 2.0 * j1(x) / np.where(x == 0, 1.0, x))
    out = np.abs(pattern)
    return float(out) if np.isscalar(angle_rad) else out


@dataclass(frozen=True)
class DirectivityPattern:
    """A sampled axisymmetric directivity pattern.

    Parameters
    ----------
    kind:
        ``"omni"``, ``"line"`` (cylinder vertical pattern), or
        ``"piston"`` (disk).
    characteristic_m:
        Cylinder length or piston radius [m] (unused for omni).
    frequency_hz:
        Design frequency.
    """

    kind: str = "omni"
    characteristic_m: float = 0.04
    frequency_hz: float = 15_000.0
    sound_speed: float = NOMINAL_SOUND_SPEED

    def __post_init__(self) -> None:
        if self.kind not in ("omni", "line", "piston"):
            raise ValueError(f"unknown pattern kind {self.kind!r}")

    def gain(self, angle_rad):
        """Amplitude gain at an off-axis angle (1.0 on axis/broadside)."""
        if self.kind == "omni":
            theta = np.asarray(angle_rad, dtype=float)
            out = np.ones_like(theta)
            return float(out) if np.isscalar(angle_rad) else out
        if self.kind == "line":
            return line_source_pattern(
                angle_rad, self.characteristic_m, self.frequency_hz,
                self.sound_speed,
            )
        return piston_pattern(
            angle_rad, self.characteristic_m, self.frequency_hz,
            self.sound_speed,
        )

    def directivity_index_db(self, n_samples: int = 721) -> float:
        """DI = 10 log10(4 pi / integral of power pattern over solid angle).

        0 dB for omni; positive for directional patterns.
        """
        theta = np.linspace(0.0, math.pi / 2.0, n_samples)
        # Axisymmetric pattern about the axis; integrate power over the
        # sphere (mirror symmetry above/below broadside for line).
        if self.kind == "line":
            power = self.gain(theta) ** 2
            solid = 2.0 * 2.0 * math.pi * np.trapezoid(
                power * np.cos(theta), theta
            )
        elif self.kind == "piston":
            power = self.gain(theta) ** 2
            solid = 2.0 * math.pi * np.trapezoid(power * np.sin(theta), theta)
            solid *= 2.0  # baffled piston radiates into a half space; mirror
        else:
            solid = 4.0 * math.pi
        solid = min(max(solid, 1e-12), 4.0 * math.pi)
        return 10.0 * math.log10(4.0 * math.pi / solid)

    def beamwidth_deg(self) -> float:
        """-3 dB full beamwidth [degrees] (360 for omni)."""
        if self.kind == "omni":
            return 360.0
        angles = np.linspace(0.0, math.pi / 2.0, 4_001)
        gains = self.gain(angles)
        below = np.nonzero(gains < 1.0 / math.sqrt(2.0))[0]
        if len(below) == 0:
            return 360.0
        return float(2.0 * math.degrees(angles[below[0]]))
