"""Butterworth-Van Dyke (BVD) equivalent circuit of a piezo resonator.

Near one mechanical mode, a piezoelectric transducer is electrically
equivalent to a *motional* series R-L-C branch (mechanical mass,
compliance, and loss, reflected through the electromechanical
transformer) in parallel with the *clamped* electrode capacitance C0:

        o───┬───[ C0 ]───┬───o
            │            │
            └─[R_m L_m C_m]──┘

The model captures exactly the behaviour the paper leans on:

* a sharp series resonance ``f_s = 1/(2*pi*sqrt(L_m C_m))`` where the
  device converts acoustic to electrical energy best (Sec. 3.3: high "Q"),
* a parallel anti-resonance ``f_p = f_s * sqrt(1 + C_m/C_0)``,
* an impedance-vs-frequency curve the matching network (recto-piezo)
  interacts with to move the *electrical* resonance (Sec. 3.3.1),
* an effective coupling ``k_eff^2 = 1 - (f_s/f_p)^2``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.constants import TWO_PI


@dataclass(frozen=True)
class BVDParameters:
    """Lumped element values of the BVD circuit.

    Attributes
    ----------
    c0:
        Clamped (parallel) capacitance [F].
    r_m, l_m, c_m:
        Motional resistance [ohm], inductance [H], capacitance [F].
    """

    c0: float
    r_m: float
    l_m: float
    c_m: float

    def __post_init__(self) -> None:
        for name in ("c0", "r_m", "l_m", "c_m"):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")


class ButterworthVanDyke:
    """A piezo resonator as its BVD equivalent circuit.

    Construct directly from element values, or use
    :meth:`from_resonance` to solve for element values given measurable
    quantities (series resonance, quality factor, clamped capacitance,
    effective coupling) — the form in which transducer datasheets and the
    paper describe devices.
    """

    def __init__(self, params: BVDParameters) -> None:
        self.params = params

    # -- constructors ---------------------------------------------------------

    @classmethod
    def from_resonance(
        cls,
        series_resonance_hz: float,
        quality_factor: float,
        clamped_capacitance_f: float,
        effective_coupling: float,
    ) -> "ButterworthVanDyke":
        """Solve BVD elements from resonance-level measurements.

        Parameters
        ----------
        series_resonance_hz:
            Motional (series) resonance ``f_s`` [Hz].
        quality_factor:
            Loaded quality factor ``Q = 2*pi*f_s*L_m / R_m``.  In water the
            radiation load dominates, so this is the in-water Q (~5-15 for
            potted cylinders), much lower than the ceramic's in-air Q.
        clamped_capacitance_f:
            Electrode capacitance ``C0`` [F].
        effective_coupling:
            ``k_eff`` in (0, 1); sets ``C_m = C0 * k^2 / (1 - k^2)``.
        """
        fs = series_resonance_hz
        if fs <= 0:
            raise ValueError("resonance frequency must be positive")
        if quality_factor <= 0:
            raise ValueError("quality factor must be positive")
        if not 0.0 < effective_coupling < 1.0:
            raise ValueError("effective coupling must be in (0, 1)")
        if clamped_capacitance_f <= 0:
            raise ValueError("clamped capacitance must be positive")
        k2 = effective_coupling**2
        c_m = clamped_capacitance_f * k2 / (1.0 - k2)
        w_s = TWO_PI * fs
        l_m = 1.0 / (w_s**2 * c_m)
        r_m = w_s * l_m / quality_factor
        return cls(BVDParameters(c0=clamped_capacitance_f, r_m=r_m, l_m=l_m, c_m=c_m))

    # -- derived quantities ---------------------------------------------------

    @property
    def series_resonance_hz(self) -> float:
        """Motional resonance f_s [Hz]."""
        p = self.params
        return 1.0 / (TWO_PI * math.sqrt(p.l_m * p.c_m))

    @property
    def parallel_resonance_hz(self) -> float:
        """Anti-resonance f_p [Hz]."""
        p = self.params
        return self.series_resonance_hz * math.sqrt(1.0 + p.c_m / p.c0)

    @property
    def quality_factor(self) -> float:
        """Q of the motional branch."""
        p = self.params
        return TWO_PI * self.series_resonance_hz * p.l_m / p.r_m

    @property
    def effective_coupling(self) -> float:
        """k_eff = sqrt(1 - (f_s/f_p)^2)."""
        ratio = self.series_resonance_hz / self.parallel_resonance_hz
        return math.sqrt(1.0 - ratio**2)

    @property
    def bandwidth_hz(self) -> float:
        """-3 dB bandwidth of the motional branch, f_s / Q."""
        return self.series_resonance_hz / self.quality_factor

    # -- impedance ------------------------------------------------------------

    def motional_impedance(self, frequency_hz):
        """Impedance of the series R-L-C branch [ohm] (complex)."""
        f = np.asarray(frequency_hz, dtype=float)
        if np.any(f <= 0):
            raise ValueError("frequency must be positive")
        w = TWO_PI * f
        p = self.params
        z = p.r_m + 1j * (w * p.l_m - 1.0 / (w * p.c_m))
        return complex(z) if np.isscalar(frequency_hz) else z

    def impedance(self, frequency_hz):
        """Terminal impedance: motional branch in parallel with C0 [ohm]."""
        f = np.asarray(frequency_hz, dtype=float)
        if np.any(f <= 0):
            raise ValueError("frequency must be positive")
        w = TWO_PI * f
        p = self.params
        z_m = p.r_m + 1j * (w * p.l_m - 1.0 / (w * p.c_m))
        z_c0 = 1.0 / (1j * w * p.c0)
        z = z_m * z_c0 / (z_m + z_c0)
        return complex(z) if np.isscalar(frequency_hz) else z

    def admittance(self, frequency_hz):
        """Terminal admittance [S]."""
        return 1.0 / self.impedance(frequency_hz)

    def resonance_response(self, frequency_hz):
        """Normalised magnitude of the motional (mechanical) response.

        The classic universal resonance curve

            |H(f)| = 1 / sqrt(1 + Q^2 (f/f_s - f_s/f)^2)

        equal to 1 at resonance.  This is the bandpass weighting that the
        transducer's electroacoustic conversion applies in both directions
        (it is the ratio R_m / |Z_m(f)| of the motional branch).
        """
        f = np.asarray(frequency_hz, dtype=float)
        if np.any(f <= 0):
            raise ValueError("frequency must be positive")
        fs = self.series_resonance_hz
        q = self.quality_factor
        h = 1.0 / np.sqrt(1.0 + q**2 * (f / fs - fs / f) ** 2)
        return float(h) if np.isscalar(frequency_hz) else h
