"""Radial-mode piezoceramic cylinder design.

The paper's transducer (Sec. 4.1) is a radially poled ceramic cylinder —
Steminc SMC5447T40111: 17 kHz in-air resonance, 2.5 cm outer radius,
4 cm length — potted in polyurethane with air backing and end caps.  The
cylinder "breathes" radially, which makes it omnidirectional in the
horizontal plane.

Design relations used here (standard thin-wall ring/cylinder theory,
e.g. Butler & Sherman, *Transducers and Arrays for Underwater Sound*):

* In-air radial resonance: ``f_r = c_bar / (2 * pi * a)`` with ``c_bar``
  the bar sound speed of the ceramic and ``a`` the mean radius.
* Clamped capacitance of the radially poled wall:
  ``C0 = eps_T * (2 * pi * a * L) / t`` for wall thickness ``t``.
* Water loading adds radiation mass, lowering the resonance by a factor
  ``1/sqrt(1 + beta)`` with ``beta`` the ratio of radiation mass to
  ceramic mass, and drops the Q from the ceramic's in-air mechanical Q to
  a radiation-dominated value (order 10 for a potted cylinder).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.constants import (
    CYLINDER_IN_AIR_RESONANCE_HZ,
    CYLINDER_LENGTH_M,
    CYLINDER_RADIUS_M,
    WATER_DENSITY,
)
from repro.piezo.bvd import ButterworthVanDyke
from repro.piezo.materials import PZT4, PiezoMaterial


@dataclass(frozen=True)
class CylinderDesign:
    """A designed radial-mode cylinder and its derived quantities.

    Attributes
    ----------
    material:
        The piezoceramic.
    mean_radius_m, length_m, wall_thickness_m:
        Geometry [m].
    in_air_resonance_hz, in_water_resonance_hz:
        Radial-mode resonance before and after water mass loading [Hz].
    in_water_q:
        Quality factor with radiation loading.
    clamped_capacitance_f:
        Electrode capacitance C0 [F].
    effective_coupling:
        k_eff used for the BVD motional branch.
    """

    material: PiezoMaterial
    mean_radius_m: float
    length_m: float
    wall_thickness_m: float
    in_air_resonance_hz: float
    in_water_resonance_hz: float
    in_water_q: float
    clamped_capacitance_f: float
    effective_coupling: float

    def to_bvd(self) -> ButterworthVanDyke:
        """BVD equivalent circuit at the in-water operating point."""
        return ButterworthVanDyke.from_resonance(
            series_resonance_hz=self.in_water_resonance_hz,
            quality_factor=self.in_water_q,
            clamped_capacitance_f=self.clamped_capacitance_f,
            effective_coupling=self.effective_coupling,
        )


def radial_resonance_hz(material: PiezoMaterial, mean_radius_m: float) -> float:
    """In-air radial-mode resonance of a thin-walled cylinder [Hz]."""
    if mean_radius_m <= 0:
        raise ValueError("radius must be positive")
    return material.bar_sound_speed / (2.0 * math.pi * mean_radius_m)


#: Fraction of rho_w * a that acts as radiation mass for a finite, potted,
#: air-backed cylinder.  The infinite-cylinder value is ~1; finite length,
#: end caps, and the compliant polyurethane layer reduce it.  Calibrated so
#: the paper's 17 kHz in-air part lands near its observed 15 kHz in-water
#: operating point.
RADIATION_MASS_COEFFICIENT = 0.25


def water_loading_factor(
    material: PiezoMaterial,
    mean_radius_m: float,
    wall_thickness_m: float,
    water_density: float = WATER_DENSITY,
    radiation_mass_coefficient: float = RADIATION_MASS_COEFFICIENT,
) -> float:
    """Radiation-mass ratio beta = m_rad / m_ceramic for a breathing cylinder.

    The radiation mass per unit area of a pulsating cylinder near resonance
    is of order ``rho_w * a`` (scaled by ``radiation_mass_coefficient`` for
    finite potted assemblies); the ceramic mass per unit area is
    ``rho_c * t``.  The resonance shifts as ``1/sqrt(1 + beta)``.
    """
    if wall_thickness_m <= 0:
        raise ValueError("wall thickness must be positive")
    if radiation_mass_coefficient < 0:
        raise ValueError("radiation mass coefficient must be non-negative")
    m_rad = radiation_mass_coefficient * water_density * mean_radius_m
    m_cer = material.density * wall_thickness_m
    return m_rad / m_cer


def design_cylinder_transducer(
    material: PiezoMaterial = PZT4,
    *,
    outer_radius_m: float = CYLINDER_RADIUS_M,
    length_m: float = CYLINDER_LENGTH_M,
    wall_thickness_m: float = 0.0035,
    target_in_air_resonance_hz: float | None = CYLINDER_IN_AIR_RESONANCE_HZ,
    in_water_q: float = 5.0,
    coupling_derating: float = 0.85,
) -> CylinderDesign:
    """Design a radial-mode cylinder like the paper's Steminc part.

    If ``target_in_air_resonance_hz`` is given, the mean radius is solved
    from the ring-resonance formula (the nominal outer radius is kept for
    reference but the acoustics follow the target resonance, mirroring how
    one buys a part *by its resonance*).  Otherwise the resonance follows
    from the given geometry.

    ``coupling_derating`` scales the ceramic's k31 down to the effective
    device coupling (encapsulation, end caps, and bonding all eat some
    coupling; 0.8-0.9 is typical for potted assemblies).
    """
    if outer_radius_m <= 0 or length_m <= 0:
        raise ValueError("geometry must be positive")
    if not 0.0 < coupling_derating <= 1.0:
        raise ValueError("coupling_derating must be in (0, 1]")
    if target_in_air_resonance_hz is not None:
        if target_in_air_resonance_hz <= 0:
            raise ValueError("target resonance must be positive")
        mean_radius = material.bar_sound_speed / (
            2.0 * math.pi * target_in_air_resonance_hz
        )
        f_air = target_in_air_resonance_hz
    else:
        mean_radius = outer_radius_m - wall_thickness_m / 2.0
        f_air = radial_resonance_hz(material, mean_radius)

    beta = water_loading_factor(material, mean_radius, wall_thickness_m)
    f_water = f_air / math.sqrt(1.0 + beta)

    electrode_area = 2.0 * math.pi * mean_radius * length_m
    c0 = material.epsilon_t * electrode_area / wall_thickness_m

    k_eff = material.k31 * coupling_derating

    return CylinderDesign(
        material=material,
        mean_radius_m=mean_radius,
        length_m=length_m,
        wall_thickness_m=wall_thickness_m,
        in_air_resonance_hz=f_air,
        in_water_resonance_hz=f_water,
        in_water_q=in_water_q,
        clamped_capacitance_f=c0,
        effective_coupling=k_eff,
    )
