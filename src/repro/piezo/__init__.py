"""Piezoelectric transducer substrate.

Models the paper's mechanically fabricated transducer (a radially poled
PZT cylinder, polyurethane-potted, air-backed with end caps) as a
Butterworth-Van Dyke (BVD) equivalent circuit plus electroacoustic
conversion responses (transmit voltage response and open-circuit receive
sensitivity).
"""

from repro.piezo.materials import PiezoMaterial, PZT4, PZT5A, MATERIALS
from repro.piezo.bvd import BVDParameters, ButterworthVanDyke
from repro.piezo.cylinder import CylinderDesign, design_cylinder_transducer
from repro.piezo.transducer import Transducer
from repro.piezo.directivity import DirectivityPattern

__all__ = [
    "PiezoMaterial",
    "PZT4",
    "PZT5A",
    "MATERIALS",
    "BVDParameters",
    "ButterworthVanDyke",
    "CylinderDesign",
    "design_cylinder_transducer",
    "Transducer",
    "DirectivityPattern",
]
