"""Crash-safe campaigns: checkpoints, watchdogs, supervised workers.

The paper's reader drives fleets of battery-free nodes over hours-long
deployments; this package makes those campaigns survive the reader
side's own failures, not just the nodes':

* :mod:`repro.resilience.checkpoint` — versioned, integrity-checked
  snapshot files every K rounds; ``ReaderController.run_campaign(
  resume_from=...)`` continues a campaign byte-identically (proved by
  the ``repro bench`` digest machinery).
* :mod:`repro.resilience.watchdog` — per-transaction and per-round
  wall-clock budgets enforced by the fleet engine; stragglers are
  abandoned, booked as ``watchdog_timeout`` faults, and fed to the
  node's health machine instead of hanging the run.
* :mod:`repro.resilience.supervisor` — restart-with-backoff on worker
  crash, shard quarantine for repeat offenders, and the
  :class:`~repro.resilience.supervisor.WorkerCrashInjector` drill
  (``repro bench --kill-at`` / ``repro fleet-report --kill-at``).
* :mod:`repro.resilience.snapshot` — the duck-typed transport state
  protocol that lets checkpoints see through injector chains and
  waveform links alike.

See ``docs/RELIABILITY.md`` for budgets, restart policy, and a worked
kill-and-resume example.
"""

from repro.resilience.checkpoint import (
    CHECKPOINT_KIND,
    CHECKPOINT_SCHEMA,
    CheckpointError,
    campaign_digest,
    checkpoint_path,
    latest_checkpoint,
    read_checkpoint,
    state_integrity,
    write_checkpoint,
)
from repro.resilience.snapshot import restore_transport, transport_state
from repro.resilience.supervisor import (
    CampaignAbort,
    SupervisionOutcome,
    SupervisorPolicy,
    WorkerCrash,
    WorkerCrashInjector,
    install_worker_crash,
    supervise,
)
from repro.resilience.watchdog import WatchdogPolicy, WatchdogTimeout

__all__ = [
    "CHECKPOINT_KIND",
    "CHECKPOINT_SCHEMA",
    "CampaignAbort",
    "CheckpointError",
    "SupervisionOutcome",
    "SupervisorPolicy",
    "WatchdogPolicy",
    "WatchdogTimeout",
    "WorkerCrash",
    "WorkerCrashInjector",
    "campaign_digest",
    "checkpoint_path",
    "install_worker_crash",
    "latest_checkpoint",
    "read_checkpoint",
    "restore_transport",
    "state_integrity",
    "supervise",
    "transport_state",
    "write_checkpoint",
]
