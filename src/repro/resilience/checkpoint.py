"""Versioned, integrity-checked campaign checkpoint files.

A checkpoint is one JSON document::

    {
      "kind": "pab-campaign-checkpoint",
      "schema": 1,
      "round": 15,
      "campaign": {... how to rebuild the fleet (CLI metadata) ...},
      "state": {... ReaderController.snapshot() ...},
      "integrity": "<sha256 of the canonical state JSON>"
    }

``state`` is everything ``run_campaign`` needs to continue as if the
interruption never happened: per-node RNG/retry streams, health state
machines, MAC statistics, the full event log, the metrics registry,
energy ledgers, SLO trackers, and the round log.  ``campaign`` is
opaque to this module — the CLI stores enough there for ``repro
resume`` to rebuild an identical fleet before restoring ``state`` into
it.

Every failure mode on the read path (missing file, truncated or
corrupted JSON, wrong kind, unsupported schema, integrity mismatch,
missing sections) raises :class:`CheckpointError` with a one-line
message — a resume must either be exact or refuse loudly.

:func:`campaign_digest` is the identity proof reused from ``repro
bench``: sha256 over the canonical report JSON, the event-log dump,
and the Prometheus exposition.  An interrupted-and-resumed campaign
must produce the same digest as an uninterrupted one.
"""

from __future__ import annotations

import hashlib
import json
import pathlib
import re

CHECKPOINT_KIND = "pab-campaign-checkpoint"
CHECKPOINT_SCHEMA = 1

_CHECKPOINT_NAME = re.compile(r"^checkpoint-(\d{6})\.json$")


class CheckpointError(RuntimeError):
    """A checkpoint file could not be written, parsed, or validated."""


def _canonical_state_json(state: dict) -> str:
    # Canonical form for hashing.  Addresses and other mapping keys are
    # stringified by the snapshot layer, so sort order survives the JSON
    # round trip (json would render int keys as strings but *sort* them
    # as ints, breaking write/read hash agreement).
    return json.dumps(state, sort_keys=True)


def state_integrity(state: dict) -> str:
    """sha256 over the canonical state JSON."""
    return hashlib.sha256(_canonical_state_json(state).encode()).hexdigest()


def write_checkpoint(path, state: dict, *, round: int, campaign: dict | None = None) -> pathlib.Path:
    """Write a checkpoint document to ``path`` (parents created)."""
    if not isinstance(state, dict):
        raise CheckpointError("checkpoint state must be a dict")
    doc = {
        "kind": CHECKPOINT_KIND,
        "schema": CHECKPOINT_SCHEMA,
        "round": int(round),
        "campaign": dict(campaign or {}),
        "state": state,
        "integrity": state_integrity(state),
    }
    out = pathlib.Path(path)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(doc, sort_keys=True) + "\n")
    return out


def read_checkpoint(path) -> dict:
    """Load and validate a checkpoint document.

    Raises :class:`CheckpointError` with a one-line message on any
    problem; a document that comes back *was* validated end to end.
    """
    p = pathlib.Path(path)
    if not p.exists():
        raise CheckpointError(f"checkpoint {p} not found")
    try:
        doc = json.loads(p.read_text())
    except (OSError, ValueError) as exc:
        raise CheckpointError(
            f"checkpoint {p} is not valid JSON (truncated or corrupted?): {exc}"
        ) from None
    if not isinstance(doc, dict) or doc.get("kind") != CHECKPOINT_KIND:
        raise CheckpointError(f"checkpoint {p} is not a campaign checkpoint")
    if doc.get("schema") != CHECKPOINT_SCHEMA:
        raise CheckpointError(
            f"checkpoint {p} has schema {doc.get('schema')!r}, "
            f"expected {CHECKPOINT_SCHEMA}"
        )
    for section in ("round", "state"):
        if section not in doc:
            raise CheckpointError(f"checkpoint {p} is missing '{section}'")
    if not isinstance(doc["state"], dict):
        raise CheckpointError(f"checkpoint {p} has a malformed 'state' section")
    expected = doc.get("integrity")
    actual = state_integrity(doc["state"])
    if expected != actual:
        raise CheckpointError(
            f"checkpoint {p} failed its integrity check (corrupted?)"
        )
    return doc


def checkpoint_path(directory, round: int) -> pathlib.Path:
    """Canonical file name for the checkpoint taken after ``round``."""
    return pathlib.Path(directory) / f"checkpoint-{int(round):06d}.json"


def recorder_path(directory, round: int) -> pathlib.Path:
    """Canonical name for a flight-recorder dump taken during ``round``.

    Lives next to the checkpoints so an aborted campaign's last-events
    recording (:class:`repro.obs.recorder.FlightRecorder`) is found in
    the same place as the state needed to resume it.
    """
    return pathlib.Path(directory) / f"flight-recorder-{int(round):06d}.jsonl"


def latest_checkpoint(directory) -> pathlib.Path | None:
    """The highest-round checkpoint file in ``directory``, or ``None``."""
    d = pathlib.Path(directory)
    if not d.is_dir():
        return None
    best: tuple[int, pathlib.Path] | None = None
    for entry in d.iterdir():
        m = _CHECKPOINT_NAME.match(entry.name)
        if m is None:
            continue
        r = int(m.group(1))
        if best is None or r > best[0]:
            best = (r, entry)
    return None if best is None else best[1]


def campaign_digest(report: dict, log=None, metrics=None) -> str:
    """The campaign identity digest shared with ``repro bench``.

    sha256 over the canonical report JSON, plus (when provided) the
    event-log dump and the Prometheus exposition — byte-identical
    inputs produce byte-identical digests, which is the proof used for
    sequential/parallel equivalence and for checkpoint resume.
    """
    blob = json.dumps(report, sort_keys=True, default=str)
    if log is not None:
        blob += "\n" + log.dump()
    if metrics is not None:
        from repro.obs.export import metrics_to_prometheus

        blob += "\n" + metrics_to_prometheus(metrics)
    return hashlib.sha256(blob.encode()).hexdigest()
