"""Duck-typed state capture for transport callables.

The reader only knows its transports as ``transact(query) -> result``
callables, yet a deterministic resume must capture whatever state hides
behind them: a fault-injector chain's RNG streams and burst windows, a
:class:`~repro.core.link.BackscatterLink`'s ambient-noise RNG and node
firmware, a test double's seeded failure stream.

The protocol is structural, mirroring how the reader treats transports
in the first place:

* if the callable (or, for a bound method, the object it is bound to)
  exposes ``snapshot_state() -> dict``, that dict is the transport's
  state;
* otherwise the transport is assumed stateless and snapshots as
  ``None``.

``restore_transport`` is the inverse; restoring a non-``None`` state
into a transport that cannot accept it is an error — silently dropping
state would break the byte-identity guarantee checkpoints exist to
provide.
"""

from __future__ import annotations


def _state_target(transact):
    """The object that owns a transport's state.

    A bound method (``link.run_query``) snapshots through the object it
    is bound to; anything else (an injector chain, a callable class, a
    closure) is its own target.
    """
    return getattr(transact, "__self__", transact)


def transport_state(transact):
    """Capture a transport's state, or ``None`` for stateless ones."""
    fn = getattr(_state_target(transact), "snapshot_state", None)
    if callable(fn):
        return fn()
    return None


def restore_transport(transact, state) -> None:
    """Restore state captured by :func:`transport_state`.

    ``None`` (a stateless transport) is always accepted.  A stateful
    snapshot aimed at a transport with no ``restore_state`` raises
    ``ValueError`` — the rebuilt fleet does not match the checkpoint.
    """
    if state is None:
        return
    target = _state_target(transact)
    fn = getattr(target, "restore_state", None)
    if not callable(fn):
        raise ValueError(
            f"checkpoint carries transport state but {target!r} cannot restore it"
        )
    fn(state)
