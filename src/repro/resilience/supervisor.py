"""Worker supervision: restart-with-backoff, crash containment, drills.

The fault layer (:mod:`repro.faults`) hurts the *nodes* — noise bursts,
brownouts, garbled replies — and the MAC's retry loop contains all of
it because those faults surface as ordinary results or ``Exception``
subclasses.  This module hurts the *engine*: a worker crash is modelled
as :class:`WorkerCrash`, a ``BaseException`` that deliberately escapes
the MAC's ``except Exception`` containment, exactly like a segfaulted
worker process escapes in-process error handling.

The supervisor (:func:`supervise` driven by :class:`SupervisorPolicy`)
restarts a crashed worker with exponential backoff; workers that
exhaust their restarts surface as ``worker_crash`` fault events, decode
post-mortems, and health-machine failures — never as an aborted
campaign.  Nodes whose workers crash round after round are quarantined
at the engine level (their shard is skipped) so a permanently broken
worker cannot burn restart budget forever.

:class:`WorkerCrashInjector` is the drill apparatus: it raises
:class:`WorkerCrash` (contained) or :class:`CampaignAbort` (the
SIGKILL-equivalent that *does* kill the run, for checkpoint/resume
drills) at scheduled rounds or transaction indices.  ``repro bench
--kill-at ROUND:NODE`` and ``repro fleet-report --kill-at`` wire it up
from the CLI.

Determinism: restarts re-enter the same poll with the same staging
sinks, so a contained crash produces byte-identical campaign digests in
sequential and parallel modes — asserted by
``tests/resilience/test_supervisor.py``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.faults.injectors import FaultInjector, InjectedResult
from repro.resilience.snapshot import restore_transport, transport_state


class WorkerCrash(BaseException):
    """A worker died mid-transaction (process-crash equivalent).

    Subclasses ``BaseException`` so the MAC's ``except Exception``
    retry containment cannot swallow it — only the supervisor handles
    worker death.
    """


class CampaignAbort(BaseException):
    """SIGKILL-equivalent: the whole campaign process dies.

    Nothing in the reader stack catches this; it unwinds out of
    ``run_campaign`` so drills can prove that resuming from the latest
    checkpoint reproduces the uninterrupted run byte for byte.
    """


@dataclass(frozen=True)
class SupervisorPolicy:
    """Restart and quarantine policy for crashed workers.

    Parameters
    ----------
    max_restarts:
        Restarts allowed per poll before the worker is declared
        crashed for the round.
    restart_backoff_s, backoff_multiplier, max_backoff_s:
        Exponential backoff between restarts.  Backoff is *accounted*
        (recorded on the ``worker_restart`` event) but not slept unless
        ``sleep`` is provided — campaigns are virtual-clock
        deterministic and must not stall the suite.
    quarantine_after:
        Consecutive crashed rounds after which the node's shard is
        quarantined (skipped entirely).  ``0`` disables.
    sleep:
        Optional ``sleep(seconds)`` callable for deployments that want
        real backoff delays.
    """

    max_restarts: int = 2
    restart_backoff_s: float = 0.05
    backoff_multiplier: float = 2.0
    max_backoff_s: float = 1.0
    quarantine_after: int = 3
    sleep: object = None

    def __post_init__(self) -> None:
        if self.max_restarts < 0:
            raise ValueError("max_restarts must be >= 0")
        if self.restart_backoff_s < 0:
            raise ValueError("restart_backoff_s must be >= 0")
        if self.backoff_multiplier < 1.0:
            raise ValueError("backoff_multiplier must be >= 1")
        if self.max_backoff_s < 0:
            raise ValueError("max_backoff_s must be >= 0")
        if self.quarantine_after < 0:
            raise ValueError("quarantine_after must be >= 0")


@dataclass
class SupervisionOutcome:
    """What supervision observed for one poll."""

    restarts: int = 0
    backoff_s: float = 0.0
    crashed: bool = False
    error: str = ""


def supervise(fn, policy: SupervisorPolicy):
    """Run ``fn`` under crash supervision.

    Returns ``(result, outcome)``.  :class:`WorkerCrash` triggers a
    restart (re-invoking ``fn``) up to ``policy.max_restarts`` times;
    when the budget is spent the outcome reports ``crashed=True`` and
    the result is ``None``.  Any other exception propagates untouched —
    supervision is for worker death, not for ordinary errors.
    """
    outcome = SupervisionOutcome()
    backoff = policy.restart_backoff_s
    while True:
        try:
            return fn(), outcome
        except WorkerCrash as exc:
            outcome.error = str(exc) or type(exc).__name__
            if outcome.restarts >= policy.max_restarts:
                outcome.crashed = True
                return None, outcome
            outcome.restarts += 1
            if backoff > 0:
                outcome.backoff_s += backoff
                if policy.sleep is not None:
                    policy.sleep(backoff)
                backoff = min(
                    backoff * policy.backoff_multiplier, policy.max_backoff_s
                )


class WorkerCrashInjector(FaultInjector):
    """Crash the worker serving a node at scheduled points.

    Triggers either by transaction index (``at``, like the other
    injectors) or by campaign round (``at_rounds`` plus a ``clock``
    callable that reports the current round).  Each triggered round
    crashes ``crashes`` consecutive transactions — ``crashes=1`` lets a
    single supervisor restart heal the worker; a value past the
    restart budget proves crashed-worker containment.

    ``fatal=True`` raises :class:`CampaignAbort` instead: the
    SIGKILL-equivalent used by the CLI kill-resume drill.

    The injector is *snapshot-transparent*: it is drill apparatus, not
    campaign state, so checkpoints capture the wrapped transport as if
    the injector were not there.  A resumed campaign therefore does not
    need (or get) the kill schedule re-armed.
    """

    name = "worker_crash"
    failing_stage = "engine"

    def __init__(
        self,
        inner,
        *,
        at=(),
        at_rounds=(),
        crashes: int = 1,
        fatal: bool = False,
        clock=None,
        **kwargs,
    ) -> None:
        super().__init__(inner, **kwargs)
        self.at = frozenset(int(i) for i in at)
        self.at_rounds = frozenset(int(r) for r in at_rounds)
        if self.at_rounds and clock is None:
            raise ValueError("at_rounds scheduling needs a clock callable")
        if crashes < 1:
            raise ValueError("crashes must be >= 1")
        self.crashes = int(crashes)
        self.fatal = bool(fatal)
        self.clock = clock
        self._armed_round: int | None = None
        self._fired_in_round = 0

    def _intercept(self, query, index: int):
        crash = index in self.at
        if not crash and self.at_rounds:
            t = int(self.clock())
            if t in self.at_rounds:
                if self._armed_round != t:
                    self._armed_round = t
                    self._fired_in_round = 0
                if self._fired_in_round < self.crashes:
                    self._fired_in_round += 1
                    crash = True
        if not crash:
            return None
        self._fire(index)
        self._record_postmortem(InjectedResult(fault=self.name))
        if self.fatal:
            raise CampaignAbort(f"fatal worker crash at transaction {index}")
        raise WorkerCrash(f"worker crash injected at transaction {index}")

    # Snapshot transparency: checkpoints see straight through to the
    # wrapped transport (see class docstring).
    def snapshot_state(self):
        return transport_state(self.inner)

    def restore_state(self, state) -> None:
        restore_transport(self.inner, state)


def install_worker_crash(
    reader,
    node: int,
    *,
    rounds=(),
    at=(),
    crashes: int = 1,
    fatal: bool = False,
):
    """Wrap ``reader``'s transport for ``node`` with a crash injector.

    The injector's round clock is the reader's own round counter, so
    ``rounds=(8,)`` crashes the node's worker during polling round 8 in
    every execution mode.  The injector books no events itself (the
    reader's supervision bookkeeping owns ``worker_restart`` /
    ``worker_crash`` telemetry), which keeps sequential and parallel
    digests identical under contained crashes.
    """
    addr = int(node)
    if addr not in reader._macs:
        raise KeyError(f"reader has no node {node}")
    mac = reader._macs[addr]
    injector = WorkerCrashInjector(
        mac.transact,
        node=addr,
        at=at,
        at_rounds=rounds,
        crashes=crashes,
        fatal=fatal,
        clock=lambda: reader._round,
    )
    mac.transact = injector
    return injector


__all__ = [
    "CampaignAbort",
    "SupervisionOutcome",
    "SupervisorPolicy",
    "WorkerCrash",
    "WorkerCrashInjector",
    "install_worker_crash",
    "supervise",
]
