"""Wall-clock watchdog budgets for parallel polling rounds.

A hung transport (stuck modem, wedged serial line, a worker thread
blocked in I/O) must not hang an hours-long campaign.  The watchdog
gives :class:`repro.perf.fleet.FleetEngine` two budgets:

* a **per-transaction** deadline — the longest a single node's poll may
  run before the reader gives up on it this round, and
* a **per-round** deadline — the longest the whole round may take; once
  it is spent, every still-running straggler is abandoned at once.

A breached budget does not raise: the engine returns a
:class:`WatchdogTimeout` sentinel in the straggler's result slot and
marks its pool *tainted* so the abandoned worker thread cannot occupy a
slot in later rounds.  The reader converts the sentinel into a
``watchdog_timeout`` fault event, a decode post-mortem, and a failure
fed to the node's health machine — the campaign keeps going.

Watchdog enforcement is only meaningful in parallel mode
(``parallel >= 1``): a synchronous call cannot be preempted from the
same thread.  Sequential campaigns should bound time inside the
transport itself; the watchdog is the engine-level last resort.

Because breaches are triggered by *wall-clock* time, a campaign that
suffers one is not byte-reproducible — determinism guarantees apply to
crash containment (:mod:`repro.resilience.supervisor`) and
checkpoint/resume (:mod:`repro.resilience.checkpoint`), not to timeout
placement.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class WatchdogPolicy:
    """Wall-clock budgets enforced by the fleet engine.

    Parameters
    ----------
    transaction_deadline_s:
        Budget for one node's poll (``None`` disables).
    round_deadline_s:
        Budget for the whole polling round (``None`` disables).  The
        round clock starts when the round's units are submitted; once
        it runs out every unfinished unit times out immediately.
    """

    transaction_deadline_s: float | None = None
    round_deadline_s: float | None = None

    def __post_init__(self) -> None:
        for label, value in (
            ("transaction_deadline_s", self.transaction_deadline_s),
            ("round_deadline_s", self.round_deadline_s),
        ):
            if value is not None and not value > 0:
                raise ValueError(f"{label} must be positive or None")

    @property
    def enabled(self) -> bool:
        return (
            self.transaction_deadline_s is not None
            or self.round_deadline_s is not None
        )


@dataclass(frozen=True)
class WatchdogTimeout:
    """Result sentinel for a unit abandoned past its deadline.

    ``budget`` names which budget ran out (``"transaction"`` or
    ``"round"``); ``deadline_s`` is the wall-clock allowance that was
    exceeded.
    """

    key: object
    budget: str
    deadline_s: float
