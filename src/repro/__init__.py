"""Piezo-Acoustic Backscatter (PAB): underwater backscatter networking.

A simulation-based reproduction of Jang & Adib, SIGCOMM 2019.  See
README.md for the tour, DESIGN.md for the system inventory, and
docs/PHYSICS.md for the model derivations.

Subpackages
-----------
acoustics
    Underwater channel: sound speed, absorption, noise, multipath,
    Doppler, fading, deployment environments.
piezo
    Transducers: materials, Butterworth-Van Dyke circuits, cylinder
    design, directivity.
circuits
    Battery-free front end: matching (the recto-piezo), rectifiers,
    storage, regulation, switching.
dsp
    The modem: line codes, framing, sync, equalisation, collision
    decoding, metrics.
sensing
    Peripherals: ADC, I2C, pH, pressure, temperature.
node
    The battery-free node: power model, energy engine, firmware.
net
    Networking: messages, FDMA, MAC, inventory, reader controller.
core
    End-to-end system: projector, hydrophone, links, networks,
    experiments, deployment planning, monitoring sessions.
faults
    Fault injection: seeded injectors, schedules, structured event log.
obs
    Observability: span tracing, metrics registry, JSONL/Prometheus/CSV
    exporters (see docs/OBSERVABILITY.md).
"""

__version__ = "1.0.0"
