"""MS5837-30BA digital pressure/temperature sensor model + driver.

The paper extracts temperature and pressure from the MS5837-30BA, "a
waterproof digital sensor which directly communicates with the MCU using
an I2C interface" (Sec. 5.1c), and verifies readings of room temperature
and ~1 bar (Sec. 6.5).

The model implements the datasheet's register-level protocol —

* ``0x1E``     reset,
* ``0xA0+2k``  PROM coefficient reads (C0..C6, 16 bit),
* ``0x40/0x50`` start D1 (pressure) / D2 (temperature) conversion,
* ``0x00``     24-bit ADC result read,

— and its first-order compensation arithmetic, so the driver code below
exercises exactly the math real firmware runs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sensing.i2c import I2CBus, I2CDevice, I2CError

#: Datasheet-typical PROM calibration coefficients for a 30-bar part.
DEFAULT_PROM = (0x0000, 34982, 36352, 20328, 22354, 26646, 26146)

#: Standard atmosphere [mbar].
ATMOSPHERE_MBAR = 1013.25

#: Pressure added per metre of water depth [mbar/m] (rho*g*h).
MBAR_PER_METRE = 98.1


@dataclass
class WaterColumn:
    """Ground-truth environment the sensor sits in.

    Attributes
    ----------
    depth_m:
        Sensor depth below the surface [m].
    temperature_c:
        Water temperature [C].
    surface_pressure_mbar:
        Atmospheric pressure at the surface [mbar].
    """

    depth_m: float = 0.0
    temperature_c: float = 20.0
    surface_pressure_mbar: float = ATMOSPHERE_MBAR

    def __post_init__(self) -> None:
        if self.depth_m < 0:
            raise ValueError("depth must be non-negative")

    @property
    def absolute_pressure_mbar(self) -> float:
        """Total pressure at the sensor [mbar]."""
        return self.surface_pressure_mbar + MBAR_PER_METRE * self.depth_m


def compensate(d1: int, d2: int, prom) -> tuple[float, float]:
    """Datasheet first-order compensation: raw ADC -> (mbar, Celsius)."""
    c = prom
    dt = d2 - c[5] * 256
    temp = 2000 + dt * c[6] / (1 << 23)
    off = c[2] * (1 << 16) + c[4] * dt / (1 << 7)
    sens = c[1] * (1 << 15) + c[3] * dt / (1 << 8)
    p = (d1 * sens / (1 << 21) - off) / (1 << 13)
    return p / 10.0, temp / 100.0


def synthesize_raw(pressure_mbar: float, temperature_c: float, prom) -> tuple[int, int]:
    """Invert :func:`compensate`: ground truth -> raw D1/D2 codes."""
    c = prom
    dt = (temperature_c * 100.0 - 2000.0) * (1 << 23) / c[6]
    d2 = int(round(dt + c[5] * 256))
    off = c[2] * (1 << 16) + c[4] * dt / (1 << 7)
    sens = c[1] * (1 << 15) + c[3] * dt / (1 << 8)
    d1 = int(round((pressure_mbar * 10.0 * (1 << 13) + off) * (1 << 21) / sens))
    if not 0 <= d1 < (1 << 24) or not 0 <= d2 < (1 << 24):
        raise ValueError("environment outside the sensor's raw range")
    return d1, d2


class MS5837(I2CDevice):
    """The sensor itself, attached to an :class:`I2CBus`."""

    address = 0x76

    _CMD_RESET = 0x1E
    _CMD_ADC_READ = 0x00
    _CMD_CONVERT_D1 = 0x40  # 0x40-0x4A depending on OSR
    _CMD_CONVERT_D2 = 0x50

    def __init__(self, environment: WaterColumn, prom=DEFAULT_PROM) -> None:
        if len(prom) != 7:
            raise ValueError("PROM must hold 7 coefficients")
        self.environment = environment
        self.prom = tuple(int(x) & 0xFFFF for x in prom)
        self._adc_result: int | None = None
        self._read_buffer: bytes = b""
        self._was_reset = False

    # -- device side of the protocol ------------------------------------------------

    def write(self, data: bytes) -> None:
        if len(data) != 1:
            raise I2CError("MS5837 commands are single bytes")
        cmd = data[0]
        if cmd == self._CMD_RESET:
            self._was_reset = True
            self._adc_result = None
            self._read_buffer = b""
        elif 0xA0 <= cmd <= 0xAC and cmd % 2 == 0:
            index = (cmd - 0xA0) // 2
            value = self.prom[index]
            self._read_buffer = bytes([(value >> 8) & 0xFF, value & 0xFF])
        elif self._CMD_CONVERT_D1 <= cmd <= self._CMD_CONVERT_D1 + 0x0A:
            self._require_reset()
            d1, _ = synthesize_raw(
                self.environment.absolute_pressure_mbar,
                self.environment.temperature_c,
                self.prom,
            )
            self._adc_result = d1
        elif self._CMD_CONVERT_D2 <= cmd <= self._CMD_CONVERT_D2 + 0x0A:
            self._require_reset()
            _, d2 = synthesize_raw(
                self.environment.absolute_pressure_mbar,
                self.environment.temperature_c,
                self.prom,
            )
            self._adc_result = d2
        elif cmd == self._CMD_ADC_READ:
            value = self._adc_result if self._adc_result is not None else 0
            self._read_buffer = bytes(
                [(value >> 16) & 0xFF, (value >> 8) & 0xFF, value & 0xFF]
            )
            self._adc_result = None
        else:
            raise I2CError(f"unknown MS5837 command 0x{cmd:02x}")

    def read(self, length: int) -> bytes:
        data, self._read_buffer = self._read_buffer[:length], b""
        if len(data) < length:
            data = data + b"\x00" * (length - len(data))
        return data

    def _require_reset(self) -> None:
        if not self._was_reset:
            raise I2CError("MS5837 must be reset before conversions")


class MS5837Driver:
    """Firmware-side driver running transactions over the bus."""

    def __init__(self, bus: I2CBus, address: int = MS5837.address) -> None:
        self.bus = bus
        self.address = address
        self._prom: tuple | None = None

    def initialise(self) -> None:
        """Reset the part and read its PROM coefficients."""
        self.bus.write(self.address, bytes([MS5837._CMD_RESET]))
        coeffs = []
        for k in range(7):
            raw = self.bus.write_read(self.address, bytes([0xA0 + 2 * k]), 2)
            coeffs.append((raw[0] << 8) | raw[1])
        self._prom = tuple(coeffs)

    def _convert(self, command: int) -> int:
        self.bus.write(self.address, bytes([command]))
        raw = self.bus.write_read(self.address, bytes([MS5837._CMD_ADC_READ]), 3)
        return (raw[0] << 16) | (raw[1] << 8) | raw[2]

    def read(self) -> tuple[float, float]:
        """One full measurement: returns ``(pressure_mbar, temperature_c)``."""
        if self._prom is None:
            self.initialise()
        d1 = self._convert(MS5837._CMD_CONVERT_D1 + 0x0A)  # highest OSR
        d2 = self._convert(MS5837._CMD_CONVERT_D2 + 0x0A)
        return compensate(d1, d2, self._prom)

    @staticmethod
    def encode_reading(pressure_mbar: float, temperature_c: float) -> bytes:
        """Pack a reading into four payload bytes (0.1 mbar, 0.01 C units)."""
        p = int(round(pressure_mbar * 10.0))
        t = int(round((temperature_c + 100.0) * 100.0))  # offset binary
        if not 0 <= p <= 0xFFFF or not 0 <= t <= 0xFFFF:
            raise ValueError("reading out of encodable range")
        return bytes([(p >> 8) & 0xFF, p & 0xFF, (t >> 8) & 0xFF, t & 0xFF])

    @staticmethod
    def decode_reading(payload: bytes) -> tuple[float, float]:
        """Inverse of :meth:`encode_reading`."""
        if len(payload) < 4:
            raise ValueError("payload too short")
        p = ((payload[0] << 8) | payload[1]) / 10.0
        t = ((payload[2] << 8) | payload[3]) / 100.0 - 100.0
        return p, t
