"""A small I2C bus model.

The MS5837 pressure sensor "directly communicates with the MCU through
I2C" (Sec. 5.1c).  The model implements the transaction level of the
protocol — 7-bit addressing, write bytes, read bytes — with the error
modes firmware actually has to handle (NACK from an absent device,
multiple devices at the same address).
"""

from __future__ import annotations

import abc


class I2CError(IOError):
    """A failed bus transaction (address NACK, protocol violation)."""


class I2CDevice(abc.ABC):
    """Base class for bus peripherals."""

    #: 7-bit device address; subclasses must set this.
    address: int = 0x00

    @abc.abstractmethod
    def write(self, data: bytes) -> None:
        """Handle a master write transaction."""

    @abc.abstractmethod
    def read(self, length: int) -> bytes:
        """Handle a master read transaction of ``length`` bytes."""


class I2CBus:
    """A single-master I2C bus with attached devices."""

    def __init__(self) -> None:
        self._devices: dict[int, I2CDevice] = {}

    def attach(self, device: I2CDevice) -> None:
        """Add a peripheral; addresses must be unique and 7-bit."""
        addr = device.address
        if not 0x08 <= addr <= 0x77:
            raise ValueError(f"address 0x{addr:02x} outside the 7-bit range")
        if addr in self._devices:
            raise ValueError(f"address conflict at 0x{addr:02x}")
        self._devices[addr] = device

    def detach(self, address: int) -> None:
        """Remove a peripheral."""
        if address not in self._devices:
            raise KeyError(f"no device at 0x{address:02x}")
        del self._devices[address]

    def scan(self) -> list[int]:
        """Addresses that acknowledge (like ``i2cdetect``)."""
        return sorted(self._devices)

    def write(self, address: int, data: bytes) -> None:
        """Master write; raises :class:`I2CError` on NACK."""
        device = self._devices.get(address)
        if device is None:
            raise I2CError(f"NACK: no device at 0x{address:02x}")
        device.write(bytes(data))

    def read(self, address: int, length: int) -> bytes:
        """Master read; raises :class:`I2CError` on NACK."""
        if length < 0:
            raise ValueError("length must be non-negative")
        device = self._devices.get(address)
        if device is None:
            raise I2CError(f"NACK: no device at 0x{address:02x}")
        result = device.read(length)
        if len(result) != length:
            raise I2CError(
                f"device 0x{address:02x} returned {len(result)} of {length} bytes"
            )
        return result

    def write_read(self, address: int, data: bytes, length: int) -> bytes:
        """Combined write-then-read transaction (repeated start)."""
        self.write(address, data)
        return self.read(address, length)
