"""Analog temperature channel (NTC thermistor divider into the ADC).

The MS5837 already reports temperature digitally; this analog channel is
the general-purpose alternative the platform's "extensible peripheral
interface" supports — a 10 k NTC thermistor in a resistive divider read
by the MCU ADC, using the beta-parameter model

    R(T) = R25 * exp(beta * (1/T - 1/T25)).
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class ThermistorChannel:
    """NTC thermistor + divider + conversion maths.

    Parameters
    ----------
    r25_ohm:
        Thermistor resistance at 25 C.
    beta_k:
        Beta parameter [K].
    divider_ohm:
        Fixed top resistor of the divider.
    supply_v:
        Divider supply rail (the node's 1.8 V).
    """

    r25_ohm: float = 10_000.0
    beta_k: float = 3_950.0
    divider_ohm: float = 10_000.0
    supply_v: float = 1.8

    def __post_init__(self) -> None:
        if min(self.r25_ohm, self.beta_k, self.divider_ohm, self.supply_v) <= 0:
            raise ValueError("all parameters must be positive")

    def resistance(self, temperature_c: float) -> float:
        """Thermistor resistance [ohm] at a temperature."""
        t = temperature_c + 273.15
        if t <= 0:
            raise ValueError("temperature below absolute zero")
        return self.r25_ohm * math.exp(self.beta_k * (1.0 / t - 1.0 / 298.15))

    def divider_voltage(self, temperature_c: float) -> float:
        """Voltage at the ADC pin (thermistor on the bottom leg)."""
        r = self.resistance(temperature_c)
        return self.supply_v * r / (r + self.divider_ohm)

    def temperature_from_voltage(self, v_adc: float) -> float:
        """Invert the divider + beta model: ADC voltage -> Celsius."""
        if not 0.0 < v_adc < self.supply_v:
            raise ValueError("voltage outside the divider's open interval")
        r = self.divider_ohm * v_adc / (self.supply_v - v_adc)
        inv_t = 1.0 / 298.15 + math.log(r / self.r25_ohm) / self.beta_k
        return 1.0 / inv_t - 273.15

    def read(self, true_temperature_c: float, adc=None) -> float:
        """Full-chain reading through an ADC model."""
        from repro.sensing.adc import SarADC

        adc = adc if adc is not None else SarADC(seed=0)
        v = adc.sample_average(self.divider_voltage(true_temperature_c))
        v = min(max(v, 1e-6), self.supply_v - 1e-6)
        return self.temperature_from_voltage(v)
