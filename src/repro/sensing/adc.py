"""Successive-approximation ADC model (the MSP430's 10-bit ADC10).

The MCU "samples analog sensors" through its ADC pin (Sec. 4.2.2).  The
model captures the behaviours that matter to sensor conversion code:
quantisation against a reference, clipping, and optional input noise.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass
class SarADC:
    """An n-bit SAR ADC.

    Parameters
    ----------
    resolution_bits:
        Converter resolution (MSP430G2553: 10 bits).
    reference_v:
        Full-scale reference voltage.
    noise_lsb_rms:
        RMS input-referred noise in LSB.
    seed:
        RNG seed for the noise source.
    """

    resolution_bits: int = 10
    reference_v: float = 1.8
    noise_lsb_rms: float = 0.5
    seed: int | None = None
    _rng: np.random.Generator = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if not 4 <= self.resolution_bits <= 24:
            raise ValueError("resolution must be between 4 and 24 bits")
        if self.reference_v <= 0:
            raise ValueError("reference must be positive")
        if self.noise_lsb_rms < 0:
            raise ValueError("noise must be non-negative")
        self._rng = np.random.default_rng(self.seed)

    @property
    def max_code(self) -> int:
        return (1 << self.resolution_bits) - 1

    @property
    def lsb_v(self) -> float:
        """Voltage of one code step."""
        return self.reference_v / (1 << self.resolution_bits)

    def sample(self, voltage_v: float) -> int:
        """Convert one voltage to an output code (clipped to range)."""
        noisy = voltage_v + self._rng.normal(0.0, self.noise_lsb_rms) * self.lsb_v
        code = int(round(noisy / self.lsb_v))
        return min(max(code, 0), self.max_code)

    def to_voltage(self, code: int) -> float:
        """Nominal input voltage for a code (mid-tread)."""
        if not 0 <= code <= self.max_code:
            raise ValueError("code out of range")
        return code * self.lsb_v

    def sample_average(self, voltage_v: float, n: int = 8) -> float:
        """Oversample-and-average reading in volts (what firmware does)."""
        if n < 1:
            raise ValueError("need at least one sample")
        codes = [self.sample(voltage_v) for _ in range(n)]
        return float(np.mean(codes)) * self.lsb_v

    # -- checkpointing -------------------------------------------------------------

    def snapshot_state(self) -> dict:
        """JSON-ready RNG stream position of the input-noise source.

        Sensor conversions draw from this stream, so a byte-identical
        campaign resume must put the converter back on the exact draw
        it would have reached uninterrupted.
        """
        return {"rng": self._rng.bit_generator.state}

    def restore_state(self, state: dict) -> None:
        """Inverse of :meth:`snapshot_state`."""
        self._rng.bit_generator.state = state["rng"]
