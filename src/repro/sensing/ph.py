"""pH sensing chain: glass electrode + analog front end + ADC conversion.

The paper measures acidity with a mini pH probe through an LMP91200-style
configurable AFE into the MCU's ADC (Sec. 5.1c) and verifies a correct
reading of pH 7 (Sec. 6.5).

A glass pH electrode is Nernstian: its EMF is proportional to the
distance from neutral pH,

    E = E_offset + S(T) * (7 - pH),    S(T) = ln(10) * R * T / F

with the ideal slope ~59.16 mV/pH at 25 C.  The AFE level-shifts this
bipolar millivolt signal into the ADC's unipolar range.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Gas constant [J/(mol K)], Faraday constant [C/mol].
_R = 8.314462618
_F = 96485.33212
_LN10 = 2.302585092994046


def nernst_slope_v(temperature_c: float) -> float:
    """Ideal electrode slope [V per pH unit] at a temperature."""
    if temperature_c < -30.0 or temperature_c > 120.0:
        raise ValueError("temperature outside electrode operating range")
    t_kelvin = temperature_c + 273.15
    return _LN10 * _R * t_kelvin / _F


@dataclass(frozen=True)
class PhProbe:
    """A glass pH electrode.

    Parameters
    ----------
    offset_v:
        Electrode offset at pH 7 (ideally zero; real probes drift).
    slope_efficiency:
        Fraction of the ideal Nernst slope the aged electrode delivers.
    """

    offset_v: float = 0.0
    slope_efficiency: float = 1.0

    def __post_init__(self) -> None:
        if not 0.5 <= self.slope_efficiency <= 1.05:
            raise ValueError("slope efficiency implausible (expect 0.5-1.05)")

    def emf(self, ph: float, temperature_c: float = 25.0) -> float:
        """Electrode EMF [V] for a solution pH."""
        if not 0.0 <= ph <= 14.0:
            raise ValueError("pH must be within 0-14")
        slope = nernst_slope_v(temperature_c) * self.slope_efficiency
        return self.offset_v + slope * (7.0 - ph)


@dataclass(frozen=True)
class PhAnalogFrontEnd:
    """LMP91200-style signal conditioning.

    Maps the bipolar electrode EMF into the ADC range:
    ``V_out = mid_rail_v + gain * emf``.
    """

    mid_rail_v: float = 0.9
    gain: float = 1.0

    def __post_init__(self) -> None:
        if self.mid_rail_v <= 0 or self.gain <= 0:
            raise ValueError("mid rail and gain must be positive")

    def condition(self, emf_v: float) -> float:
        """AFE output voltage [V]."""
        return self.mid_rail_v + self.gain * emf_v

    def invert(self, v_out: float) -> float:
        """Recover the electrode EMF from an AFE output voltage."""
        return (v_out - self.mid_rail_v) / self.gain


class PhSensor:
    """The complete firmware-visible pH sensing chain.

    Combines probe, AFE, and ADC; :meth:`read_ph` is what the node's
    firmware calls to fill a packet payload.
    """

    def __init__(self, probe=None, afe=None, adc=None) -> None:
        from repro.sensing.adc import SarADC

        self.probe = probe if probe is not None else PhProbe()
        self.afe = afe if afe is not None else PhAnalogFrontEnd()
        self.adc = adc if adc is not None else SarADC(seed=0)

    def read_ph(self, true_ph: float, temperature_c: float = 25.0) -> float:
        """Measure the pH of a solution (through the full analog chain)."""
        emf = self.probe.emf(true_ph, temperature_c)
        v_adc = self.afe.condition(emf)
        v_read = self.adc.sample_average(v_adc)
        emf_read = self.afe.invert(v_read)
        slope = nernst_slope_v(temperature_c) * self.probe.slope_efficiency
        return 7.0 - (emf_read - self.probe.offset_v) / slope

    def encode_reading(self, ph_value: float) -> bytes:
        """Pack a pH reading into two payload bytes (centi-pH units)."""
        if not 0.0 <= ph_value <= 14.0:
            raise ValueError("pH out of range")
        centi = int(round(ph_value * 100.0))
        return bytes([(centi >> 8) & 0xFF, centi & 0xFF])

    @staticmethod
    def decode_reading(payload: bytes) -> float:
        """Inverse of :meth:`encode_reading`."""
        if len(payload) < 2:
            raise ValueError("payload too short")
        return ((payload[0] << 8) | payload[1]) / 100.0
