"""Sensing peripherals for the battery-free node (paper Sec. 5.1c, 6.5).

Behavioural models of the sensors the paper integrates: a Nernstian pH
mini-probe behind an LMP91200-style analog front end sampled by the MCU
ADC, and an MS5837-30BA digital pressure/temperature sensor on the I2C
bus.
"""

from repro.sensing.adc import SarADC
from repro.sensing.i2c import I2CBus, I2CDevice, I2CError
from repro.sensing.ph import PhProbe, PhAnalogFrontEnd, PhSensor
from repro.sensing.pressure import MS5837, WaterColumn
from repro.sensing.temperature import ThermistorChannel

__all__ = [
    "SarADC",
    "I2CBus",
    "I2CDevice",
    "I2CError",
    "PhProbe",
    "PhAnalogFrontEnd",
    "PhSensor",
    "MS5837",
    "WaterColumn",
    "ThermistorChannel",
]
