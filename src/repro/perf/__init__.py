"""Performance layer: memoization caches and the parallel fleet engine.

The hot path of the reproduction is the waveform pipeline
(:mod:`repro.dsp`, :mod:`repro.core`); this package makes it fast
without changing a single decoded bit:

* :mod:`repro.perf.cache` — keyed, size-bounded LRU caches for the
  deterministic intermediates (PWM query templates, sync correlation
  kernels, FIR designs, channel impulse responses) with hit/miss
  counters exported through :mod:`repro.obs.metrics`;
* :mod:`repro.perf.kernels` — convolution helpers that auto-select
  direct vs FFT (overlap-add) evaluation by operand length;
* :mod:`repro.perf.fleet` — :class:`~repro.perf.fleet.FleetEngine`,
  which runs reader polling rounds across a thread pool with per-node
  staging sinks merged deterministically (byte-identical to sequential
  execution for the same seed).

See ``docs/PERFORMANCE.md`` for the design and the CI perf gate.
"""

from repro.perf.cache import (
    LRUCache,
    cache_enabled,
    cache_stats,
    caches_to_metrics,
    caching_disabled,
    clear_all_caches,
    get_cache,
    set_cache_enabled,
)
from repro.perf.fleet import (
    FleetEngine,
    ProcessFleetEngine,
    auto_parallel_mode,
    auto_parallel_width,
)
from repro.perf.kernels import (
    batched_convolve,
    batched_correlate,
    smart_convolve,
    smart_correlate,
)

__all__ = [
    "FleetEngine",
    "LRUCache",
    "ProcessFleetEngine",
    "auto_parallel_mode",
    "auto_parallel_width",
    "batched_convolve",
    "batched_correlate",
    "cache_enabled",
    "cache_stats",
    "caches_to_metrics",
    "caching_disabled",
    "clear_all_caches",
    "get_cache",
    "set_cache_enabled",
    "smart_convolve",
    "smart_correlate",
]
