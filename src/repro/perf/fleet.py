"""Parallel execution engine for reader polling rounds.

``ReaderController.poll_round`` visits nodes in sorted-address order;
each visit is an independent acoustic transaction (its own link, its
own noise stream), so the visits can run concurrently — *if* the
shared sinks (event log, metrics registry, retry RNG) are kept out of
the workers and merged afterwards in the same sorted order the
sequential loop would have produced.

:class:`FleetEngine` owns the pool half of that contract: it executes
per-node units of work across a ``concurrent.futures`` pool and hands
the results back **in sorted key order**, regardless of completion
order.  The merge half (staging event logs / metrics registries,
per-node RNG streams) lives in :mod:`repro.net.reader`, which is what
makes parallel campaign reports byte-identical to sequential ones —
asserted by ``tests/perf/test_fleet.py``.

Threads (not processes) are the right pool here: the hot path spends
its time inside numpy/scipy FFTs and linear algebra, which release the
GIL, and thread workers can share the in-process caches from
:mod:`repro.perf.cache` — a process pool would re-derive every
template per worker and pay pickling for 100k-sample waveforms.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Iterable, Mapping, Sequence, Tuple


class FleetEngine:
    """Run keyed units of work on a thread pool, results in key order.

    Parameters
    ----------
    max_workers:
        Pool width.  ``1`` still exercises the staging/merge path (and
        is what CI uses on single-core runners); the sequential
        fast path in the reader is selected by ``parallel=0``, not
        here.
    """

    def __init__(self, max_workers: int = 4) -> None:
        if max_workers < 1:
            raise ValueError("max_workers must be >= 1")
        self.max_workers = int(max_workers)
        self._pool: ThreadPoolExecutor | None = None

    def _ensure_pool(self) -> ThreadPoolExecutor:
        # Lazy and persistent: a campaign calls run_round once per
        # polling round, and respawning worker threads each time costs
        # more than the round's merge bookkeeping.
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self.max_workers, thread_name_prefix="fleet"
            )
        return self._pool

    def shutdown(self) -> None:
        """Release the worker threads (idempotent)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def run_round(
        self,
        units: "Mapping[object, Callable[[], object]] | Iterable[Tuple[object, Callable[[], object]]]",
    ) -> "Sequence[Tuple[object, object]]":
        """Execute every unit concurrently; return ``[(key, result)]``
        sorted by key.

        A unit that raises propagates its exception after all units
        have finished — matching the sequential loop, the *first* (in
        key order) failure is the one re-raised, so error behaviour
        does not depend on scheduling.
        """
        if isinstance(units, Mapping):
            items = sorted(units.items())
        else:
            items = sorted(units)
        if not items:
            return []
        pool = self._ensure_pool()
        futures = [(key, pool.submit(fn)) for key, fn in items]
        results = []
        first_error = None
        for key, future in futures:
            exc = future.exception()
            if exc is not None:
                if first_error is None:
                    first_error = exc
                continue
            results.append((key, future.result()))
        if first_error is not None:
            raise first_error
        return results
