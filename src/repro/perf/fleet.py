"""Parallel execution engine for reader polling rounds.

``ReaderController.poll_round`` visits nodes in sorted-address order;
each visit is an independent acoustic transaction (its own link, its
own noise stream), so the visits can run concurrently — *if* the
shared sinks (event log, metrics registry, retry RNG) are kept out of
the workers and merged afterwards in the same sorted order the
sequential loop would have produced.

:class:`FleetEngine` owns the pool half of that contract: it executes
per-node units of work across a ``concurrent.futures`` pool and hands
the results back **in sorted key order**, regardless of completion
order.  The merge half (staging event logs / metrics registries,
per-node RNG streams) lives in :mod:`repro.net.reader`, which is what
makes parallel campaign reports byte-identical to sequential ones —
asserted by ``tests/perf/test_fleet.py``.

Threads (not processes) are the right pool here: the hot path spends
its time inside numpy/scipy FFTs and linear algebra, which release the
GIL, and thread workers can share the in-process caches from
:mod:`repro.perf.cache` — a process pool would re-derive every
template per worker and pay pickling for 100k-sample waveforms.
"""

from __future__ import annotations

import json
import logging
import math
import os
import pathlib
import time
from concurrent.futures import ThreadPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from typing import Callable, Iterable, Mapping, Sequence, Tuple

from repro.resilience.watchdog import WatchdogPolicy, WatchdogTimeout

logger = logging.getLogger("repro.perf")

#: Fleet size below which ``parallel="auto"`` stays sequential when no
#: benchmark evidence is available.  Chosen from the shipped
#: ``BENCH_perf.json`` shape: threads lose until the per-round fan-out
#: amortises pool overhead, which the observed 10-node record puts well
#: above typical test fleets.
AUTO_PARALLEL_DEFAULT_CROSSOVER = 24

#: Widest pool ``parallel="auto"`` will pick; matches the default
#: FleetEngine width.
AUTO_PARALLEL_MAX_WIDTH = 4


def _profiled_unit(key, fn, profiler, submitted_s: float):
    """Wrap one unit of work with worker attribution.

    Records, from inside the worker thread, the unit's busy wall-clock
    (``perf_counter``), consumed CPU time (``thread_time`` — the
    per-worker GIL-contention proxy's numerator), and queue wait
    (submit-to-start latency).  Only constructed when a profiler is
    enabled, so the disabled path pays one attribute check per round.
    """
    import threading

    def wrapped():
        start = time.perf_counter()
        cpu0 = time.thread_time()
        try:
            return fn()
        finally:
            profiler.record_worker_sample(
                worker=threading.current_thread().name,
                key=key,
                queue_wait_s=start - submitted_s,
                wall_s=time.perf_counter() - start,
                cpu_s=time.thread_time() - cpu0,
            )

    return wrapped


class FleetEngine:
    """Run keyed units of work on a thread pool, results in key order.

    Parameters
    ----------
    max_workers:
        Pool width.  ``1`` still exercises the staging/merge path (and
        is what CI uses on single-core runners); the sequential
        fast path in the reader is selected by ``parallel=0``, not
        here.
    """

    def __init__(self, max_workers: int = 4) -> None:
        if max_workers < 1:
            raise ValueError("max_workers must be >= 1")
        self.max_workers = int(max_workers)
        self._pool: ThreadPoolExecutor | None = None
        self._tainted = False

    def _ensure_pool(self) -> ThreadPoolExecutor:
        # Lazy and persistent: a campaign calls run_round once per
        # polling round, and respawning worker threads each time costs
        # more than the round's merge bookkeeping.
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self.max_workers, thread_name_prefix="fleet"
            )
        return self._pool

    def shutdown(self) -> None:
        """Release the worker threads (idempotent)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def run_round(
        self,
        units: "Mapping[object, Callable[[], object]] | Iterable[Tuple[object, Callable[[], object]]]",
        *,
        watchdog: WatchdogPolicy | None = None,
    ) -> "Sequence[Tuple[object, object]]":
        """Execute every unit concurrently; return ``[(key, result)]``
        sorted by key.

        A unit that raises propagates its exception after all units
        have finished — matching the sequential loop, the *first* (in
        key order) failure is the one re-raised, so error behaviour
        does not depend on scheduling.

        With a ``watchdog``, a unit that outlives its per-transaction
        or per-round wall-clock budget is abandoned: its result slot
        carries a :class:`~repro.resilience.watchdog.WatchdogTimeout`
        sentinel instead of a value, and the pool is recreated before
        the next round so the zombie thread cannot occupy a worker
        slot.  (The abandoned thread itself cannot be killed — it is
        left to finish into discarded staging sinks.)
        """
        if isinstance(units, Mapping):
            items = sorted(units.items())
        else:
            items = sorted(units)
        if not items:
            return []
        if self._tainted:
            # A previous round abandoned a straggler inside this pool;
            # replace the pool so the zombie cannot starve this round.
            if self._pool is not None:
                self._pool.shutdown(wait=False, cancel_futures=True)
                self._pool = None
            self._tainted = False
            from repro.obs.stream import get_bus

            bus = get_bus()
            if bus.enabled:
                # Watchdog-tainted runs already trade byte-
                # reproducibility for liveness, so a wall-clock-ordered
                # resilience event here costs nothing extra.
                bus.publish(
                    "pool_rebuild", source="fleet",
                    data={
                        "reason": "watchdog_taint",
                        "max_workers": self.max_workers,
                    },
                )
        pool = self._ensure_pool()
        from repro.obs.profiler import get_profiler

        profiler = get_profiler()
        round_start = time.perf_counter() if profiler.enabled else 0.0
        txn_deadline = watchdog.transaction_deadline_s if watchdog else None
        round_deadline = watchdog.round_deadline_s if watchdog else None
        round_ends = (
            time.monotonic() + round_deadline
            if round_deadline is not None
            else None
        )
        futures = []
        for key, fn in items:
            if profiler.enabled:
                fn = _profiled_unit(key, fn, profiler, time.perf_counter())
            futures.append((key, pool.submit(fn)))
        results = []
        first_error = None
        for key, future in futures:
            timeout = None
            budget = "transaction"
            deadline = txn_deadline
            if txn_deadline is not None:
                timeout = txn_deadline
            if round_ends is not None:
                remaining = round_ends - time.monotonic()
                if timeout is None or remaining < timeout:
                    timeout = max(remaining, 0.0)
                    budget = "round"
                    deadline = round_deadline
            try:
                exc = future.exception(timeout=timeout)
            except FutureTimeoutError:
                future.cancel()
                self._tainted = True
                results.append(
                    (key, WatchdogTimeout(key=key, budget=budget, deadline_s=deadline))
                )
                continue
            if exc is not None:
                if first_error is None:
                    first_error = exc
                continue
            results.append((key, future.result()))
        if profiler.enabled:
            profiler.record_engine_round(
                wall_s=time.perf_counter() - round_start,
                width=self.max_workers,
            )
        if first_error is not None:
            raise first_error
        return results


class ProcessFleetEngine:
    """Process-pool fallback for the non-batchable remainder.

    The batched engine (:mod:`repro.perf.batch`) covers the waveform
    legs; what it cannot stack is per-node *control* work with real
    mutable state — firmware bookkeeping dry-runs, per-shard fault
    replay, report post-processing.  Those units are CPU-bound Python,
    so on multi-core hosts a process pool sidesteps the GIL where the
    thread pool cannot.

    The contract matches :class:`FleetEngine.run_round`: keyed units
    in, ``[(key, result)]`` sorted by key out.  Units must be picklable
    (top-level callables); a unit that is not, a platform that cannot
    fork, or a single-core host (``max_workers <= 1``) all degrade to
    inline execution — identical results, no concurrency — so callers
    can use this engine unconditionally.
    """

    def __init__(self, max_workers: int | None = None) -> None:
        if max_workers is None:
            max_workers = max((os.cpu_count() or 1) - 1, 1)
        if max_workers < 1:
            raise ValueError("max_workers must be >= 1")
        self.max_workers = int(max_workers)
        self._pool = None

    def _ensure_pool(self):
        if self.max_workers <= 1:
            return None
        if self._pool is None:
            import multiprocessing
            from concurrent.futures import ProcessPoolExecutor

            try:
                context = multiprocessing.get_context("fork")
            except ValueError:
                # No fork on this platform: shared module state (the
                # template caches) would be re-derived per worker under
                # spawn, erasing the win — run inline instead.
                return None
            self._pool = ProcessPoolExecutor(
                max_workers=self.max_workers, mp_context=context
            )
        return self._pool

    def shutdown(self) -> None:
        """Release the worker processes (idempotent)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def run_round(self, units) -> list:
        """Execute every unit; return ``[(key, result)]`` sorted by key."""
        if isinstance(units, Mapping):
            items = sorted(units.items())
        else:
            items = sorted(units)
        if not items:
            return []
        pool = self._ensure_pool()
        if pool is None:
            return [(key, fn()) for key, fn in items]
        import pickle

        futures = []
        for key, fn in items:
            try:
                futures.append((key, pool.submit(fn)))
            except (TypeError, pickle.PicklingError, AttributeError):
                futures.append((key, fn()))
        out = []
        for key, result in futures:
            if hasattr(result, "result"):
                result = result.result()
            out.append((key, result))
        return out


def _latest_full_bench_record(bench_path=None) -> dict | None:
    """The newest non-smoke record in a ``repro bench --out`` file."""
    path = pathlib.Path(
        bench_path
        or os.environ.get("PAB_BENCH_FILE", "BENCH_perf.json")
    )
    if not path.exists():
        return None
    try:
        data = json.loads(path.read_text())
    except (OSError, ValueError):
        return None
    records = data.get("records", []) if isinstance(data, dict) else []
    usable = [
        r
        for r in records
        if isinstance(r, dict)
        and not r.get("smoke", False)
        and r.get("nodes", 0) > 0
        and r.get("cached_s", 0) > 0
        and r.get("parallel_s", 0) > 0
    ]
    return usable[-1] if usable else None


def auto_parallel_width(n_nodes: int, *, bench_path=None, max_width: int | None = None) -> int:
    """Pick a reader execution mode from benchmark evidence.

    Implements ``ReaderController(parallel="auto")``: returns ``0``
    (cached-sequential) for fleets below the observed thread crossover
    and a pool width otherwise.  The crossover comes from the latest
    full record in ``BENCH_perf.json`` (override with ``bench_path`` or
    ``PAB_BENCH_FILE``):

    * threads already won there (``parallel_s < cached_s``) — that
      fleet size is the crossover;
    * threads lost — extrapolate: scale the measured fleet by the
      slowdown ratio (with 2x headroom) before trusting threads;
    * no usable record — fall back to
      :data:`AUTO_PARALLEL_DEFAULT_CROSSOVER`.

    The decision is logged at INFO on ``repro.perf`` so campaign runs
    record which mode "auto" chose and why.
    """
    n = int(n_nodes)
    cap = AUTO_PARALLEL_MAX_WIDTH if max_width is None else int(max_width)
    record = _latest_full_bench_record(bench_path)
    if record is None:
        crossover = AUTO_PARALLEL_DEFAULT_CROSSOVER
        evidence = "no benchmark record; default crossover"
    else:
        measured = int(record["nodes"])
        ratio = float(record["parallel_s"]) / float(record["cached_s"])
        if ratio < 1.0:
            crossover = measured
            evidence = (
                f"threads won at {measured} nodes "
                f"(parallel/cached ratio {ratio:.2f})"
            )
        else:
            crossover = max(measured + 1, int(math.ceil(measured * ratio)) * 2)
            evidence = (
                f"threads lost at {measured} nodes "
                f"(parallel/cached ratio {ratio:.2f}); extrapolated"
            )
    if n < crossover:
        width = 0
    else:
        width = max(1, min(cap, os.cpu_count() or 1))
    logger.info(
        "parallel=auto: fleet of %d nodes -> %s (crossover %d: %s)",
        n,
        f"thread pool of {width}" if width else "cached sequential",
        crossover,
        evidence,
    )
    return width


def auto_parallel_mode(n_nodes: int, *, bench_path=None) -> "int | str":
    """Pick a reader execution mode, batched engine included.

    The richer successor to :func:`auto_parallel_width` (which remains
    for callers that can only use a pool width): when the latest full
    benchmark record carries a ``batch_s`` timing that beats both
    cached-sequential and the thread pool, ``"batch"`` is chosen for
    any fleet of more than one node — the batched prepass degrades
    gracefully to cached-sequential cost on fleets too small to stack.
    Otherwise the thread-crossover logic decides, exactly as before.
    """
    n = int(n_nodes)
    record = _latest_full_bench_record(bench_path)
    if n > 1 and record is not None:
        batch_s = float(record.get("batch_s", 0.0) or 0.0)
        if 0.0 < batch_s <= float(record["cached_s"]) and (
            batch_s <= float(record["parallel_s"])
        ):
            logger.info(
                "parallel=auto: fleet of %d nodes -> batched engine "
                "(batch %.2fs vs cached %.2fs at %d nodes)",
                n, batch_s, float(record["cached_s"]), int(record["nodes"]),
            )
            return "batch"
    return auto_parallel_width(n, bench_path=bench_path)
