"""Length-adaptive convolution kernels for the decode hot path.

``np.convolve`` evaluates directly in O(n*m); for the receiver's
correlations (50k-sample modulation against an 800+-sample preamble
template) that is tens of millions of MACs per decode.  FFT evaluation
is O(n log n), and overlap-add (:func:`scipy.signal.oaconvolve`) beats
one big FFT when the operands are very different lengths — exactly the
receiver's shape.

:func:`smart_convolve` keeps ``np.convolve`` semantics (including mode
handling) and picks the evaluation strategy by operand length:

* tiny problems stay direct — FFT setup would dominate;
* one-operand-much-longer problems use overlap-add;
* comparable-length problems use a single FFT.

The helpers accept real or complex input, like their scipy backends.
"""

from __future__ import annotations

import numpy as np
from scipy.signal import fftconvolve, oaconvolve

#: Below this many output MACs, direct evaluation wins.
_DIRECT_MAC_LIMIT = 1 << 17

#: Length ratio beyond which overlap-add beats a single FFT.
_OVERLAP_ADD_RATIO = 8.0


def smart_convolve(x, kernel, mode: str = "full") -> np.ndarray:
    """``np.convolve(x, kernel, mode)`` with auto-selected evaluation.

    Dispatches to direct / :func:`scipy.signal.fftconvolve` /
    :func:`scipy.signal.oaconvolve` by operand length.  All three
    compute the same convolution; only floating-point rounding differs
    at the ~1 ulp level, far below any decode decision margin.
    """
    x = np.asarray(x)
    kernel = np.asarray(kernel)
    if x.ndim != 1 or kernel.ndim != 1:
        raise ValueError("smart_convolve operates on 1-D arrays")
    if len(x) == 0 or len(kernel) == 0:
        return np.convolve(x, kernel, mode=mode)
    n, m = len(x), len(kernel)
    if n * m <= _DIRECT_MAC_LIMIT or min(n, m) < 8:
        return np.convolve(x, kernel, mode=mode)
    if max(n, m) / min(n, m) >= _OVERLAP_ADD_RATIO:
        return oaconvolve(x, kernel, mode=mode)
    return fftconvolve(x, kernel, mode=mode)


def smart_correlate(x, template, mode: str = "valid") -> np.ndarray:
    """``np.correlate(x, template, mode)`` via :func:`smart_convolve`.

    Correlation is convolution with the (conjugated) reversed template;
    the receiver's preamble search uses real templates, so only the
    reversal matters.
    """
    template = np.asarray(template)
    return smart_convolve(x, np.conj(template[::-1]), mode=mode)
