"""Length-adaptive convolution kernels for the decode hot path.

``np.convolve`` evaluates directly in O(n*m); for the receiver's
correlations (50k-sample modulation against an 800+-sample preamble
template) that is tens of millions of MACs per decode.  FFT evaluation
is O(n log n), and overlap-add (:func:`scipy.signal.oaconvolve`) beats
one big FFT when the operands are very different lengths — exactly the
receiver's shape.

:func:`smart_convolve` keeps ``np.convolve`` semantics (including mode
handling) and picks the evaluation strategy by operand length:

* tiny problems stay direct — FFT setup would dominate;
* one-operand-much-longer problems use overlap-add;
* comparable-length problems use a single FFT.

The helpers accept real or complex input, like their scipy backends.
"""

from __future__ import annotations

import numpy as np
from scipy.signal import fftconvolve, oaconvolve

#: Below this many output MACs, direct evaluation wins.
_DIRECT_MAC_LIMIT = 1 << 17

#: Length ratio beyond which overlap-add beats a single FFT.
_OVERLAP_ADD_RATIO = 8.0

#: Overlap-add only pays off once the long operand is mixture-scale;
#: for mid-size signals (the receiver's ~9k-sample analysis segments)
#: a single zero-padded FFT is 2-3x faster than scipy's block loop.
_OVERLAP_ADD_MIN_LEN = 1 << 16


def smart_convolve(x, kernel, mode: str = "full") -> np.ndarray:
    """``np.convolve(x, kernel, mode)`` with auto-selected evaluation.

    Dispatches to direct / :func:`scipy.signal.fftconvolve` /
    :func:`scipy.signal.oaconvolve` by operand length.  All three
    compute the same convolution; only floating-point rounding differs
    at the ~1 ulp level, far below any decode decision margin.
    """
    x = np.asarray(x)
    kernel = np.asarray(kernel)
    if x.ndim != 1 or kernel.ndim != 1:
        raise ValueError("smart_convolve operates on 1-D arrays")
    if len(x) == 0 or len(kernel) == 0:
        return np.convolve(x, kernel, mode=mode)
    n, m = len(x), len(kernel)
    if n * m <= _DIRECT_MAC_LIMIT or min(n, m) < 8:
        return np.convolve(x, kernel, mode=mode)
    if (
        max(n, m) >= _OVERLAP_ADD_MIN_LEN
        and max(n, m) / min(n, m) >= _OVERLAP_ADD_RATIO
    ):
        return oaconvolve(x, kernel, mode=mode)
    return fftconvolve(x, kernel, mode=mode)


def smart_correlate(x, template, mode: str = "valid") -> np.ndarray:
    """``np.correlate(x, template, mode)`` via :func:`smart_convolve`.

    Correlation is convolution with the (conjugated) reversed template;
    the receiver's preamble search uses real templates, so only the
    reversal matters.
    """
    template = np.asarray(template)
    return smart_convolve(x, np.conj(template[::-1]), mode=mode)


def batched_convolve(xs, kernel, mode: str = "full") -> np.ndarray:
    """Row-wise :func:`smart_convolve` over an (N, samples) stack.

    Bit-identical to calling ``smart_convolve(row, kernel, mode)`` per
    row: the strategy dispatch depends only on the per-row lengths, and
    both scipy FFT backends produce byte-identical rows when handed the
    whole matrix with ``axes=-1`` (pocketfft transforms each row with
    the same plan it would use for a lone 1-D call).  The direct branch
    loops, because tiny problems gain nothing from stacking.
    """
    xs = np.asarray(xs)
    kernel = np.asarray(kernel)
    if xs.ndim == 1:
        return smart_convolve(xs, kernel, mode=mode)
    if xs.ndim != 2 or kernel.ndim != 1:
        raise ValueError("batched_convolve wants (N, samples) x 1-D kernel")
    n, m = xs.shape[-1], len(kernel)
    if n == 0 or m == 0:
        return np.stack([np.convolve(row, kernel, mode=mode) for row in xs])
    if n * m <= _DIRECT_MAC_LIMIT or min(n, m) < 8:
        return np.stack([np.convolve(row, kernel, mode=mode) for row in xs])
    if (
        max(n, m) >= _OVERLAP_ADD_MIN_LEN
        and max(n, m) / min(n, m) >= _OVERLAP_ADD_RATIO
    ):
        return oaconvolve(xs, kernel[None, :], mode=mode, axes=-1)
    return fftconvolve(xs, kernel[None, :], mode=mode, axes=-1)


def batched_correlate(xs, template, mode: str = "valid") -> np.ndarray:
    """Row-wise :func:`smart_correlate` over an (N, samples) stack."""
    template = np.asarray(template)
    return batched_convolve(xs, np.conj(template[::-1]), mode=mode)
